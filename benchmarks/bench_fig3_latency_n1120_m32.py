"""Paper Fig. 3 — mean message latency vs load, N=1120, m=8, M=32.

Two flit sizes (Lm = 256/512 bytes), analytical model vs simulation.
Expected shape (paper): flat-then-knee curves saturating near λ_g ≈ 5e-4
for Lm=256 and ≈ 2.6e-4 for Lm=512, with the model tracking simulation at
light load and turning optimistic near the knee.
"""

import pytest

from repro.validation import figure3

from benchmarks._figures import run_figure


@pytest.mark.benchmark(group="figures")
def test_fig3_latency_n1120_m32(benchmark, sessions, out_dir):
    run_figure(figure3(), sessions, out_dir, benchmark)
