"""Paper §4 bottleneck claim — "the inter-cluster networks, especially
ICN2, are the bottlenecks of the system".

Cross-checks the model's ranked queue/channel utilisations against the
simulator's measured per-group channel utilisations at a mid load for both
Table 1 systems.  The timed core is the model-side audit.
"""

import pytest

from repro.analysis import model_bottlenecks, render_table, sim_bottlenecks
from repro.core import MessageSpec, find_saturation_load, AnalyticalModel
from repro.cluster import paper_organizations

from benchmarks.conftest import SessionCache, bench_window, emit


@pytest.mark.benchmark(group="claims")
def test_bottleneck_audit(benchmark, sessions: SessionCache, out_dir):
    message = MessageSpec(32, 256.0)
    systems = paper_organizations()

    report = benchmark(model_bottlenecks, systems[0], message, 3e-4)
    assert report.binding.kind == "concentrator"

    blocks = []
    payload = {}
    for system in systems:
        lam = 0.5 * find_saturation_load(AnalyticalModel(system, message))
        model_view = model_bottlenecks(system, message, lam)
        sim = sessions.get(system, message).run(lam, seed=0, window=bench_window())
        sim_view = sim_bottlenecks(sim)

        # Model: the binding resource is a concentrator of the largest class.
        assert model_view.binding.kind == "concentrator"
        # Simulator: the concentrate/ICN2 groups out-utilise ICN1/ECN1.
        sim_util = dict(sim.network_utilization)
        assert sim_util["cd-concentrate"] > sim_util["icn1"]
        assert sim_util["cd-concentrate"] > sim_util["ecn1"]

        model_rows = [[r.resource, r.kind, r.utilization] for r in model_view.top(6)]
        sim_rows = [[r.resource, r.kind, r.utilization] for r in sim_view]
        blocks.append(
            render_table(
                ["resource", "kind", "utilization"],
                model_rows,
                title=f"{system.name} @ λ={lam:.2e} — model view (λ*={model_view.saturation_load:.2e})",
            )
            + "\n\n"
            + render_table(
                ["channel group", "kind", "mean utilization"],
                sim_rows,
                title=f"{system.name} — simulator view",
            )
        )
        payload[system.name] = {
            "model": model_rows,
            "sim": sim_rows,
            "load": lam,
        }
    emit(out_dir, "bottleneck_audit", "\n\n".join(blocks), payload=payload)
