"""Ablation — analytic drain (message-level) vs flit-accurate simulation.

DESIGN.md §4 approximates the in-message flit pipeline analytically; this
bench certifies the approximation by running both engines on the same
seeds/loads and reporting the latency ratio, and times the two engines on
identical work to quantify the speedup the approximation buys.
"""

import pytest

from repro.analysis import render_table
from repro.cluster import homogeneous_system
from repro.core import MessageSpec
from repro.simulation import MeasurementWindow, SimulationSession

from benchmarks.conftest import emit

SYSTEM = homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4)
MESSAGE = MessageSpec(16, 256.0)
WINDOW = MeasurementWindow(300, 3000, 300)


@pytest.mark.benchmark(group="ablations")
def test_ablation_drain_model(benchmark, out_dir):
    session = SimulationSession(SYSTEM, MESSAGE)

    def message_level_run():
        return session.run(1e-3, seed=0, window=WINDOW, granularity="message")

    timed = benchmark(message_level_run)

    rows = []
    for lam in (2e-4, 1e-3, 3e-3, 6e-3):
        msg_run = session.run(lam, seed=1, window=WINDOW, granularity="message")
        flit_run = session.run(lam, seed=1, window=WINDOW, granularity="flit")
        ratio = msg_run.mean_latency / flit_run.mean_latency
        rows.append(
            [
                lam,
                msg_run.mean_latency,
                flit_run.mean_latency,
                ratio,
                msg_run.events,
                flit_run.events,
            ]
        )
        assert 0.9 < ratio < 1.1, f"drain approximation off by {ratio:.3f} at λ={lam}"
    speedup = rows[-1][5] / rows[-1][4]

    text = render_table(
        ["lambda_g", "message-level", "flit-level", "ratio", "msg events", "flit events"],
        rows,
        title="Drain-model ablation (ratio should stay within ±10%)",
    )
    text += f"\n\nflit/message event-count ratio at top load: x{speedup:.1f}"
    text += f"\nmessage-level wall time per run (timed): {timed.wall_seconds:.2f}s"
    emit(out_dir, "ablation_drain_model", text, payload={"rows": rows})
