"""Paper Table 1 — system organisations for model validation.

Regenerates the table from :mod:`repro.cluster.organizations` and checks
the structural invariants the paper states (node totals, cluster counts,
ICN2 population).  The timed core is the full fabric assembly of both
organisations — the "can we even build it" cost a designer pays per
what-if iteration.
"""

import pytest

from repro.cluster import HeterogeneousSystem, paper_organizations, table1_rows
from repro.io import format_table1

from benchmarks.conftest import emit


def build_both():
    return [HeterogeneousSystem(cfg) for cfg in paper_organizations()]


@pytest.mark.benchmark(group="tables")
def test_table1_organizations(benchmark, out_dir):
    systems = benchmark(build_both)

    rows = table1_rows()
    assert [r["N"] for r in rows] == [1120, 544]
    assert [r["C"] for r in rows] == [32, 16]
    assert [r["m"] for r in rows] == [8, 4]
    assert systems[0].total_nodes == 1120
    assert systems[1].total_nodes == 544
    assert systems[0].icn2.num_nodes == 32
    assert systems[1].icn2.num_nodes == 16

    text = format_table1(rows)
    extra = "\n".join(
        f"  built {s.describe()['name']}: {s.describe()['channels']} directed channels"
        for s in systems
    )
    emit(out_dir, "table1_organizations", text + "\n\n" + extra, payload=rows)
