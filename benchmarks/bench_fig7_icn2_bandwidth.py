"""Paper Fig. 7 — impact of +20 % ICN2 bandwidth (M=128, Lm=256).

Model-only study (as in the paper): base vs increased-bandwidth curves for
both Table 1 systems on one shared load axis.  Expected shape: the
enhancement matters most in the high-traffic region, the N=1120 system
saturates first, and the N=544 system shows the more dramatic improvement
inside the plotted window.
"""

import pytest

from repro.analysis import curve_label, icn2_bandwidth_study
from repro.core import MessageSpec, find_saturation_load, AnalyticalModel
from repro.io import format_whatif_study
from repro.validation import figure7_systems

from benchmarks.conftest import bench_points, emit


@pytest.mark.benchmark(group="figures")
def test_fig7_icn2_bandwidth(benchmark, out_dir):
    message = MessageSpec(128, 256.0)

    study = benchmark(
        icn2_bandwidth_study, figure7_systems(), message, factor=1.2, points=max(8, bench_points())
    )

    by_label = {c.label: c for c in study.curves}
    sys_544, sys_1120 = figure7_systems()
    gain_544 = study.saturation_gain(
        curve_label(sys_544, "base"), curve_label(sys_544, "icn2 x1.2")
    )
    gain_1120 = study.saturation_gain(
        curve_label(sys_1120, "base"), curve_label(sys_1120, "icn2 x1.2")
    )
    assert 1.1 < gain_544 < 1.25 and 1.1 < gain_1120 < 1.25

    knees = {
        name: find_saturation_load(AnalyticalModel(system, message))
        for name, system in zip(("N=544", "N=1120"), figure7_systems())
    }
    # Paper x-axis reaches 3e-4 with both base systems saturating inside it.
    assert knees["N=1120"] < knees["N=544"] < 3e-4

    text = format_whatif_study(study)
    text += "\n\nSaturation loads (model):\n"
    for label, curve in by_label.items():
        text += f"  {label:24s} λ* = {curve.saturation_load:.3e}\n"
    text += f"\nKnee shift from +20% ICN2 bandwidth: N=544 x{gain_544:.3f}, N=1120 x{gain_1120:.3f}"
    emit(
        out_dir,
        "fig7_icn2_bandwidth",
        text,
        payload={label: list(c.latencies) for label, c in by_label.items()},
    )
