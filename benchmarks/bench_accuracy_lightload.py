"""Paper §4 accuracy claim — "at light traffic the model differs from
simulation by about 4 to 8 percent".

Measures the model-vs-simulation relative error at 20 % of the saturation
load for every Fig. 3-6 configuration and reports the error table.  The
timed core is one full light-load validation point at paper scale
(model + simulation), i.e. the unit of work behind every figure point.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.validation import all_latency_figures, light_load_error

from benchmarks.conftest import SessionCache, bench_window, emit


@pytest.mark.benchmark(group="claims")
def test_accuracy_lightload(benchmark, sessions: SessionCache, out_dir):
    window = bench_window()
    figures = all_latency_figures()

    def one_point():
        fig = figures[0]
        msg = fig.messages[0]
        return light_load_error(
            fig.system, msg, window=window, session=sessions.get(fig.system, msg)
        )

    benchmark.pedantic(one_point, rounds=1, iterations=1)

    rows = []
    errors = []
    for fig in figures:
        for msg in fig.messages:
            point = light_load_error(
                fig.system, msg, window=window, session=sessions.get(fig.system, msg)
            )
            rows.append(
                [
                    fig.figure,
                    fig.system.total_nodes,
                    msg.length_flits,
                    msg.flit_bytes,
                    point.load,
                    point.model_latency,
                    point.sim_latency,
                    point.relative_error,
                ]
            )
            errors.append(abs(point.relative_error))
            assert point.sim_completed

    mean_err = float(np.mean(errors))
    max_err = float(np.max(errors))
    # Paper band is 4-8 %; we accept anything comfortably inside ~12 % to
    # absorb simulator-semantics differences documented in DESIGN.md.
    assert max_err < 0.12, f"light-load error {max_err:.1%} outside band"

    text = render_table(
        ["figure", "N", "M", "Lm", "lambda_g", "model", "sim", "rel_err"],
        rows,
        title="Light-load model accuracy (paper claim: ~4-8%)",
    )
    text += f"\n\nmean |error| = {mean_err:.1%}, max |error| = {max_err:.1%}"
    emit(out_dir, "accuracy_lightload", text, payload={"rows": rows, "mean": mean_err, "max": max_err})
