"""Performance — simulator throughput (events/second) at both granularities.

Quantifies the cost of validation runs: the message-level engine on a paper
system and the flit-level engine on the small reference system, plus the
process-pool replication fan-out (serial vs ``jobs=auto`` wall-clock and
the bit-equality of their results).
"""

import os

import pytest

from repro.cluster import homogeneous_system
from repro.core import MessageSpec, paper_system_544
from repro.simulation import MeasurementWindow, SimulationSession, replicate

from benchmarks.conftest import emit


@pytest.mark.benchmark(group="performance")
def test_message_level_throughput_paper_system(benchmark, sessions, out_dir):
    session = sessions.get(paper_system_544(), MessageSpec(32, 256.0))
    window = MeasurementWindow(500, 5000, 500)

    result = benchmark.pedantic(
        lambda: session.run(3e-4, seed=0, window=window), rounds=2, iterations=1
    )
    rate = result.events / result.wall_seconds
    assert result.completed
    emit(
        out_dir,
        "sim_speed_message_level",
        f"message-level engine, N=544 @ λ=3e-4: {result.events} events, "
        f"{result.wall_seconds:.2f}s -> {rate:,.0f} events/s",
        payload={"events": result.events, "events_per_second": rate},
    )


@pytest.mark.benchmark(group="performance")
def test_array_engine_speedup(benchmark, sessions, out_dir):
    """Reference loop vs compiled array core at the same operating point.

    Records events/s for both engines (``sim_events_per_second.json``) and
    asserts the results agree modulo wall-clock — the bit-exactness proof
    lives in tests/test_eventcore.py; this is the throughput figure.  On a
    host without a C compiler the array engine falls back to the reference
    loop and the recorded speedup is honestly ~1x.
    """
    from dataclasses import replace

    from repro.simulation import kernel_available

    session = sessions.get(paper_system_544(), MessageSpec(32, 256.0))
    window = MeasurementWindow(500, 5000, 500)

    reference = session.run(3e-4, seed=0, window=window, engine="reference")
    array = benchmark.pedantic(
        lambda: session.run(3e-4, seed=0, window=window, engine="array"),
        rounds=2,
        iterations=1,
    )
    assert replace(array, wall_seconds=0.0) == replace(reference, wall_seconds=0.0)
    ref_rate = reference.events / reference.wall_seconds
    arr_rate = array.events / array.wall_seconds
    speedup = arr_rate / ref_rate
    emit(
        out_dir,
        "sim_events_per_second",
        f"message-level engines, N=544 @ λ=3e-4, {array.events} events "
        f"(kernel {'available' if kernel_available() else 'UNAVAILABLE - fallback'}): "
        f"reference {ref_rate:,.0f} events/s vs array {arr_rate:,.0f} events/s "
        f"-> {speedup:.2f}x (results identical modulo wall-clock)",
        payload={
            "events": array.events,
            "kernel_available": kernel_available(),
            "reference": {"events_per_second": ref_rate, "wall_seconds": reference.wall_seconds},
            "array": {"events_per_second": arr_rate, "wall_seconds": array.wall_seconds},
            "speedup": speedup,
        },
    )


@pytest.mark.benchmark(group="performance")
def test_parallel_replication_speedup(benchmark, sessions, out_dir):
    """Serial vs process-pool replication: speedup figure + bit-equality.

    On a single-core runner the pool costs more than it saves (the figure
    records that honestly); the invariant asserted either way is that the
    parallel path reproduces the serial replicas bit for bit.
    """
    session = sessions.get(paper_system_544(), MessageSpec(32, 256.0))
    window = MeasurementWindow(200, 2000, 200)
    replicas = 4

    serial = replicate(session, 3e-4, replicas=replicas, base_seed=0, window=window)
    parallel = benchmark.pedantic(
        lambda: replicate(session, 3e-4, replicas=replicas, base_seed=0, window=window, jobs=0),
        rounds=1,
        iterations=1,
    )
    assert [r.mean_latency for r in parallel.replicas] == [
        r.mean_latency for r in serial.replicas
    ]
    speedup = serial.elapsed_seconds / parallel.elapsed_seconds
    emit(
        out_dir,
        "sim_speed_parallel_replication",
        f"replication, N=544 @ λ=3e-4, {replicas} replicas: serial "
        f"{serial.elapsed_seconds:.2f}s vs jobs={parallel.jobs} "
        f"{parallel.elapsed_seconds:.2f}s -> {speedup:.2f}x "
        f"({parallel.events_per_second:,.0f} effective events/s, "
        f"{os.cpu_count()} CPUs, results bit-identical)",
        payload={
            "replicas": replicas,
            "jobs": parallel.jobs,
            "cpus": os.cpu_count(),
            "serial_seconds": serial.elapsed_seconds,
            "parallel_seconds": parallel.elapsed_seconds,
            "speedup": speedup,
            "events": parallel.events,
            "effective_events_per_second": parallel.events_per_second,
        },
    )


@pytest.mark.benchmark(group="performance")
def test_flit_level_throughput_small_system(benchmark, sessions, out_dir):
    session = sessions.get(homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4), MessageSpec(16, 256.0))
    window = MeasurementWindow(200, 1500, 200)

    result = benchmark.pedantic(
        lambda: session.run(1e-3, seed=0, window=window, granularity="flit"), rounds=2, iterations=1
    )
    rate = result.events / result.wall_seconds
    assert result.completed
    emit(
        out_dir,
        "sim_speed_flit_level",
        f"flit-level engine, 32 nodes @ λ=1e-3: {result.events} events, "
        f"{result.wall_seconds:.2f}s -> {rate:,.0f} events/s",
        payload={"events": result.events, "events_per_second": rate},
    )
