"""Paper Table 2 — network characteristics for model validation.

Regenerates the table and derives the service-time primitives (Eqs. 11-12)
each network/flit-size combination implies; the timed core is the service
time computation over the full validation grid.
"""

import pytest

from repro.core import NET1, NET2, MessageSpec, node_channel_time, switch_channel_time
from repro.analysis import render_table
from repro.io import format_table2

from benchmarks.conftest import emit


def service_grid():
    rows = []
    for net in (NET1, NET2):
        for d_m in (256.0, 512.0):
            rows.append(
                [net.name, d_m, node_channel_time(net, d_m), switch_channel_time(net, d_m)]
            )
    return rows


@pytest.mark.benchmark(group="tables")
def test_table2_networks(benchmark, out_dir):
    rows = benchmark(service_grid)

    # Paper values and their Eq. 11-12 consequences.
    assert NET1.beta == pytest.approx(1 / 500)
    assert switch_channel_time(NET1, 256.0) == pytest.approx(0.532)
    assert switch_channel_time(NET2, 256.0) == pytest.approx(1.034)

    text = format_table2([NET1, NET2])
    text += "\n\n" + render_table(
        ["Network", "d_m", "t_cn (Eq.11)", "t_cs (Eq.12)"],
        rows,
        title="Derived channel service times",
    )
    emit(out_dir, "table2_networks", text, payload={"rows": rows})
