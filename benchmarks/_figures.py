"""Shared driver for the latency-validation figure benches (Figs. 3-6).

Each figure plots, for two flit sizes, the analytical model curve and the
simulation points over a load grid reaching the saturation knee.  The timed
core is the model sweep (the artifact whose cheapness the paper argues makes
it "a practical evaluation tool"); the simulation points are produced once
per run and reported alongside.
"""

from __future__ import annotations

from repro.core import AnalyticalModel
from repro.io import format_validation_curve
from repro.validation import FigureScenario, run_validation
from repro.core.sweep import sweep_load

from benchmarks.conftest import SessionCache, bench_points, bench_window, emit


def run_figure(figure: FigureScenario, sessions: SessionCache, out_dir, benchmark) -> None:
    """Regenerate one latency figure: model sweep (timed) + sim points."""
    grids = {msg: figure.load_grid(msg, points=bench_points()) for msg in figure.messages}

    def model_sweeps():
        out = {}
        for msg, grid in grids.items():
            out[msg] = sweep_load(AnalyticalModel(figure.system, msg), grid)
        return out

    sweeps = benchmark(model_sweeps)

    blocks = []
    payload = {}
    window = bench_window()
    for msg, grid in grids.items():
        label = f"{figure.system.name}, M={msg.length_flits}, Lm={msg.flit_bytes:g}"
        curve = run_validation(
            figure.system,
            msg,
            grid,
            label=label,
            window=window,
            session=sessions.get(figure.system, msg),
        )
        blocks.append(format_validation_curve(curve, figure=figure.figure))
        payload[label] = {
            "rows": curve.as_rows(),
            "model_sweep": list(sweeps[msg].latencies),
            "paper_x_max": figure.paper_x_max,
        }
        # Reproduction guardrails: model tracks sim at the light-load end
        # and is optimistic (not pessimistic) at the knee end.
        light = curve.points[0]
        assert light.sim_completed
        assert abs(light.relative_error) < 0.25, f"light-load error {light.relative_error:+.1%}"
    text = f"{figure.title}\n(paper x-axis reaches {figure.paper_x_max:g})\n\n" + "\n\n".join(blocks)
    emit(out_dir, figure.figure.replace(".", "").lower(), text, payload=payload)
