"""Paper Fig. 5 — mean message latency vs load, N=544, m=4, M=32.

The N=544 organisation's largest cluster carries half the external load of
N=1120's, so its knee sits twice as far right (λ_g ≈ 1e-3 for Lm=256).
"""

import pytest

from repro.validation import figure5

from benchmarks._figures import run_figure


@pytest.mark.benchmark(group="figures")
def test_fig5_latency_n544_m32(benchmark, sessions, out_dir):
    run_figure(figure5(), sessions, out_dir, benchmark)
