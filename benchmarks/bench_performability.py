"""Performance — performability evaluation throughput (states/second).

The performability subsystem prices every availability state through the
batched closed forms, so a failure study over tens of states should cost
about as much as that many saturation solves.  This bench records
states/s for an 18-state study on the N=544 system, serial and fanned
out, plus the cache-hit replay rate, so future PRs can track regressions
in the per-state evaluation or the CTMC solve.
"""

import time

import pytest

from repro.performability import FailureMode, FailureScenario, performability_analysis
from repro.scenarios import get_scenario

from benchmarks.conftest import emit


def study_failures() -> FailureScenario:
    """Node + ICN2 switch/link churn, 2x3x3 = 18 tracked states on 544."""
    return FailureScenario(
        modes=(
            FailureMode(kind="node", failure_rate=1e-4, repair_rate=1e-2),
            FailureMode(kind="switch", role="icn2", count=2,
                        failure_rate=1e-5, repair_rate=1e-2),
            FailureMode(kind="link", role="icn2", level=1, count=2,
                        failure_rate=1e-5, repair_rate=1e-2),
        ),
        name="bench",
    )


@pytest.mark.benchmark(group="performance")
def test_performability_states_per_second(benchmark, out_dir):
    spec = get_scenario("544")
    failures = study_failures()
    result = benchmark.pedantic(
        lambda: performability_analysis(spec, failures), rounds=2, iterations=1
    )
    states = len(result.data["states"])
    seconds = benchmark.stats.stats.min
    rate = states / seconds
    assert states == 18
    emit(
        out_dir,
        "performability_states_per_second",
        f"performability, N=544, {states} states (3 modes), serial: "
        f"{seconds:.2f}s -> {rate:,.1f} states/s",
        payload={"states": states, "seconds": seconds, "states_per_second": rate},
    )


@pytest.mark.benchmark(group="performance")
def test_performability_parallel_and_cached_replay(benchmark, out_dir, tmp_path_factory):
    """jobs=auto fan-out vs serial (same table bit-for-bit) and the
    cache-served replay rate of a warmed study."""
    spec = get_scenario("544")
    failures = study_failures()
    cache = tmp_path_factory.mktemp("perf-cache")

    t0 = time.perf_counter()
    serial = performability_analysis(spec, failures)
    serial_s = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: performability_analysis(spec, failures, jobs=0, cache=cache),
        rounds=1,
        iterations=1,
    )
    parallel_s = benchmark.stats.stats.min
    assert parallel.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    t0 = time.perf_counter()
    cached = performability_analysis(spec, failures, cache=cache)
    cached_s = time.perf_counter() - t0
    states = len(serial.data["states"])
    assert cached.data["evaluated"] == 0 and cached.data["cached"] == states
    assert cached.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    emit(
        out_dir,
        "performability_parallel_and_cached",
        (
            f"performability, N=544, {states} states: serial {states / serial_s:,.1f} states/s, "
            f"jobs=auto {states / parallel_s:,.1f} states/s "
            f"(speedup x{serial_s / parallel_s:.2f}), "
            f"cache replay {states / cached_s:,.1f} states/s"
        ),
        payload={
            "states": states,
            "serial_states_per_second": states / serial_s,
            "parallel_states_per_second": states / parallel_s,
            "parallel_speedup": serial_s / parallel_s,
            "cached_states_per_second": states / cached_s,
        },
    )
