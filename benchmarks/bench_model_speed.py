"""Performance — the analytical model as a "practical evaluation tool".

The paper's selling point over simulation is evaluation cost.  This bench
times a full model evaluation for both Table 1 systems, measures the
class-aggregation speedup (DESIGN.md §3), the batched-engine speedup over
a load grid (docs/batched_engine.md) and reports the model-vs-simulation
wall-time ratio for one figure point.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    BatchedModel,
    MessageSpec,
    find_saturation_load,
    paper_system_544,
    paper_system_1120,
)
from repro.analysis import render_table

from benchmarks.conftest import emit

MESSAGE = MessageSpec(32, 256.0)
GRID_POINTS = 64


def exploded(system):
    """Force one singleton class per cluster via negligible bandwidth offsets."""
    clusters = tuple(
        replace(spec, icn1=replace(spec.icn1, bandwidth=spec.icn1.bandwidth + 1e-9 * (i + 1)))
        for i, spec in enumerate(system.clusters)
    )
    return replace(system, clusters=clusters)


@pytest.mark.benchmark(group="performance")
def test_model_speed_n1120(benchmark):
    model = AnalyticalModel(paper_system_1120(), MESSAGE)
    result = benchmark(model.evaluate, 3e-4)
    assert result.latency > 0


@pytest.mark.benchmark(group="performance")
def test_model_speed_n544(benchmark):
    model = AnalyticalModel(paper_system_544(), MESSAGE)
    result = benchmark(model.evaluate, 5e-4)
    assert result.latency > 0


@pytest.mark.benchmark(group="performance")
def test_batched_grid_speedup(benchmark, out_dir):
    """The tentpole claim: evaluate_many over a 64-point grid is >= 10x
    faster than 64 scalar evaluate() calls, and the closed-form saturation
    load agrees with the reference bisection within its tolerance."""
    rows = []
    payload = {}
    for system in (paper_system_1120(), paper_system_544()):
        model = AnalyticalModel(system, MESSAGE)
        engine = BatchedModel(system, MESSAGE)
        lam_star = engine.saturation_load()
        grid = np.linspace(0.95 * lam_star / GRID_POINTS, 0.95 * lam_star, GRID_POINTS)

        def wall(fn, repeats=3):
            fn()  # warm-up: first-call allocator/ufunc setup stays out of the timing
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        t_scalar = wall(lambda: [model.evaluate(float(lam)) for lam in grid])
        t_batched = wall(lambda: engine.evaluate_many(grid))
        t_lat_only = wall(lambda: engine.evaluate_many(grid, with_results=False))
        speedup = t_scalar / t_batched
        assert speedup > 10, f"batched speedup x{speedup:.1f} below the 10x floor ({system.name})"

        bisected = find_saturation_load(model, method="bisection", rel_tol=1e-4)
        assert lam_star == pytest.approx(bisected, rel=1e-4)
        rows.append([system.name, GRID_POINTS, t_scalar, t_batched, t_lat_only, f"x{speedup:.1f}"])
        payload[system.name] = {
            "grid_points": GRID_POINTS,
            "scalar_seconds": t_scalar,
            "batched_seconds": t_batched,
            "latency_only_seconds": t_lat_only,
            "speedup": speedup,
            "saturation_closed_form": lam_star,
            "saturation_bisection": bisected,
        }

    benchmark(lambda: BatchedModel(paper_system_1120(), MESSAGE).evaluate_many(
        np.linspace(1e-5, 4.5e-4, GRID_POINTS)
    ))
    text = render_table(
        ["system", "points", "64x scalar (s)", "batched (s)", "latency-only (s)", "speedup"],
        rows,
        title="Batched load-grid engine vs scalar reference",
    )
    emit(out_dir, "model_speed_batched", text, payload=payload)


@pytest.mark.benchmark(group="performance")
def test_model_speed_without_class_aggregation(benchmark, out_dir):
    aggregated = AnalyticalModel(paper_system_1120(), MESSAGE)
    exploded_model = AnalyticalModel(exploded(paper_system_1120()), MESSAGE)
    benchmark(exploded_model.evaluate, 3e-4)

    def wall(model, repeats=3):
        start = time.perf_counter()
        for _ in range(repeats):
            model.evaluate(3e-4)
        return (time.perf_counter() - start) / repeats

    t_agg = wall(aggregated)
    t_exp = wall(exploded_model)
    speedup = t_exp / t_agg
    assert speedup > 5  # 3 classes vs 32 singleton classes

    text = render_table(
        ["variant", "classes", "seconds/eval"],
        [
            ["class-aggregated", len(aggregated.cluster_classes), t_agg],
            ["per-cluster (exploded)", len(exploded_model.cluster_classes), t_exp],
        ],
        title=f"Class aggregation speedup: x{speedup:.1f} (N=1120)",
    )
    emit(out_dir, "model_speed", text, payload={"speedup": speedup})
