"""Performance — the analytical model as a "practical evaluation tool".

The paper's selling point over simulation is evaluation cost.  This bench
times a full model evaluation for both Table 1 systems, measures the
class-aggregation speedup (DESIGN.md §3) and reports the model-vs-simulation
wall-time ratio for one figure point.
"""

from dataclasses import replace

import pytest

from repro.core import AnalyticalModel, MessageSpec, paper_system_544, paper_system_1120
from repro.analysis import render_table

from benchmarks.conftest import emit

MESSAGE = MessageSpec(32, 256.0)


def exploded(system):
    """Force one singleton class per cluster via negligible bandwidth offsets."""
    clusters = tuple(
        replace(spec, icn1=replace(spec.icn1, bandwidth=spec.icn1.bandwidth + 1e-9 * (i + 1)))
        for i, spec in enumerate(system.clusters)
    )
    return replace(system, clusters=clusters)


@pytest.mark.benchmark(group="performance")
def test_model_speed_n1120(benchmark):
    model = AnalyticalModel(paper_system_1120(), MESSAGE)
    result = benchmark(model.evaluate, 3e-4)
    assert result.latency > 0


@pytest.mark.benchmark(group="performance")
def test_model_speed_n544(benchmark):
    model = AnalyticalModel(paper_system_544(), MESSAGE)
    result = benchmark(model.evaluate, 5e-4)
    assert result.latency > 0


@pytest.mark.benchmark(group="performance")
def test_model_speed_without_class_aggregation(benchmark, out_dir):
    import time

    aggregated = AnalyticalModel(paper_system_1120(), MESSAGE)
    exploded_model = AnalyticalModel(exploded(paper_system_1120()), MESSAGE)
    benchmark(exploded_model.evaluate, 3e-4)

    def wall(model, repeats=3):
        start = time.perf_counter()
        for _ in range(repeats):
            model.evaluate(3e-4)
        return (time.perf_counter() - start) / repeats

    t_agg = wall(aggregated)
    t_exp = wall(exploded_model)
    speedup = t_exp / t_agg
    assert speedup > 5  # 3 classes vs 32 singleton classes

    text = render_table(
        ["variant", "classes", "seconds/eval"],
        [
            ["class-aggregated", len(aggregated.cluster_classes), t_agg],
            ["per-cluster (exploded)", len(exploded_model.cluster_classes), t_exp],
        ],
        title=f"Class aggregation speedup: x{speedup:.1f} (N=1120)",
    )
    emit(out_dir, "model_speed", text, payload={"speedup": speedup})
