"""Benchmark/reproduction harness — one module per paper table/figure/claim.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints the series/rows it regenerates and persists them under
``benchmarks/out/``.  See ``benchmarks/conftest.py`` for environment knobs.
"""
