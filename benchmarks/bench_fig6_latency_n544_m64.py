"""Paper Fig. 6 — mean message latency vs load, N=544, m=4, M=64.

Knee near λ_g ≈ 5.2e-4 for Lm=256 (half of Fig. 5's, per message length).
"""

import pytest

from repro.validation import figure6

from benchmarks._figures import run_figure


@pytest.mark.benchmark(group="figures")
def test_fig6_latency_n544_m64(benchmark, sessions, out_dir):
    run_figure(figure6(), sessions, out_dir, benchmark)
