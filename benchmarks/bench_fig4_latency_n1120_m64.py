"""Paper Fig. 4 — mean message latency vs load, N=1120, m=8, M=64.

Doubling the message length halves the saturation load relative to Fig. 3
(knee near λ_g ≈ 2.6e-4 for Lm=256).
"""

import pytest

from repro.validation import figure4

from benchmarks._figures import run_figure


@pytest.mark.benchmark(group="figures")
def test_fig4_latency_n1120_m64(benchmark, sessions, out_dir):
    run_figure(figure4(), sessions, out_dir, benchmark)
