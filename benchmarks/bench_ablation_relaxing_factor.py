"""Ablation — the Eq. 27/28 relaxing factor δ on ICN2 channel waits.

The paper corrects ICN2 stage waits by δ = β_I2/β_E1 because the faster
ICN2 drains queues quicker than the ECN1-rate analysis assumes.  This bench
quantifies the correction's effect across the load range and checks it
moves the model toward the simulator.
"""

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_544
from repro.core.sweep import find_saturation_load
from repro.simulation import MeasurementWindow

from benchmarks.conftest import SessionCache, bench_messages, emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_relaxing_factor(benchmark, sessions: SessionCache, out_dir):
    system = paper_system_544()
    message = MessageSpec(32, 256.0)
    with_delta = AnalyticalModel(system, message)
    without_delta = AnalyticalModel(system, message, ModelOptions(relaxing_factor=False))
    lam_star = find_saturation_load(with_delta)
    loads = [f * lam_star for f in (0.2, 0.4, 0.6, 0.8)]

    benchmark(lambda: [with_delta.evaluate(lam) for lam in loads])

    window = MeasurementWindow.scaled_paper(max(4000, bench_messages() // 4))
    session = sessions.get(system, message)
    rows = []
    for lam in loads:
        on = with_delta.evaluate(lam).latency
        off = without_delta.evaluate(lam).latency
        sim = session.run(lam, seed=2, window=window).mean_latency
        rows.append([lam, on, off, sim, (on - sim) / sim, (off - sim) / sim])
        assert on <= off  # δ = 0.5 < 1 can only reduce ICN2 waits

    text = render_table(
        ["lambda_g", "model (δ on)", "model (δ off)", "simulation", "err δ on", "err δ off"],
        rows,
        title="Relaxing-factor ablation, N=544, M=32, Lm=256",
    )
    emit(out_dir, "ablation_relaxing_factor", text, payload={"rows": rows})
