"""Extension — non-uniform traffic (the paper's §5 future-work item).

Validates the generalised model (pattern-aware U_i and destination
weights) against the simulator under a locality pattern, and charts how
the saturation load responds to locality — the analysis the paper says it
intends to do next.  The timed core is the generalised model evaluation.
"""

import pytest

from repro.analysis import render_table
from repro.cluster import homogeneous_system
from repro.core import AnalyticalModel, MessageSpec
from repro.core.sweep import find_saturation_load
from repro.simulation import MeasurementWindow, SimulationSession
from repro.workloads import LocalityTraffic

from benchmarks.conftest import bench_messages, emit

SYSTEM = homogeneous_system(switch_ports=8, tree_depth=2, num_clusters=8)  # 256 nodes
MESSAGE = MessageSpec(32, 256.0)


@pytest.mark.benchmark(group="extensions")
def test_extension_nonuniform(benchmark, out_dir):
    model_mid = AnalyticalModel(SYSTEM, MESSAGE, pattern=LocalityTraffic(0.5))
    benchmark(model_mid.evaluate, 3e-4)

    session = SimulationSession(SYSTEM, MESSAGE)
    window = MeasurementWindow.scaled_paper(max(4000, bench_messages() // 4))
    rows = []
    for locality in (0.2, 0.5, 0.8):
        pattern = LocalityTraffic(locality)
        model = AnalyticalModel(SYSTEM, MESSAGE, pattern=pattern)
        lam = 0.2 * find_saturation_load(model)
        predicted = model.evaluate(lam).latency
        sim = session.run(lam, seed=5, window=window, pattern=pattern)
        err = (predicted - sim.mean_latency) / sim.mean_latency
        rows.append(
            [locality, lam, predicted, sim.mean_latency, err,
             sim.stats.count_intra / sim.stats.count, find_saturation_load(model)]
        )
        assert abs(err) < 0.15
        # The measured intra share realises the pattern's declared locality.
        assert sim.stats.count_intra / sim.stats.count == pytest.approx(locality, abs=0.03)

    text = render_table(
        ["locality", "lambda_g", "model", "simulation", "rel_err", "sim intra share", "λ*"],
        rows,
        title="Non-uniform traffic extension: generalised model vs simulator",
    )
    emit(out_dir, "extension_nonuniform", text, payload={"rows": rows})
