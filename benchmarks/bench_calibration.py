"""Calibration — the full 96-way ablation search against the simulator.

The hand-written ablation benches probe one ``ModelOptions`` knob at a
time; this bench runs the whole Cartesian space on the N=544 organisation
and records **how much accuracy the winning combination buys over the
paper-default reading** — the repository's answer to "which reading of
the ambiguous equations should you use?".  It also times the cache-replay
re-score (the cost a user iterating on metrics actually pays once the
ground truth is simulated).
"""

import pytest

from repro.analysis import render_table
from repro.core import ModelOptions
from repro.experiments.calibrate import calibrate_options
from repro.io import ResultCache

from benchmarks.conftest import bench_messages, emit


@pytest.mark.benchmark(group="calibration")
def test_calibration_full_space(benchmark, out_dir, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("calibration-cache"))
    kw = dict(
        messages=max(2000, bench_messages() // 8),
        seed=4,
        cache=cache,
        jobs=0,
    )
    first = calibrate_options(["544"], **kw)  # pays the 4 simulations
    assert first.data["simulated_points"] == 4
    assert len(first.data["combinations"]) == 96

    # The timed core: re-scoring all 96 combinations against the cached
    # simulator curve (0 new simulations — verified below).
    replay = benchmark.pedantic(lambda: calibrate_options(["544"], **kw), rounds=2, iterations=1)
    assert replay.data["simulated_points"] == 0
    assert replay.data["winner"] == first.data["winner"]

    default = next(
        r for r in first.data["combinations"] if r["options"] == ModelOptions().to_dict()
    )
    winner = first.data["combinations"][first.data["winner"]["index"]]
    # The default reading is in the space, so the winner can only be at
    # least as accurate under the ranking metric.
    assert winner["score"] <= default["score"]

    [scenario] = first.data["scenarios"]
    rows = [
        [
            f"{lam:.4e}",
            f"{default['per_scenario']['544']['errors'][i]:+.4f}",
            f"{winner['per_scenario']['544']['errors'][i]:+.4f}",
        ]
        for i, lam in enumerate(scenario["loads"])
    ]
    table = render_table(
        ["lambda_g", "err (paper default)", "err (winner)"],
        rows,
        title="Calibration: winning combination vs the paper-default reading, N=544",
    )
    text = (
        table
        + f"\n\nwinner: {winner['name']}"
        + f"\n{first.data['metric']}: default {default['score']:.6f} -> winner {winner['score']:.6f}"
        + f"\nre-score of 96 combinations from cached curves: {benchmark.stats.stats.min:.2f}s"
    )
    emit(
        out_dir,
        "calibration_full_space",
        text,
        payload={
            "winner": winner["name"],
            "winner_options": winner["options"],
            "winner_score": winner["score"],
            "default_score": default["score"],
            "metric": first.data["metric"],
            "loads": scenario["loads"],
            "default_errors": default["per_scenario"]["544"]["errors"],
            "winner_errors": winner["per_scenario"]["544"]["errors"],
            "replay_seconds": benchmark.stats.stats.min,
        },
    )
