"""Ablation — source-queue arrival-rate readings (DESIGN.md §3 items 6/8).

The OCR'd Eq. 31 literally uses the aggregate pair rate λ_E1^{(i,j)} in the
inter-cluster source queue; DESIGN.md argues this cannot be what the
authors computed because it saturates the model far left of every figure's
knee.  This bench demonstrates that, and compares the default per-node
reading against the simulator.
"""

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_1120
from repro.core.sweep import find_saturation_load

from benchmarks.conftest import emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_source_rate(benchmark, out_dir):
    system = paper_system_1120()
    message = MessageSpec(32, 256.0)
    readings = {
        "paper (per-port)": ModelOptions(source_queue_rate="paper"),
        "per_node": ModelOptions(source_queue_rate="per_node"),
        "aggregate_pair (literal OCR)": ModelOptions(source_queue_rate="aggregate_pair"),
    }
    models = {name: AnalyticalModel(system, message, opts) for name, opts in readings.items()}

    benchmark(lambda: {name: find_saturation_load(m) for name, m in models.items()})

    knees = {name: find_saturation_load(m) for name, m in models.items()}
    # The literal reading saturates ~4x earlier than the figure knee.
    assert knees["aggregate_pair (literal OCR)"] < 0.5 * knees["paper (per-port)"]
    # The defended readings preserve the Fig. 3 knee (~5.2e-4).
    assert knees["paper (per-port)"] == pytest.approx(5.18e-4, rel=0.03)

    rows = []
    grid = [0.2 * knees["paper (per-port)"], 0.5 * knees["paper (per-port)"]]
    for name, model in models.items():
        rows.append([name, knees[name], *[model.evaluate(lam).latency for lam in grid]])
    text = render_table(
        ["reading", "λ*", f"L({grid[0]:.1e})", f"L({grid[1]:.1e})"],
        rows,
        title="Source-queue rate readings, N=1120, M=32 (paper Fig.3 knee ≈ 5e-4)",
    )
    emit(out_dir, "ablation_source_rate", text, payload={"knees": knees})
