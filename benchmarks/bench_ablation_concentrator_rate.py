"""Ablation — concentrator arrival rate: paper pair-mean vs physical load.

The paper's Eq. 23 feeds the concentrator M/G/1 with the *pair mean*
λ_g(N_i U_i + N_j U_j)/2, which dilutes the hottest concentrator when most
destination clusters are small; the physical queue load is the source
cluster's own outgoing rate λ_g N_i U_i.  Both saturate the biggest cluster
at the same λ*, but the physical reading tracks the simulator better at mid
loads — a beyond-paper correction quantified here.
"""

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_1120
from repro.core.sweep import find_saturation_load
from repro.simulation import MeasurementWindow

from benchmarks.conftest import SessionCache, bench_messages, emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_concentrator_rate(benchmark, sessions: SessionCache, out_dir):
    system = paper_system_1120()
    message = MessageSpec(32, 256.0)
    paper_model = AnalyticalModel(system, message)
    physical_model = AnalyticalModel(system, message, ModelOptions(concentrator_rate="source_outgoing"))

    knees = benchmark(
        lambda: (find_saturation_load(paper_model), find_saturation_load(physical_model))
    )
    # Same binding constraint: the hottest pair's mean equals the hottest
    # cluster's own rate, so both knees coincide.
    assert knees[0] == pytest.approx(knees[1], rel=1e-3)

    window = MeasurementWindow.scaled_paper(max(4000, bench_messages() // 4))
    session = sessions.get(system, message)
    rows = []
    improvements = []
    for fraction in (0.3, 0.5, 0.7):
        lam = fraction * knees[0]
        paper_lat = paper_model.evaluate(lam).latency
        phys_lat = physical_model.evaluate(lam).latency
        sim = session.run(lam, seed=4, window=window).mean_latency
        err_paper = (paper_lat - sim) / sim
        err_phys = (phys_lat - sim) / sim
        rows.append([lam, paper_lat, phys_lat, sim, err_paper, err_phys])
        improvements.append(abs(err_phys) <= abs(err_paper))

    # The physical rate should not be worse on the majority of mid loads.
    assert sum(improvements) >= 2

    text = render_table(
        ["lambda_g", "pair_mean (paper)", "source_outgoing", "simulation", "err paper", "err physical"],
        rows,
        title="Concentrator-rate ablation, N=1120, M=32, Lm=256",
    )
    emit(out_dir, "ablation_concentrator_rate", text, payload={"rows": rows})
