"""Performance — design-space exploration throughput (cells/second).

The exploration subsystem's value proposition is that a grid cell — one
full closed-form characterisation of a design (λ*, knee, binding
resource) — costs milliseconds, so design studies scale to thousands of
points.  This bench records cells/s for a 24-cell grid on the N=544
system, serial and fanned out, plus the cache-hit replay rate, so future
PRs can track regressions in the per-cell precompute or the fan-out
overhead.
"""

import time

import pytest

from repro.experiments import explore_grid
from repro.scenarios import AxisSpec, DesignGrid, get_scenario

from benchmarks.conftest import emit


def study_grid() -> DesignGrid:
    """3 axes, 24 cells on the Table 1 N=544 organisation."""
    return DesignGrid(
        base=get_scenario("544"),
        axes=(
            AxisSpec("system.icn2.bandwidth", (250.0, 375.0, 500.0, 625.0)),
            AxisSpec("message.length_flits", (16, 32, 64)),
            AxisSpec("message.flit_bytes", (128.0, 256.0)),
        ),
    )


@pytest.mark.benchmark(group="performance")
def test_explore_cells_per_second(benchmark, out_dir):
    grid = study_grid()
    result = benchmark.pedantic(lambda: explore_grid(grid), rounds=2, iterations=1)
    cells = len(result.data["columns"]["cell"])
    seconds = benchmark.stats.stats.min
    rate = cells / seconds
    assert cells == grid.size == 24
    emit(
        out_dir,
        "explore_cells_per_second",
        f"explore, N=544, {cells} cells (3 axes), serial: "
        f"{seconds:.2f}s -> {rate:,.1f} cells/s",
        payload={"cells": cells, "seconds": seconds, "cells_per_second": rate},
    )


@pytest.mark.benchmark(group="performance")
def test_explore_parallel_and_cached_replay(benchmark, out_dir, tmp_path_factory):
    """jobs=auto fan-out vs serial (same table bit-for-bit) and the
    cache-served replay rate of a warmed grid."""
    grid = study_grid()
    cache = tmp_path_factory.mktemp("explore-cache")

    t0 = time.perf_counter()
    serial = explore_grid(grid)
    serial_s = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: explore_grid(grid, jobs=0, cache=cache), rounds=1, iterations=1
    )
    parallel_s = benchmark.stats.stats.min
    assert parallel.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    t0 = time.perf_counter()
    cached = explore_grid(grid, cache=cache)
    cached_s = time.perf_counter() - t0
    assert cached.data["evaluated"] == 0 and cached.data["cached"] == grid.size
    assert cached.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    cells = grid.size
    emit(
        out_dir,
        "explore_parallel_and_cached",
        (
            f"explore, N=544, {cells} cells: serial {cells / serial_s:,.1f} cells/s, "
            f"jobs=auto {cells / parallel_s:,.1f} cells/s "
            f"(speedup x{serial_s / parallel_s:.2f}), "
            f"cache replay {cells / cached_s:,.1f} cells/s"
        ),
        payload={
            "cells": cells,
            "serial_cells_per_second": cells / serial_s,
            "parallel_cells_per_second": cells / parallel_s,
            "parallel_speedup": serial_s / parallel_s,
            "cached_cells_per_second": cells / cached_s,
        },
    )
