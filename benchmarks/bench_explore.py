"""Performance — design-space exploration throughput (cells/second).

The exploration subsystem's value proposition is that a grid cell — one
full closed-form characterisation of a design (λ*, knee, binding
resource) — costs milliseconds, so design studies scale to thousands of
points.  This bench records the stacked engine's cells/s on a 500-cell
grid together with its speedup over the per-cell serial path *and* over
the recorded PR 4 baseline, so the perf trajectory is self-describing,
plus the fan-out and cache-hit replay rates of a 24-cell grid.
"""

import time

import pytest

from repro.experiments import explore_grid
from repro.experiments.explore import _cell_metrics
from repro.scenarios import AxisSpec, DesignGrid, get_scenario

from benchmarks.conftest import emit

#: cells/s recorded by this bench when the per-cell engine landed (PR 4),
#: before cross-cell stacking existed — the fixed reference every later
#: run reports its speedup against.
PR4_BASELINE_CELLS_PER_SECOND = 10.0


def study_grid() -> DesignGrid:
    """3 axes, 24 cells on the Table 1 N=544 organisation."""
    return DesignGrid(
        base=get_scenario("544"),
        axes=(
            AxisSpec("system.icn2.bandwidth", (250.0, 375.0, 500.0, 625.0)),
            AxisSpec("message.length_flits", (16, 32, 64)),
            AxisSpec("message.flit_bytes", (128.0, 256.0)),
        ),
    )


def large_grid() -> DesignGrid:
    """3 axes, 500 cells: the stacked engine's acceptance scale."""
    return DesignGrid(
        base=get_scenario("544"),
        axes=(
            AxisSpec(
                "system.icn2.bandwidth", tuple(250.0 + 31.25 * i for i in range(25))
            ),
            AxisSpec("message.length_flits", (16, 24, 32, 48)),
            AxisSpec("message.flit_bytes", (64.0, 128.0, 256.0, 512.0, 1024.0)),
        ),
    )


@pytest.mark.benchmark(group="performance")
def test_explore_cells_per_second(benchmark, out_dir):
    """Stacked cells/s on a 500-cell grid vs the per-cell serial path."""
    grid = large_grid()
    assert grid.size == 500

    # Per-cell serial reference: what one supervised worker does per
    # cell, timed over a 20-cell sample spread across the grid.
    sample = grid.cells()[:: grid.size // 20][:20]
    t0 = time.perf_counter()
    for cell in sample:
        _cell_metrics(cell.spec, 4.0)
    per_cell_rate = len(sample) / (time.perf_counter() - t0)

    result = benchmark.pedantic(lambda: explore_grid(grid), rounds=2, iterations=1)
    assert result.data["stacked"] is True
    cells = len(result.data["columns"]["cell"])
    assert cells == grid.size
    seconds = benchmark.stats.stats.min
    rate = cells / seconds
    speedup_per_cell = rate / per_cell_rate
    speedup_pr4 = rate / PR4_BASELINE_CELLS_PER_SECOND
    assert speedup_per_cell >= 50.0
    emit(
        out_dir,
        "explore_cells_per_second",
        (
            f"explore, N=544, {cells} cells (3 axes), stacked serial: "
            f"{seconds:.2f}s -> {rate:,.1f} cells/s "
            f"(x{speedup_per_cell:.1f} vs per-cell serial at "
            f"{per_cell_rate:,.1f} cells/s, "
            f"x{speedup_pr4:.1f} vs the PR 4 baseline of "
            f"{PR4_BASELINE_CELLS_PER_SECOND:,.1f} cells/s)"
        ),
        payload={
            "cells": cells,
            "seconds": seconds,
            "cells_per_second": rate,
            "per_cell_serial_cells_per_second": per_cell_rate,
            "speedup_vs_per_cell_serial": speedup_per_cell,
            "pr4_baseline_cells_per_second": PR4_BASELINE_CELLS_PER_SECOND,
            "speedup_vs_pr4_baseline": speedup_pr4,
        },
    )


@pytest.mark.benchmark(group="performance")
def test_explore_parallel_and_cached_replay(benchmark, out_dir, tmp_path_factory):
    """Stacked serial vs jobs=auto per-cell fan-out (same table
    bit-for-bit) and the cache-served replay rate of a warmed grid."""
    grid = study_grid()
    cache = tmp_path_factory.mktemp("explore-cache")

    t0 = time.perf_counter()
    serial = explore_grid(grid)
    serial_s = time.perf_counter() - t0
    assert serial.data["stacked"] is True

    parallel = benchmark.pedantic(
        lambda: explore_grid(grid, jobs=0, cache=cache), rounds=1, iterations=1
    )
    parallel_s = benchmark.stats.stats.min
    assert parallel.data["stacked"] is False
    assert parallel.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    t0 = time.perf_counter()
    cached = explore_grid(grid, cache=cache)
    cached_s = time.perf_counter() - t0
    assert cached.data["evaluated"] == 0 and cached.data["cache_hits"] == grid.size
    assert cached.data["columns"]["saturation_load"] == serial.data["columns"]["saturation_load"]

    cells = grid.size
    emit(
        out_dir,
        "explore_parallel_and_cached",
        (
            f"explore, N=544, {cells} cells: stacked serial {cells / serial_s:,.1f} cells/s, "
            f"per-cell jobs=auto {cells / parallel_s:,.1f} cells/s, "
            f"cache replay {cells / cached_s:,.1f} cells/s"
        ),
        payload={
            "cells": cells,
            "serial_cells_per_second": cells / serial_s,
            "parallel_cells_per_second": cells / parallel_s,
            "parallel_speedup": serial_s / parallel_s,
            "cached_cells_per_second": cells / cached_s,
        },
    )
