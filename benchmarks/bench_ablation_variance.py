"""Ablation — Eq. 17's service-time variance approximation.

The paper approximates source-queue service variance as (T − M·t_cn)²,
citing it as a known source of inaccuracy under heavy load (§4).  This
bench compares it with an exponential-service (σ² = T²) alternative against
the simulator.
"""

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_1120
from repro.core.sweep import find_saturation_load
from repro.simulation import MeasurementWindow

from benchmarks.conftest import SessionCache, bench_messages, emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_variance(benchmark, sessions: SessionCache, out_dir):
    system = paper_system_1120()
    message = MessageSpec(32, 256.0)
    paper_model = AnalyticalModel(system, message)
    expo_model = AnalyticalModel(system, message, ModelOptions(variance_approximation="exponential"))
    lam_star = find_saturation_load(paper_model)
    loads = [f * lam_star for f in (0.2, 0.5, 0.8)]

    benchmark(lambda: [paper_model.evaluate(lam) for lam in loads])

    window = MeasurementWindow.scaled_paper(max(4000, bench_messages() // 4))
    session = sessions.get(system, message)
    rows = []
    for lam in loads:
        paper_lat = paper_model.evaluate(lam).latency
        expo_lat = expo_model.evaluate(lam).latency
        sim = session.run(lam, seed=3, window=window).mean_latency
        rows.append([lam, paper_lat, expo_lat, sim, (paper_lat - sim) / sim, (expo_lat - sim) / sim])

    text = render_table(
        ["lambda_g", "Eq.17 var", "exponential var", "simulation", "err Eq.17", "err expo"],
        rows,
        title="Variance-approximation ablation, N=1120, M=32, Lm=256",
    )
    emit(out_dir, "ablation_variance", text, payload={"rows": rows})
