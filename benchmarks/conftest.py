"""Shared infrastructure for the benchmark/reproduction harness.

Every bench both *times* its computational core (pytest-benchmark) and
*regenerates* its paper artifact — printing the same rows/series the paper
charts and saving them under ``benchmarks/out/`` (text and JSON) so a run
leaves a reviewable record.

Environment knobs:

``REPRO_BENCH_MESSAGES``
    measured messages per simulation point (default 20 000; the paper used
    100 000 — set that for a full-fidelity run).
``REPRO_BENCH_POINTS``
    load-grid points per curve (default 8).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import MessageSpec, ModelOptions, SystemConfig
from repro.io import save_json
from repro.simulation import MeasurementWindow, SimulationSession

OUT_DIR = Path(__file__).parent / "out"


def bench_messages() -> int:
    return int(os.environ.get("REPRO_BENCH_MESSAGES", "20000"))


def bench_points() -> int:
    return int(os.environ.get("REPRO_BENCH_POINTS", "8"))


def bench_window() -> MeasurementWindow:
    return MeasurementWindow.scaled_paper(bench_messages())


class SessionCache:
    """One SimulationSession per (system, message, options) per bench run."""

    def __init__(self) -> None:
        self._sessions: dict = {}

    def get(self, system: SystemConfig, message: MessageSpec, options: ModelOptions | None = None) -> SimulationSession:
        key = (system, message, options)
        if key not in self._sessions:
            self._sessions[key] = SimulationSession(system, message, options=options)
        return self._sessions[key]


@pytest.fixture(scope="session")
def sessions() -> SessionCache:
    return SessionCache()


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str, payload=None) -> None:
    """Print a reproduction block and persist it under benchmarks/out/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    (out_dir / f"{name}.txt").write_text(text + "\n")
    if payload is not None:
        save_json(out_dir / f"{name}.json", payload)
