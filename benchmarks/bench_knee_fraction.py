"""Deviation quantification — where does the *simulated* knee sit?

EXPERIMENTS.md documents that our simulator's latency wall appears earlier
than the analytic saturation load λ* (wormhole trail-holding the model's
independence assumption ignores).  This bench measures the knee fraction
for both Table 1 systems so the deviation is tracked, not anecdotal.
"""

import pytest

from repro.analysis import estimate_sim_knee, render_table
from repro.cluster import paper_organizations
from repro.core import MessageSpec
from repro.simulation import MeasurementWindow

from benchmarks.conftest import SessionCache, bench_messages, emit

MESSAGE = MessageSpec(32, 256.0)


@pytest.mark.benchmark(group="claims")
def test_knee_fraction(benchmark, sessions: SessionCache, out_dir):
    window = MeasurementWindow.scaled_paper(max(4000, bench_messages() // 4))
    systems = paper_organizations()

    def estimate_first():
        return estimate_sim_knee(
            sessions.get(systems[1], MESSAGE),  # N=544 (cheaper)
            threshold_factor=4.0,
            window=window,
            seed=1,
            iterations=5,
        )

    benchmark.pedantic(estimate_first, rounds=1, iterations=1)

    rows = []
    for system in systems:
        estimate = estimate_sim_knee(
            sessions.get(system, MESSAGE),
            threshold_factor=4.0,
            window=window,
            seed=1,
            iterations=6,
        )
        rows.append(
            [system.name, estimate.model_saturation, estimate.sim_knee, estimate.knee_fraction]
        )
        # The knee must sit inside the physically meaningful band.
        assert 0.4 < estimate.knee_fraction <= 1.05

    text = render_table(
        ["system", "model λ*", "sim knee (4x L0)", "fraction"],
        rows,
        title="Simulated knee vs analytic saturation (M=32, Lm=256)",
    )
    text += (
        "\n\nThe gap is single-flit-buffer wormhole trail-holding inside the"
        "\nICN2 region (narrower trees gap more) — see EXPERIMENTS.md."
    )
    emit(out_dir, "knee_fraction", text, payload={"rows": rows})
