"""Analyses on top of the model/simulator: bottlenecks, what-if, tables."""

from repro.analysis.accuracy import (
    ACCURACY_METRICS,
    light_load_error,
    max_abs_error,
    relative_errors,
    rms_weighted,
    score_errors,
)
from repro.analysis.capacity import (
    CapacityPlan,
    headroom_report,
    max_load_for_latency,
    required_upgrade_factor,
)
from repro.analysis.frontier import (
    AxisSensitivity,
    axis_sensitivity,
    bandwidth_cost_proxy,
    pareto_frontier,
    pareto_frontier_cells,
)
from repro.analysis.knee import KneeEstimate, estimate_sim_knee
from repro.analysis.bottleneck import (
    BottleneckReport,
    ResourceUtilization,
    model_bottlenecks,
    sim_bottlenecks,
)
from repro.analysis.tables import render_curves, render_series, render_table
from repro.analysis.whatif import (
    WhatIfCurve,
    WhatIfStudy,
    curve_label,
    icn2_bandwidth_study,
    scale_network,
)

__all__ = [
    "ACCURACY_METRICS",
    "relative_errors",
    "max_abs_error",
    "light_load_error",
    "rms_weighted",
    "score_errors",
    "CapacityPlan",
    "max_load_for_latency",
    "required_upgrade_factor",
    "headroom_report",
    "AxisSensitivity",
    "axis_sensitivity",
    "bandwidth_cost_proxy",
    "pareto_frontier",
    "pareto_frontier_cells",
    "KneeEstimate",
    "estimate_sim_knee",
    "BottleneckReport",
    "ResourceUtilization",
    "model_bottlenecks",
    "sim_bottlenecks",
    "WhatIfCurve",
    "WhatIfStudy",
    "curve_label",
    "icn2_bandwidth_study",
    "scale_network",
    "render_table",
    "render_series",
    "render_curves",
]
