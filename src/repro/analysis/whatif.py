"""What-if studies on network provisioning (paper Fig. 7).

The paper's design-space demonstration increases the ICN2 bandwidth by
20 % and charts the latency improvement for both Table 1 systems.  This
module generalises that study to arbitrary scaling factors and any of the
three network roles, using the analytical model (as the paper does —
"The results of analysis ... are depicted in Fig. 7").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import require, require_positive
from repro.core.model import AnalyticalModel
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.core.sweep import find_saturation_load, sweep_load

__all__ = ["WhatIfCurve", "WhatIfStudy", "icn2_bandwidth_study", "scale_network"]


@dataclass(frozen=True)
class WhatIfCurve:
    """Model latency curve of one system variant."""

    label: str
    loads: np.ndarray
    latencies: np.ndarray
    saturation_load: float


@dataclass(frozen=True)
class WhatIfStudy:
    """A set of comparable what-if curves over a common load grid."""

    title: str
    curves: tuple[WhatIfCurve, ...]

    def saturation_gain(self, base_label: str, variant_label: str) -> float:
        """Ratio of saturation loads (variant / base) — the knee shift."""
        base = next(c for c in self.curves if c.label == base_label)
        variant = next(c for c in self.curves if c.label == variant_label)
        return variant.saturation_load / base.saturation_load


def scale_network(system: SystemConfig, role: str, factor: float) -> SystemConfig:
    """A copy of *system* with one network role's bandwidth scaled.

    ``role`` is ``"icn2"``, ``"icn1"`` or ``"ecn1"``; the latter two scale
    the corresponding network of every cluster.
    """
    require(role in ("icn2", "icn1", "ecn1"), f"unknown network role {role!r}")
    require_positive(factor, "factor")
    if role == "icn2":
        return system.with_icn2(
            system.icn2.scaled_bandwidth(factor),
            name=f"{system.name}+icn2x{factor:g}",
        )
    clusters = tuple(
        replace(
            spec,
            icn1=spec.icn1.scaled_bandwidth(factor) if role == "icn1" else spec.icn1,
            ecn1=spec.ecn1.scaled_bandwidth(factor) if role == "ecn1" else spec.ecn1,
        )
        for spec in system.clusters
    )
    return replace(system, clusters=clusters, name=f"{system.name}+{role}x{factor:g}")


def icn2_bandwidth_study(
    systems: tuple[SystemConfig, ...],
    message: MessageSpec,
    *,
    factor: float = 1.2,
    points: int = 12,
    grid_fraction: float = 0.9,
    options: ModelOptions | None = None,
) -> WhatIfStudy:
    """Paper Fig. 7: base vs +20 % ICN2 bandwidth for each system.

    All curves share a load grid derived from the *least* saturable base
    system so the figure is directly comparable across systems, exactly as
    the paper plots both systems on one axis.
    """
    require(len(systems) >= 1, "at least one system required")
    base_models = [AnalyticalModel(s, message, options) for s in systems]
    lam_min = min(find_saturation_load(m) for m in base_models)
    grid = np.linspace(grid_fraction * lam_min / points, grid_fraction * lam_min, points)

    curves: list[WhatIfCurve] = []
    for system in systems:
        for label_suffix, cfg in (
            ("base", system),
            (f"icn2 x{factor:g}", scale_network(system, "icn2", factor)),
        ):
            model = AnalyticalModel(cfg, message, options)
            sweep = sweep_load(model, grid)
            curves.append(
                WhatIfCurve(
                    label=f"N={system.total_nodes}, {label_suffix}",
                    loads=sweep.loads,
                    latencies=sweep.latencies,
                    saturation_load=find_saturation_load(model),
                )
            )
    return WhatIfStudy(title=f"ICN2 bandwidth study (M={message.length_flits}, d_m={message.flit_bytes:g})", curves=tuple(curves))
