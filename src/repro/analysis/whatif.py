"""What-if studies on network provisioning (paper Fig. 7).

The paper's design-space demonstration increases the ICN2 bandwidth by
20 % and charts the latency improvement for both Table 1 systems.  This
module generalises that study to arbitrary scaling factors and any of the
three network roles, using the analytical model (as the paper does —
"The results of analysis ... are depicted in Fig. 7").

Each system variant is evaluated through the batched engine
(:mod:`repro.core.batch`): one precompute per variant, one vectorised pass
over the shared load grid, and closed-form saturation loads — the study
no longer pays a bisection search per curve.

Curve labels embed the system *name* alongside its node count: two
distinct systems can easily share a total node count (e.g. a base system
and a rebalanced variant), and a bare ``N=...`` label would make them
indistinguishable — :meth:`WhatIfStudy.saturation_gain` refuses ambiguous
labels instead of silently picking the first match.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import require, require_positive
from repro.core.batch import BatchedModel
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig

__all__ = ["WhatIfCurve", "WhatIfStudy", "curve_label", "icn2_bandwidth_study", "scale_network"]


def curve_label(system: SystemConfig, suffix: str) -> str:
    """Canonical label of *system*'s curve with the given *suffix*.

    The single source of the label format, used by
    :func:`icn2_bandwidth_study` and by consumers that look curves up via
    :meth:`WhatIfStudy.saturation_gain` — so a format change cannot strand
    the lookups.
    """
    return f"{system.name}: N={system.total_nodes}, {suffix}"


@dataclass(frozen=True)
class WhatIfCurve:
    """Model latency curve of one system variant."""

    label: str
    loads: np.ndarray
    latencies: np.ndarray
    saturation_load: float


@dataclass(frozen=True)
class WhatIfStudy:
    """A set of comparable what-if curves over a common load grid."""

    title: str
    curves: tuple[WhatIfCurve, ...]

    def curve(self, label: str) -> WhatIfCurve:
        """The unique curve labelled *label*.

        Raises ``KeyError`` when no curve matches and ``ValueError`` when
        the label is ambiguous (several curves share it) — silently
        returning the first match would let a duplicate label misattribute
        a whole study.
        """
        matches = [c for c in self.curves if c.label == label]
        if not matches:
            raise KeyError(f"no curve labelled {label!r}")
        require(len(matches) == 1, f"ambiguous label {label!r}: {len(matches)} curves match")
        return matches[0]

    def saturation_gain(self, base_label: str, variant_label: str) -> float:
        """Ratio of saturation loads (variant / base) — the knee shift."""
        return self.curve(variant_label).saturation_load / self.curve(base_label).saturation_load


def scale_network(system: SystemConfig, role: str, factor: float) -> SystemConfig:
    """A copy of *system* with one network role's bandwidth scaled.

    ``role`` is ``"icn2"``, ``"icn1"`` or ``"ecn1"``; the latter two scale
    the corresponding network of every cluster.
    """
    require(role in ("icn2", "icn1", "ecn1"), f"unknown network role {role!r}")
    require_positive(factor, "factor")
    if role == "icn2":
        return system.with_icn2(
            system.icn2.scaled_bandwidth(factor),
            name=f"{system.name}+icn2x{factor:g}",
        )
    clusters = tuple(
        replace(
            spec,
            icn1=spec.icn1.scaled_bandwidth(factor) if role == "icn1" else spec.icn1,
            ecn1=spec.ecn1.scaled_bandwidth(factor) if role == "ecn1" else spec.ecn1,
        )
        for spec in system.clusters
    )
    return replace(system, clusters=clusters, name=f"{system.name}+{role}x{factor:g}")


def icn2_bandwidth_study(
    systems: tuple[SystemConfig, ...],
    message: MessageSpec,
    *,
    factor: float = 1.2,
    points: int = 12,
    grid_fraction: float = 0.9,
    options: ModelOptions | None = None,
) -> WhatIfStudy:
    """Paper Fig. 7: base vs +20 % ICN2 bandwidth for each system.

    All curves share a load grid derived from the *least* saturable base
    system so the figure is directly comparable across systems, exactly as
    the paper plots both systems on one axis.
    """
    require(len(systems) >= 1, "at least one system required")
    base_engines = [BatchedModel(s, message, options) for s in systems]
    lam_min = min(engine.saturation_load() for engine in base_engines)
    grid = np.linspace(grid_fraction * lam_min / points, grid_fraction * lam_min, points)

    curves: list[WhatIfCurve] = []
    for system, base_engine in zip(systems, base_engines):
        for label_suffix, engine in (
            ("base", base_engine),
            (
                f"icn2 x{factor:g}",
                BatchedModel(scale_network(system, "icn2", factor), message, options),
            ),
        ):
            sweep = engine.evaluate_many(grid, with_results=False)
            curves.append(
                WhatIfCurve(
                    label=curve_label(system, label_suffix),
                    loads=sweep.loads,
                    latencies=sweep.latencies,
                    saturation_load=engine.saturation_load(),
                )
            )
    return WhatIfStudy(title=f"ICN2 bandwidth study (M={message.length_flits}, d_m={message.flit_bytes:g})", curves=tuple(curves))
