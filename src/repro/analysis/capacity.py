"""Capacity planning on top of the analytical model.

Answers the questions a system designer actually asks of the paper's model
(§4's "help system designers explore the design space"):

* :func:`max_load_for_latency` — the largest per-node rate that keeps mean
  latency within a budget;
* :func:`required_upgrade_factor` — how much one network role must be
  scaled for the system to sustain a target load;
* :func:`headroom_report` — utilisation headroom of every modelled
  resource at the operating point.

All answers run on the batched engine (:mod:`repro.core.batch`): the
load-independent decomposition is built once per system variant, the
latency search refines a vectorised load grid instead of bisecting with
scalar evaluations, and saturation loads come from the per-resource closed
forms — so a full design-space sweep costs milliseconds per point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_positive
from repro.analysis.bottleneck import BottleneckReport, model_bottlenecks
from repro.analysis.whatif import scale_network
from repro.core.batch import BatchedModel, refine_monotone_crossing
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig

__all__ = ["CapacityPlan", "max_load_for_latency", "required_upgrade_factor", "headroom_report"]


@dataclass(frozen=True)
class CapacityPlan:
    """Answer to one planning query."""

    target: float
    achieved: float
    feasible: bool
    detail: str


def max_load_for_latency(
    system: SystemConfig,
    message: MessageSpec,
    latency_budget: float,
    *,
    options: ModelOptions | None = None,
    rel_tol: float = 1e-4,
    engine: BatchedModel | None = None,
) -> CapacityPlan:
    """Largest λ_g with mean latency ≤ *latency_budget* (batched grid refinement).

    The model's latency is strictly increasing in load, so the answer is
    unique; infeasible budgets (below the zero-load latency) are reported
    rather than raised.  Each refinement round evaluates one vectorised
    load grid and narrows the bracket to the cell containing the budget
    crossing.

    Pass an existing *engine* (built for the same system/message) to reuse
    its precompute and saturation cache instead of rebuilding them — this
    is also the only way to plan capacity under a non-uniform traffic
    pattern, since the pattern lives on the engine.
    """
    require_positive(latency_budget, "latency_budget")
    require_positive(rel_tol, "rel_tol")
    if engine is None:
        engine = BatchedModel(system, message, options)
    else:
        require(
            engine.system == system
            and engine.message == message
            and (options is None or engine.options == options),
            "engine was built for a different system/message/options than the plan requests",
        )
    zero = engine.zero_load_latency()
    if latency_budget < zero:
        return CapacityPlan(
            target=latency_budget,
            achieved=0.0,
            feasible=False,
            detail=f"budget {latency_budget:g} below zero-load latency {zero:.2f}",
        )
    lam_star = engine.saturation_load()
    lo, hi = 0.0, lam_star * 0.9999
    hi_latency = float(engine.evaluate_many(np.array([hi]), with_results=False).latencies[0])
    if np.isfinite(hi_latency) and hi_latency <= latency_budget:
        return CapacityPlan(
            target=latency_budget,
            achieved=hi,
            feasible=True,
            detail="budget met arbitrarily close to the saturation load",
        )
    def beyond_budget(grid: np.ndarray) -> np.ndarray:
        latencies = engine.evaluate_many(grid, with_results=False).latencies
        return ~(np.isfinite(latencies) & (latencies <= latency_budget))

    # Monotone latency ⇒ "beyond budget" flips exactly once in (lo, hi]:
    # lo = 0 is within (budget >= zero-load latency) and hi busts it.
    lo, hi = refine_monotone_crossing(lo, hi, beyond_budget, rel_tol=rel_tol)
    return CapacityPlan(
        target=latency_budget,
        achieved=lo,
        feasible=True,
        detail=f"λ_max = {lo:.4e} ({lo / lam_star:.0%} of saturation)",
    )


def required_upgrade_factor(
    system: SystemConfig,
    message: MessageSpec,
    role: str,
    target_load: float,
    *,
    options: ModelOptions | None = None,
    max_factor: float = 16.0,
    rel_tol: float = 1e-3,
) -> CapacityPlan:
    """Smallest bandwidth factor on *role* giving ``λ* >= target_load``.

    Saturation load is monotone non-decreasing in any network's bandwidth,
    so bisection applies; roles that cannot reach the target within
    *max_factor* (they are not the binding resource) are reported
    infeasible.  Every probed factor's saturation load is computed once
    (closed form, via the batched engine) and cached — the reported
    ``detail`` strings reuse the cached knees instead of re-running the
    search.
    """
    require_positive(target_load, "target_load")
    require(max_factor > 1.0, "max_factor must exceed 1")

    knees: dict[float, float] = {}

    def knee(factor: float) -> float:
        if factor not in knees:
            cfg = system if factor == 1.0 else scale_network(system, role, factor)
            knees[factor] = BatchedModel(cfg, message, options).saturation_load()
        return knees[factor]

    base = knee(1.0)
    if base >= target_load:
        return CapacityPlan(target=target_load, achieved=1.0, feasible=True, detail="no upgrade needed")
    ceiling = knee(max_factor)
    if ceiling < target_load:
        return CapacityPlan(
            target=target_load,
            achieved=float("inf"),
            feasible=False,
            detail=f"{role} is not the binding resource: x{max_factor:g} still saturates at "
            f"{ceiling:.3e} < {target_load:.3e}",
        )
    lo, hi = 1.0, max_factor
    while hi - lo > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if knee(mid) >= target_load:
            hi = mid
        else:
            lo = mid
    return CapacityPlan(
        target=target_load,
        achieved=hi,
        feasible=True,
        detail=f"{role} bandwidth x{hi:.3f} reaches λ* = {knee(hi):.3e}",
    )


def headroom_report(
    system: SystemConfig,
    message: MessageSpec,
    operating_load: float,
    *,
    options: ModelOptions | None = None,
    pattern=None,
    engine: BatchedModel | None = None,
) -> BottleneckReport:
    """Ranked utilisations at the operating point (thin bottleneck wrapper).

    A non-uniform *pattern* (see :mod:`repro.workloads.patterns`) ranks the
    pattern-aware utilisations — without it a hotspot operating point would
    silently be ranked as uniform traffic.  Pass an existing *engine* to
    reuse its precompute instead; its pattern must match when both are
    given.
    """
    if engine is None:
        if pattern is not None:
            engine = BatchedModel(system, message, options, pattern)
    else:
        require(
            pattern is None or engine.pattern == pattern,
            "engine was built with a different traffic pattern than the report requests",
        )
    return model_bottlenecks(system, message, operating_load, options=options, engine=engine)
