"""Pareto frontiers and sensitivity ranking over design-grid results.

The paper positions the analytical model as a design-space exploration
tool; once :func:`repro.experiments.explore_grid` has evaluated a grid,
this module answers the two questions a designer asks of the resulting
table:

* **which designs are worth considering?** — :func:`pareto_frontier`
  extracts the cells not (weakly) dominated on a cost/benefit pair,
  by default provisioning cost (:func:`bandwidth_cost_proxy`, minimised)
  against saturation load λ* (maximised);
* **which knob matters most?** — :func:`axis_sensitivity` ranks the grid's
  axes by how strongly a metric responds to each, measured as the mean
  relative spread of the metric across groups of cells that differ *only*
  along that axis (a one-factor-at-a-time ranking the full factorial grid
  supports exactly).

Everything here is plain arithmetic over the exploration table — no model
evaluations — so frontier/sensitivity views are free to recompute under
different cost assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require
from repro.core.parameters import SystemConfig

__all__ = [
    "AxisSensitivity",
    "axis_sensitivity",
    "bandwidth_cost_proxy",
    "pareto_frontier",
    "pareto_frontier_cells",
]


def bandwidth_cost_proxy(system: SystemConfig) -> float:
    """Relative provisioning cost of *system*'s interconnect (bytes/time).

    A deliberately simple, documented proxy — total provisioned link
    bandwidth, weighted by link count:

    * each cluster's ICN1 is an m-port n-tree over ``N_i`` nodes, which
      has ``n_i`` switch levels of ``N_i`` links each → ``N_i · n_i``
      links of ``icn1.bandwidth``;
    * each cluster's ECN1 contributes its ``N_i`` injection links of
      ``ecn1.bandwidth``;
    * the ICN2 is an m-port ``n_c``-tree over the ``C`` concentrators →
      ``C · n_c`` links of ``icn2.bandwidth``.

    Units are bandwidth units (bytes per time-unit); only *ratios* between
    designs are meaningful.  Swap in a real cost model by recomputing the
    frontier from the exploration table with your own ``x`` values.
    """
    m = system.switch_ports
    cost = 0.0
    for spec in system.clusters:
        nodes = spec.nodes(m)
        cost += nodes * spec.tree_depth * spec.icn1.bandwidth
        cost += nodes * spec.ecn1.bandwidth
    cost += system.num_clusters * system.icn2_tree_depth * system.icn2.bandwidth
    return cost


def pareto_frontier(
    xs,
    ys,
    *,
    minimize_x: bool = True,
    maximize_y: bool = True,
) -> tuple[int, ...]:
    """Indices of the Pareto-efficient ``(x, y)`` points.

    A point is on the frontier iff no other point is at least as good on
    both objectives and strictly better on one (weak dominance); exact
    duplicates of a frontier point are kept, so equally-priced
    equally-performing designs all surface.  Indices are returned sorted
    by ``x`` in the preferred direction (ascending when minimising), with
    the original input order breaking ties — deterministic for any input
    permutation of distinct points.
    """
    xs = list(xs)
    ys = list(ys)
    require(len(xs) == len(ys), f"xs and ys must have equal length, got {len(xs)} != {len(ys)}")
    for name, values in (("x", xs), ("y", ys)):
        for v in values:
            require(v == v, f"{name} values must not contain NaN (drop those cells first)")
    sx = [v if minimize_x else -v for v in xs]
    sy = [v if maximize_y else -v for v in ys]
    order = sorted(range(len(sx)), key=lambda i: (sx[i], -sy[i], i))
    frontier: list[int] = []
    best_y = float("-inf")
    best_x = float("nan")
    for i in order:
        if sy[i] > best_y or (sy[i] == best_y and sx[i] == best_x):
            frontier.append(i)
            best_y, best_x = sy[i], sx[i]
    return tuple(frontier)


def pareto_frontier_cells(
    cells,
    *,
    x: str = "cost_proxy",
    y: str = "saturation_load",
    minimize_x: bool = True,
    maximize_y: bool = True,
) -> tuple[int, ...]:
    """:func:`pareto_frontier` over exploration cell records.

    *cells* are the ``data["cells"]`` records of an ``explore`` result
    (each carries a ``metrics`` mapping); *x* and *y* name metrics.
    """
    xs = [_metric(cell, x) for cell in cells]
    ys = [_metric(cell, y) for cell in cells]
    return pareto_frontier(xs, ys, minimize_x=minimize_x, maximize_y=maximize_y)


@dataclass(frozen=True)
class AxisSensitivity:
    """How strongly one grid axis moves a metric.

    spread:
        mean, over all groups of cells identical on every *other* axis, of
        the group's relative metric spread ``(max - min) / mean`` — 0 when
        the axis does not move the metric at all.
    groups:
        number of such groups (the grid size divided by the axis length).
    """

    path: str
    spread: float
    groups: int


def axis_sensitivity(cells, *, metric: str = "saturation_load") -> tuple[AxisSensitivity, ...]:
    """Rank a full-factorial grid's axes by their effect on *metric*.

    For each axis, cells are grouped by their coordinates on the remaining
    axes; within a group only the chosen axis varies, so the group's
    relative spread isolates that axis's effect.  Axes are returned most
    influential first (ties broken by path for determinism).  Cells whose
    *metric* is NaN (e.g. ``lambda_at_budget`` without a budget) are
    excluded from their groups.
    """
    cells = list(cells)
    require(len(cells) > 0, "axis_sensitivity needs at least one cell")
    paths = list(cells[0]["coords"].keys())
    out = []
    for path in paths:
        groups: dict[tuple, list[float]] = {}
        for cell in cells:
            value = _metric(cell, metric)
            if value != value:  # NaN
                continue
            key = tuple(
                (other, _freeze(cell["coords"][other])) for other in paths if other != path
            )
            groups.setdefault(key, []).append(value)
        spreads = []
        for values in groups.values():
            if len(values) < 2:
                continue
            mean = sum(values) / len(values)
            denom = abs(mean)
            spreads.append((max(values) - min(values)) / denom if denom > 0 else 0.0)
        spread = sum(spreads) / len(spreads) if spreads else 0.0
        out.append(AxisSensitivity(path=path, spread=spread, groups=len(groups)))
    return tuple(sorted(out, key=lambda s: (-s.spread, s.path)))


def _metric(cell, name: str) -> float:
    metrics = cell["metrics"]
    require(name in metrics, f"unknown metric {name!r}; available: {sorted(metrics)}")
    value = metrics[name]
    require(isinstance(value, (int, float)), f"metric {name!r} is not numeric: {value!r}")
    return float(value)


def _freeze(value):
    """Hashable form of one coordinate value (axis values may be lists)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value
