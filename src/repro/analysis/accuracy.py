"""Accuracy metrics for model-vs-simulation curves.

The paper's validation methodology (§4) compares the analytical model to
discrete-event simulation point by point across a load grid; this module
collects the scalar scores the library derives from such a curve, so the
validation harness (:mod:`repro.validation.compare`) and the calibration
engine (:mod:`repro.experiments.calibrate`) rank readings with the exact
same arithmetic.

All metrics operate on *relative errors* ``(model − sim) / sim`` (negative
when the model is optimistic, matching
:attr:`repro.validation.compare.ValidationPoint.relative_error`):

``max_abs_error``
    the largest ``|error|`` over the grid — the paper's "differs by about
    4 to 8 percent" headline is this number at light loads;
``light_load_error``
    ``|error|`` at the *lightest* load of the grid, where the paper states
    its accuracy claim;
``rms_weighted``
    a **load-weighted RMS**, ``sqrt(Σ λ_i e_i² / Σ λ_i)`` — one smooth
    score over the whole curve that counts heavy-load tracking more than
    the near-idle points (where every reading is easy), without letting a
    single point dominate the way ``max`` does.

Non-finite handling: a saturated model point has no finite latency, so its
relative error is NaN.  Under the default ``nonfinite="propagate"`` policy
a curve containing such a point scores ``inf`` — a reading that saturates
*inside* the scoring grid cannot track the simulator there and must rank
behind every reading that stays finite.  ``nonfinite="skip"`` reproduces
the historical :meth:`ValidationCurve.max_abs_error` behaviour (ignore the
bad points), kept for reporting on curves that intentionally cross the
knee.
"""

from __future__ import annotations

import numpy as np

from repro._util import require

__all__ = [
    "ACCURACY_METRICS",
    "light_load_error",
    "max_abs_error",
    "relative_errors",
    "rms_weighted",
    "score_errors",
]

#: Metric names accepted by :func:`score_errors` (and the CLI's --metric).
ACCURACY_METRICS = ("max_abs_error", "light_load_error", "rms_weighted")

_POLICIES = ("propagate", "skip")


def _as_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    require(arr.ndim == 1 and arr.size > 0, f"{name} must be a non-empty 1-D sequence")
    return arr


def relative_errors(model_latencies, sim_latencies) -> np.ndarray:
    """Per-point relative errors ``(model − sim) / sim``.

    NaN where the model latency is non-finite (a saturated point) or the
    simulated latency is zero — exactly the cases
    :attr:`~repro.validation.compare.ValidationPoint.relative_error`
    maps to NaN.
    """
    model = _as_array(model_latencies, "model_latencies")
    sim = _as_array(sim_latencies, "sim_latencies")
    require(model.shape == sim.shape, f"model and sim lengths differ: {model.size} != {sim.size}")
    errors = np.full(model.shape, np.nan)
    ok = np.isfinite(model) & (sim != 0)
    # Plain IEEE-754 double arithmetic, identical to the scalar expression
    # (model - sim) / sim the validation points compute one at a time.
    errors[ok] = (model[ok] - sim[ok]) / sim[ok]
    return errors


def max_abs_error(errors, *, nonfinite: str = "propagate") -> float:
    """Largest ``|relative error|`` over the curve.

    ``nonfinite="propagate"`` (default) returns ``inf`` when any error is
    non-finite; ``"skip"`` ignores those points (NaN when none are finite).
    """
    require(nonfinite in _POLICIES, f"nonfinite must be one of {_POLICIES}, got {nonfinite!r}")
    errors = _as_array(errors, "errors")
    finite = np.isfinite(errors)
    if not finite.all() and nonfinite == "propagate":
        return float("inf")
    if not finite.any():
        return float("nan")
    return float(np.max(np.abs(errors[finite])))


def light_load_error(loads, errors) -> float:
    """``|relative error|`` at the lightest load of the grid.

    ``inf`` when that point's error is non-finite (the reading saturates
    before the lightest scored load — hopeless, rank it last).
    """
    loads = _as_array(loads, "loads")
    errors = _as_array(errors, "errors")
    require(loads.shape == errors.shape, f"loads and errors lengths differ: {loads.size} != {errors.size}")
    value = errors[int(np.argmin(loads))]
    return float(abs(value)) if np.isfinite(value) else float("inf")


def rms_weighted(loads, errors, *, nonfinite: str = "propagate") -> float:
    """Load-weighted RMS error ``sqrt(Σ λ_i e_i² / Σ λ_i)``.

    Weighting by the load counts each point proportionally to the traffic
    it represents: the heavy-load points — where the readings genuinely
    disagree — dominate, and near-idle points (trivially accurate for any
    reading) cannot mask a bad mid-load fit.  Policy as in
    :func:`max_abs_error`.
    """
    require(nonfinite in _POLICIES, f"nonfinite must be one of {_POLICIES}, got {nonfinite!r}")
    loads = _as_array(loads, "loads")
    errors = _as_array(errors, "errors")
    require(loads.shape == errors.shape, f"loads and errors lengths differ: {loads.size} != {errors.size}")
    require(bool(np.all(loads > 0)), "loads must be positive (weights are the loads themselves)")
    finite = np.isfinite(errors)
    if not finite.all() and nonfinite == "propagate":
        return float("inf")
    if not finite.any():
        return float("nan")
    w = loads[finite]
    e = errors[finite]
    return float(np.sqrt(np.sum(w * e * e) / np.sum(w)))


def score_errors(loads, errors) -> dict:
    """All :data:`ACCURACY_METRICS` of one error curve (propagate policy)."""
    return {
        "max_abs_error": max_abs_error(errors),
        "light_load_error": light_load_error(loads, errors),
        "rms_weighted": rms_weighted(loads, errors),
    }
