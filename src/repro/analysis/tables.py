"""Plain-text table and series rendering for benches and examples.

The benchmark harness "plots" every figure as aligned text series — the
same rows the paper charts — so results are diffable and reviewable
without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro._util import format_float, require

__all__ = ["render_table", "render_series", "render_curves"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Fixed-width table with a header rule; cells formatted compactly."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        require(len(row) == len(headers), "row width must match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, x_values, columns: dict[str, Sequence[float]]) -> str:
    """One x column plus any number of named y columns."""
    headers = [x_label, *columns.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *[col[i] for col in columns.values()]])
    return render_table(headers, rows, title=title)


def render_curves(title: str, curves: Iterable[tuple[str, Sequence[float], Sequence[float]]]) -> str:
    """Multiple (label, x, y) curves stacked as one table per curve."""
    parts = [title]
    for label, xs, ys in curves:
        parts.append(render_series(f"-- {label}", "load", xs, {"latency": list(ys)}))
    return "\n\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)
