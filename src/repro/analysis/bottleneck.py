"""Bottleneck identification (paper §4: "the inter-cluster networks,
especially ICN2, are the bottlenecks of the system").

Two complementary views:

* the **model view** enumerates every M/G/1 queue's utilisation and every
  network's channel rate at a given load, ranks them, and names the
  resource whose utilisation first reaches 1 as λ_g grows;
* the **simulator view** uses measured per-group channel utilisations from
  a run.

The audit bench cross-checks the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.concentrator import concentrator_pair_wait
from repro.core.inter import inter_pair_latency
from repro.core.intra import intra_cluster_latency
from repro.core.model import AnalyticalModel
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.core.sweep import find_saturation_load
from repro.simulation.runner import SimulationResult

__all__ = ["ResourceUtilization", "BottleneckReport", "model_bottlenecks", "sim_bottlenecks"]


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilisation of one modelled resource at one load."""

    resource: str
    utilization: float
    kind: str  # "source-queue" | "concentrator" | "channel"


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked resource utilisations plus the binding resource."""

    load: float
    resources: tuple[ResourceUtilization, ...]
    binding: ResourceUtilization
    saturation_load: float

    def top(self, count: int = 5) -> tuple[ResourceUtilization, ...]:
        return self.resources[:count]


def model_bottlenecks(
    system: SystemConfig,
    message: MessageSpec,
    load: float,
    *,
    options: ModelOptions | None = None,
) -> BottleneckReport:
    """Enumerate and rank every modelled queue/channel utilisation at *load*."""
    options = options or ModelOptions()
    model = AnalyticalModel(system, message, options)
    classes = model.cluster_classes
    resources: list[ResourceUtilization] = []
    m_flits = message.length_flits
    for i, src in enumerate(classes):
        intra = intra_cluster_latency(
            src,
            switch_ports=system.switch_ports,
            generation_rate=load,
            message=message,
            options=options,
        )
        resources.append(
            ResourceUtilization(f"{src.name}:icn1-source-queue", intra.source_utilization, "source-queue")
        )
        resources.append(
            ResourceUtilization(
                f"{src.name}:icn1-channels",
                intra.channel_rate * m_flits * _tcs(src.icn1, message, options),
                "channel",
            )
        )
        if system.num_clusters == 1:
            continue
        for dst in classes:
            pair = inter_pair_latency(
                src,
                dst,
                switch_ports=system.switch_ports,
                icn2=system.icn2,
                icn2_tree_depth=system.icn2_tree_depth,
                generation_rate=load,
                message=message,
                options=options,
            )
            conc = concentrator_pair_wait(
                src,
                dst,
                icn2=system.icn2,
                generation_rate=load,
                message=message,
                options=options,
            )
            pair_name = f"{src.name}->{dst.name}"
            resources.append(
                ResourceUtilization(f"{pair_name}:ecn1-source-queue", pair.source_utilization, "source-queue")
            )
            resources.append(ResourceUtilization(f"{pair_name}:concentrator", conc.utilization, "concentrator"))
            resources.append(
                ResourceUtilization(
                    f"{pair_name}:ecn1-channels",
                    pair.ecn1_channel_rate * m_flits * _tcs(src.ecn1, message, options),
                    "channel",
                )
            )
            resources.append(
                ResourceUtilization(
                    f"{pair_name}:icn2-channels",
                    pair.icn2_channel_rate * m_flits * _tcs(system.icn2, message, options),
                    "channel",
                )
            )
    ranked = tuple(sorted(resources, key=lambda r: r.utilization, reverse=True))
    return BottleneckReport(
        load=load,
        resources=ranked,
        binding=ranked[0],
        saturation_load=find_saturation_load(model),
    )


def _tcs(network, message, options):
    from repro.core.service_times import switch_channel_time

    del options  # t_cs has no convention ambiguity
    return switch_channel_time(network, message.flit_bytes)


def sim_bottlenecks(result: SimulationResult) -> tuple[ResourceUtilization, ...]:
    """Rank the simulator's measured per-group channel utilisations."""
    ranked = sorted(result.network_utilization.items(), key=lambda kv: kv[1], reverse=True)
    return tuple(ResourceUtilization(name, value, "channel") for name, value in ranked)
