"""Bottleneck identification (paper §4: "the inter-cluster networks,
especially ICN2, are the bottlenecks of the system").

Two complementary views:

* the **model view** enumerates every M/G/1 queue's utilisation and every
  network's channel rate at a given load, ranks them, and names the
  resource whose utilisation first reaches 1 as λ_g grows;
* the **simulator view** uses measured per-group channel utilisations from
  a run.

The audit bench cross-checks the two.

The model view runs on the batched engine
(:meth:`repro.core.batch.BatchedModel.resource_utilizations`), which shares
the precomputed decomposition with sweeps and saturation searches instead
of re-deriving every pair's rates from scratch; the attached saturation
load is the engine's exact per-resource minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.batch import BatchedModel
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.simulation.runner import SimulationResult

__all__ = ["ResourceUtilization", "BottleneckReport", "model_bottlenecks", "sim_bottlenecks"]


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilisation of one modelled resource at one load."""

    resource: str
    utilization: float
    kind: str  # "source-queue" | "concentrator" | "channel"


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked resource utilisations plus the binding resource."""

    load: float
    resources: tuple[ResourceUtilization, ...]
    binding: ResourceUtilization
    saturation_load: float

    def top(self, count: int = 5) -> tuple[ResourceUtilization, ...]:
        return self.resources[:count]


def model_bottlenecks(
    system: SystemConfig,
    message: MessageSpec,
    load: float,
    *,
    options: ModelOptions | None = None,
    engine: BatchedModel | None = None,
) -> BottleneckReport:
    """Enumerate and rank every modelled queue/channel utilisation at *load*.

    Pass an existing *engine* (built for the same system/message) to reuse
    its precompute and saturation cache instead of rebuilding them; leave
    *options* as ``None`` to adopt the engine's own options, or pass them
    explicitly to have the match checked.  An engine carrying a non-uniform
    traffic pattern is accepted — the report then ranks the pattern-aware
    utilisations.
    """
    if engine is None:
        engine = BatchedModel(system, message, options)
    else:
        require(
            engine.system == system
            and engine.message == message
            and (options is None or engine.options == options),
            "engine was built for a different system/message/options than the report requests",
        )
    entries = engine.resource_utilizations(np.array([load], dtype=np.float64))
    resources = [
        ResourceUtilization(entry.resource, float(entry.utilization[0]), entry.kind)
        for entry in entries
    ]
    ranked = tuple(sorted(resources, key=lambda r: r.utilization, reverse=True))
    return BottleneckReport(
        load=load,
        resources=ranked,
        binding=ranked[0],
        saturation_load=engine.saturation_load(),
    )


def sim_bottlenecks(result: SimulationResult) -> tuple[ResourceUtilization, ...]:
    """Rank the simulator's measured per-group channel utilisations."""
    ranked = sorted(result.network_utilization.items(), key=lambda kv: kv[1], reverse=True)
    return tuple(ResourceUtilization(name, value, "channel") for name, value in ranked)
