"""Empirical saturation-knee estimation from simulation runs.

The analytical model has a crisp saturation load (an M/G/1 pole); the
simulator's latency instead *grows without bound* past some load.  This
module estimates where: the smallest load at which the simulated mean
latency exceeds a multiple of the zero-load latency — the operational
definition of the knee a practitioner reads off the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require, require_positive
from repro.core.batch import BatchedModel
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.runner import SimulationSession

__all__ = ["KneeEstimate", "estimate_sim_knee"]


@dataclass(frozen=True)
class KneeEstimate:
    """Simulated knee location relative to the model's saturation load."""

    sim_knee: float
    model_saturation: float
    threshold_factor: float
    probes: tuple[tuple[float, float], ...]  # (load, sim latency)

    @property
    def knee_fraction(self) -> float:
        """Simulated knee as a fraction of the analytic saturation load."""
        return self.sim_knee / self.model_saturation


def estimate_sim_knee(
    session: SimulationSession,
    *,
    threshold_factor: float = 4.0,
    window: MeasurementWindow | None = None,
    seed: int = 0,
    iterations: int = 7,
    pattern=None,
    **run_kwargs,
) -> KneeEstimate:
    """Bisect for the load where sim latency crosses ``factor × L(0)``.

    Brackets inside ``(0, λ*_model × 1.2]``; each probe is one simulation
    run, so the default seven iterations cost seven runs.  A non-uniform
    *pattern* shapes both the analytic reference (``λ*``, ``L(0)``) and the
    simulated destination sampling.
    """
    require_positive(threshold_factor, "threshold_factor")
    require(threshold_factor > 1.0, "threshold_factor must exceed 1")
    engine = BatchedModel(session.system_config, session.message, session.options, pattern)
    lam_star = engine.saturation_load()
    threshold = threshold_factor * engine.zero_load_latency()
    window = window or MeasurementWindow.scaled_paper(5_000)

    probes: list[tuple[float, float]] = []

    def latency_at(load: float) -> float:
        result = session.run(load, seed=seed, window=window, pattern=pattern, **run_kwargs)
        probes.append((load, result.mean_latency))
        return result.mean_latency

    lo, hi = 0.0, 1.2 * lam_star
    if latency_at(hi) < threshold:
        return KneeEstimate(
            sim_knee=hi, model_saturation=lam_star, threshold_factor=threshold_factor, probes=tuple(probes)
        )
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if latency_at(mid) >= threshold:
            hi = mid
        else:
            lo = mid
    return KneeEstimate(
        sim_knee=hi,
        model_saturation=lam_star,
        threshold_factor=threshold_factor,
        probes=tuple(probes),
    )
