"""Traffic patterns: the paper's uniform baseline and non-uniform extensions.

The paper assumes uniform destinations (assumption 2) and names non-uniform
traffic as future work (§5).  Every pattern here implements **both** the
model-facing protocol (:class:`repro.core.model.TrafficPatternLike` —
per-cluster outgoing probability and destination-cluster weights) and the
simulator-facing protocol (:class:`repro.simulation.traffic.
SimTrafficPattern` — destination sampling), so the same object drives a
model evaluation and its validating simulation.
"""

from __future__ import annotations

import numpy as np

from repro._util import require
from repro.cluster.system import HeterogeneousSystem
from repro.core.parameters import SystemConfig

__all__ = ["UniformTraffic", "LocalityTraffic", "HotspotTraffic"]


class UniformTraffic:
    """Paper assumption 2: destinations uniform over all other nodes.

    Equivalent to passing ``pattern=None`` to the model; provided explicitly
    so the pattern plumbing itself can be validated against the closed form.
    """

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        """Eq. 2 recovered from first principles."""
        return system.outgoing_probability(cluster_index)

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        """P(destination cluster = j | inter) ∝ N_j for j ≠ i."""
        sizes = system.cluster_sizes
        return [0.0 if j == cluster_index else float(sizes[j]) for j in range(system.num_clusters)]

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        draw = int(rng.integers(0, system.total_nodes - 1))
        return draw + 1 if draw >= source else draw


class LocalityTraffic:
    """Tunable locality: a message stays in its cluster with probability *p*.

    ``locality=0`` sends everything outward; under ``locality`` equal to the
    uniform value ``1 - U_i`` this degenerates to (a cluster-wise
    approximation of) the paper's baseline.  Destinations are uniform within
    the chosen scope.
    """

    def __init__(self, locality: float) -> None:
        require(0.0 <= locality <= 1.0, f"locality must be in [0, 1], got {locality}")
        self.locality = locality

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        if system.cluster_sizes[cluster_index] <= 1:
            return 1.0 if system.num_clusters > 1 else 0.0
        return 1.0 - self.locality

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        sizes = system.cluster_sizes
        return [0.0 if j == cluster_index else float(sizes[j]) for j in range(system.num_clusters)]

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        cluster = system.cluster_of(source)
        stay = cluster.num_nodes > 1 and float(rng.random()) < self.locality
        if stay:
            lo = cluster.first_global_id
            draw = lo + int(rng.integers(0, cluster.num_nodes - 1))
            return draw + 1 if draw >= source else draw
        outside = system.total_nodes - cluster.num_nodes
        if outside == 0:  # single-cluster system: fall back to intra
            draw = int(rng.integers(0, system.total_nodes - 1))
            return draw + 1 if draw >= source else draw
        draw = int(rng.integers(0, outside))
        if draw >= cluster.first_global_id:
            draw += cluster.num_nodes
        return draw


class HotspotTraffic:
    """A fraction of all traffic targets one *hot* cluster.

    With probability ``hot_fraction`` the destination is uniform inside the
    hot cluster; otherwise it is uniform over all other nodes (the paper's
    baseline).  Models the "popular file server cluster" scenario that
    motivates non-uniform analysis.
    """

    def __init__(self, hot_cluster: int, hot_fraction: float) -> None:
        require(0.0 <= hot_fraction <= 1.0, f"hot_fraction must be in [0, 1], got {hot_fraction}")
        require(hot_cluster >= 0, "hot_cluster must be a valid cluster index")
        self.hot_cluster = hot_cluster
        self.hot_fraction = hot_fraction

    def _check(self, system: SystemConfig) -> None:
        require(self.hot_cluster < system.num_clusters, f"hot_cluster {self.hot_cluster} out of range for C={system.num_clusters}")

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        self._check(system)
        h = self.hot_fraction
        uniform_u = system.outgoing_probability(cluster_index)
        if cluster_index == self.hot_cluster:
            # Hot-directed traffic from inside the hot cluster stays local.
            return (1.0 - h) * uniform_u
        return h + (1.0 - h) * uniform_u

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        self._check(system)
        sizes = system.cluster_sizes
        n_total = system.total_nodes
        h = self.hot_fraction
        weights = []
        for j in range(system.num_clusters):
            if j == cluster_index:
                weights.append(0.0)
                continue
            base = (1.0 - h) * sizes[j] / (n_total - 1)
            if j == self.hot_cluster:
                base += h
            weights.append(base)
        return weights

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        self._check(system.config)
        hot = system.clusters[self.hot_cluster]
        if float(rng.random()) < self.hot_fraction:
            inside = hot.contains_global(source)
            pool = hot.num_nodes - (1 if inside else 0)
            if pool > 0:
                draw = hot.first_global_id + int(rng.integers(0, pool))
                if inside and draw >= source:
                    draw += 1
                return draw
        draw = int(rng.integers(0, system.total_nodes - 1))
        return draw + 1 if draw >= source else draw
