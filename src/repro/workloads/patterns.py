"""Traffic patterns: the paper's uniform baseline and non-uniform extensions.

The paper assumes uniform destinations (assumption 2) and names non-uniform
traffic as future work (§5).  Every pattern here implements **both** the
model-facing protocol (:class:`repro.core.model.TrafficPatternLike` —
per-cluster outgoing probability and destination-cluster weights) and the
simulator-facing protocol (:class:`repro.simulation.traffic.
SimTrafficPattern` — destination sampling), so the same object drives a
model evaluation and its validating simulation.

Registry
--------
Patterns register themselves under a short name with their constructor
parameters exposed as a plain dict, so a pattern serialises to
``{"name": ..., "params": {...}}`` and scenario configs (see
:mod:`repro.scenarios`) round-trip through JSON.  Third-party patterns
join the registry with :func:`register_pattern`.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro._util import reject_unknown_keys, require, require_int
from repro.cluster.system import HeterogeneousSystem
from repro.core.parameters import SystemConfig

__all__ = [
    "UniformTraffic",
    "LocalityTraffic",
    "HotspotTraffic",
    "RegisteredPattern",
    "register_pattern",
    "pattern_names",
    "make_pattern",
    "pattern_to_dict",
    "pattern_from_dict",
]

_PATTERN_REGISTRY: dict[str, type] = {}


def register_pattern(cls: type) -> type:
    """Class decorator: register *cls* under its ``pattern_name``.

    The class must define ``pattern_name`` (a short identifier) and a
    ``pattern_params()`` method whose dict, splatted back into the
    constructor, rebuilds an equal pattern — that contract is what makes
    :func:`pattern_to_dict`/:func:`pattern_from_dict` a true round-trip.
    """
    name = getattr(cls, "pattern_name", None)
    require(isinstance(name, str) and name != "", f"{cls.__name__} must define a non-empty pattern_name")
    require(name not in _PATTERN_REGISTRY, f"pattern name {name!r} already registered")
    _PATTERN_REGISTRY[name] = cls
    return cls


def pattern_names() -> tuple[str, ...]:
    """Registered pattern names, sorted."""
    return tuple(sorted(_PATTERN_REGISTRY))


def make_pattern(name: str, **params):
    """Instantiate the registered pattern *name* with *params*.

    Unknown names raise ``KeyError``; wrong/missing parameters raise
    ``ValueError`` (not ``TypeError``), so callers surfacing configuration
    mistakes can rely on the library's usual exception vocabulary.
    """
    if name not in _PATTERN_REGISTRY:
        raise KeyError(f"unknown traffic pattern {name!r}; registered: {', '.join(pattern_names())}")
    try:
        return _PATTERN_REGISTRY[name](**params)
    except TypeError as exc:
        raise ValueError(f"invalid parameters for pattern {name!r}: {exc}") from exc


def pattern_to_dict(pattern) -> dict:
    """Serialise a registered pattern as ``{"name", "params"}``.

    The pattern's *exact class* must be the registered one: a subclass
    inheriting a base's ``pattern_name`` would serialise under the base
    name and silently deserialise as the base class — different traffic
    behaviour with no error — so it is rejected here instead.
    """
    name = getattr(pattern, "pattern_name", None)
    require(
        isinstance(name, str) and _PATTERN_REGISTRY.get(name) is type(pattern),
        f"pattern {type(pattern).__name__} is not registered and cannot be serialised "
        f"(register it with repro.workloads.register_pattern)",
    )
    return {"name": name, "params": dict(pattern.pattern_params())}


def pattern_from_dict(data: dict) -> "RegisteredPattern":
    """Rebuild a pattern from a :func:`pattern_to_dict` mapping."""
    reject_unknown_keys(data, ("name", "params"), "pattern", required=("name",))
    params = data.get("params", {})
    require(isinstance(params, dict), "pattern 'params' must be a mapping")
    return make_pattern(data["name"], **params)


class RegisteredPattern:
    """Mixin giving registered patterns value semantics and a serial form.

    Equality and hashing follow ``(type, pattern_params())`` so a pattern
    that went through ``to_dict -> json -> from_dict`` compares equal to the
    original — the property scenario-spec round-trip tests rely on.
    """

    pattern_name: ClassVar[str] = ""

    def pattern_params(self) -> dict:
        """Constructor parameters; default: no parameters."""
        return {}

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.pattern_params() == other.pattern_params()

    def __hash__(self) -> int:
        return hash((type(self), tuple(sorted(self.pattern_params().items()))))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.pattern_params().items()))
        return f"{type(self).__name__}({args})"


@register_pattern
class UniformTraffic(RegisteredPattern):
    """Paper assumption 2: destinations uniform over all other nodes.

    Equivalent to passing ``pattern=None`` to the model; provided explicitly
    so the pattern plumbing itself can be validated against the closed form.
    """

    pattern_name = "uniform"

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        """Eq. 2 recovered from first principles."""
        return system.outgoing_probability(cluster_index)

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        """P(destination cluster = j | inter) ∝ N_j for j ≠ i."""
        sizes = system.cluster_sizes
        return [0.0 if j == cluster_index else float(sizes[j]) for j in range(system.num_clusters)]

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        draw = int(rng.integers(0, system.total_nodes - 1))
        return draw + 1 if draw >= source else draw


@register_pattern
class LocalityTraffic(RegisteredPattern):
    """Tunable locality: a message stays in its cluster with probability *p*.

    ``locality=0`` sends everything outward; under ``locality`` equal to the
    uniform value ``1 - U_i`` this degenerates to (a cluster-wise
    approximation of) the paper's baseline.  Destinations are uniform within
    the chosen scope.
    """

    pattern_name = "locality"

    def __init__(self, locality: float) -> None:
        require(
            isinstance(locality, (int, float)) and 0.0 <= locality <= 1.0,
            f"locality must be in [0, 1], got {locality!r}",
        )
        self.locality = float(locality)

    def pattern_params(self) -> dict:
        return {"locality": self.locality}

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        if system.cluster_sizes[cluster_index] <= 1:
            return 1.0 if system.num_clusters > 1 else 0.0
        return 1.0 - self.locality

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        sizes = system.cluster_sizes
        return [0.0 if j == cluster_index else float(sizes[j]) for j in range(system.num_clusters)]

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        cluster = system.cluster_of(source)
        stay = cluster.num_nodes > 1 and float(rng.random()) < self.locality
        if stay:
            lo = cluster.first_global_id
            draw = lo + int(rng.integers(0, cluster.num_nodes - 1))
            return draw + 1 if draw >= source else draw
        outside = system.total_nodes - cluster.num_nodes
        if outside == 0:  # single-cluster system: fall back to intra
            draw = int(rng.integers(0, system.total_nodes - 1))
            return draw + 1 if draw >= source else draw
        draw = int(rng.integers(0, outside))
        if draw >= cluster.first_global_id:
            draw += cluster.num_nodes
        return draw


@register_pattern
class HotspotTraffic(RegisteredPattern):
    """A fraction of all traffic targets one *hot* cluster.

    With probability ``hot_fraction`` the destination is uniform inside the
    hot cluster; otherwise it is uniform over all other nodes (the paper's
    baseline).  Models the "popular file server cluster" scenario that
    motivates non-uniform analysis.
    """

    pattern_name = "hotspot"

    def __init__(self, hot_cluster: int, hot_fraction: float) -> None:
        require(
            isinstance(hot_fraction, (int, float)) and 0.0 <= hot_fraction <= 1.0,
            f"hot_fraction must be in [0, 1], got {hot_fraction!r}",
        )
        require_int(hot_cluster, "hot_cluster", minimum=0)
        self.hot_cluster = int(hot_cluster)
        self.hot_fraction = float(hot_fraction)

    def pattern_params(self) -> dict:
        return {"hot_cluster": self.hot_cluster, "hot_fraction": self.hot_fraction}

    def _check(self, system: SystemConfig) -> None:
        require(self.hot_cluster < system.num_clusters, f"hot_cluster {self.hot_cluster} out of range for C={system.num_clusters}")

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        self._check(system)
        h = self.hot_fraction
        uniform_u = system.outgoing_probability(cluster_index)
        if cluster_index == self.hot_cluster:
            # Hot-directed traffic from inside the hot cluster stays local.
            return (1.0 - h) * uniform_u
        return h + (1.0 - h) * uniform_u

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        self._check(system)
        sizes = system.cluster_sizes
        n_total = system.total_nodes
        h = self.hot_fraction
        weights = []
        for j in range(system.num_clusters):
            if j == cluster_index:
                weights.append(0.0)
                continue
            base = (1.0 - h) * sizes[j] / (n_total - 1)
            if j == self.hot_cluster:
                base += h
            weights.append(base)
        return weights

    def sample_destination(self, rng: np.random.Generator, system: HeterogeneousSystem, source: int) -> int:
        self._check(system.config)
        hot = system.clusters[self.hot_cluster]
        if float(rng.random()) < self.hot_fraction:
            inside = hot.contains_global(source)
            pool = hot.num_nodes - (1 if inside else 0)
            if pool > 0:
                draw = hot.first_global_id + int(rng.integers(0, pool))
                if inside and draw >= source:
                    draw += 1
                return draw
        draw = int(rng.integers(0, system.total_nodes - 1))
        return draw + 1 if draw >= source else draw
