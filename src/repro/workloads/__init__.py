"""Traffic workloads: the paper's uniform baseline and future-work patterns."""

from repro.workloads.patterns import HotspotTraffic, LocalityTraffic, UniformTraffic

__all__ = ["UniformTraffic", "LocalityTraffic", "HotspotTraffic"]
