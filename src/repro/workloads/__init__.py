"""Traffic workloads: the paper's uniform baseline and future-work patterns.

Patterns are value objects registered under short names (``"uniform"``,
``"locality"``, ``"hotspot"``) so scenario specs can serialise them; see
:func:`register_pattern` for adding new ones.
"""

from repro.workloads.patterns import (
    HotspotTraffic,
    LocalityTraffic,
    RegisteredPattern,
    UniformTraffic,
    make_pattern,
    pattern_from_dict,
    pattern_names,
    pattern_to_dict,
    register_pattern,
)

__all__ = [
    "UniformTraffic",
    "LocalityTraffic",
    "HotspotTraffic",
    "RegisteredPattern",
    "register_pattern",
    "pattern_names",
    "make_pattern",
    "pattern_to_dict",
    "pattern_from_dict",
]
