"""Discrete-event wormhole simulators used to validate the analytical model."""

from repro.simulation.eventcore import (
    ArrayHeap,
    Trajectory,
    build_trajectory,
    canonical_trajectory,
    kernel_available,
    trajectory_digest,
)
from repro.simulation.fabric import GROUPS, ResolvedFabric, ResolvedSegment
from repro.simulation.metrics import LatencyCollector, LatencyStats, MeasurementWindow
from repro.simulation.parallel import SimWorkItem, resolve_jobs, run_work_item, run_work_items
from repro.simulation.replication import ReplicatedResult, replicate
from repro.simulation.rng import ReplayableDraws, SimulationStreams, make_streams, replica_seeds
from repro.simulation.runner import (
    ENGINES,
    TRAJECTORY_VERSION,
    SimulationConfig,
    SimulationResult,
    SimulationSession,
    simulate,
)
from repro.simulation.traffic import PoissonArrivals, SimTrafficPattern, UniformDestinations
from repro.simulation.wormhole import MessageLevelWormholeSimulator, RawRunResult

__all__ = [
    "ArrayHeap",
    "Trajectory",
    "build_trajectory",
    "canonical_trajectory",
    "kernel_available",
    "trajectory_digest",
    "ENGINES",
    "ResolvedFabric",
    "ResolvedSegment",
    "GROUPS",
    "MeasurementWindow",
    "LatencyCollector",
    "LatencyStats",
    "SimulationStreams",
    "make_streams",
    "replica_seeds",
    "ReplayableDraws",
    "SimWorkItem",
    "resolve_jobs",
    "run_work_item",
    "run_work_items",
    "ReplicatedResult",
    "replicate",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSession",
    "simulate",
    "PoissonArrivals",
    "UniformDestinations",
    "SimTrafficPattern",
    "MessageLevelWormholeSimulator",
    "RawRunResult",
    "TRAJECTORY_VERSION",
]
