"""Process-pool fan-out for simulation work.

The analytical model is effectively free (the batched engine), so every
paper-style validation run is bounded by discrete-event simulation time.
This module makes that layer scale with the hardware: any batch of
independent simulator runs — replicas of one operating point, the load
points of a validation grid, whole scenarios — is described as a list of
:class:`SimWorkItem` and executed by :func:`run_work_items` either
in-process or across a process pool supervised by the resilient runtime
(:mod:`repro.exec`).

Determinism: a work item is a pure function of spec-level inputs
(system/message/options are frozen dataclasses, patterns are registered
classes — all picklable) plus one integer seed, so results are
bit-identical for any worker count, including the serial path.  Order is
preserved: result ``i`` always belongs to item ``i``.

Failure semantics: the supervisor transparently retries failed or
interrupted items (worker crashes respawn the pool) under the run's
:class:`~repro.exec.RunPolicy`; an item that still fails after its
retries propagates its original exception to the caller — never a
partial result list.  Callers that want partial results instead use
:func:`repro.exec.run_supervised` directly.

Workers keep a small per-process LRU session cache keyed by
``(system, message, options)``, so fanning one scenario's load points
across ``k`` workers builds at most ``k`` fabrics rather than one per
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.exec import RunPolicy, raise_on_failure, resolve_jobs, run_supervised
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.runner import SimulationResult, SimulationSession
from repro.simulation.traffic import SimTrafficPattern

__all__ = ["SimWorkItem", "map_jobs", "resolve_jobs", "run_work_item", "run_work_items"]


@dataclass(frozen=True)
class SimWorkItem:
    """One simulator run, described by picklable spec-level inputs."""

    system: SystemConfig
    message: MessageSpec
    generation_rate: float
    seed: int
    window: MeasurementWindow
    options: ModelOptions = field(default_factory=ModelOptions)
    granularity: str = "message"
    ideal_sinks: bool = False
    cd_mode: str = "paper"
    pattern: SimTrafficPattern | None = None
    max_events: int = 500_000_000
    engine: str = "reference"


def map_jobs(
    fn,
    payloads,
    *,
    jobs: "int | str | None" = None,
    policy: "RunPolicy | None" = None,
) -> list:
    """Order-preserving map of *fn* over *payloads*, serial or pooled.

    The generic fan-out primitive behind :func:`run_work_items`,
    ``Experiment.sweep_many`` and ``explore_grid``, now a throwing facade
    over :func:`repro.exec.run_supervised`: ``jobs`` follows
    :func:`repro.exec.resolve_jobs`, the pool never exceeds the payload
    count, result ``i`` always belongs to payload ``i``, and worker
    crashes/failures are retried under *policy* (default
    :class:`~repro.exec.RunPolicy`).  An item that still fails after its
    retries re-raises its original exception (never a partial list).
    *fn* must be a module-level callable and every payload picklable when
    ``jobs > 1``.
    """
    outcomes = raise_on_failure(
        run_supervised(fn, payloads, jobs=jobs, policy=policy)
    )
    return [outcome.value for outcome in outcomes]


# Per-process LRU session cache (bounded: the worker processes of one pool
# see a handful of configurations, but a long-lived parent process may run
# many different scenarios through the serial path).  Insertion order is
# recency order: hits re-insert at the end, eviction pops the front.
_SESSION_CACHE: dict = {}
_SESSION_CACHE_MAX = 8


def _session_for(item: SimWorkItem) -> SimulationSession:
    key = (item.system, item.message, item.options)
    session = _SESSION_CACHE.pop(key, None)
    if session is None:
        if len(_SESSION_CACHE) >= _SESSION_CACHE_MAX:
            _SESSION_CACHE.pop(next(iter(_SESSION_CACHE)))
        session = SimulationSession(item.system, item.message, options=item.options)
    _SESSION_CACHE[key] = session
    return session


def _run_on(session: SimulationSession, item: SimWorkItem) -> SimulationResult:
    """Run *item* on *session* — the single place item fields map to run kwargs."""
    return session.run(
        item.generation_rate,
        seed=item.seed,
        window=item.window,
        granularity=item.granularity,
        ideal_sinks=item.ideal_sinks,
        cd_mode=item.cd_mode,
        pattern=item.pattern,
        max_events=item.max_events,
        engine=item.engine,
    )


def run_work_item(item: SimWorkItem) -> SimulationResult:
    """Execute one work item (the function a pool worker runs)."""
    return _run_on(_session_for(item), item)


def run_work_items(
    items,
    *,
    jobs: "int | str | None" = None,
    session: SimulationSession | None = None,
    policy: "RunPolicy | None" = None,
) -> list[SimulationResult]:
    """Run *items* serially or across a process pool; results in item order.

    ``jobs`` follows :func:`repro.exec.resolve_jobs`.  The pool never
    exceeds the item count.  With ``jobs <= 1`` every item runs in this
    process, preferring *session* (the caller's cached fabric) for items
    that match its configuration.  Pooled execution is supervised under
    *policy* (see :func:`map_jobs`).
    """
    items = list(items)
    for item in items:
        require(isinstance(item, SimWorkItem), "items must be SimWorkItem instances")
    n_jobs = min(resolve_jobs(jobs), len(items))
    if n_jobs <= 1 and session is not None:
        key = (session.system_config, session.message, session.options)
        return [
            _run_on(session, item)
            if (item.system, item.message, item.options) == key
            else run_work_item(item)
            for item in items
        ]
    return map_jobs(run_work_item, items, jobs=n_jobs, policy=policy)
