"""Measurement protocol and latency statistics (paper §4).

The paper gathers statistics over a measurement window delimited by
generation order: the first ``warmup`` messages are excluded, the next
``measured`` messages are recorded, and a further ``drain`` batch is
generated (but not recorded) so the tail of the measurement window
experiences realistic downstream load.

:class:`LatencyCollector` implements that protocol; :class:`LatencyStats`
summarises the measured population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require, require_int

__all__ = ["MeasurementWindow", "LatencyCollector", "LatencyStats"]


@dataclass(frozen=True)
class MeasurementWindow:
    """Message-count windows of one run (generation-sequence based)."""

    warmup: int
    measured: int
    drain: int

    def __post_init__(self) -> None:
        require_int(self.warmup, "warmup", minimum=0)
        require_int(self.measured, "measured", minimum=1)
        require_int(self.drain, "drain", minimum=0)

    @property
    def total(self) -> int:
        """Total messages generated in the run."""
        return self.warmup + self.measured + self.drain

    def is_measured(self, sequence: int) -> bool:
        """True if generation-sequence *sequence* falls in the window."""
        return self.warmup <= sequence < self.warmup + self.measured

    @classmethod
    def scaled_paper(cls, budget: int) -> "MeasurementWindow":
        """The paper's 10k/100k/10k protocol scaled to *budget* measured messages."""
        require_int(budget, "budget", minimum=1)
        side = max(1, budget // 10)
        return cls(warmup=side, measured=budget, drain=side)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of the measured latency population."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    mean_intra: float
    mean_inter: float
    count_intra: int
    count_inter: int

    @classmethod
    def empty(cls) -> "LatencyStats":
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan, nan, nan, nan, 0, 0)


@dataclass
class LatencyCollector:
    """Accumulates delivered-message records and produces statistics."""

    window: MeasurementWindow
    _latencies: list[float] = field(default_factory=list)
    _is_inter: list[bool] = field(default_factory=list)
    _src_clusters: list[int] = field(default_factory=list)
    delivered_measured: int = 0

    def record(self, sequence: int, latency: float, *, inter_cluster: bool, source_cluster: int) -> None:
        """Record a delivery; ignores messages outside the measurement window."""
        require(latency >= 0.0, f"negative latency {latency}")
        if not self.window.is_measured(sequence):
            return
        self._latencies.append(latency)
        self._is_inter.append(inter_cluster)
        self._src_clusters.append(source_cluster)
        self.delivered_measured += 1

    @property
    def all_measured_delivered(self) -> bool:
        return self.delivered_measured >= self.window.measured

    def stats(self) -> LatencyStats:
        """Summarise the measured deliveries recorded so far."""
        if not self._latencies:
            return LatencyStats.empty()
        lat = np.asarray(self._latencies, dtype=np.float64)
        inter = np.asarray(self._is_inter, dtype=bool)
        nan = float("nan")
        return LatencyStats(
            count=int(lat.size),
            mean=float(lat.mean()),
            std=float(lat.std(ddof=1)) if lat.size > 1 else 0.0,
            minimum=float(lat.min()),
            maximum=float(lat.max()),
            p50=float(np.percentile(lat, 50)),
            p95=float(np.percentile(lat, 95)),
            mean_intra=float(lat[~inter].mean()) if (~inter).any() else nan,
            mean_inter=float(lat[inter].mean()) if inter.any() else nan,
            count_intra=int((~inter).sum()),
            count_inter=int(inter.sum()),
        )

    def per_cluster_means(self) -> dict[int, float]:
        """Mean measured latency grouped by source cluster."""
        if not self._latencies:
            return {}
        lat = np.asarray(self._latencies, dtype=np.float64)
        src = np.asarray(self._src_clusters, dtype=np.int64)
        return {int(c): float(lat[src == c].mean()) for c in np.unique(src)}
