"""Array-based event core for the message-level wormhole simulator.

The reference engine (:mod:`repro.simulation.wormhole`) is a locals-bound
CPython loop; this module is the ``engine="array"`` alternative that runs
the *same* event loop over flat arrays:

* the event heap is three parallel columns ``(time, tie-break tag,
  payload)`` — :class:`ArrayHeap` is the structured-ndarray executable
  specification of its ordering (property-tested against :mod:`heapq`),
  and the compiled kernel sifts the identical layout;
* the stochastic streams are consumed as batched slices: the arrival race
  is pre-resolved into a *generation schedule* (which node generates
  message ``s``, and when) by :func:`generation_schedule` /
  ``eventcore_prepass``, and uniform destinations are adjusted in one
  vectorized expression;
* the per-segment release arithmetic of ``fabric.hot_resolver`` is folded
  into flat segment tables (channel ids, ``M·τ_k`` holds, drains and
  release offsets as contiguous arrays) shared across runs of a session.

The hot loop itself lives in ``_eventcore.c``, compiled on demand with
the system C compiler and loaded through :mod:`ctypes` — no third-party
dependency, no CPython API.  When no compiler is available (or
``REPRO_SIM_KERNEL=0``), ``engine="array"`` falls back to the reference
loop, so results never depend on the toolchain.

Bit-identical-trajectory contract
---------------------------------
For any (spec, seed, window) the array engine reproduces the reference
engine's trajectory exactly — event order, per-message grant times, float
accumulation order of busy/wait sums, latency records — not just
statistically.  ``tests/test_eventcore.py`` enforces this differentially
across registry scenarios × seeds, and the golden-trajectory corpus
(``tests/goldens/trajectories.json``) pins digests of
:func:`trajectory_digest` so either engine drifting fails CI by name.
"""

from __future__ import annotations

import ctypes
import hashlib
import heapq
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time as _time
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._util import require
from repro.simulation.fabric import GROUPS

__all__ = [
    "ArrayHeap",
    "HEAP_DTYPE",
    "Trajectory",
    "array_run",
    "build_trajectory",
    "canonical_trajectory",
    "generation_schedule",
    "kernel_available",
    "kernel_prepass",
    "trajectory_digest",
]

#: Column layout shared by :class:`ArrayHeap` and the compiled kernel:
#: event time, monotone tie-break tag (kind in the low two bits), and the
#: payload index (message sequence number or channel id).
HEAP_DTYPE = np.dtype([("time", np.float64), ("tag", np.int64), ("payload", np.int32)])


class ArrayHeap:
    """Binary min-heap over a structured ndarray, ordered by ``(time, tag)``.

    This is the executable specification of the event heap: the compiled
    kernel's ``hpush``/``hpop`` sift the same three columns with the same
    strict ``(time, tag)`` comparison, and the property suite pins this
    class against a :mod:`heapq` oracle (total order under ties, monotone
    pop times, push/pop stream equivalence).  Payloads never participate
    in ordering — tags are unique by construction in the simulators.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._data = np.zeros(max(int(capacity), 1), dtype=HEAP_DTYPE)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def columns(self) -> np.ndarray:
        """The live heap entries as a structured-array view."""
        return self._data[: self._n]

    @staticmethod
    def kind(tag: int) -> int:
        """The event kind packed into a tag's low two bits."""
        return int(tag) & 3

    def _less(self, i: int, j: int) -> bool:
        d = self._data
        if d["time"][i] != d["time"][j]:
            return bool(d["time"][i] < d["time"][j])
        return bool(d["tag"][i] < d["tag"][j])

    def push(self, time: float, tag: int, payload: int = 0) -> None:
        if self._n >= self._data.size:
            grown = np.zeros(self._data.size * 2, dtype=HEAP_DTYPE)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        d = self._data
        i = self._n
        self._n += 1
        d[i] = (time, tag, payload)
        while i > 0:
            parent = (i - 1) >> 1
            if not self._less(i, parent):
                break
            d[[i, parent]] = d[[parent, i]]
            i = parent

    def peek(self) -> tuple[float, int, int]:
        require(self._n > 0, "peek on an empty ArrayHeap")
        entry = self._data[0]
        return float(entry["time"]), int(entry["tag"]), int(entry["payload"])

    def _sift_down(self) -> None:
        d = self._data
        n = self._n
        i = 0
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and self._less(right, child):
                child = right
            if not self._less(child, i):
                break
            d[[i, child]] = d[[child, i]]
            i = child

    def pop(self) -> tuple[float, int, int]:
        require(self._n > 0, "pop on an empty ArrayHeap")
        root = self.peek()
        self._n -= 1
        if self._n:
            self._data[0] = self._data[self._n]
            self._sift_down()
        return root

    def replace(self, time: float, tag: int, payload: int = 0) -> tuple[float, int, int]:
        """Pop the root and push a new entry in one sift (``heapreplace``)."""
        root = self.peek()
        self._data[0] = (time, tag, payload)
        self._sift_down()
        return root


# ---------------------------------------------------------------------------
# generation schedule (the arrival-race pre-pass)
# ---------------------------------------------------------------------------


def generation_schedule(
    gaps: np.ndarray, n_nodes: int, total: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve the per-node Poisson arrival race into a flat schedule.

    Which node generates message ``s`` (and when) depends only on the
    arrival gaps, never on network state, so the reference engine's
    arrival heap can be raced ahead of time.  Mirrors the reference
    exactly: node ``i``'s first arrival is ``gaps[i]`` with a tie-break
    tag monotone in node order, generation ``s`` reschedules its node at
    ``t + gaps[n_nodes + s]`` with the next monotone tag.  Returns
    ``(g_time, g_node, dead_time, dead_node)`` — the ``n_nodes`` arrivals
    left pending after the budget ("dead": popped as events but
    generating nothing) drain in pop order, all at or after the last
    generation.  This is the pure-Python specification of the kernel's
    ``eventcore_prepass``; both are differentially tested.
    """
    gaps = np.asarray(gaps, dtype=np.float64)
    require(gaps.size >= n_nodes + total, "gaps must cover n_nodes + total draws")
    heap = [(float(gaps[i]), i, i) for i in range(n_nodes)]
    heapq.heapify(heap)
    g_time = np.empty(total, dtype=np.float64)
    g_node = np.empty(total, dtype=np.int32)
    next_tag = n_nodes
    for s in range(total):
        t, _, node = heap[0]
        g_time[s] = t
        g_node[s] = node
        heapq.heapreplace(heap, (t + float(gaps[n_nodes + s]), next_tag, node))
        next_tag += 1
    dead_time = np.empty(n_nodes, dtype=np.float64)
    dead_node = np.empty(n_nodes, dtype=np.int32)
    for i in range(n_nodes):
        t, _, node = heapq.heappop(heap)
        dead_time[i] = t
        dead_node[i] = node
    return g_time, g_node, dead_time, dead_node


# ---------------------------------------------------------------------------
# compiled kernel: build, load, call
# ---------------------------------------------------------------------------

_C_SOURCE = Path(__file__).with_name("_eventcore.c")
_KERNEL_ABI = 1
#: Contraction must stay off: fusing a*b+c into FMA would change results
#: relative to CPython's one-operation-at-a-time float semantics.
_KERNEL_FLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-unsafe-math-optimizations")

_KERNEL_UNSET = object()
_KERNEL: object = _KERNEL_UNSET


class _StateStruct(ctypes.Structure):
    """ctypes mirror of ``EventCoreState`` — field order must match the C struct."""

    _fields_ = [
        (name, ctypes.c_int64)
        for name in (
            "n_channels", "n_nodes", "total", "n_dead", "warmup", "measured_end",
            "measured_target", "max_events", "cd_paper", "grants_stride",
            "heap_cap", "trace_cap", "eseq0",
        )
    ] + [
        (name, ctypes.c_void_p)
        for name in (
            "flit_time", "uncontended", "group", "cluster_index",
            "g_time", "g_node", "dead_time", "dead_node",
            "m_path", "p_off", "p_segs", "s_cid_off", "s_cids", "s_hold",
            "s_drain", "s_rel_off", "r_kk", "r_cid", "r_hold", "r_off",
            "heap_time", "heap_tag", "heap_payload", "node_tag",
            "m_seg", "m_k", "m_gc", "m_qnext", "m_reqt", "grants",
            "occupancy", "last_grant", "q_head", "q_tail", "busy",
            "lat", "inter", "src_cluster",
            "trace_time", "trace_kind", "trace_id",
            "out_i", "out_f", "out_w",
        )
    ]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_EVENTCORE_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-eventcore-{uid}"


def _build_kernel() -> "ctypes.CDLL | None":
    """Compile (once, cached by source digest) and load the kernel."""
    if os.environ.get("REPRO_SIM_KERNEL", "").lower() in ("0", "off", "reference"):
        return None
    try:
        source = _C_SOURCE.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(
        source + " ".join(_KERNEL_FLAGS).encode() + sys.platform.encode()
    ).hexdigest()[:16]
    so_path = _cache_dir() / f"_eventcore-{tag}.so"
    if not so_path.exists():
        cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
        if cc is None:
            return None
        try:
            so_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = so_path.with_suffix(f".{os.getpid()}.tmp")
            subprocess.run(
                [cc, *_KERNEL_FLAGS, str(_C_SOURCE), "-o", str(tmp)],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    lib.eventcore_abi.restype = ctypes.c_int64
    lib.eventcore_abi.argtypes = []
    if lib.eventcore_abi() != _KERNEL_ABI:
        return None
    lib.eventcore_run.restype = ctypes.c_int64
    lib.eventcore_run.argtypes = [ctypes.POINTER(_StateStruct)]
    lib.eventcore_prepass.restype = ctypes.c_int64
    lib.eventcore_prepass.argtypes = [ctypes.c_int64, ctypes.c_int64] + [ctypes.c_void_p] * 8
    return lib


def _kernel() -> "ctypes.CDLL | None":
    global _KERNEL
    if _KERNEL is _KERNEL_UNSET:
        _KERNEL = _build_kernel()
    return _KERNEL  # type: ignore[return-value]


def kernel_available() -> bool:
    """True if the compiled event kernel built (or was cached) and loaded."""
    return _kernel() is not None


def kernel_prepass(
    gaps: np.ndarray, n_nodes: int, total: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The compiled counterpart of :func:`generation_schedule`."""
    lib = _kernel()
    require(lib is not None, "compiled event kernel unavailable")
    gaps = np.ascontiguousarray(gaps, dtype=np.float64)
    require(gaps.size >= n_nodes + total, "gaps must cover n_nodes + total draws")
    g_time = np.empty(total, dtype=np.float64)
    g_node = np.empty(total, dtype=np.int32)
    dead_time = np.empty(n_nodes, dtype=np.float64)
    dead_node = np.empty(n_nodes, dtype=np.int32)
    ht = np.empty(n_nodes, dtype=np.float64)
    hg = np.empty(n_nodes, dtype=np.int64)
    hp = np.empty(n_nodes, dtype=np.int32)
    rc = lib.eventcore_prepass(
        n_nodes, total,
        gaps.ctypes.data, ht.ctypes.data, hg.ctypes.data, hp.ctypes.data,
        g_time.ctypes.data, g_node.ctypes.data,
        dead_time.ctypes.data, dead_node.ctypes.data,
    )
    require(rc == 0, f"eventcore_prepass failed with status {rc}")
    return g_time, g_node, dead_time, dead_node


# ---------------------------------------------------------------------------
# flattened path/segment tables (cached per fabric × run config)
# ---------------------------------------------------------------------------

#: fabric -> {(ideal_sinks, cd_mode) -> _EventCoreContext}.  Weak on the
#: fabric so a discarded session releases its tables.
_CONTEXTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Above this node count the dense (src, dst) -> path-id matrix would be
#: too large; fall back to a dict lookup per message.
_PID_MATRIX_MAX_NODES = 2048


class _EventCoreContext:
    """Flattened fabric tables for one (ideal_sinks, cd_mode) config.

    Segment records from ``fabric.hot_resolver`` are appended once into
    growing flat tables (deduplicated — segments are shared across paths
    exactly as the resolver shares them) and snapshotted into contiguous
    ndarrays on demand; a session reuses the tables across load points
    and seeds.
    """

    def __init__(self, fabric, ideal_sinks: bool, cd_mode: str) -> None:
        self.resolver = fabric.hot_resolver(ideal_sinks=ideal_sinks, cd_mode=cd_mode)
        self.flit_time = np.ascontiguousarray(fabric.flit_time, dtype=np.float64)
        self.uncontended = np.asarray(
            fabric.uncontended_flags(ideal_sinks=ideal_sinks, cd_mode=cd_mode),
            dtype=np.int8,
        )
        self.group = np.ascontiguousarray(fabric.group, dtype=np.int8)
        self.cluster_index = np.asarray(fabric.cluster_index, dtype=np.int32)
        self.n_channels = fabric.num_channels
        n = fabric.system.total_nodes
        self._pid_matrix = (
            np.full((n, n), -1, dtype=np.int32) if n <= _PID_MATRIX_MAX_NODES else None
        )
        self._pid_map: dict = {}
        self._path_ids: dict = {}
        self._seg_ids: dict = {}
        self._seg_len: list[int] = []
        self._p_off: list[int] = [0]
        self._p_segs: list[int] = []
        self._s_cid_off: list[int] = [0]
        self._s_cids: list[int] = []
        self._s_hold: list[float] = []
        self._s_drain: list[float] = []
        self._s_rel_off: list[int] = [0]
        self._r_kk: list[int] = []
        self._r_cid: list[int] = []
        self._r_hold: list[float] = []
        self._r_off: list[float] = []
        self.gstride = 1
        self.max_hops = 1
        self._dirty = True
        self._arrays: "dict[str, np.ndarray] | None" = None

    def _add_segment(self, spec) -> int:
        cids, hold, _tau, drain, last, rel_items = spec
        sid = len(self._s_drain)
        self._s_cids.extend(cids)
        self._s_hold.extend(hold)
        self._s_cid_off.append(len(self._s_cids))
        self._s_drain.append(drain)
        for kk, cid, hold_kk, off in rel_items:
            self._r_kk.append(kk)
            self._r_cid.append(cid)
            self._r_hold.append(hold_kk)
            self._r_off.append(off)
        self._s_rel_off.append(len(self._r_kk))
        self._seg_len.append(last + 1)
        self.gstride = max(self.gstride, last + 1)
        self._seg_ids[spec] = sid
        return sid

    def _pid_for(self, source: int, destination: int) -> int:
        pair = (source, destination)
        pid = self._pid_map.get(pair)
        if pid is not None:
            return pid
        seg_ids = []
        for spec in self.resolver(source, destination):
            sid = self._seg_ids.get(spec)
            if sid is None:
                sid = self._add_segment(spec)
                self._dirty = True
            seg_ids.append(sid)
        key = tuple(seg_ids)
        pid = self._path_ids.get(key)
        if pid is None:
            pid = len(self._p_off) - 1
            self._p_segs.extend(key)
            self._p_off.append(len(self._p_segs))
            self._path_ids[key] = pid
            self.max_hops = max(self.max_hops, sum(self._seg_len[s] for s in key))
            self._dirty = True
        self._pid_map[pair] = pid
        return pid

    def paths_for(self, g_node: np.ndarray, g_dest: np.ndarray) -> np.ndarray:
        """Path id per message, vectorized through the dense pair matrix."""
        if self._pid_matrix is not None:
            pids = self._pid_matrix[g_node, g_dest]
            missing = np.flatnonzero(pids < 0)
            if missing.size:
                matrix = self._pid_matrix
                for i in missing:
                    s, d = int(g_node[i]), int(g_dest[i])
                    pid = matrix[s, d]
                    if pid < 0:
                        pid = self._pid_for(s, d)
                        matrix[s, d] = pid
                    pids[i] = pid
            return np.ascontiguousarray(pids, dtype=np.int32)
        pid_for = self._pid_for
        return np.fromiter(
            (pid_for(int(s), int(d)) for s, d in zip(g_node, g_dest)),
            dtype=np.int32,
            count=len(g_node),
        )

    def arrays(self) -> dict:
        """Contiguous snapshots of the flat tables (rebuilt when they grew)."""
        if self._dirty or self._arrays is None:
            self._arrays = {
                "p_off": np.asarray(self._p_off, dtype=np.int32),
                "p_segs": np.asarray(self._p_segs, dtype=np.int32),
                "s_cid_off": np.asarray(self._s_cid_off, dtype=np.int32),
                "s_cids": np.asarray(self._s_cids, dtype=np.int32),
                "s_hold": np.asarray(self._s_hold, dtype=np.float64),
                "s_drain": np.asarray(self._s_drain, dtype=np.float64),
                "s_rel_off": np.asarray(self._s_rel_off, dtype=np.int32),
                "r_kk": np.asarray(self._r_kk, dtype=np.int32),
                "r_cid": np.asarray(self._r_cid, dtype=np.int32),
                "r_hold": np.asarray(self._r_hold, dtype=np.float64),
                "r_off": np.asarray(self._r_off, dtype=np.float64),
            }
            self._dirty = False
        return self._arrays


def _context_for(sim) -> _EventCoreContext:
    per_fabric = _CONTEXTS.get(sim.fabric)
    if per_fabric is None:
        per_fabric = {}
        _CONTEXTS[sim.fabric] = per_fabric
    key = (bool(sim.ideal_sinks), sim.cd_mode)
    ctx = per_fabric.get(key)
    if ctx is None:
        ctx = _EventCoreContext(sim.fabric, *key)
        per_fabric[key] = ctx
    return ctx


# ---------------------------------------------------------------------------
# the array-engine run
# ---------------------------------------------------------------------------


def array_run(sim, *, max_events: int = 500_000_000, trace: "list | None" = None):
    """Run *sim* (a :class:`MessageLevelWormholeSimulator`) on the kernel.

    Returns the same :class:`~repro.simulation.wormhole.RawRunResult` the
    reference loop would, fills ``sim.collector`` and the post-run
    attributes identically, and (when *trace* is given) appends the same
    ``(time, kind, id)`` event stream the reference loop traces.
    """
    lib = _kernel()
    require(lib is not None, "compiled event kernel unavailable; use engine='reference'")
    wall_start = _time.perf_counter()

    window = sim.window
    total = window.total
    system = sim.fabric.system
    n_nodes = system.total_nodes
    ctx = _context_for(sim)

    gaps = sim._arrival_gaps_array
    g_time, g_node, dead_time, dead_node = kernel_prepass(gaps, n_nodes, total)

    if sim._dest_draws_array is not None:
        draws = sim._dest_draws_array
        # draw >= node maps [0, N-1) onto [0, N) minus the source — the
        # same adjustment the reference applies per generation.
        g_dest = draws + (draws >= g_node)
    else:
        sample = sim.pattern.sample_destination
        dest_rng = sim.streams.destinations
        g_dest = np.fromiter(
            (sample(dest_rng, system, int(node)) for node in g_node),
            dtype=np.int64,
            count=total,
        )
    m_path = ctx.paths_for(g_node, g_dest)
    tables = ctx.arrays()

    measured_target = window.measured
    heap_cap = total + ctx.n_channels + 8
    trace_cap = 0
    if trace is not None:
        bound = total * (2 * ctx.max_hops + 4) + 2 * n_nodes + 16
        trace_cap = min(bound, max_events + 4)

    heap_time = np.empty(heap_cap, dtype=np.float64)
    heap_tag = np.empty(heap_cap, dtype=np.int64)
    heap_payload = np.empty(heap_cap, dtype=np.int32)
    node_tag = (np.arange(n_nodes, dtype=np.int64) + 1) * 4
    m_seg = np.zeros(total, dtype=np.int32)
    m_k = np.zeros(total, dtype=np.int32)
    m_gc = np.zeros(total, dtype=np.int32)
    m_qnext = np.empty(total, dtype=np.int32)
    m_reqt = np.zeros(total, dtype=np.float64)
    grants = np.zeros(total * ctx.gstride, dtype=np.float64)
    occupancy = np.zeros(ctx.n_channels, dtype=np.int32)
    last_grant = np.zeros(ctx.n_channels, dtype=np.float64)
    q_head = np.full(ctx.n_channels, -1, dtype=np.int32)
    q_tail = np.full(ctx.n_channels, -1, dtype=np.int32)
    busy = np.zeros(len(GROUPS), dtype=np.float64)
    lat = np.empty(measured_target, dtype=np.float64)
    inter = np.empty(measured_target, dtype=np.int8)
    src_cluster = np.empty(measured_target, dtype=np.int32)
    trace_time = np.empty(trace_cap, dtype=np.float64)
    trace_kind = np.empty(trace_cap, dtype=np.int8)
    trace_id = np.empty(trace_cap, dtype=np.int32)
    out_i = np.zeros(8, dtype=np.int64)
    out_f = np.zeros(4, dtype=np.float64)
    out_w = np.zeros(2, dtype=np.int64)

    state = _StateStruct(
        n_channels=ctx.n_channels,
        n_nodes=n_nodes,
        total=total,
        n_dead=n_nodes,
        warmup=window.warmup,
        measured_end=window.warmup + window.measured,
        measured_target=measured_target,
        max_events=max_events,
        cd_paper=int(sim.cd_mode == "paper"),
        grants_stride=ctx.gstride,
        heap_cap=heap_cap,
        trace_cap=trace_cap,
        eseq0=4 * n_nodes,
        flit_time=ctx.flit_time.ctypes.data,
        uncontended=ctx.uncontended.ctypes.data,
        group=ctx.group.ctypes.data,
        cluster_index=ctx.cluster_index.ctypes.data,
        g_time=g_time.ctypes.data,
        g_node=g_node.ctypes.data,
        dead_time=dead_time.ctypes.data,
        dead_node=dead_node.ctypes.data,
        m_path=m_path.ctypes.data,
        p_off=tables["p_off"].ctypes.data,
        p_segs=tables["p_segs"].ctypes.data,
        s_cid_off=tables["s_cid_off"].ctypes.data,
        s_cids=tables["s_cids"].ctypes.data,
        s_hold=tables["s_hold"].ctypes.data,
        s_drain=tables["s_drain"].ctypes.data,
        s_rel_off=tables["s_rel_off"].ctypes.data,
        r_kk=tables["r_kk"].ctypes.data,
        r_cid=tables["r_cid"].ctypes.data,
        r_hold=tables["r_hold"].ctypes.data,
        r_off=tables["r_off"].ctypes.data,
        heap_time=heap_time.ctypes.data,
        heap_tag=heap_tag.ctypes.data,
        heap_payload=heap_payload.ctypes.data,
        node_tag=node_tag.ctypes.data,
        m_seg=m_seg.ctypes.data,
        m_k=m_k.ctypes.data,
        m_gc=m_gc.ctypes.data,
        m_qnext=m_qnext.ctypes.data,
        m_reqt=m_reqt.ctypes.data,
        grants=grants.ctypes.data,
        occupancy=occupancy.ctypes.data,
        last_grant=last_grant.ctypes.data,
        q_head=q_head.ctypes.data,
        q_tail=q_tail.ctypes.data,
        busy=busy.ctypes.data,
        lat=lat.ctypes.data,
        inter=inter.ctypes.data,
        src_cluster=src_cluster.ctypes.data,
        trace_time=trace_time.ctypes.data,
        trace_kind=trace_kind.ctypes.data,
        trace_id=trace_id.ctypes.data,
        out_i=out_i.ctypes.data,
        out_f=out_f.ctypes.data,
        out_w=out_w.ctypes.data,
    )
    rc = lib.eventcore_run(ctypes.byref(state))
    require(rc == 0, f"eventcore_run failed with status {rc}")

    events = int(out_i[0])
    generated = int(out_i[1])
    delivered = int(out_i[2])
    completed = bool(out_i[3])
    now = float(out_f[0])
    source_wait_sum = float(out_f[1])
    cd_wait_sum = float(out_f[2])
    source_wait_n = int(out_w[0])
    cd_wait_n = int(out_w[1])

    if trace is not None:
        tlen = int(out_i[4])
        trace.extend(
            zip(
                trace_time[:tlen].tolist(),
                trace_kind[:tlen].tolist(),
                trace_id[:tlen].tolist(),
            )
        )

    collector = sim.collector
    collector._latencies = lat[:delivered].tolist()
    collector._is_inter = inter[:delivered].astype(bool).tolist()
    collector._src_clusters = src_cluster[:delivered].tolist()
    collector.delivered_measured = delivered
    sim._events = events
    sim._generated = generated
    sim._now = now
    sim._source_wait_sum = source_wait_sum
    sim._source_wait_n = source_wait_n
    sim._cd_wait_sum = cd_wait_sum
    sim._cd_wait_n = cd_wait_n

    from repro.simulation.wormhole import RawRunResult

    wall = _time.perf_counter() - wall_start
    stats = collector.stats()
    busy_by_group = {name: float(busy[i]) for i, name in enumerate(GROUPS)}
    return RawRunResult(
        stats=stats,
        per_cluster_means=collector.per_cluster_means(),
        duration=now,
        events=events,
        completed=completed,
        generated=generated,
        source_wait_mean=source_wait_sum / source_wait_n if source_wait_n else float("nan"),
        concentrator_wait_mean=cd_wait_sum / cd_wait_n if cd_wait_n else float("nan"),
        busy_time_by_group=busy_by_group,
        wall_seconds=wall,
    )


# ---------------------------------------------------------------------------
# trajectories: the shared engine-comparison surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Trajectory:
    """The engine-invariant outcome of one simulator run.

    Everything here must be bit-identical between the reference and array
    engines (and across the kernel/fallback paths) for a fixed (spec,
    seed, window, granularity); the golden corpus pins
    :func:`trajectory_digest` of these fields.  Wall-clock time is
    deliberately excluded.

    Equality compares the canonical (hex-float) form, so two trajectories
    are ``==`` exactly when their digests match — including NaN wait
    means from runs truncated before any measured delivery, which plain
    field equality would spuriously report as different.
    """

    version: str
    events: int
    generated: int
    duration: float
    completed: bool
    latencies: tuple
    inter_cluster: tuple
    source_clusters: tuple
    busy_time_by_group: tuple
    source_wait_mean: float
    concentrator_wait_mean: float

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return canonical_trajectory(self) == canonical_trajectory(other)


def build_trajectory(collector, raw) -> Trajectory:
    """The :class:`Trajectory` of a finished run (collector + raw result)."""
    from repro.simulation.runner import TRAJECTORY_VERSION

    return Trajectory(
        version=TRAJECTORY_VERSION,
        events=raw.events,
        generated=raw.generated,
        duration=raw.duration,
        completed=raw.completed,
        latencies=tuple(collector._latencies),
        inter_cluster=tuple(bool(b) for b in collector._is_inter),
        source_clusters=tuple(int(c) for c in collector._src_clusters),
        busy_time_by_group=tuple(raw.busy_time_by_group.items()),
        source_wait_mean=raw.source_wait_mean,
        concentrator_wait_mean=raw.concentrator_wait_mean,
    )


def canonical_trajectory(trajectory: Trajectory) -> dict:
    """A JSON-stable dict with every float hex-encoded (bit-exact)."""

    def fx(value: float) -> str:
        return float(value).hex()

    return {
        "version": trajectory.version,
        "events": int(trajectory.events),
        "generated": int(trajectory.generated),
        "completed": bool(trajectory.completed),
        "duration": fx(trajectory.duration),
        "latencies": [fx(v) for v in trajectory.latencies],
        "inter_cluster": [int(b) for b in trajectory.inter_cluster],
        "source_clusters": [int(c) for c in trajectory.source_clusters],
        "busy_time_by_group": {g: fx(v) for g, v in trajectory.busy_time_by_group},
        "source_wait_mean": fx(trajectory.source_wait_mean),
        "concentrator_wait_mean": fx(trajectory.concentrator_wait_mean),
    }


def trajectory_digest(trajectory: Trajectory) -> str:
    """sha256 of the canonical trajectory — the golden-corpus currency."""
    payload = json.dumps(canonical_trajectory(trajectory), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
