"""Traffic generation for the simulators (paper assumptions 1–2).

Each node generates messages as an independent Poisson process of rate
``λ_g``; destinations default to uniform over all other nodes.  Non-uniform
patterns (the paper's future-work item) plug in through the
:class:`SimTrafficPattern` protocol implemented in
:mod:`repro.workloads.patterns`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro._util import require, require_positive
from repro.cluster.system import HeterogeneousSystem

__all__ = ["SimTrafficPattern", "UniformDestinations", "PoissonArrivals"]


@runtime_checkable
class SimTrafficPattern(Protocol):
    """Destination sampler used by the simulators."""

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: HeterogeneousSystem,
        source: int,
    ) -> int:
        """Return a destination node id ``!= source``."""
        ...


class UniformDestinations:
    """Paper assumption 2: destination uniform over all other nodes."""

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: HeterogeneousSystem,
        source: int,
    ) -> int:
        n = system.total_nodes
        require(n >= 2, "uniform traffic needs at least two nodes")
        draw = int(rng.integers(0, n - 1))
        return draw + 1 if draw >= source else draw


class PoissonArrivals:
    """Per-node exponential inter-arrival sampling at rate ``λ_g``.

    The generator draws one inter-arrival at a time so the event heap holds
    exactly one pending arrival per node (exact superposition of N Poisson
    processes).
    """

    def __init__(self, generation_rate: float, rng: np.random.Generator) -> None:
        require_positive(generation_rate, "generation_rate")
        self.generation_rate = generation_rate
        self._rng = rng
        self._scale = 1.0 / generation_rate

    def first_arrival(self) -> float:
        """Time of a node's first arrival after t=0."""
        return float(self._rng.exponential(self._scale))

    def next_arrival(self, now: float) -> float:
        """Time of the node's next arrival after *now*."""
        return now + float(self._rng.exponential(self._scale))
