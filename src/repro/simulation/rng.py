"""Deterministic random-number streams for the simulators.

Every simulation run derives independent child streams (arrival process,
destination selection) from one user seed via :class:`numpy.random.
SeedSequence`, so results are reproducible and robust to internal
event-ordering changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require_int

__all__ = ["SimulationStreams", "make_streams"]


@dataclass(frozen=True)
class SimulationStreams:
    """Independent generators for each stochastic aspect of a run."""

    arrivals: np.random.Generator
    destinations: np.random.Generator
    seed: int


def make_streams(seed: int) -> SimulationStreams:
    """Spawn the per-purpose generators from a single integer seed."""
    require_int(seed, "seed", minimum=0)
    root = np.random.SeedSequence(seed)
    arrival_seq, destination_seq = root.spawn(2)
    return SimulationStreams(
        arrivals=np.random.default_rng(arrival_seq),
        destinations=np.random.default_rng(destination_seq),
        seed=seed,
    )
