"""Deterministic random-number streams for the simulators.

Every simulation run derives independent child streams (arrival process,
destination selection) from one user seed via :class:`numpy.random.
SeedSequence`, so results are reproducible and robust to internal
event-ordering changes.

Two further pieces live here because they are pure seed-derivation
concerns:

* :func:`replica_seeds` spawns the per-replica seeds used by
  :func:`repro.simulation.replication.replicate` — children of one
  ``SeedSequence``, never ``base_seed + i`` arithmetic, so the replica
  streams are provably independent and two overlapping base seeds never
  share a replica stream;
* :class:`ReplayableDraws` caches the batched draw arrays of one seed so
  repeated load points of a session replay them instead of re-drawing
  (numpy ``Generator`` streams are bit-identical whether consumed as one
  batch, many batches, or scalar calls, so the cache never changes
  results).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_int

__all__ = ["SimulationStreams", "make_streams", "replica_seeds", "ReplayableDraws"]


@dataclass(frozen=True)
class SimulationStreams:
    """Independent generators for each stochastic aspect of a run."""

    arrivals: np.random.Generator
    destinations: np.random.Generator
    seed: int


def make_streams(seed: int) -> SimulationStreams:
    """Spawn the per-purpose generators from a single integer seed."""
    require_int(seed, "seed", minimum=0)
    root = np.random.SeedSequence(seed)
    arrival_seq, destination_seq = root.spawn(2)
    return SimulationStreams(
        arrivals=np.random.default_rng(arrival_seq),
        destinations=np.random.default_rng(destination_seq),
        seed=seed,
    )


def replica_seeds(base_seed: int, count: int) -> tuple[int, ...]:
    """*count* independent per-replica seeds spawned from *base_seed*.

    ``base_seed + i`` arithmetic is wrong twice over: neighbouring roots
    feed ``SeedSequence`` nearly identical entropy, and overlapping base
    seeds alias replica streams (base 0's replica 3 is base 3's replica 0),
    which silently correlates "independent" experiments.  Spawning children
    of one ``SeedSequence`` fixes both while staying plain ints, so every
    replica remains labelled by an ordinary seed and is reproducible on its
    own through :func:`make_streams`.
    """
    require_int(base_seed, "base_seed", minimum=0)
    require_int(count, "count", minimum=1)
    children = np.random.SeedSequence(base_seed).spawn(count)
    return tuple(int(child.generate_state(1, np.uint64)[0]) for child in children)


class ReplayableDraws:
    """Growable, seed-deterministic draw arrays shared across runs.

    A message-level run consumes exactly ``N + window.total`` unit
    arrival gaps and (under uniform traffic) ``window.total`` destination
    draws — amounts that depend on the window, never on the load.  One
    cache per seed therefore lets every load point of a
    :class:`~repro.simulation.runner.SimulationSession` replay the same
    arrays instead of re-drawing them.  Requests beyond the cached length
    extend the *same* generators, which numpy guarantees to stream the
    values one big batch would have produced.
    """

    def __init__(self, seed: int) -> None:
        streams = make_streams(seed)
        self.seed = seed
        self._arrival_rng = streams.arrivals
        self._destination_rng = streams.destinations
        self._unit_arrivals = np.empty(0, dtype=np.float64)
        self._destinations = np.empty(0, dtype=np.int64)
        self._destination_high: "int | None" = None

    def unit_arrivals(self, count: int) -> np.ndarray:
        """The first *count* unit-exponential gaps of this seed's stream."""
        if count > self._unit_arrivals.size:
            extra = self._arrival_rng.standard_exponential(count - self._unit_arrivals.size)
            self._unit_arrivals = np.concatenate([self._unit_arrivals, extra])
        return self._unit_arrivals[:count]

    def destinations(self, count: int, high: int) -> np.ndarray:
        """The first *count* uniform draws from ``[0, high)``.

        The underlying draw sequence depends on *high*, so one cache is
        bound to the first bound it sees (a session is bound to one system,
        so this never varies in practice).
        """
        if self._destination_high is None:
            self._destination_high = high
        require(
            high == self._destination_high,
            f"draw cache for seed {self.seed} is bound to destination bound "
            f"{self._destination_high}, got {high}",
        )
        if count > self._destinations.size:
            extra = self._destination_rng.integers(0, high, size=count - self._destinations.size)
            self._destinations = np.concatenate([self._destinations, extra])
        return self._destinations[:count]
