"""High-level simulation entry points.

:func:`simulate` runs one configuration end to end; :class:`SimulationSession`
caches the materialised fabric so load sweeps (the paper's figures) do not
pay the construction cost per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require, require_nonnegative
from repro.cluster.system import HeterogeneousSystem
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.simulation.fabric import ResolvedFabric
from repro.simulation.metrics import LatencyStats, MeasurementWindow
from repro.simulation.rng import ReplayableDraws, make_streams
from repro.simulation.traffic import SimTrafficPattern
from repro.simulation.wormhole import MessageLevelWormholeSimulator, RawRunResult

__all__ = [
    "ENGINES",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSession",
    "TRAJECTORY_VERSION",
    "simulate",
]

GRANULARITIES = ("message", "flit")

#: Message-level event engines (see :mod:`repro.simulation.eventcore`).
#: Both must produce bit-identical trajectories; the flit granularity has
#: a single engine, so ``engine="array"`` there is a config error.
ENGINES = ("reference", "array")

#: Version tag of the simulators' *trajectories*, embedded in on-disk cache
#: keys (:mod:`repro.io.cache`) alongside the run's spec-level inputs.  Bump
#: whenever a change alters any number a simulator run produces for a fixed
#: (spec, seed, window, granularity) — event ordering, RNG consumption,
#: drain arithmetic — so cached simulator curves are orphaned rather than
#: silently reused across incompatible engines.  One tag covers **both**
#: engines this module dispatches to (:mod:`repro.simulation.wormhole`,
#: :mod:`repro.simulation.flitsim`, and the compiled array core in
#: :mod:`repro.simulation.eventcore`); it lives here, at the dispatch
#: point, so a change to any engine is a change to this module's contract.
#:
#: sim/2: the array event core landed.  Trajectories are unchanged (the
#: differential suite proves reference == array bit for bit), but the tag
#: participates in golden digests and cache keys, and the engine surface
#: it covers widened, so the corpus was re-pinned under sim/2.
TRAJECTORY_VERSION = "sim/2"


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of one simulation run."""

    system: SystemConfig
    message: MessageSpec
    generation_rate: float
    seed: int = 0
    window: MeasurementWindow = field(default_factory=lambda: MeasurementWindow.scaled_paper(20_000))
    granularity: str = "message"
    ideal_sinks: bool = False
    cd_mode: str = "paper"
    options: ModelOptions = field(default_factory=ModelOptions)
    pattern: SimTrafficPattern | None = None
    max_events: int = 500_000_000
    engine: str = "reference"

    def __post_init__(self) -> None:
        require(self.granularity in GRANULARITIES, f"granularity must be one of {GRANULARITIES}")
        require(self.engine in ENGINES, f"engine must be one of {ENGINES}")
        require(
            not (self.granularity == "flit" and self.engine == "array"),
            "engine='array' is message-granularity only (the flit engine has no array core)",
        )
        require_nonnegative(self.generation_rate, "generation_rate")
        require(self.generation_rate > 0, "generation_rate must be positive for a simulation")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run, with the figure-facing summary up front."""

    generation_rate: float
    mean_latency: float
    stats: LatencyStats
    per_cluster_means: dict[int, float]
    network_utilization: dict[str, float]
    source_wait_mean: float
    concentrator_wait_mean: float
    duration: float
    events: int
    generated: int
    completed: bool
    granularity: str
    seed: int
    wall_seconds: float


class SimulationSession:
    """Reusable system+fabric for running many loads of one scenario."""

    def __init__(
        self,
        system: SystemConfig,
        message: MessageSpec,
        *,
        options: ModelOptions | None = None,
    ) -> None:
        self.system_config = system
        self.message = message
        self.options = options or ModelOptions()
        self.system = HeterogeneousSystem(system)
        self.fabric = ResolvedFabric(self.system, message, self.options)
        # Per-seed draw caches: repeated load points of one session replay
        # the batched arrival/destination arrays instead of re-drawing them
        # (bit-identical either way — see rng.ReplayableDraws).  Bounded so
        # a long-lived session sweeping many seeds cannot accumulate one
        # cache entry (~0.5 MB at the default window) per seed forever;
        # eviction is LRU — insertion order doubles as recency order
        # because every hit re-inserts its entry at the back.
        self._draws: dict[int, ReplayableDraws] = {}
        self._draws_max = 8

    def run(
        self,
        generation_rate: float,
        *,
        seed: int = 0,
        window: MeasurementWindow | None = None,
        granularity: str = "message",
        ideal_sinks: bool = False,
        cd_mode: str = "paper",
        pattern: SimTrafficPattern | None = None,
        max_events: int = 500_000_000,
        engine: str = "reference",
    ) -> SimulationResult:
        """Run one load point on the cached fabric."""
        require(granularity in GRANULARITIES, f"granularity must be one of {GRANULARITIES}")
        require(engine in ENGINES, f"engine must be one of {ENGINES}")
        require(
            not (granularity == "flit" and engine == "array"),
            "engine='array' is message-granularity only (the flit engine has no array core)",
        )
        window = window or MeasurementWindow.scaled_paper(20_000)
        streams = make_streams(seed)
        if granularity == "message":
            draws = self._draws.pop(seed, None)
            if draws is None:
                if len(self._draws) >= self._draws_max:
                    self._draws.pop(next(iter(self._draws)))
                draws = ReplayableDraws(seed)
            self._draws[seed] = draws
            sim = MessageLevelWormholeSimulator(
                self.fabric,
                window,
                generation_rate,
                streams,
                pattern,
                ideal_sinks=ideal_sinks,
                cd_mode=cd_mode,
                draws=draws,
                engine=engine,
            )
        else:
            from repro.simulation.flitsim import FlitLevelSimulator

            sim = FlitLevelSimulator(
                self.fabric,
                window,
                generation_rate,
                streams,
                pattern,
                ideal_sinks=ideal_sinks,
                cd_mode=cd_mode,
            )
        raw = sim.run(max_events=max_events)
        return self._package(raw, generation_rate, granularity, seed)

    def _package(
        self, raw: RawRunResult, generation_rate: float, granularity: str, seed: int
    ) -> SimulationResult:
        counts = self.fabric.channels_per_group()
        utilization = {}
        for group, busy in raw.busy_time_by_group.items():
            denom = counts.get(group, 0) * raw.duration
            utilization[group] = busy / denom if denom > 0 else 0.0
        return SimulationResult(
            generation_rate=generation_rate,
            mean_latency=raw.stats.mean,
            stats=raw.stats,
            per_cluster_means=raw.per_cluster_means,
            network_utilization=utilization,
            source_wait_mean=raw.source_wait_mean,
            concentrator_wait_mean=raw.concentrator_wait_mean,
            duration=raw.duration,
            events=raw.events,
            generated=raw.generated,
            completed=raw.completed,
            granularity=granularity,
            seed=seed,
            wall_seconds=raw.wall_seconds,
        )


def simulate(config: SimulationConfig) -> SimulationResult:
    """Build the fabric and run one :class:`SimulationConfig` end to end."""
    session = SimulationSession(config.system, config.message, options=config.options)
    return session.run(
        config.generation_rate,
        seed=config.seed,
        window=config.window,
        granularity=config.granularity,
        ideal_sinks=config.ideal_sinks,
        cd_mode=config.cd_mode,
        pattern=config.pattern,
        max_events=config.max_events,
        engine=config.engine,
    )
