"""Resolved fabric: integer channel ids, flit times and cached paths.

The simulators work on dense integer channel ids instead of structured
:class:`~repro.cluster.channels.SystemChannel` objects.  A
:class:`ResolvedFabric` binds a :class:`~repro.cluster.system.
HeterogeneousSystem` to one :class:`~repro.core.parameters.MessageSpec`,
assigning every directed channel its per-flit service time (``t_cn`` /
``t_cs`` of the owning network — the same primitives the analytical model
uses) and a reporting group:

``icn1`` / ``ecn1`` / ``icn2``
    ordinary channels of each network;
``cd-concentrate``
    the concentrator→ICN2 injection channel (the Eq. 37 concentrate buffer
    server);
``cd-dispatch``
    the dispatcher→ECN1 injection channel (the dispatch buffer server).

Paths are resolved into per-segment ``(channel ids, bottleneck flit time)``
tuples, with the ECN1 ascent/descent legs and ICN2 crossings cached (they
are shared by every message of a node / cluster pair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.cluster.channels import Concentrator, SystemChannel
from repro.cluster.pathing import inter_path, intra_path
from repro.cluster.system import HeterogeneousSystem
from repro.core.parameters import MessageSpec, ModelOptions, NetworkCharacteristics
from repro.core.service_times import ServiceTimes
from repro.topology.addressing import NodeAddress
from repro.topology.mport_ntree import ChannelKind

__all__ = ["ResolvedSegment", "ResolvedFabric", "GROUPS"]

GROUPS: tuple[str, ...] = ("icn1", "ecn1", "icn2", "cd-concentrate", "cd-dispatch")


@dataclass(frozen=True)
class ResolvedSegment:
    """One wormhole leg as the simulators consume it."""

    channel_ids: tuple[int, ...]
    bottleneck_flit_time: float


class ResolvedFabric:
    """Dense-id view of the fabric for one message specification."""

    def __init__(
        self,
        system: HeterogeneousSystem,
        message: MessageSpec,
        options: ModelOptions | None = None,
    ) -> None:
        self.system = system
        self.message = message
        self.options = options or ModelOptions()

        self._service_cache: dict[NetworkCharacteristics, ServiceTimes] = {}
        channels = list(system.channels())
        self.num_channels = len(channels)
        self.channel_index: dict[SystemChannel, int] = {ch: i for i, ch in enumerate(channels)}
        self.channels: tuple[SystemChannel, ...] = tuple(channels)

        flit_time = np.empty(self.num_channels, dtype=np.float64)
        group = np.empty(self.num_channels, dtype=np.int8)
        ejection = np.zeros(self.num_channels, dtype=bool)
        cd_reception = np.zeros(self.num_channels, dtype=bool)
        for i, ch in enumerate(channels):
            flit_time[i] = self._channel_flit_time(ch)
            group[i] = GROUPS.index(self._channel_group(ch))
            ejection[i] = ch.kind is ChannelKind.SWITCH_TO_NODE and isinstance(ch.target, NodeAddress)
            cd_reception[i] = isinstance(ch.target, Concentrator)
        self.flit_time = flit_time
        self.group = group
        self.ejection = ejection
        #: Links delivering into a concentrator/dispatcher buffer.  The
        #: paper models every segment sink as "always able to receive"
        #: (Eq. 29's final stage has no blocking term), so under
        #: ``cd_mode="paper"`` the simulators treat these as interleaving,
        #: non-blocking ingress links.
        self.cd_reception = cd_reception

        self._ascend_cache: dict[int, ResolvedSegment] = {}
        self._descend_cache: dict[int, ResolvedSegment] = {}
        self._icn2_cache: dict[tuple[int, int], ResolvedSegment] = {}
        self._intra_cache: dict[tuple[int, int], ResolvedSegment] = {}
        self._runtime_path_cache: dict[tuple[int, int], tuple] = {}
        self._runtime_seg_cache: dict[ResolvedSegment, tuple] = {}
        self._hot_cache: dict[tuple[bool, str], tuple] = {}

        #: node id -> cluster index (the hot loop's per-delivery lookup).
        self.cluster_index: list[int] = [
            system.cluster_of(node).index for node in system.global_ids()
        ]

    # -- channel attributes ------------------------------------------------------

    def _network_of(self, channel: SystemChannel) -> NetworkCharacteristics:
        tag = channel.network
        if tag[0] == "icn1":
            return self.system.clusters[tag[1]].spec.icn1
        if tag[0] == "ecn1":
            return self.system.clusters[tag[1]].spec.ecn1
        return self.system.config.icn2

    def _service_times(self, network: NetworkCharacteristics) -> ServiceTimes:
        st = self._service_cache.get(network)
        if st is None:
            st = ServiceTimes.for_network(network, self.message, self.options)
            self._service_cache[network] = st
        return st

    def _channel_flit_time(self, channel: SystemChannel) -> float:
        st = self._service_times(self._network_of(channel))
        return st.t_cn if channel.kind.is_node_link else st.t_cs

    def _channel_group(self, channel: SystemChannel) -> str:
        if isinstance(channel.source, Concentrator):
            return "cd-concentrate" if channel.network[0] == "icn2" else "cd-dispatch"
        return channel.network[0]

    # -- path resolution -----------------------------------------------------------

    def _segment(self, channels: tuple[SystemChannel, ...]) -> ResolvedSegment:
        ids = tuple(self.channel_index[ch] for ch in channels)
        tau = max(float(self.flit_time[c]) for c in ids)
        return ResolvedSegment(channel_ids=ids, bottleneck_flit_time=tau)

    def resolve(self, source: int, destination: int) -> tuple[ResolvedSegment, ...]:
        """Segments of the journey ``source → destination`` (flat node ids)."""
        require(source != destination, "source and destination must differ")
        src_cluster = self.system.cluster_of(source)
        if src_cluster.contains_global(destination):
            key = (source, destination)
            seg = self._intra_cache.get(key)
            if seg is None:
                path = intra_path(self.system, source, destination)
                seg = self._segment(path.segments[0].channels)
                self._intra_cache[key] = seg
            return (seg,)

        dst_cluster = self.system.cluster_of(destination)
        up = self._ascend_cache.get(source)
        mid = self._icn2_cache.get((src_cluster.index, dst_cluster.index))
        down = self._descend_cache.get(destination)
        if up is None or mid is None or down is None:
            path = inter_path(self.system, source, destination)
            if up is None:
                up = self._segment(path.segments[0].channels)
                self._ascend_cache[source] = up
            if mid is None:
                mid = self._segment(path.segments[1].channels)
                self._icn2_cache[(src_cluster.index, dst_cluster.index)] = mid
            if down is None:
                down = self._segment(path.segments[2].channels)
                self._descend_cache[destination] = down
        return (up, mid, down)

    def resolve_runtime(self, source: int, destination: int) -> tuple:
        """Pre-resolved per-path segment tuples for the message-level hot loop.

        Each segment is a plain tuple ``(channel_ids, hold_times, tau,
        drain, last)`` where ``hold_times[k] = M·τ_k`` (full-message
        occupancy of channel *k*), ``drain = (M−1)·τ*`` (tail streaming at
        the bottleneck rate) and ``last = len(channel_ids) − 1`` — the
        per-event release/drain arithmetic with every product folded in at
        resolve time.  Cached per (source, destination) pair with segment
        records shared across pairs, so a session reuses them across runs.
        """
        key = (source, destination)
        path = self._runtime_path_cache.get(key)
        if path is None:
            seg_cache = self._runtime_seg_cache
            m = self.message.length_flits
            flit_time = self.flit_time
            segments = []
            for seg in self.resolve(source, destination):
                rec = seg_cache.get(seg)
                if rec is None:
                    cids = seg.channel_ids
                    tau = seg.bottleneck_flit_time
                    rec = (
                        cids,
                        tuple(m * float(flit_time[c]) for c in cids),
                        tau,
                        (m - 1) * tau,
                        len(cids) - 1,
                    )
                    seg_cache[seg] = rec
                segments.append(rec)
            path = tuple(segments)
            self._runtime_path_cache[key] = path
        return path

    def uncontended_flags(self, *, ideal_sinks: bool, cd_mode: str) -> list[bool]:
        """Per-channel "grants without queueing" flags for one run config.

        Ejection links are uncontended under the model's ideal-sink
        assumption; concentrator/dispatcher ingress links are uncontended
        under ``cd_mode="paper"`` (the Eq. 29 "always able to receive"
        buffer).
        """
        n_ch = self.num_channels
        flags = [bool(e) for e in self.ejection] if ideal_sinks else [False] * n_ch
        if cd_mode == "paper":
            flags = [u or bool(cd) for u, cd in zip(flags, self.cd_reception)]
        return flags

    def hot_resolver(self, *, ideal_sinks: bool, cd_mode: str):
        """A cached ``resolve(source, destination)`` for one run config.

        Returns paths whose segment records extend
        :meth:`resolve_runtime` with a sixth field: ``rel_items``, the
        tuple of ``(k, channel_id, M·τ_k, (last−k)·τ*)`` entries for the
        segment's *contended* channels only — the release arithmetic the
        hot loop runs at every segment sink, with the uncontended-channel
        branch resolved away.  Caches live on the fabric keyed by the run
        config, so a session reuses them across load points.
        """
        key = (bool(ideal_sinks), cd_mode)
        entry = self._hot_cache.get(key)
        if entry is None:
            entry = ({}, {}, self.uncontended_flags(ideal_sinks=ideal_sinks, cd_mode=cd_mode))
            self._hot_cache[key] = entry
        path_cache, seg_cache, flags = entry
        base = self.resolve_runtime

        def resolve(source: int, destination: int) -> tuple:
            pair = (source, destination)
            path = path_cache.get(pair)
            if path is None:
                segments = []
                for rec in base(source, destination):
                    spec = seg_cache.get(rec)
                    if spec is None:
                        cids, hold, tau, drain, last = rec
                        rel_items = tuple(
                            (kk, cids[kk], hold[kk], (last - kk) * tau)
                            for kk in range(last + 1)
                            if not flags[cids[kk]]
                        )
                        spec = (cids, hold, tau, drain, last, rel_items)
                        seg_cache[rec] = spec
                    segments.append(spec)
                path = tuple(segments)
                path_cache[pair] = path
            return path

        return resolve

    # -- reporting -------------------------------------------------------------------

    def channels_per_group(self) -> dict[str, int]:
        """Directed channel counts by reporting group."""
        counts = {name: 0 for name in GROUPS}
        for g in self.group:
            counts[GROUPS[int(g)]] += 1
        return counts
