"""Flit-accurate wormhole simulator (the reference for the drain model).

Simulates every flit crossing of every channel under single-flit-buffer
wormhole switching (paper assumption 6).  Within a segment the start time
of flit ``f`` on channel ``k`` obeys the three physical constraints:

* **arrival** — it must have finished crossing channel ``k-1``;
* **serialisation** — the previous flit must have finished crossing ``k``
  (a channel moves one flit per flit-time);
* **buffer** — the previous flit must have *started* crossing ``k+1``
  (each channel output holds a single flit; the worm stretches at most one
  flit per stage).  The segment sink consumes flits immediately.

Headers additionally acquire channels FIFO, and a channel stays held from
its header grant until its tail flit leaves — so a blocked header idles its
whole trail exactly as in the message-level engine, but here the drain is
*computed*, not approximated.  The drain-model ablation bench compares the
two engines.

Segment transitions follow the same two concentrator semantics as the
message-level engine (``cd_mode`` — see
:class:`repro.simulation.wormhole.MessageLevelWormholeSimulator`): in
``"paper"`` mode the header cuts through the concentrator and the next
segment's flit supply is decoupled (each ``(message, segment)`` has
independent state, so a message can have several segments in flight); in
``"store_and_forward"`` mode the next segment starts only after the tail
fully arrives.

This engine is O(M·L) events per message and is intended for small/medium
systems (tests, ablations); the paper-scale sweeps use the message-level
engine.
"""

from __future__ import annotations

import time as _time
from collections import deque
from heapq import heappop, heappush

from repro._util import require
from repro.simulation.fabric import GROUPS, ResolvedFabric
from repro.simulation.metrics import LatencyCollector, MeasurementWindow
from repro.simulation.rng import SimulationStreams
from repro.simulation.traffic import PoissonArrivals, SimTrafficPattern, UniformDestinations
from repro.simulation.wormhole import RawRunResult

__all__ = ["FlitLevelSimulator"]

_GEN, _FINISH, _REL = 0, 1, 2
_UNKNOWN = -1.0


class _Journey:
    """Whole-message bookkeeping shared by its segments."""

    __slots__ = ("seq", "source", "destination", "path", "gen_time", "measured")

    def __init__(self, seq, source, destination, path, gen_time, measured):
        self.seq = seq
        self.source = source
        self.destination = destination
        self.path = path
        self.gen_time = gen_time
        self.measured = measured


class _SegState:
    """Flit schedule of one (message, segment) pair.

    Owns its own start/finish grids so that, under cut-through concentrator
    semantics, pending events of an earlier segment can never alias the
    state of a later one.
    """

    __slots__ = ("journey", "seg_index", "cids", "starts", "finishes", "grant_time", "request_time")

    def __init__(self, journey: _Journey, seg_index: int, m_flits: int, request_time: float):
        self.journey = journey
        self.seg_index = seg_index
        self.cids = journey.path[seg_index].channel_ids
        length = len(self.cids)
        self.starts = [[_UNKNOWN] * length for _ in range(m_flits)]
        self.finishes = [[_UNKNOWN] * length for _ in range(m_flits)]
        self.grant_time: dict[int, float] = {}
        self.request_time = request_time

    @property
    def is_final(self) -> bool:
        return self.seg_index + 1 >= len(self.journey.path)


class FlitLevelSimulator:
    """Flit-granularity wormhole simulator (same interface as message-level)."""

    def __init__(
        self,
        fabric: ResolvedFabric,
        window: MeasurementWindow,
        generation_rate: float,
        streams: SimulationStreams,
        pattern: SimTrafficPattern | None = None,
        *,
        ideal_sinks: bool = False,
        cd_mode: str = "paper",
    ) -> None:
        require(fabric.system.total_nodes >= 2, "simulation needs at least two nodes")
        require(cd_mode in ("paper", "store_and_forward"), f"unknown cd_mode {cd_mode!r}")
        self.fabric = fabric
        self.window = window
        self.pattern = pattern or UniformDestinations()
        self.streams = streams
        self.arrivals = PoissonArrivals(generation_rate, streams.arrivals)
        self.ideal_sinks = ideal_sinks
        self.cd_mode = cd_mode
        self.m_flits = fabric.message.length_flits

        n_ch = fabric.num_channels
        self._flit_time = fabric.flit_time.tolist()
        uncontended = fabric.ejection.copy() if ideal_sinks else [False] * n_ch
        if cd_mode == "paper":
            # Concentrator ingress buffers accept interleaved flits (the
            # model's "always able to receive" sink assumption, Eq. 29).
            uncontended = [u or cd for u, cd in zip(uncontended, fabric.cd_reception)]
        self._uncontended = uncontended
        self._holder = [-1] * n_ch
        self._waiters: list[deque] = [deque() for _ in range(n_ch)]
        self._last_grant = [0.0] * n_ch
        self._busy = [0.0] * len(GROUPS)
        self._group = fabric.group.tolist()

        self.collector = LatencyCollector(window)
        self._heap: list = []
        self._eseq = 0
        self._states: dict[int, _SegState] = {}
        self._next_sid = 0
        self._generated = 0
        self._events = 0
        self._now = 0.0
        self._source_wait_sum = 0.0
        self._source_wait_n = 0
        self._cd_wait_sum = 0.0
        self._cd_wait_n = 0
        self._last_result: RawRunResult | None = None

    # -- plumbing ------------------------------------------------------------------

    def _push(self, t: float, kind: int, a: int, f: int = 0, k: int = 0) -> None:
        self._eseq += 1
        heappush(self._heap, (t, self._eseq, kind, a, f, k))

    def run(self, *, max_events: int = 500_000_000) -> RawRunResult:
        wall_start = _time.perf_counter()
        for node in self.fabric.system.global_ids():
            self._push(self.arrivals.first_arrival(), _GEN, node)
        completed = False
        heap = self._heap
        while heap:
            t, _, kind, a, f, k = heappop(heap)
            self._now = t
            self._events += 1
            if kind == _FINISH:
                self._on_finish(t, a, f, k)
                if self.collector.all_measured_delivered:
                    completed = True
                    break
            elif kind == _REL:
                self._on_release(t, a)
            else:
                self._on_generate(t, a)
            if self._events >= max_events:
                break
        wall = _time.perf_counter() - wall_start
        busy = {name: self._busy[i] for i, name in enumerate(GROUPS)}
        result = RawRunResult(
            stats=self.collector.stats(),
            per_cluster_means=self.collector.per_cluster_means(),
            duration=self._now,
            events=self._events,
            completed=completed,
            generated=self._generated,
            source_wait_mean=self._source_wait_sum / self._source_wait_n if self._source_wait_n else float("nan"),
            concentrator_wait_mean=self._cd_wait_sum / self._cd_wait_n if self._cd_wait_n else float("nan"),
            busy_time_by_group=busy,
            wall_seconds=wall,
        )
        self._last_result = result
        return result

    def trajectory(self):
        """The :class:`~repro.simulation.eventcore.Trajectory` of the last
        completed :meth:`run` (same surface as the message-level engines)."""
        require(self._last_result is not None, "run() must complete before trajectory()")
        from repro.simulation.eventcore import build_trajectory

        return build_trajectory(self.collector, self._last_result)

    # -- generation --------------------------------------------------------------------

    def _on_generate(self, t: float, node: int) -> None:
        if self._generated >= self.window.total:
            return
        seq = self._generated
        self._generated += 1
        destination = self.pattern.sample_destination(self.streams.destinations, self.fabric.system, node)
        path = self.fabric.resolve(node, destination)
        journey = _Journey(seq, node, destination, path, t, self.window.is_measured(seq))
        self._start_segment(journey, 0, t)
        self._push(self.arrivals.next_arrival(t), _GEN, node)

    def _start_segment(self, journey: _Journey, seg_index: int, t: float) -> None:
        state = _SegState(journey, seg_index, self.m_flits, t)
        sid = self._next_sid
        self._next_sid += 1
        self._states[sid] = state
        self._request(state.cids[0], sid, 0, t)

    # -- channel acquisition ----------------------------------------------------------------

    def _request(self, cid: int, sid: int, k: int, t: float) -> None:
        if self._uncontended[cid]:
            self._grant(cid, sid, k, t, contended=False)
        elif self._holder[cid] < 0 and not self._waiters[cid]:
            self._grant(cid, sid, k, t, contended=True)
        else:
            self._waiters[cid].append((sid, k))

    def _grant(self, cid: int, sid: int, k: int, t: float, *, contended: bool) -> None:
        state = self._states[sid]
        if k == 0 and state.journey.measured:  # queue-wait statistics
            wait = t - state.request_time
            if state.seg_index == 0:
                self._source_wait_sum += wait
                self._source_wait_n += 1
            else:
                self._cd_wait_sum += wait
                self._cd_wait_n += 1
        if contended:
            self._holder[cid] = sid
            self._last_grant[cid] = t
        state.grant_time[k] = t
        self._attempt(sid, state, 0, k)

    def _on_release(self, t: float, cid: int) -> None:
        self._busy[self._group[cid]] += t - self._last_grant[cid]
        waiters = self._waiters[cid]
        if waiters:
            nxt_sid, nxt_k = waiters.popleft()
            self._holder[cid] = -1
            self._grant(cid, nxt_sid, nxt_k, t, contended=True)
        else:
            self._holder[cid] = -1

    # -- the flit grid -----------------------------------------------------------------------

    def _attempt(self, sid: int, state: _SegState, f: int, k: int) -> None:
        """Start flit ``f`` on channel ``k`` once all preconditions are known."""
        starts = state.starts
        if starts[f][k] != _UNKNOWN:
            return
        length = len(state.cids)
        t = 0.0
        if f == 0:
            grant = state.grant_time.get(k)
            if grant is None:
                return
            t = grant
            if k > 0:
                arrive = state.finishes[0][k - 1]
                if arrive == _UNKNOWN:
                    return
                if arrive > t:
                    t = arrive
        else:
            if k > 0:
                arrive = state.finishes[f][k - 1]
                if arrive == _UNKNOWN:
                    return
                if arrive > t:
                    t = arrive
            serial = state.finishes[f - 1][k]
            if serial == _UNKNOWN:
                return
            if serial > t:
                t = serial
            if k + 1 < length:
                buffer_free = starts[f - 1][k + 1]
                if buffer_free == _UNKNOWN:
                    return
                if buffer_free > t:
                    t = buffer_free
        starts[f][k] = t
        self._push(t + self._flit_time[state.cids[k]], _FINISH, sid, f, k)
        # A newly known start frees the buffer behind it.
        if k > 0 and f + 1 < self.m_flits:
            self._attempt(sid, state, f + 1, k - 1)

    def _on_finish(self, t: float, sid: int, f: int, k: int) -> None:
        state = self._states[sid]
        cids = state.cids
        length = len(cids)
        state.finishes[f][k] = t
        if f == 0:
            if k + 1 < length:
                self._request(cids[k + 1], sid, k + 1, t)
            elif not state.is_final and self.cd_mode == "paper":
                # Cut-through: the header entered the concentrator; launch
                # the next segment while this one keeps draining.
                self._start_segment(state.journey, state.seg_index + 1, t)
        if f + 1 < self.m_flits:
            self._attempt(sid, state, f + 1, k)
        if k + 1 < length and f > 0:
            self._attempt(sid, state, f, k + 1)
        if f == self.m_flits - 1:
            cid = cids[k]
            if not self._uncontended[cid]:
                self._push(t, _REL, cid)
            if k == length - 1:
                self._segment_tail_done(t, sid, state)

    # -- segment lifecycle ----------------------------------------------------------------------

    def _segment_tail_done(self, t: float, sid: int, state: _SegState) -> None:
        """Tail left the segment's last channel: full delivery at sink/CD."""
        journey = state.journey
        del self._states[sid]
        if not state.is_final:
            if self.cd_mode == "store_and_forward":
                self._start_segment(journey, state.seg_index + 1, t)
            return
        source_cluster = self.fabric.system.cluster_of(journey.source).index
        self.collector.record(
            journey.seq,
            t - journey.gen_time,
            inter_cluster=len(journey.path) > 1,
            source_cluster=source_cluster,
        )
