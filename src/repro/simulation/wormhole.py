"""Message-level discrete-event wormhole simulator.

Events are channel acquisitions and releases rather than flit hops — the
defining wormhole property is preserved exactly (a message holds every
channel of a segment from its header's acquisition until tail drain, so a
blocked header idles its whole trail and contention couples across the
fabric), while the in-message flit pipeline is computed analytically at
delivery time (DESIGN.md §4):

* header crossing channel ``k`` takes that channel's flit time;
* once the header reaches the segment sink at ``t``, the remaining
  ``M - 1`` flits stream at the bottleneck rate: delivery at
  ``t + (M-1)·τ*`` with ``τ* = max flit time on the segment``;
* channel ``k`` releases at ``max(grant_k + M·τ_k, t_del − (L−1−k)·τ*)``
  (lock-step forward drain).

The flit-accurate :mod:`repro.simulation.flitsim` certifies this
approximation in the drain-model ablation bench.

Inter-cluster journeys consist of three such segments glued by
store-and-forward concentrator/dispatcher buffers: the next segment's
first channel is requested only after full delivery into the buffer, and
that injection channel's FIFO is exactly the Eq. 37 queue.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro._util import require
from repro.simulation.fabric import GROUPS, ResolvedFabric
from repro.simulation.metrics import LatencyCollector, LatencyStats, MeasurementWindow
from repro.simulation.rng import SimulationStreams
from repro.simulation.traffic import PoissonArrivals, SimTrafficPattern, UniformDestinations

__all__ = ["RawRunResult", "MessageLevelWormholeSimulator"]

_GEN, _HDR, _REL, _DEL = 0, 1, 2, 3


class _Message:
    """In-flight message state (mutable, slot-optimised)."""

    __slots__ = ("seq", "source", "destination", "path", "seg", "k", "grants", "gen_time", "request_time", "measured")

    def __init__(self, seq, source, destination, path, gen_time, measured):
        self.seq = seq
        self.source = source
        self.destination = destination
        self.path = path
        self.seg = 0
        self.k = 0
        self.grants: list[float] = []
        self.gen_time = gen_time
        self.request_time = gen_time
        self.measured = measured


@dataclass(frozen=True)
class RawRunResult:
    """Raw outcome of one simulator run (either granularity)."""

    stats: LatencyStats
    per_cluster_means: dict[int, float]
    duration: float  # simulated time at termination
    events: int
    completed: bool  # all measured messages delivered within the event budget
    generated: int
    source_wait_mean: float
    concentrator_wait_mean: float
    busy_time_by_group: dict[str, float]
    wall_seconds: float
    extra: dict = field(default_factory=dict)


class MessageLevelWormholeSimulator:
    """Channel-acquisition-granularity wormhole simulator.

    Parameters
    ----------
    fabric:
        the resolved fabric (system × message spec).
    window:
        measurement protocol (warmup / measured / drain counts).
    generation_rate:
        per-node Poisson rate ``λ_g``.
    streams:
        deterministic RNG streams.
    pattern:
        destination sampler (defaults to uniform — paper assumption 2).
    ideal_sinks:
        if True, final ejection channels are uncontended (the model's
        "destination always able to receive" assumption); default False
        keeps them physical.
    cd_mode:
        concentrator/dispatcher semantics.  ``"paper"`` (default) is
        cut-through with per-segment independent drains — the simulator
        counterpart of the model's "merge unit" approximation (Eq. 20) and
        the Eq. 37 concentrate service ``M t_cs^{I2}``; it reproduces both
        the paper's light-load latencies and its saturation points.
        ``"store_and_forward"`` buffers the whole message at each
        concentrator before re-injection — physically conservative (full
        flit causality across segments) but it triple-serialises the
        message; kept for the ablation bench.
    """

    def __init__(
        self,
        fabric: ResolvedFabric,
        window: MeasurementWindow,
        generation_rate: float,
        streams: SimulationStreams,
        pattern: SimTrafficPattern | None = None,
        *,
        ideal_sinks: bool = False,
        cd_mode: str = "paper",
    ) -> None:
        require(cd_mode in ("paper", "store_and_forward"), f"unknown cd_mode {cd_mode!r}")
        self.cd_mode = cd_mode
        require(fabric.system.total_nodes >= 2, "simulation needs at least two nodes")
        self.fabric = fabric
        self.window = window
        self.pattern = pattern or UniformDestinations()
        self.streams = streams
        self.arrivals = PoissonArrivals(generation_rate, streams.arrivals)
        self.ideal_sinks = ideal_sinks
        self.m_flits = fabric.message.length_flits

        n_ch = fabric.num_channels
        self._flit_time = fabric.flit_time.tolist()
        uncontended = fabric.ejection.copy() if ideal_sinks else [False] * n_ch
        if cd_mode == "paper":
            # Concentrator ingress buffers accept interleaved flits (the
            # model's "always able to receive" sink assumption, Eq. 29).
            uncontended = [u or cd for u, cd in zip(uncontended, fabric.cd_reception)]
        self._uncontended = uncontended
        self._holder = [-1] * n_ch
        self._waiters: list[deque] = [deque() for _ in range(n_ch)]
        self._last_grant = [0.0] * n_ch
        self._busy = [0.0] * len(GROUPS)
        self._group = fabric.group.tolist()

        self.collector = LatencyCollector(window)
        self._heap: list = []
        self._eseq = 0
        self._messages: dict[int, _Message] = {}
        self._generated = 0
        self._next_msg_id = 0
        self._events = 0
        self._now = 0.0
        self._source_wait_sum = 0.0
        self._source_wait_n = 0
        self._cd_wait_sum = 0.0
        self._cd_wait_n = 0

    # -- event plumbing -----------------------------------------------------------

    def _push(self, t: float, kind: int, payload: int) -> None:
        self._eseq += 1
        heappush(self._heap, (t, self._eseq, kind, payload))

    # -- run loop -------------------------------------------------------------------

    def run(self, *, max_events: int = 500_000_000) -> RawRunResult:
        """Run until every measured message is delivered (or event budget)."""
        wall_start = _time.perf_counter()
        for node in self.fabric.system.global_ids():
            self._push(self.arrivals.first_arrival(), _GEN, node)

        heap = self._heap
        completed = False
        while heap:
            t, _, kind, payload = heappop(heap)
            self._now = t
            self._events += 1
            if kind == _HDR:
                self._on_header(t, payload)
            elif kind == _REL:
                self._on_release(t, payload)
            elif kind == _DEL:
                self._on_delivery(t, payload)
                if self.collector.all_measured_delivered:
                    completed = True
                    break
            else:
                self._on_generate(t, payload)
            if self._events >= max_events:
                break
        wall = _time.perf_counter() - wall_start
        stats = self.collector.stats()
        busy = {name: self._busy[i] for i, name in enumerate(GROUPS)}
        return RawRunResult(
            stats=stats,
            per_cluster_means=self.collector.per_cluster_means(),
            duration=self._now,
            events=self._events,
            completed=completed,
            generated=self._generated,
            source_wait_mean=self._source_wait_sum / self._source_wait_n if self._source_wait_n else float("nan"),
            concentrator_wait_mean=self._cd_wait_sum / self._cd_wait_n if self._cd_wait_n else float("nan"),
            busy_time_by_group=busy,
            wall_seconds=wall,
        )

    # -- handlers ----------------------------------------------------------------------

    def _on_generate(self, t: float, node: int) -> None:
        if self._generated >= self.window.total:
            return  # budget exhausted: no new traffic, no rescheduling
        seq = self._generated
        self._generated += 1
        destination = self.pattern.sample_destination(self.streams.destinations, self.fabric.system, node)
        path = self.fabric.resolve(node, destination)
        msg = _Message(seq, node, destination, path, t, self.window.is_measured(seq))
        mid = self._next_msg_id
        self._next_msg_id += 1
        self._messages[mid] = msg
        self._request(path[0].channel_ids[0], mid, t)
        self._push(self.arrivals.next_arrival(t), _GEN, node)

    def _request(self, cid: int, mid: int, t: float) -> None:
        if self._uncontended[cid]:
            self._grant(cid, mid, t, contended=False)
        elif self._holder[cid] < 0 and not self._waiters[cid]:
            self._grant(cid, mid, t, contended=True)
        else:
            self._waiters[cid].append(mid)

    def _grant(self, cid: int, mid: int, t: float, *, contended: bool) -> None:
        msg = self._messages[mid]
        if not msg.grants:  # first channel of a segment: queue-wait statistics
            if msg.measured:
                wait = t - msg.request_time
                if msg.seg == 0:
                    self._source_wait_sum += wait
                    self._source_wait_n += 1
                else:
                    self._cd_wait_sum += wait
                    self._cd_wait_n += 1
        msg.grants.append(t)
        if contended:
            self._holder[cid] = mid
            self._last_grant[cid] = t
        self._push(t + self._flit_time[cid], _HDR, mid)

    def _on_header(self, t: float, mid: int) -> None:
        msg = self._messages[mid]
        segment = msg.path[msg.seg]
        cids = segment.channel_ids
        k = msg.k
        if k + 1 < len(cids):
            msg.k = k + 1
            self._request(cids[k + 1], mid, t)
            return
        # Header reached the segment sink: schedule drain and releases.
        m_flits = self.m_flits
        tau_max = segment.bottleneck_flit_time
        t_del = t + (m_flits - 1) * tau_max
        grants = msg.grants
        last = len(cids) - 1
        flit_time = self._flit_time
        for kk, cid in enumerate(cids):
            if self._uncontended[cid]:
                continue
            release = grants[kk] + m_flits * flit_time[cid]
            drain = t_del - (last - kk) * tau_max
            self._push(release if release > drain else drain, _REL, cid)
        if msg.seg + 1 < len(msg.path) and self.cd_mode == "paper":
            # Cut-through: the header enters the concentrator/dispatcher and
            # immediately requests the next segment's injection channel; the
            # segment just finished drains independently behind it.
            msg.seg += 1
            msg.k = 0
            msg.grants = []
            msg.request_time = t
            self._request(msg.path[msg.seg].channel_ids[0], mid, t)
        else:
            self._push(t_del, _DEL, mid)

    def _on_release(self, t: float, cid: int) -> None:
        group = self._group[cid]
        self._busy[group] += t - self._last_grant[cid]
        waiters = self._waiters[cid]
        if waiters:
            nxt = waiters.popleft()
            self._holder[cid] = -1
            self._grant(cid, nxt, t, contended=True)
        else:
            self._holder[cid] = -1

    def _on_delivery(self, t: float, mid: int) -> None:
        msg = self._messages[mid]
        if msg.seg + 1 < len(msg.path):
            # Store-and-forward at the concentrator/dispatcher buffer.
            msg.seg += 1
            msg.k = 0
            msg.grants = []
            msg.request_time = t
            self._request(msg.path[msg.seg].channel_ids[0], mid, t)
            return
        source_cluster = self.fabric.system.cluster_of(msg.source).index
        self.collector.record(
            msg.seq,
            t - msg.gen_time,
            inter_cluster=len(msg.path) > 1,
            source_cluster=source_cluster,
        )
        del self._messages[mid]
