"""Message-level discrete-event wormhole simulator.

Events are channel acquisitions and releases rather than flit hops — the
defining wormhole property is preserved exactly (a message holds every
channel of a segment from its header's acquisition until tail drain, so a
blocked header idles its whole trail and contention couples across the
fabric), while the in-message flit pipeline is computed analytically at
delivery time (DESIGN.md §4):

* header crossing channel ``k`` takes that channel's flit time;
* once the header reaches the segment sink at ``t``, the remaining
  ``M - 1`` flits stream at the bottleneck rate: delivery at
  ``t + (M-1)·τ*`` with ``τ* = max flit time on the segment``;
* channel ``k`` releases at ``max(grant_k + M·τ_k, t_del − (L−1−k)·τ*)``
  (lock-step forward drain).

The flit-accurate :mod:`repro.simulation.flitsim` certifies this
approximation in the drain-model ablation bench.

Inter-cluster journeys consist of three such segments glued by
store-and-forward concentrator/dispatcher buffers: the next segment's
first channel is requested only after full delivery into the buffer, and
that injection channel's FIFO is exactly the Eq. 37 queue.

Hot-path design
---------------
Validation wall-clock is dominated by this event loop, so it is written
for CPython throughput rather than for symmetry with the flit engine:

* one monolithic :meth:`~MessageLevelWormholeSimulator.run` loop with
  every piece of mutable state bound to locals (heap ops included) and
  the request/grant logic inlined at each call site;
* events are plain ``(time, tag, payload)`` tuples — the kind lives in the
  low bits of the monotone tie-break tag — and in-flight messages are plain
  list records (list indexing beats both ``__slots__`` attribute access and
  dict lookups by message id — the message object itself rides in the event
  tuple, so there is no id table at all);
* paths come from :meth:`ResolvedFabric.resolve_runtime` as pre-resolved
  per-segment tuples ``(channel_ids, hold_times, τ*, drain, last)`` with
  the ``M·τ_k`` / ``(M−1)·τ*`` products folded in at resolve time;
* arrival gaps and uniform destination draws are pre-generated in one
  batched numpy call each (bit-identical to the historical scalar draws,
  because numpy's ``Generator`` streams the same values either way) and
  can be replayed from a session-level
  :class:`~repro.simulation.rng.ReplayableDraws` cache so repeated load
  points of one session skip the RNG work entirely.

Every optimisation preserves the event order (same push sequence, same
tie-break counter) and the RNG consumption order, so results are
bit-identical to the pre-optimisation engine for any seed.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush, heapreplace

from repro._util import require, require_positive
from repro.simulation.fabric import GROUPS, ResolvedFabric
from repro.simulation.metrics import LatencyCollector, LatencyStats, MeasurementWindow
from repro.simulation.rng import ReplayableDraws, SimulationStreams
from repro.simulation.traffic import SimTrafficPattern, UniformDestinations

__all__ = ["RawRunResult", "MessageLevelWormholeSimulator"]

_GEN, _HDR, _REL, _DEL = 0, 1, 2, 3

# In-flight message record layout (plain list, see module docstring).
_SEQ, _SRC, _PATH, _NSEG, _SEG, _CUR, _K, _GRANTS, _GEN_T, _REQ_T, _MEAS = range(11)


@dataclass(frozen=True)
class RawRunResult:
    """Raw outcome of one simulator run (either granularity)."""

    stats: LatencyStats
    per_cluster_means: dict[int, float]
    duration: float  # simulated time at termination
    events: int
    completed: bool  # all measured messages delivered within the event budget
    generated: int
    source_wait_mean: float
    concentrator_wait_mean: float
    busy_time_by_group: dict[str, float]
    wall_seconds: float
    extra: dict = field(default_factory=dict)


class MessageLevelWormholeSimulator:
    """Channel-acquisition-granularity wormhole simulator.

    Parameters
    ----------
    fabric:
        the resolved fabric (system × message spec).
    window:
        measurement protocol (warmup / measured / drain counts).
    generation_rate:
        per-node Poisson rate ``λ_g``.
    streams:
        deterministic RNG streams.
    pattern:
        destination sampler (defaults to uniform — paper assumption 2).
    ideal_sinks:
        if True, final ejection channels are uncontended (the model's
        "destination always able to receive" assumption); default False
        keeps them physical.
    cd_mode:
        concentrator/dispatcher semantics.  ``"paper"`` (default) is
        cut-through with per-segment independent drains — the simulator
        counterpart of the model's "merge unit" approximation (Eq. 20) and
        the Eq. 37 concentrate service ``M t_cs^{I2}``; it reproduces both
        the paper's light-load latencies and its saturation points.
        ``"store_and_forward"`` buffers the whole message at each
        concentrator before re-injection — physically conservative (full
        flit causality across segments) but it triple-serialises the
        message; kept for the ablation bench.
    draws:
        optional :class:`~repro.simulation.rng.ReplayableDraws` cache for
        this run's seed.  When given, the pre-generated arrival/destination
        arrays are replayed from it instead of re-drawn, so repeated load
        points of one session skip RNG setup; results are bit-identical
        either way.
    engine:
        ``"reference"`` (default) runs the CPython event loop below;
        ``"array"`` dispatches to the compiled array-based event core
        (:mod:`repro.simulation.eventcore`), which reproduces the
        reference trajectory bit for bit and falls back to the reference
        loop when no C compiler is available.
    """

    def __init__(
        self,
        fabric: ResolvedFabric,
        window: MeasurementWindow,
        generation_rate: float,
        streams: SimulationStreams,
        pattern: SimTrafficPattern | None = None,
        *,
        ideal_sinks: bool = False,
        cd_mode: str = "paper",
        draws: ReplayableDraws | None = None,
        engine: str = "reference",
    ) -> None:
        require(cd_mode in ("paper", "store_and_forward"), f"unknown cd_mode {cd_mode!r}")
        require(engine in ("reference", "array"), f"unknown engine {engine!r}")
        self.cd_mode = cd_mode
        self.engine = engine
        require(fabric.system.total_nodes >= 2, "simulation needs at least two nodes")
        require_positive(generation_rate, "generation_rate")
        self.fabric = fabric
        self.window = window
        self.pattern = pattern or UniformDestinations()
        self.streams = streams
        self.generation_rate = generation_rate
        self.ideal_sinks = ideal_sinks

        n_ch = fabric.num_channels
        self._flit_time = fabric.flit_time.tolist()
        # Concentrator ingress buffers accept interleaved flits under
        # cd_mode="paper" (the model's "always able to receive" sink
        # assumption, Eq. 29); ideal sinks add the ejection links.
        self._uncontended = fabric.uncontended_flags(ideal_sinks=ideal_sinks, cd_mode=cd_mode)
        # Per-channel occupancy: holder (0/1) + queued waiters, one int so
        # the request fast path reads a single list cell.
        self._occupancy = [0] * n_ch
        self._waiters: list[deque] = [deque() for _ in range(n_ch)]
        self._last_grant = [0.0] * n_ch
        self._busy = [0.0] * len(GROUPS)
        self._group = fabric.group.tolist()
        self._cluster_index = fabric.cluster_index

        self.collector = LatencyCollector(window)
        self._heap: list = []
        self._generated = 0
        self._events = 0
        self._now = 0.0
        self._source_wait_sum = 0.0
        self._source_wait_n = 0
        self._cd_wait_sum = 0.0
        self._cd_wait_n = 0

        # Pre-generated stochastic streams (see module docstring).  Arrival
        # draw i is consumed exactly where the scalar engine drew it: the
        # first N entries seed each node's first arrival, entry N+s is the
        # gap scheduled by generation s.  Destination draw s belongs to
        # generation s.  Python lists, so the heap holds plain floats.
        n_nodes = fabric.system.total_nodes
        need = n_nodes + window.total
        unit = draws.unit_arrivals(need) if draws is not None else streams.arrivals.standard_exponential(need)
        self._arrival_gaps_array = unit * (1.0 / generation_rate)
        self._arrival_gaps = self._arrival_gaps_array.tolist()
        if type(self.pattern) is UniformDestinations:
            if draws is not None:
                raw = draws.destinations(window.total, n_nodes - 1)
            else:
                raw = streams.destinations.integers(0, n_nodes - 1, size=window.total)
            self._dest_draws_array = raw
            self._dest_draws: "list[int] | None" = raw.tolist()
        else:
            self._dest_draws_array = None
            self._dest_draws = None
        self._last_result: RawRunResult | None = None

    # -- run loop -------------------------------------------------------------------

    def run(self, *, max_events: int = 500_000_000, trace: "list | None" = None) -> RawRunResult:
        """Run until every measured message is delivered (or event budget).

        When *trace* is a list, every processed event is appended to it as
        ``(time, kind, id)`` — kind is ``_GEN``/``_HDR``/``_REL``/``_DEL``
        and id is the message sequence number (negative ``-(node+1)`` for
        post-budget arrivals, the channel id for releases).  Both engines
        emit the identical stream; the differential suite compares them
        element for element.
        """
        if self.engine == "array":
            from repro.simulation import eventcore

            if eventcore.kernel_available():
                result = eventcore.array_run(self, max_events=max_events, trace=trace)
                self._last_result = result
                return result
            # No compiler/kernel on this host: the reference loop below is
            # the bit-identical fallback.
        wall_start = _time.perf_counter()

        window = self.window
        total_budget = window.total
        warmup = window.warmup
        measured_end = warmup + window.measured
        measured_target = window.measured

        heap = self._heap
        push = heappush
        pop = heappop
        flit_time = self._flit_time
        uncontended = self._uncontended
        occupancy = self._occupancy
        waiters = self._waiters
        last_grant = self._last_grant
        busy = self._busy
        group = self._group
        cluster_index = self._cluster_index
        paths = self.fabric.hot_resolver(ideal_sinks=self.ideal_sinks, cd_mode=self.cd_mode)
        collector = self.collector
        lat_append = collector._latencies.append
        inter_append = collector._is_inter.append
        src_append = collector._src_clusters.append
        cd_paper = self.cd_mode == "paper"
        arr = self._arrival_gaps
        dest_draws = self._dest_draws
        system = self.fabric.system
        n_nodes = system.total_nodes
        arr_gen = arr[n_nodes:]  # gap i belongs to generation i
        pattern_sample = None if dest_draws is not None else self.pattern.sample_destination
        dest_rng = self.streams.destinations
        trace_append = trace.append if trace is not None else None

        # Events are 3-tuples ``(time, tag, payload)`` with the kind packed
        # into the low bits of the tie-break tag (eseq advances in steps of
        # 4, so ``tag = eseq | kind`` stays monotone in push order and
        # same-time events resolve exactly as they were scheduled).
        #
        # Two heaps: arrival (_GEN) events — one permanently pending per
        # node — live in their own heap, keeping the main heap shallow for
        # the ~95% of events that are channel traffic; the strict
        # lexicographic merge of the two heads reproduces the single-heap
        # pop order bit for bit, and a generation replaces its own arrival
        # in place (one sift instead of a pop + push).
        eseq = 0
        events = 0
        generated = 0
        t = 0.0
        delivered = 0
        completed = False
        source_wait_sum = 0.0
        source_wait_n = 0
        cd_wait_sum = 0.0
        cd_wait_n = 0

        arr_heap: list = []
        for node in system.global_ids():
            eseq += 4
            arr_heap.append((arr[node], eseq, node))
        arr_heap.sort()  # already heap-shaped either way; sort is cheap and exact

        while True:
            if arr_heap:
                head = arr_heap[0]
                if heap and heap[0] < head:
                    t, tag, payload = pop(heap)
                    is_arrival = False
                else:
                    t, tag, payload = head
                    is_arrival = True
            elif heap:
                t, tag, payload = pop(heap)
                is_arrival = False
            else:
                break
            events += 1
            if trace_append is not None:
                if is_arrival:
                    trace_append((t, _GEN, generated if generated < total_budget else -(payload + 1)))
                else:
                    k = tag & 3
                    trace_append((t, k, payload if k == _REL else payload[_SEQ]))
            if is_arrival:
                if generated < total_budget:
                    seq = generated
                    generated += 1
                    node = payload
                    if dest_draws is not None:
                        draw = dest_draws[seq]
                        destination = draw + 1 if draw >= node else draw
                    else:
                        destination = pattern_sample(dest_rng, system, node)
                    path = paths(node, destination)
                    measured = warmup <= seq < measured_end
                    grants = []
                    seg = path[0]
                    msg = [seq, node, path, len(path), 0, seg, 0, grants, t, t, measured]
                    cid = seg[0][0]
                    if uncontended[cid]:
                        if measured:
                            source_wait_n += 1  # zero wait on the source queue
                        grants.append(t)
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    elif not occupancy[cid]:
                        if measured:
                            source_wait_n += 1
                        grants.append(t)
                        occupancy[cid] = 1
                        last_grant[cid] = t
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    else:
                        waiters[cid].append(msg)
                        occupancy[cid] += 1
                    eseq += 4
                    heapreplace(arr_heap, (t + arr_gen[seq], eseq, node))
                else:
                    # Budget exhausted: no new traffic, no rescheduling.
                    pop(arr_heap)
                if events >= max_events:
                    break
                continue
            kind = tag & 3
            if kind == _HDR:
                msg = payload
                seg = msg[_CUR]
                k = msg[_K]
                if k < seg[4]:
                    k += 1
                    msg[_K] = k
                    cid = seg[0][k]
                    # Mid-segment advance: grants is never empty here, so no
                    # queue-wait statistics at this site.
                    if uncontended[cid]:
                        msg[_GRANTS].append(t)
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    elif not occupancy[cid]:
                        msg[_GRANTS].append(t)
                        occupancy[cid] = 1
                        last_grant[cid] = t
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    else:
                        waiters[cid].append(msg)
                        occupancy[cid] += 1
                else:
                    # Header reached the segment sink: schedule drain/releases
                    # for the contended channels (rel_items pre-folds the
                    # release arithmetic and skips uncontended links).
                    grants = msg[_GRANTS]
                    t_del = t + seg[3]
                    for kk, cid, hold_kk, off in seg[5]:
                        release = grants[kk] + hold_kk
                        drain = t_del - off
                        eseq += 4
                        push(heap, (release if release > drain else drain, eseq | _REL, cid))
                    seg_i = msg[_SEG]
                    if cd_paper and seg_i + 1 < msg[_NSEG]:
                        # Cut-through: the header enters the concentrator/
                        # dispatcher and immediately requests the next
                        # segment's injection channel; the segment just
                        # finished drains independently behind it.
                        seg = msg[_PATH][seg_i + 1]
                        msg[_SEG] = seg_i + 1
                        msg[_CUR] = seg
                        msg[_K] = 0
                        msg[_GRANTS] = grants = []
                        msg[_REQ_T] = t
                        cid = seg[0][0]
                        if uncontended[cid]:
                            if msg[_MEAS]:
                                cd_wait_n += 1  # zero wait on the c/d queue
                            grants.append(t)
                            eseq += 4
                            push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                        elif not occupancy[cid]:
                            if msg[_MEAS]:
                                cd_wait_n += 1
                            grants.append(t)
                            occupancy[cid] = 1
                            last_grant[cid] = t
                            eseq += 4
                            push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                        else:
                            waiters[cid].append(msg)
                            occupancy[cid] += 1
                    else:
                        eseq += 4
                        push(heap, (t_del, eseq | _DEL, msg))
            elif kind == _REL:
                cid = payload
                busy[group[cid]] += t - last_grant[cid]
                remaining = occupancy[cid] - 1
                occupancy[cid] = remaining
                if remaining:
                    msg = waiters[cid].popleft()
                    last_grant[cid] = t
                    grants = msg[_GRANTS]
                    if not grants and msg[_MEAS]:
                        # First channel of a segment: queue-wait statistics.
                        wait = t - msg[_REQ_T]
                        if msg[_SEG] == 0:
                            source_wait_sum += wait
                            source_wait_n += 1
                        else:
                            cd_wait_sum += wait
                            cd_wait_n += 1
                    grants.append(t)
                    eseq += 4
                    push(heap, (t + flit_time[cid], eseq | _HDR, msg))
            else:  # _DEL
                msg = payload
                seg_i = msg[_SEG]
                if seg_i + 1 < msg[_NSEG]:
                    # Store-and-forward at the concentrator/dispatcher buffer.
                    seg = msg[_PATH][seg_i + 1]
                    msg[_SEG] = seg_i + 1
                    msg[_CUR] = seg
                    msg[_K] = 0
                    msg[_GRANTS] = grants = []
                    msg[_REQ_T] = t
                    cid = seg[0][0]
                    if uncontended[cid]:
                        if msg[_MEAS]:
                            cd_wait_n += 1
                        grants.append(t)
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    elif not occupancy[cid]:
                        if msg[_MEAS]:
                            cd_wait_n += 1
                        grants.append(t)
                        occupancy[cid] = 1
                        last_grant[cid] = t
                        eseq += 4
                        push(heap, (t + flit_time[cid], eseq | _HDR, msg))
                    else:
                        waiters[cid].append(msg)
                        occupancy[cid] += 1
                elif msg[_MEAS]:
                    # Measured delivery (the LatencyCollector.record fast
                    # path: the window check is the _MEAS flag itself).
                    lat_append(t - msg[_GEN_T])
                    inter_append(msg[_NSEG] > 1)
                    src_append(cluster_index[msg[_SRC]])
                    delivered += 1
                    if delivered >= measured_target:
                        completed = True
                        break
            if events >= max_events:
                break

        collector.delivered_measured = delivered
        self._events = events
        self._generated = generated
        self._now = t
        self._source_wait_sum = source_wait_sum
        self._source_wait_n = source_wait_n
        self._cd_wait_sum = cd_wait_sum
        self._cd_wait_n = cd_wait_n

        wall = _time.perf_counter() - wall_start
        stats = self.collector.stats()
        busy_by_group = {name: busy[i] for i, name in enumerate(GROUPS)}
        result = RawRunResult(
            stats=stats,
            per_cluster_means=self.collector.per_cluster_means(),
            duration=t,
            events=events,
            completed=completed,
            generated=generated,
            source_wait_mean=source_wait_sum / source_wait_n if source_wait_n else float("nan"),
            concentrator_wait_mean=cd_wait_sum / cd_wait_n if cd_wait_n else float("nan"),
            busy_time_by_group=busy_by_group,
            wall_seconds=wall,
        )
        self._last_result = result
        return result

    def trajectory(self):
        """The engine-invariant :class:`~repro.simulation.eventcore.Trajectory`
        of the last completed :meth:`run` — the public surface the
        differential and golden-corpus tests compare engines on."""
        require(self._last_result is not None, "run() must complete before trajectory()")
        from repro.simulation.eventcore import build_trajectory

        return build_trajectory(self.collector, self._last_result)
