"""Replicated simulation runs with confidence intervals.

One simulation run gives a point estimate; the paper's methodology (and
any defensible validation) wants replication.  :func:`replicate` runs the
same configuration under independent seeds and returns the across-replica
mean latency with a Student-t confidence interval.

Replica seeds are spawned from the base seed via
:func:`repro.simulation.rng.replica_seeds` (``SeedSequence.spawn``, never
``base_seed + i`` arithmetic), and each replica is an independent pure
function of its seed — so ``jobs=k`` fans the replicas across a process
pool with results bit-identical to the serial path for any ``k``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np
from scipy import stats as _stats

from repro._util import require
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.parallel import SimWorkItem, resolve_jobs, run_work_items
from repro.simulation.rng import replica_seeds
from repro.simulation.runner import SimulationResult, SimulationSession

__all__ = ["ReplicatedResult", "replicate"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Across-seed summary of one simulated operating point.

    ``events`` is the total event count across replicas; ``wall_seconds``
    is the *maximum* single-replica wall time (the critical path under
    parallel execution — summing would double-count concurrent work);
    ``elapsed_seconds`` is the observed end-to-end time of the whole
    replication call, so ``events_per_second`` reports the effective
    throughput actually achieved (serial or parallel).
    """

    generation_rate: float
    replicas: tuple[SimulationResult, ...]
    mean_latency: float
    ci_half_width: float
    confidence: float
    events: int = 0
    wall_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    jobs: int = 1

    @property
    def ci_low(self) -> float:
        return self.mean_latency - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean_latency + self.ci_half_width

    def contains(self, value: float) -> bool:
        """True if *value* falls inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (precision of the run)."""
        return self.ci_half_width / self.mean_latency if self.mean_latency else float("nan")

    @property
    def events_per_second(self) -> float:
        """Effective simulator throughput of the whole replication call."""
        return self.events / self.elapsed_seconds if self.elapsed_seconds > 0 else float("nan")

    @property
    def seeds(self) -> tuple[int, ...]:
        """The per-replica seeds actually used (spawned, not base+i)."""
        return tuple(r.seed for r in self.replicas)


def replicate(
    session: SimulationSession,
    generation_rate: float,
    *,
    replicas: int = 5,
    base_seed: int = 0,
    window: MeasurementWindow | None = None,
    confidence: float = 0.95,
    jobs: "int | str | None" = None,
    **run_kwargs,
) -> ReplicatedResult:
    """Run *replicas* independent simulations and summarise the latency.

    Per-replica seeds are spawned from *base_seed* (see
    :func:`~repro.simulation.rng.replica_seeds`); all other run parameters
    are forwarded to :meth:`SimulationSession.run`.  ``jobs`` fans the
    replicas across a process pool (``0``/``"auto"`` = one worker per
    CPU); results are bit-identical to serial execution for any worker
    count because each replica depends only on its own seed.
    """
    require(replicas >= 2, "at least two replicas are needed for a CI")
    require(0.0 < confidence < 1.0, "confidence must be in (0, 1)")
    seeds = replica_seeds(base_seed, replicas)
    window = window or MeasurementWindow.scaled_paper(20_000)
    # Cap at the replica count so the recorded jobs reflects the workers
    # that could actually run (run_work_items applies the same cap).
    n_jobs = min(resolve_jobs(jobs), replicas)
    start = _time.perf_counter()
    if n_jobs > 1:
        items = [
            SimWorkItem(
                system=session.system_config,
                message=session.message,
                options=session.options,
                generation_rate=generation_rate,
                seed=seed,
                window=window,
                **run_kwargs,
            )
            for seed in seeds
        ]
        results = tuple(run_work_items(items, jobs=n_jobs))
    else:
        results = tuple(
            session.run(generation_rate, seed=seed, window=window, **run_kwargs)
            for seed in seeds
        )
    elapsed = _time.perf_counter() - start
    means = np.array([r.mean_latency for r in results], dtype=np.float64)
    mean = float(means.mean())
    sem = float(means.std(ddof=1) / np.sqrt(replicas))
    t_crit = float(_stats.t.ppf(0.5 + confidence / 2.0, df=replicas - 1))
    return ReplicatedResult(
        generation_rate=generation_rate,
        replicas=results,
        mean_latency=mean,
        ci_half_width=t_crit * sem,
        confidence=confidence,
        events=sum(r.events for r in results),
        wall_seconds=max(r.wall_seconds for r in results),
        elapsed_seconds=elapsed,
        jobs=n_jobs,
    )
