"""Replicated simulation runs with confidence intervals.

One simulation run gives a point estimate; the paper's methodology (and
any defensible validation) wants replication.  :func:`replicate` runs the
same configuration under independent seeds and returns the across-replica
mean latency with a Student-t confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _stats

from repro._util import require
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.runner import SimulationResult, SimulationSession

__all__ = ["ReplicatedResult", "replicate"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Across-seed summary of one simulated operating point."""

    generation_rate: float
    replicas: tuple[SimulationResult, ...]
    mean_latency: float
    ci_half_width: float
    confidence: float

    @property
    def ci_low(self) -> float:
        return self.mean_latency - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean_latency + self.ci_half_width

    def contains(self, value: float) -> bool:
        """True if *value* falls inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (precision of the run)."""
        return self.ci_half_width / self.mean_latency if self.mean_latency else float("nan")


def replicate(
    session: SimulationSession,
    generation_rate: float,
    *,
    replicas: int = 5,
    base_seed: int = 0,
    window: MeasurementWindow | None = None,
    confidence: float = 0.95,
    **run_kwargs,
) -> ReplicatedResult:
    """Run *replicas* independent simulations and summarise the latency.

    Seeds are ``base_seed + i``; all other run parameters are forwarded to
    :meth:`SimulationSession.run`.
    """
    require(replicas >= 2, "at least two replicas are needed for a CI")
    require(0.0 < confidence < 1.0, "confidence must be in (0, 1)")
    results = tuple(
        session.run(generation_rate, seed=base_seed + i, window=window, **run_kwargs)
        for i in range(replicas)
    )
    means = np.array([r.mean_latency for r in results], dtype=np.float64)
    mean = float(means.mean())
    sem = float(means.std(ddof=1) / np.sqrt(replicas))
    t_crit = float(_stats.t.ppf(0.5 + confidence / 2.0, df=replicas - 1))
    return ReplicatedResult(
        generation_rate=generation_rate,
        replicas=results,
        mean_latency=mean,
        ci_half_width=t_crit * sem,
        confidence=confidence,
    )
