/* Compiled event loop for the message-level wormhole simulator.
 *
 * This file is the C half of repro/simulation/eventcore.py: the Python
 * side resolves paths, pre-draws the stochastic streams and flattens the
 * fabric's per-segment records into the arrays described by
 * EventCoreState; this side replays the exact event loop of
 * repro/simulation/wormhole.py (the reference engine) over those arrays.
 *
 * Bit-identical-trajectory contract
 * ---------------------------------
 * Every arithmetic operation below is a single IEEE-754 double add,
 * subtract, multiply or compare performed on the same operands, in the
 * same order, as the corresponding CPython expression in the reference
 * loop, and the event heap is ordered by the same (time, tie-break tag)
 * key with tags allocated in the same sequence (eseq advances in steps
 * of 4 with the event kind packed into the low two bits).  Therefore a
 * run produces the same event order, the same per-message grant times,
 * the same float accumulation order for busy/wait sums, and hence the
 * same latency trajectory bit for bit.  The build deliberately disables
 * floating-point contraction (-ffp-contract=off) so no add/multiply pair
 * is fused into an FMA; do not "optimise" expressions here by
 * re-associating float arithmetic.
 *
 * The binary heap is the same three-column (time, tag, payload) layout
 * as eventcore.ArrayHeap, which serves as the property-tested executable
 * specification of the ordering implemented by hpush/hpop below.
 *
 * No CPython API is used: the library is plain C loaded through ctypes,
 * so it builds with any system compiler and adds no Python dependency.
 */

#include <stdint.h>

#define ECORE_ABI 1

#define K_GEN 0
#define K_HDR 1
#define K_REL 2
#define K_DEL 3

/* Run-local mutable scalars shared by the heap helpers. */
typedef struct {
    double *ht;       /* heap column: event time */
    int64_t *hg;      /* heap column: tie-break tag (kind in low 2 bits) */
    int32_t *hp;      /* heap column: payload (message seq or channel id) */
    int64_t hn;       /* heap size */
    int64_t cap;      /* heap capacity */
    int64_t eseq;     /* tie-break counter, advances in steps of 4 */
    double src_wait_sum;
    double cd_wait_sum;
    int64_t src_wait_n;
    int64_t cd_wait_n;
    int overflow;
} Rt;

static int ev_less(double ta, int64_t ga, double tb, int64_t gb)
{
    return ta < tb || (ta == tb && ga < gb);
}

static void hpush(Rt *r, double t, int64_t g, int32_t p)
{
    int64_t i;
    if (r->hn >= r->cap) {
        r->overflow = 1;
        return;
    }
    i = r->hn++;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        if (!ev_less(t, g, r->ht[par], r->hg[par]))
            break;
        r->ht[i] = r->ht[par];
        r->hg[i] = r->hg[par];
        r->hp[i] = r->hp[par];
        i = par;
    }
    r->ht[i] = t;
    r->hg[i] = g;
    r->hp[i] = p;
}

/* Remove the root; the caller reads ht[0]/hg[0]/hp[0] before calling. */
static void hpop(Rt *r)
{
    int64_t n = --r->hn;
    double t = r->ht[n];
    int64_t g = r->hg[n];
    int32_t p = r->hp[n];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        int64_t rc;
        if (c >= n)
            break;
        rc = c + 1;
        if (rc < n && ev_less(r->ht[rc], r->hg[rc], r->ht[c], r->hg[c]))
            c = rc;
        if (!ev_less(r->ht[c], r->hg[c], t, g))
            break;
        r->ht[i] = r->ht[c];
        r->hg[i] = r->hg[c];
        r->hp[i] = r->hp[c];
        i = c;
    }
    if (n > 0) {
        r->ht[i] = t;
        r->hg[i] = g;
        r->hp[i] = p;
    }
}

/* All pointers are borrowed from numpy arrays owned by the Python
 * caller; field order must match eventcore._StateStruct exactly. */
typedef struct {
    /* scalars */
    int64_t n_channels;
    int64_t n_nodes;
    int64_t total;          /* window.total: messages generated */
    int64_t n_dead;         /* leftover arrivals after the budget */
    int64_t warmup;
    int64_t measured_end;   /* warmup + measured */
    int64_t measured_target;
    int64_t max_events;
    int64_t cd_paper;       /* 1 = cut-through c/d semantics */
    int64_t grants_stride;  /* per-message grant-buffer width */
    int64_t heap_cap;
    int64_t trace_cap;      /* 0 = tracing off */
    int64_t eseq0;          /* 4 * n_nodes: tags after the initial arrivals */

    /* static channel tables */
    const double *flit_time;      /* [n_channels] */
    const int8_t *uncontended;    /* [n_channels] */
    const int8_t *group;          /* [n_channels] */
    const int32_t *cluster_index; /* [n_nodes] */

    /* generation schedule (prepass output) */
    const double *g_time;     /* [total] */
    const int32_t *g_node;    /* [total] */
    const double *dead_time;  /* [n_dead] */
    const int32_t *dead_node; /* [n_dead] */

    /* flattened path / segment tables */
    const int32_t *m_path;    /* [total]: path id per message */
    const int32_t *p_off;     /* [n_paths + 1] -> p_segs */
    const int32_t *p_segs;    /* segment ids, concatenated per path */
    const int32_t *s_cid_off; /* [n_segs + 1] -> s_cids / s_hold */
    const int32_t *s_cids;    /* channel ids per segment */
    const double *s_hold;     /* M * tau_k per channel */
    const double *s_drain;    /* [n_segs]: (M - 1) * tau* */
    const int32_t *s_rel_off; /* [n_segs + 1] -> r_* (contended channels) */
    const int32_t *r_kk;
    const int32_t *r_cid;
    const double *r_hold;     /* M * tau_kk */
    const double *r_off;      /* (last - kk) * tau* */

    /* mutable run state (allocated/initialised by the caller) */
    double *heap_time;
    int64_t *heap_tag;
    int32_t *heap_payload;
    int64_t *node_tag;  /* [n_nodes]: tag of the node's pending arrival */
    int32_t *m_seg;     /* [total] current segment index */
    int32_t *m_k;       /* [total] current channel index in segment */
    int32_t *m_gc;      /* [total] grants recorded on current segment */
    int32_t *m_qnext;   /* [total] intrusive FIFO link */
    double *m_reqt;     /* [total] segment-entry request time */
    double *grants;     /* [total * grants_stride] */
    int32_t *occupancy; /* [n_channels] holder + queued waiters */
    double *last_grant; /* [n_channels] */
    int32_t *q_head;    /* [n_channels] waiting-queue head (-1 empty) */
    int32_t *q_tail;    /* [n_channels] */
    double *busy;       /* [n_groups] busy-time accumulators */

    /* outputs */
    double *lat;          /* [measured_target] measured latencies */
    int8_t *inter;        /* [measured_target] inter-cluster flags */
    int32_t *src_cluster; /* [measured_target] source clusters */
    double *trace_time;   /* [trace_cap] */
    int8_t *trace_kind;
    int32_t *trace_id;
    int64_t *out_i; /* events, generated, delivered, completed, trace_len */
    double *out_f;  /* now, source_wait_sum, cd_wait_sum */
    int64_t *out_w; /* source_wait_n, cd_wait_n */
} EventCoreState;

int64_t eventcore_abi(void)
{
    return ECORE_ABI;
}

/* Race the per-node Poisson arrival heaps to a generation schedule.
 *
 * Mirrors the reference engine's arrival heap exactly: node i's first
 * arrival is gaps[i] with tie-break tag i (monotone in the same node
 * order as the reference's initial tags), and generation s reschedules
 * its node at popped-time + gaps[n_nodes + s] with the next monotone
 * tag — so same-time arrivals resolve in the same relative order.  The
 * n_nodes arrivals left after the budget ("dead": popped but generating
 * nothing) drain into dead_time/dead_node in pop order.
 */
int64_t eventcore_prepass(int64_t n_nodes, int64_t total, const double *gaps,
                          double *ht, int64_t *hg, int32_t *hp,
                          double *g_time, int32_t *g_node,
                          double *dead_time, int32_t *dead_node)
{
    Rt r;
    int64_t i, s, next_tag;
    r.ht = ht;
    r.hg = hg;
    r.hp = hp;
    r.hn = 0;
    r.cap = n_nodes;
    r.overflow = 0;
    for (i = 0; i < n_nodes; i++)
        hpush(&r, gaps[i], i, (int32_t)i);
    next_tag = n_nodes;
    for (s = 0; s < total; s++) {
        double t = ht[0];
        int32_t node = hp[0];
        g_time[s] = t;
        g_node[s] = node;
        hpop(&r);
        hpush(&r, t + gaps[n_nodes + s], next_tag++, node);
    }
    for (i = 0; i < n_nodes; i++) {
        dead_time[i] = ht[0];
        dead_node[i] = hp[0];
        hpop(&r);
    }
    return r.overflow;
}

/* Request channel cid for message seq at time t.
 *
 * site: 1 = first channel of segment 0 (source queue statistics),
 *       2 = first channel of a later segment (c/d queue statistics),
 *       0 = mid-segment advance (no statistics).
 * Queue-wait statistics on a *queued* request are recorded at grant time
 * in the K_REL handler; an immediate grant counts a zero wait here,
 * exactly like the reference loop.
 */
static void acquire(const EventCoreState *s, Rt *r, int32_t cid, int32_t seq,
                    double t, int site, int meas)
{
    if (s->uncontended[cid]) {
        if (meas) {
            if (site == 1)
                r->src_wait_n++;
            else if (site == 2)
                r->cd_wait_n++;
        }
        s->grants[(int64_t)seq * s->grants_stride + s->m_gc[seq]] = t;
        s->m_gc[seq]++;
        r->eseq += 4;
        hpush(r, t + s->flit_time[cid], r->eseq | K_HDR, seq);
    } else if (!s->occupancy[cid]) {
        if (meas) {
            if (site == 1)
                r->src_wait_n++;
            else if (site == 2)
                r->cd_wait_n++;
        }
        s->grants[(int64_t)seq * s->grants_stride + s->m_gc[seq]] = t;
        s->m_gc[seq]++;
        s->occupancy[cid] = 1;
        s->last_grant[cid] = t;
        r->eseq += 4;
        hpush(r, t + s->flit_time[cid], r->eseq | K_HDR, seq);
    } else {
        s->m_reqt[seq] = t;
        s->m_qnext[seq] = -1;
        if (s->q_tail[cid] >= 0)
            s->m_qnext[s->q_tail[cid]] = seq;
        else
            s->q_head[cid] = seq;
        s->q_tail[cid] = seq;
        s->occupancy[cid]++;
    }
}

int64_t eventcore_run(EventCoreState *s)
{
    Rt r;
    int64_t gi = 0, di = 0;
    int64_t events = 0, generated = 0, delivered = 0, tlen = 0;
    int completed = 0;
    double t = 0.0;
    double na_t = 0.0;
    int64_t na_tag = 0;

    r.ht = s->heap_time;
    r.hg = s->heap_tag;
    r.hp = s->heap_payload;
    r.hn = 0;
    r.cap = s->heap_cap;
    r.eseq = s->eseq0;
    r.src_wait_sum = 0.0;
    r.cd_wait_sum = 0.0;
    r.src_wait_n = 0;
    r.cd_wait_n = 0;
    r.overflow = 0;

    if (gi < s->total) {
        na_t = s->g_time[gi];
        na_tag = s->node_tag[s->g_node[gi]];
    } else if (di < s->n_dead) {
        na_t = s->dead_time[di];
        na_tag = s->node_tag[s->dead_node[di]];
    }

    for (;;) {
        int kind, is_arr;
        int32_t pay;
        int have_arr = (gi < s->total) || (di < s->n_dead);
        if (r.hn && (!have_arr || ev_less(r.ht[0], r.hg[0], na_t, na_tag))) {
            t = r.ht[0];
            kind = (int)(r.hg[0] & 3);
            pay = r.hp[0];
            hpop(&r);
            is_arr = 0;
        } else if (have_arr) {
            t = na_t;
            kind = K_GEN;
            pay = (gi < s->total) ? s->g_node[gi] : s->dead_node[di];
            is_arr = 1;
        } else {
            break;
        }
        events++;
        if (s->trace_cap) {
            if (tlen >= s->trace_cap)
                return 2;
            s->trace_time[tlen] = t;
            s->trace_kind[tlen] = (int8_t)kind;
            s->trace_id[tlen] =
                is_arr ? ((gi < s->total) ? (int32_t)gi : -(pay + 1)) : pay;
            tlen++;
        }
        if (is_arr) {
            if (gi < s->total) {
                int32_t seq = (int32_t)gi;
                int32_t node = pay;
                int meas;
                int32_t pid, sg;
                gi++;
                generated++;
                meas = (seq >= s->warmup && seq < s->measured_end);
                pid = s->m_path[seq];
                sg = s->p_segs[s->p_off[pid]];
                /* m_seg/m_k/m_gc are zero-initialised by the caller. */
                acquire(s, &r, s->s_cids[s->s_cid_off[sg]], seq, t, 1, meas);
                r.eseq += 4;
                s->node_tag[node] = r.eseq;
            } else {
                /* Budget exhausted: counted, but generates nothing. */
                di++;
            }
            if (gi < s->total) {
                na_t = s->g_time[gi];
                na_tag = s->node_tag[s->g_node[gi]];
            } else if (di < s->n_dead) {
                na_t = s->dead_time[di];
                na_tag = s->node_tag[s->dead_node[di]];
            }
            if (r.overflow)
                return 1;
            if (events >= s->max_events)
                break;
            continue;
        }
        if (kind == K_HDR) {
            int32_t seq = pay;
            int32_t pid = s->m_path[seq];
            int32_t si = s->m_seg[seq];
            int32_t sg = s->p_segs[s->p_off[pid] + si];
            int32_t base = s->s_cid_off[sg];
            int32_t last = s->s_cid_off[sg + 1] - base - 1;
            int32_t k = s->m_k[seq];
            if (k < last) {
                k++;
                s->m_k[seq] = k;
                acquire(s, &r, s->s_cids[base + k], seq, t, 0, 0);
            } else {
                /* Header at the segment sink: schedule the contended
                 * channels' releases, then cut through or deliver. */
                double t_del = t + s->s_drain[sg];
                const double *gr = s->grants + (int64_t)seq * s->grants_stride;
                int32_t ri;
                int32_t nseg = s->p_off[pid + 1] - s->p_off[pid];
                for (ri = s->s_rel_off[sg]; ri < s->s_rel_off[sg + 1]; ri++) {
                    double release = gr[s->r_kk[ri]] + s->r_hold[ri];
                    double drain = t_del - s->r_off[ri];
                    r.eseq += 4;
                    hpush(&r, release > drain ? release : drain,
                          r.eseq | K_REL, s->r_cid[ri]);
                }
                if (s->cd_paper && si + 1 < nseg) {
                    int32_t sg2 = s->p_segs[s->p_off[pid] + si + 1];
                    int meas = (seq >= s->warmup && seq < s->measured_end);
                    s->m_seg[seq] = si + 1;
                    s->m_k[seq] = 0;
                    s->m_gc[seq] = 0;
                    acquire(s, &r, s->s_cids[s->s_cid_off[sg2]], seq, t, 2,
                            meas);
                } else {
                    r.eseq += 4;
                    hpush(&r, t_del, r.eseq | K_DEL, seq);
                }
            }
        } else if (kind == K_REL) {
            int32_t cid = pay;
            int32_t rem;
            s->busy[s->group[cid]] += t - s->last_grant[cid];
            rem = --s->occupancy[cid];
            if (rem) {
                int32_t seq = s->q_head[cid];
                int32_t gc;
                s->q_head[cid] = s->m_qnext[seq];
                if (s->q_head[cid] < 0)
                    s->q_tail[cid] = -1;
                s->last_grant[cid] = t;
                gc = s->m_gc[seq];
                if (gc == 0 && seq >= s->warmup && seq < s->measured_end) {
                    /* First channel of a segment: queue-wait statistics. */
                    double wait = t - s->m_reqt[seq];
                    if (s->m_seg[seq] == 0) {
                        r.src_wait_sum += wait;
                        r.src_wait_n++;
                    } else {
                        r.cd_wait_sum += wait;
                        r.cd_wait_n++;
                    }
                }
                s->grants[(int64_t)seq * s->grants_stride + gc] = t;
                s->m_gc[seq] = gc + 1;
                r.eseq += 4;
                hpush(&r, t + s->flit_time[cid], r.eseq | K_HDR, seq);
            }
        } else { /* K_DEL */
            int32_t seq = pay;
            int32_t pid = s->m_path[seq];
            int32_t si = s->m_seg[seq];
            int32_t nseg = s->p_off[pid + 1] - s->p_off[pid];
            if (si + 1 < nseg) {
                /* Store-and-forward advance at the c/d buffer. */
                int32_t sg2 = s->p_segs[s->p_off[pid] + si + 1];
                int meas = (seq >= s->warmup && seq < s->measured_end);
                s->m_seg[seq] = si + 1;
                s->m_k[seq] = 0;
                s->m_gc[seq] = 0;
                acquire(s, &r, s->s_cids[s->s_cid_off[sg2]], seq, t, 2, meas);
            } else if (seq >= s->warmup && seq < s->measured_end) {
                s->lat[delivered] = t - s->g_time[seq];
                s->inter[delivered] = (int8_t)(nseg > 1);
                s->src_cluster[delivered] = s->cluster_index[s->g_node[seq]];
                delivered++;
                if (delivered >= s->measured_target) {
                    completed = 1;
                    break;
                }
            }
        }
        if (r.overflow)
            return 1;
        if (events >= s->max_events)
            break;
    }

    s->out_i[0] = events;
    s->out_i[1] = generated;
    s->out_i[2] = delivered;
    s->out_i[3] = completed;
    s->out_i[4] = tlen;
    s->out_f[0] = t;
    s->out_f[1] = r.src_wait_sum;
    s->out_f[2] = r.cd_wait_sum;
    s->out_w[0] = r.src_wait_n;
    s->out_w[1] = r.cd_wait_n;
    return r.overflow ? 1 : 0;
}
