"""Addressing scheme for m-port n-tree nodes and switches.

We use a mixed-radix scheme equivalent to Lin's construction (paper §2):
with ``q = m/2``,

* a **node** is a digit tuple ``(a_n, a_{n-1}, …, a_1)`` where the top digit
  ``a_n ∈ [0, 2q)`` and every other digit is in ``[0, q)`` — exactly
  ``N = 2 q^n`` nodes;
* a **switch at level l** (levels ``1..n``, ``n`` being the root level) is a
  pair of tuples ``(prefix, column)`` with ``prefix = (a_n, …, a_{l+1})``
  identifying the subtree it serves and ``column = (c_{l-1}, …, c_1)``
  distinguishing the ``q^{l-1}`` replicated switches of that subtree.
  Root switches have an empty prefix and use all ``m`` ports downward.

Adjacency (derived in DESIGN.md §4 notes):

* node ``(a_n,…,a_1)`` attaches to level-1 switch ``prefix=(a_n,…,a_2)``
  at down-port ``a_1``;
* ascending from level ``l`` drops the last prefix digit ``a_{l+1}``
  (which becomes the upper switch's down-port) and prepends the chosen
  up-port ``u`` to the column.

This reproduces the paper's counts: ``2 q^{n-1}`` switches per non-root
level, ``q^{n-1}`` roots, ``N_sw = (2n-1) q^{n-1}`` total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require, require_int

__all__ = ["NodeAddress", "SwitchAddress", "node_address_from_index", "node_index_from_address"]


@dataclass(frozen=True, order=True)
class NodeAddress:
    """A processing node, identified by its digit tuple ``(a_n, …, a_1)``."""

    digits: tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.digits) >= 1, "a node address needs at least one digit")

    @property
    def depth(self) -> int:
        """Tree depth ``n`` this address belongs to."""
        return len(self.digits)

    @property
    def top_digit(self) -> int:
        """``a_n`` — selects one of the ``2q`` top-level groups."""
        return self.digits[0]

    @property
    def leaf_port(self) -> int:
        """``a_1`` — the down-port on the node's level-1 switch."""
        return self.digits[-1]

    def prefix(self, level: int) -> tuple[int, ...]:
        """Subtree prefix ``(a_n, …, a_{level+1})`` at the given level."""
        require(1 <= level <= self.depth, f"level must be in [1, {self.depth}]")
        return self.digits[: self.depth - level]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "n" + "".join(str(d) for d in self.digits)


@dataclass(frozen=True, order=True)
class SwitchAddress:
    """A switch, identified by ``(level, prefix, column)``."""

    level: int
    prefix: tuple[int, ...]
    column: tuple[int, ...]

    def __post_init__(self) -> None:
        require_int(self.level, "level", minimum=1)
        require(len(self.column) == self.level - 1, f"a level-{self.level} switch needs a column of {self.level - 1} digits")

    @property
    def is_root(self) -> bool:
        """True for root-level switches (empty prefix)."""
        return len(self.prefix) == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = "".join(str(d) for d in self.prefix) or "-"
        c = "".join(str(d) for d in self.column) or "-"
        return f"s{self.level}[{p}|{c}]"


def node_address_from_index(index: int, *, radix: int, depth: int) -> NodeAddress:
    """Decode a node index in ``[0, 2 q^n)`` to its digit tuple.

    The top digit takes the ``2q`` high-order values; lower digits are
    base-``q``.  Inverse of :func:`node_index_from_address`.
    """
    require_int(index, "index", minimum=0)
    total = 2 * radix**depth
    require(index < total, f"index {index} out of range for N={total}")
    digits = []
    rest = index
    for _ in range(depth - 1):
        digits.append(rest % radix)
        rest //= radix
    digits.append(rest)  # a_n in [0, 2q)
    return NodeAddress(tuple(reversed(digits)))


def node_index_from_address(address: NodeAddress, *, radix: int) -> int:
    """Encode a digit tuple back into its node index (mixed radix)."""
    for position, digit in enumerate(address.digits):
        limit = 2 * radix if position == 0 else radix
        require(0 <= digit < limit, f"digit {digit} at position {position} out of range [0, {limit})")
    value = address.digits[0]
    for digit in address.digits[1:]:
        value = value * radix + digit
    return value
