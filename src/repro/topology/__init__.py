"""m-port n-tree fat-tree substrate: construction, addressing, routing."""

from repro.topology.addressing import (
    NodeAddress,
    SwitchAddress,
    node_address_from_index,
    node_index_from_address,
)
from repro.topology.mport_ntree import ChannelKind, Endpoint, Link, MPortNTree
from repro.topology.properties import (
    empirical_mean_links,
    empirical_nca_distribution,
    structural_summary,
    verify_route,
)
from repro.topology.routing import Route, ascend_to_root, descend_from_root, nca_level, route

__all__ = [
    "NodeAddress",
    "SwitchAddress",
    "node_address_from_index",
    "node_index_from_address",
    "MPortNTree",
    "ChannelKind",
    "Endpoint",
    "Link",
    "Route",
    "route",
    "nca_level",
    "ascend_to_root",
    "descend_from_root",
    "empirical_nca_distribution",
    "empirical_mean_links",
    "structural_summary",
    "verify_route",
]
