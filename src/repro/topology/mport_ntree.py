"""Construction and adjacency of the m-port n-tree fat-tree (paper §2).

:class:`MPortNTree` materialises the topology the analytical model reasons
about in closed form: ``N = 2 (m/2)^n`` nodes, ``(2n-1)(m/2)^{n-1}``
switches, node↔switch and switch↔switch full-duplex links.  It exposes
adjacency queries, channel enumeration for the simulators and a
:mod:`networkx` export for structural verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from typing import Iterator, Union

import networkx as nx

from repro._util import require, require_int
from repro.core import topology_math as tm
from repro.topology.addressing import (
    NodeAddress,
    SwitchAddress,
    node_address_from_index,
    node_index_from_address,
)

__all__ = ["ChannelKind", "Endpoint", "Link", "MPortNTree"]

Endpoint = Union[NodeAddress, SwitchAddress]


class ChannelKind(str, Enum):
    """Connection type of a directed channel (selects t_cn vs t_cs)."""

    NODE_TO_SWITCH = "node_to_switch"
    SWITCH_TO_SWITCH = "switch_to_switch"
    SWITCH_TO_NODE = "switch_to_node"

    @property
    def is_node_link(self) -> bool:
        """True for the node↔switch kinds that use ``t_cn``."""
        return self is not ChannelKind.SWITCH_TO_SWITCH


@dataclass(frozen=True)
class Link:
    """A directed channel between two endpoints of one tree."""

    source: Endpoint
    target: Endpoint
    kind: ChannelKind


class MPortNTree:
    """An m-port n-tree topology instance.

    Parameters
    ----------
    switch_ports:
        ``m`` — every switch has ``m`` ports (``m/2`` up + ``m/2`` down,
        except roots which face all ``m`` ports down).
    tree_depth:
        ``n`` — number of switch levels (level ``n`` is the root level).
    """

    def __init__(self, switch_ports: int, tree_depth: int) -> None:
        require_int(switch_ports, "switch_ports", minimum=4)
        require(switch_ports % 2 == 0, f"switch_ports must be even, got {switch_ports}")
        require_int(tree_depth, "tree_depth", minimum=1)
        self.switch_ports = switch_ports
        self.tree_depth = tree_depth
        self.radix = switch_ports // 2

    # -- population -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """``N = 2 q^n``."""
        return tm.num_nodes(self.switch_ports, self.tree_depth)

    @property
    def num_switches(self) -> int:
        """``(2n-1) q^{n-1}``."""
        return tm.num_switches(self.switch_ports, self.tree_depth)

    def node(self, index: int) -> NodeAddress:
        """The :class:`NodeAddress` of node *index* (``0 <= index < N``)."""
        return node_address_from_index(index, radix=self.radix, depth=self.tree_depth)

    def node_index(self, address: NodeAddress) -> int:
        """Inverse of :meth:`node`."""
        require(address.depth == self.tree_depth, f"address depth {address.depth} != tree depth {self.tree_depth}")
        return node_index_from_address(address, radix=self.radix)

    def nodes(self) -> Iterator[NodeAddress]:
        """All nodes in index order."""
        for i in range(self.num_nodes):
            yield self.node(i)

    def switches(self) -> Iterator[SwitchAddress]:
        """All switches, level by level."""
        q = self.radix
        n = self.tree_depth
        for level in range(1, n + 1):
            prefix_len = n - level
            if level == n:
                prefixes: list[tuple[int, ...]] = [()]
            else:
                prefixes = list(_mixed_radix_tuples(prefix_len, q, top=2 * q))
            for prefix in prefixes:
                for column in _uniform_radix_tuples(level - 1, q):
                    yield SwitchAddress(level=level, prefix=prefix, column=column)

    @cached_property
    def root_switches(self) -> tuple[SwitchAddress, ...]:
        """The ``q^{n-1}`` root switches."""
        n = self.tree_depth
        return tuple(
            SwitchAddress(level=n, prefix=(), column=column)
            for column in _uniform_radix_tuples(n - 1, self.radix)
        )

    def default_root(self) -> SwitchAddress:
        """Root switch of column ``(0, …, 0)`` (concentrator attach point)."""
        return SwitchAddress(level=self.tree_depth, prefix=(), column=(0,) * (self.tree_depth - 1))

    # -- adjacency ---------------------------------------------------------------

    def leaf_switch(self, node: NodeAddress) -> SwitchAddress:
        """The level-1 switch node *node* attaches to."""
        return SwitchAddress(level=1, prefix=node.digits[:-1], column=())

    def up_neighbor(self, switch: SwitchAddress, up_port: int) -> SwitchAddress:
        """Ascend via *up_port*: drop the last prefix digit, prepend the port.

        The dropped digit becomes the down-port on the upper switch.
        """
        require(switch.level < self.tree_depth, "root switches have no up links")
        require(0 <= up_port < self.radix, f"up_port must be in [0, {self.radix})")
        return SwitchAddress(
            level=switch.level + 1,
            prefix=switch.prefix[:-1],
            column=(up_port,) + switch.column,
        )

    def down_neighbor(self, switch: SwitchAddress, down_port: int) -> Endpoint:
        """Descend via *down_port* (a switch below, or a node from level 1)."""
        limit = self.switch_ports if switch.is_root else self.radix
        require(0 <= down_port < limit, f"down_port must be in [0, {limit})")
        if switch.level == 1:
            return NodeAddress(switch.prefix + (down_port,))
        return SwitchAddress(
            level=switch.level - 1,
            prefix=switch.prefix + (down_port,),
            column=switch.column[1:],
        )

    def is_adjacent(self, lower: Endpoint, upper: SwitchAddress) -> bool:
        """True if *upper* is one level above *lower* and physically linked."""
        if isinstance(lower, NodeAddress):
            return upper == self.leaf_switch(lower)
        if lower.level + 1 != upper.level:
            return False
        return (
            upper.prefix == lower.prefix[:-1]
            and upper.column[1:] == lower.column
        )

    # -- channels ----------------------------------------------------------------

    def links(self) -> Iterator[Link]:
        """Every directed channel of the tree (both directions of each link)."""
        for node in self.nodes():
            leaf = self.leaf_switch(node)
            yield Link(node, leaf, ChannelKind.NODE_TO_SWITCH)
            yield Link(leaf, node, ChannelKind.SWITCH_TO_NODE)
        for switch in self.switches():
            if switch.level == self.tree_depth:
                continue
            for up_port in range(self.radix):
                upper = self.up_neighbor(switch, up_port)
                yield Link(switch, upper, ChannelKind.SWITCH_TO_SWITCH)
                yield Link(upper, switch, ChannelKind.SWITCH_TO_SWITCH)

    def num_full_duplex_links(self) -> int:
        """Physical full-duplex link count: ``n * N`` (every level pair carries N)."""
        return self.tree_depth * self.num_nodes

    # -- verification helpers ------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Undirected physical graph (nodes + switches) for structural checks."""
        graph = nx.Graph()
        for node in self.nodes():
            graph.add_node(node, kind="node")
        for switch in self.switches():
            graph.add_node(switch, kind="switch")
        seen = set()
        for link in self.links():
            key = frozenset((link.source, link.target))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(link.source, link.target)
        return graph


def _uniform_radix_tuples(length: int, radix: int) -> Iterator[tuple[int, ...]]:
    """All base-``radix`` tuples of the given length (length 0 yields ``()``)."""
    if length == 0:
        yield ()
        return
    for head in range(radix):
        for rest in _uniform_radix_tuples(length - 1, radix):
            yield (head,) + rest


def _mixed_radix_tuples(length: int, radix: int, *, top: int) -> Iterator[tuple[int, ...]]:
    """All prefix tuples: first digit in ``[0, top)``, the rest base ``radix``."""
    if length == 0:
        yield ()
        return
    for head in range(top):
        for rest in _uniform_radix_tuples(length - 1, radix):
            yield (head,) + rest
