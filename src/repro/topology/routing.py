"""Deterministic Up*/Down* routing on the m-port n-tree (paper §2).

Every message climbs to a Nearest Common Ancestor (NCA) of source and
destination and then descends — the deterministic variant of Up*/Down*
adopted by the paper (based on [19, 20]).  Determinism comes from the
up-port selection rule: while ascending at level ``j`` the message takes
up-port ``b_j`` (the destination's ``j``-th digit), which spreads distinct
destinations across the replicated ancestor switches (a d-mod-k-style
rule) and makes the ascent meet the unique descending path at the NCA
column ``(b_{h-1}, …, b_1)``.

The module also provides the ascent/descent legs to a *specific* root
switch, used to route traffic to the concentrator/dispatcher that bridges
an ECN1 with the global ICN2 (DESIGN.md §3 item 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require
from repro.topology.addressing import NodeAddress, SwitchAddress
from repro.topology.mport_ntree import ChannelKind, Link, MPortNTree

__all__ = ["Route", "nca_level", "route", "ascend_to_root", "descend_from_root", "home_root"]


def home_root(tree: MPortNTree, node: NodeAddress) -> SwitchAddress:
    """The root switch a node's straight-up deterministic climb reaches.

    Column digits are the node's own lower digits ``(a_{n-1}, …, a_1)``, so
    the ``2q`` nodes sharing each digit pattern map to the same root and the
    node population spreads uniformly over the ``q^{n-1}`` roots.  Used to
    pick the concentrator attachment link of the ECN1 ascent.
    """
    require(node.depth == tree.tree_depth, "address depth must match the tree")
    return SwitchAddress(level=tree.tree_depth, prefix=(), column=node.digits[1:])


@dataclass(frozen=True)
class Route:
    """An ordered list of directed channels from source to destination."""

    links: tuple[Link, ...]

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def switches(self) -> tuple[SwitchAddress, ...]:
        """The switch pipeline (the paper's "stages") along the route."""
        out = []
        for link in self.links:
            if isinstance(link.target, SwitchAddress):
                out.append(link.target)
        return tuple(out)


def nca_level(tree: MPortNTree, source: NodeAddress, destination: NodeAddress) -> int:
    """Level ``h`` of the nearest common ancestor (journey = ``2h`` links).

    ``h = n - L`` where ``L`` is the length of the longest common prefix of
    the two addresses' switch-relevant digits ``(a_n, …, a_2)``.
    """
    require(source != destination, "source and destination must differ")
    require(source.depth == tree.tree_depth == destination.depth, "addresses must match the tree depth")
    src = source.digits[:-1]
    dst = destination.digits[:-1]
    common = 0
    for a, b in zip(src, dst):
        if a != b:
            break
        common += 1
    return tree.tree_depth - common


def route(tree: MPortNTree, source: NodeAddress, destination: NodeAddress) -> Route:
    """Deterministic Up*/Down* route between two nodes of one tree."""
    h = nca_level(tree, source, destination)
    n = tree.tree_depth
    links: list[Link] = []

    # Ascent: level-1 switch up to the NCA, choosing up-port b_j at level j.
    current: SwitchAddress = tree.leaf_switch(source)
    links.append(Link(source, current, ChannelKind.NODE_TO_SWITCH))
    for level in range(1, h):
        up_port = destination.digits[n - level]  # b_level
        upper = tree.up_neighbor(current, up_port)
        links.append(Link(current, upper, ChannelKind.SWITCH_TO_SWITCH))
        current = upper

    # Descent: consume destination prefix digits down to its leaf switch.
    for level in range(h, 1, -1):
        down_port = destination.digits[n - level]  # b_level
        lower = tree.down_neighbor(current, down_port)
        assert isinstance(lower, SwitchAddress)
        links.append(Link(current, lower, ChannelKind.SWITCH_TO_SWITCH))
        current = lower
    links.append(Link(current, destination, ChannelKind.SWITCH_TO_NODE))
    return Route(tuple(links))


def ascend_to_root(tree: MPortNTree, source: NodeAddress, root: SwitchAddress | None = None) -> Route:
    """Route from *source* up to a specific root switch (default column 0…0).

    The up-port at level ``j`` is the root's column digit ``c_j``, making
    the path unique.  Used for the ECN1 leg toward the concentrator.
    """
    root = root or tree.default_root()
    require(root.is_root and root.level == tree.tree_depth, "target must be a root switch of this tree")
    links: list[Link] = []
    current = tree.leaf_switch(source)
    links.append(Link(source, current, ChannelKind.NODE_TO_SWITCH))
    # Root column is (c_{n-1}, …, c_1); ascending at level j prepends c_j.
    for level in range(1, tree.tree_depth):
        up_port = root.column[tree.tree_depth - 1 - level]  # c_level
        upper = tree.up_neighbor(current, up_port)
        links.append(Link(current, upper, ChannelKind.SWITCH_TO_SWITCH))
        current = upper
    require(current == root, "ascent did not reach the requested root")
    return Route(tuple(links))


def descend_from_root(tree: MPortNTree, root: SwitchAddress | None, destination: NodeAddress) -> Route:
    """Route from a root switch down to *destination* (dispatcher leg)."""
    root = root or tree.default_root()
    require(root.is_root and root.level == tree.tree_depth, "source must be a root switch of this tree")
    links: list[Link] = []
    current: SwitchAddress = root
    n = tree.tree_depth
    for level in range(n, 1, -1):
        down_port = destination.digits[n - level]
        lower = tree.down_neighbor(current, down_port)
        assert isinstance(lower, SwitchAddress)
        links.append(Link(current, lower, ChannelKind.SWITCH_TO_SWITCH))
        current = lower
    links.append(Link(current, destination, ChannelKind.SWITCH_TO_NODE))
    return Route(tuple(links))
