"""Structural properties and verification utilities for m-port n-trees.

These functions bridge the closed-form combinatorics of
:mod:`repro.core.topology_math` and the explicit graphs of
:mod:`repro.topology.mport_ntree`: the test suite asserts that the
constructed topology realises exactly the distributions the analytical
model assumes (Eq. 6 journey-length pmf, Eq. 8 mean distance, switch and
link counts).
"""

from __future__ import annotations

from collections import Counter
from itertools import permutations

import networkx as nx
import numpy as np

from repro._util import require
from repro.core import topology_math as tm
from repro.topology.mport_ntree import ChannelKind, MPortNTree
from repro.topology.routing import Route, nca_level, route

__all__ = [
    "empirical_nca_distribution",
    "empirical_mean_links",
    "verify_route",
    "structural_summary",
]


def empirical_nca_distribution(tree: MPortNTree, *, source_index: int | None = None) -> np.ndarray:
    """NCA-level pmf measured on the real topology.

    With *source_index* given, enumerates that node's destinations (the pmf
    is source-invariant, which the test suite verifies); otherwise
    enumerates all ordered pairs.  Index ``h-1`` holds ``P(h)``.
    """
    counts: Counter[int] = Counter()
    if source_index is not None:
        src = tree.node(source_index)
        for dst in tree.nodes():
            if dst == src:
                continue
            counts[nca_level(tree, src, dst)] += 1
    else:
        for src, dst in permutations(tree.nodes(), 2):
            counts[nca_level(tree, src, dst)] += 1
    total = sum(counts.values())
    pmf = np.zeros(tree.tree_depth, dtype=np.float64)
    for h, c in counts.items():
        pmf[h - 1] = c / total
    return pmf


def empirical_mean_links(tree: MPortNTree, *, source_index: int = 0) -> float:
    """Mean route length in links from one source, measured on real routes."""
    src = tree.node(source_index)
    lengths = [
        route(tree, src, dst).num_links
        for dst in tree.nodes()
        if dst != src
    ]
    return float(np.mean(lengths))


def verify_route(tree: MPortNTree, path: Route) -> None:
    """Assert that *path* is physically realisable and Up*/Down* shaped.

    Checks every hop against the tree's adjacency, that levels first
    ascend monotonically and then descend (no valleys — the Up*/Down*
    deadlock-freedom invariant) and that endpoint kinds match the channel
    kinds.  Raises ``ValueError`` with a diagnostic on violation.
    """
    levels: list[int] = []
    for link in path.links:
        src, dst = link.source, link.target
        if link.kind is ChannelKind.NODE_TO_SWITCH:
            ok = hasattr(dst, "level") and tree.is_adjacent(src, dst)
        elif link.kind is ChannelKind.SWITCH_TO_NODE:
            ok = hasattr(src, "level") and tree.is_adjacent(dst, src)
        else:
            lo, hi = (src, dst) if src.level < dst.level else (dst, src)
            ok = tree.is_adjacent(lo, hi)
        require(ok, f"hop {src} -> {dst} ({link.kind.value}) is not a physical link")
        if hasattr(dst, "level"):
            levels.append(dst.level)
    # Up*/Down*: the switch-level sequence must be unimodal (rise then fall).
    descending = False
    for prev, cur in zip(levels, levels[1:]):
        if cur < prev:
            descending = True
        elif cur > prev and descending:
            raise ValueError(f"route violates Up*/Down*: level sequence {levels}")


def structural_summary(tree: MPortNTree) -> dict:
    """Key structural facts, cross-checked against the closed forms."""
    graph = tree.to_networkx()
    switches = [v for v, d in graph.nodes(data=True) if d["kind"] == "switch"]
    nodes = [v for v, d in graph.nodes(data=True) if d["kind"] == "node"]
    return {
        "num_nodes": len(nodes),
        "num_switches": len(switches),
        "num_links": graph.number_of_edges(),
        "expected_nodes": tree.num_nodes,
        "expected_switches": tree.num_switches,
        "expected_links": tree.num_full_duplex_links(),
        "connected": nx.is_connected(graph),
        "mean_links_closed_form": tm.mean_journey_links(tree.switch_ports, tree.tree_depth),
    }
