"""The ``Experiment`` facade: every workflow behind one scenario spec.

Quickstart::

    from repro.experiments import Experiment

    exp = Experiment("544")           # registered scenario name ...
    exp = Experiment(my_spec)         # ... or any ScenarioSpec
    print(exp.saturation().text)      # λ* and the binding resource
    curve = exp.sweep()               # uniform ExperimentResult
    curve.to_dict()                   # stable JSON schema

Design-space exploration (multi-axis grids through the closed forms)::

    result = exp.explore(
        [("system.icn2.bandwidth", [250.0, 500.0, 1000.0]),
         ("message.length_flits", [32, 64])],
        jobs=4, cache=".repro-cache", frontier=True,
    )
    result.data["columns"]            # long-format table, one row per cell
"""

from repro.experiments.calibrate import (
    CALIBRATION_SCHEMA,
    SIM_CURVE_SCHEMA,
    calibrate_options,
    option_combinations,
    sim_curve_key,
)
from repro.experiments.experiment import EXPERIMENT_SCHEMA, Experiment, ExperimentResult
from repro.experiments.explore import EXPLORE_CELL_SCHEMA, cell_cache_key, explore_grid

__all__ = [
    "Experiment",
    "ExperimentResult",
    "EXPERIMENT_SCHEMA",
    "explore_grid",
    "cell_cache_key",
    "EXPLORE_CELL_SCHEMA",
    "calibrate_options",
    "option_combinations",
    "sim_curve_key",
    "CALIBRATION_SCHEMA",
    "SIM_CURVE_SCHEMA",
]
