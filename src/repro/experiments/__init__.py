"""The ``Experiment`` facade: every workflow behind one scenario spec.

Quickstart::

    from repro.experiments import Experiment

    exp = Experiment("544")           # registered scenario name ...
    exp = Experiment(my_spec)         # ... or any ScenarioSpec
    print(exp.saturation().text)      # λ* and the binding resource
    curve = exp.sweep()               # uniform ExperimentResult
    curve.to_dict()                   # stable JSON schema
"""

from repro.experiments.experiment import EXPERIMENT_SCHEMA, Experiment, ExperimentResult

__all__ = ["Experiment", "ExperimentResult", "EXPERIMENT_SCHEMA"]
