"""Accuracy calibration: search the ``ModelOptions`` ablation space.

The paper's ambiguous equations admit six switchable readings
(:class:`~repro.core.parameters.ModelOptions`), and the hand-written
ablation benches probe them one knob at a time.  This module asks the full
question: **which combination of readings tracks the simulators best**, per
scenario and globally?

:func:`calibrate_options` enumerates the Cartesian option space (the full
2·3·2·2·2·2 = 96 combinations, or a subset restricted through the same
``(path, values)`` axis syntax as :class:`~repro.scenarios.DesignGrid` plus
pinned knobs), scores every combination against the discrete-event
simulators across one or many registry scenarios, and ranks them with the
shared accuracy metrics (:mod:`repro.analysis.accuracy`).

Methodology — identical to the ablation benches, generalised:

* each scenario's **reference** model (its spec's own options) fixes the
  operating points: ``λ_i = f_i · λ*_ref`` for the configured load
  fractions, so every combination is scored at the *same* loads;
* the **simulator is the ground truth** and runs once per scenario under
  the reference options — it consumes only ``tcn_convention`` of the six
  knobs (via the fabric's channel times), and calibration measures how the
  model readings track a fixed physical system, so candidate combinations
  never re-simulate;
* per-point errors are ``(model − sim) / sim`` exactly as
  :func:`repro.validation.compare.run_validation` computes them, and the
  per-curve scores are :func:`~repro.analysis.accuracy.max_abs_error`,
  :func:`~repro.analysis.accuracy.light_load_error` and the load-weighted
  :func:`~repro.analysis.accuracy.rms_weighted`.

Cost model: the simulator curves dominate, so they are memoised in the
content-addressed on-disk cache (:mod:`repro.io.cache`) keyed by the
scenario's numeric spec content, the (loads, seeds, window, granularity)
protocol and :data:`repro.simulation.runner.TRAJECTORY_VERSION` — a full
96-way calibration costs roughly one validation run, and a repeated run
simulates nothing.  The simulation points fan out through
:func:`repro.simulation.parallel.map_jobs`; the model side is priced in
one cross-cell stack (:class:`repro.core.stacked.StackedModel`) on serial
runs and through the same fan-out under ``--jobs``/fault policies; the
result tables are bit-identical for any worker count and either path.

Results land in the stable ``repro.calibration/1`` schema: the
per-combination error table, each scenario's winner, the global winner and
a per-knob marginal-impact ranking à la
:func:`repro.analysis.frontier.axis_sensitivity`.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro._util import require, require_int
from repro.analysis.accuracy import ACCURACY_METRICS, relative_errors, score_errors
from repro.analysis.frontier import axis_sensitivity
from repro.analysis.tables import render_table
from repro.core.batch import BatchedModel
from repro.core.model import AnalyticalModel
from repro.core.parameters import ModelOptions
from repro.exec import RunJournal, RunPolicy, maybe_corrupt_cache, run_supervised
from repro.experiments.experiment import ExperimentResult
from repro.io.cache import ResultCache, canonical_numbers, content_key
from repro.io.schemas import CALIBRATION_SCHEMA, RUN_JOURNAL_SCHEMA, SIM_CURVE_SCHEMA
from repro.scenarios.grid import as_axis, format_axis_value
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "CALIBRATION_SCHEMA",
    "SIM_CURVE_SCHEMA",
    "calibrate_options",
    "option_combinations",
    "sim_curve_key",
]

#: Default load fractions of the reference saturation load — light through
#: heavy, matching the hand-written ablation benches' operating points.
DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8)


# ---------------------------------------------------------------------------
# option-space enumeration
# ---------------------------------------------------------------------------


def _knob_name(name: str) -> str:
    """Normalise a knob path: ``options.tcn_convention`` → ``tcn_convention``."""
    require(isinstance(name, str) and name != "", "option knob must be a non-empty string")
    if name.startswith("options."):
        name = name[len("options.") :]
    domains = ModelOptions.option_values()
    require(
        name in domains,
        f"unknown model option {name!r}; valid: {', '.join(domains)}",
    )
    return name


def _check_domain(knob: str, values, domains: dict) -> tuple:
    values = tuple(values)
    require(len(values) >= 1, f"option axis {knob!r} needs at least one value")
    for value in values:
        require(
            value in domains[knob],
            f"option {knob!r} cannot take {value!r}; valid: {domains[knob]}",
        )
    require(
        len(set(values)) == len(values),
        f"option axis {knob!r} has duplicate values {list(values)}",
    )
    return values


def option_combinations(*, axes=None, fixed: "dict | None" = None):
    """Enumerate the (restricted) ``ModelOptions`` Cartesian space.

    ``axes``
        optional sequence of :class:`~repro.scenarios.AxisSpec` or
        ``(knob, values)`` pairs (the :class:`~repro.scenarios.DesignGrid`
        axis syntax; a leading ``options.`` on the knob is accepted)
        naming the knobs to vary and their candidate values.  ``None``
        varies every knob not pinned by *fixed* over its full domain.
    ``fixed``
        mapping of knob → single pinned value.  With explicit *axes*, any
        knob mentioned in neither defaults to its
        :class:`~repro.core.parameters.ModelOptions` default.

    Returns ``(varied, combos)``: the varied ``(knob, values)`` pairs in
    enumeration order and the combination list — a row-major Cartesian
    product (the last varied knob changes fastest), each entry a
    ``(name, ModelOptions)`` pair where the name joins the *varied* knob
    assignments ``knob=value`` with ``/``.
    """
    domains = ModelOptions.option_values()
    pinned: dict = {}
    for knob, value in (fixed or {}).items():
        knob = _knob_name(knob)
        require(knob not in pinned, f"option {knob!r} pinned twice")
        pinned[knob] = _check_domain(knob, (value,), domains)[0]
    if axes is None:
        varied = [(knob, domains[knob]) for knob in domains if knob not in pinned]
    else:
        varied = []
        for axis in axes:
            axis = as_axis(axis)
            knob = _knob_name(axis.path)
            require(
                knob not in pinned,
                f"option {knob!r} appears in both axes and fixed",
            )
            require(
                knob not in dict(varied),
                f"duplicate option axis {knob!r}",
            )
            varied.append((knob, _check_domain(knob, axis.values, domains)))
    require(
        len(varied) >= 1,
        "calibration needs at least one varying knob (all six are pinned)",
    )
    base = {name: getattr(ModelOptions(), name) for name in domains}
    base.update(pinned)
    combos = []
    for values in itertools.product(*(vals for _, vals in varied)):
        assignment = dict(base)
        assignment.update({knob: value for (knob, _), value in zip(varied, values)})
        name = "/".join(
            f"{knob}={format_axis_value(value)}" for (knob, _), value in zip(varied, values)
        )
        combos.append((name, ModelOptions(**assignment)))
    return varied, combos


# ---------------------------------------------------------------------------
# simulator ground truth (cached)
# ---------------------------------------------------------------------------


def sim_curve_key(spec: ScenarioSpec, loads, seeds, window, granularity: str) -> str:
    """Content key of one scenario's simulator curve in the on-disk cache.

    Hashes everything the simulated trajectories depend on and nothing
    they don't: the serialised spec minus its derived ``name``/
    ``description`` and minus the model-only ``load_grid``/
    ``latency_budget`` sections, the exact loads and per-point seeds, the
    measurement window, the engine granularity and
    :data:`repro.simulation.runner.TRAJECTORY_VERSION`.  The spec's full
    ``options`` block is included even though only ``tcn_convention``
    reaches the fabric — deliberate over-keying that can only cost extra
    simulations, never return a wrong curve.
    """
    payload = spec.to_dict()
    payload.pop("name", None)
    payload.pop("description", None)
    payload.pop("load_grid", None)
    payload.pop("latency_budget", None)
    from repro.simulation.runner import TRAJECTORY_VERSION

    return content_key(
        {
            "schema": SIM_CURVE_SCHEMA,
            "trajectory_version": TRAJECTORY_VERSION,
            "spec": canonical_numbers(payload),
            "granularity": granularity,
            "window": {
                "warmup": window.warmup,
                "measured": window.measured,
                "drain": window.drain,
            },
            "loads": [float(lam) for lam in loads],
            "seeds": [int(s) for s in seeds],
        }
    )


def _valid_curve_entry(entry, n_points: int) -> bool:
    """A cache hit must carry the full curve; anything else is a miss."""
    return (
        isinstance(entry, dict)
        and entry.get("schema") == SIM_CURVE_SCHEMA
        and all(
            isinstance(entry.get(field), list) and len(entry[field]) == n_points
            for field in ("latencies", "stds", "completed", "events")
        )
    )


# ---------------------------------------------------------------------------
# model scoring (fanned out per combination × scenario)
# ---------------------------------------------------------------------------


def _model_curve(payload: tuple) -> list:
    """Worker: one combination's model latencies at one scenario's loads.

    Uses the scalar :class:`~repro.core.model.AnalyticalModel` — the same
    reference path :func:`~repro.validation.compare.run_validation` and the
    ablation benches evaluate — so calibration errors reproduce the bench
    numbers bit for bit where the spaces overlap.  (Module-level:
    picklable.)
    """
    spec_dict, options_dict, loads = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    model = AnalyticalModel(
        spec.system, spec.message, ModelOptions.from_dict(options_dict), spec.pattern
    )
    return [float(model.evaluate(float(lam)).latency) for lam in loads]


def _stacked_model_curves(
    specs: "list[ScenarioSpec]", combos: list, loads_by_scenario: "list[list[float]]"
) -> "list[list[float]] | None":
    """Every combination × scenario curve in one stacked evaluation.

    Row order matches the ``map_jobs`` payload order (combination-major,
    scenario-minor).  The stacked engine is bit-identical to the scalar
    :class:`~repro.core.model.AnalyticalModel` reference path (locked by
    ``tests/test_stacked.py``), so calibration scores are unchanged to
    the bit.  Returns ``None`` when the stack cannot evaluate this cell
    set — the caller then falls back to the per-combination fan-out.
    """
    from repro.core.stacked import StackedModel

    try:
        cells = [
            (spec.system, spec.message, options, spec.pattern)
            for _, options in combos
            for spec in specs
        ]
        grids = np.array(
            [loads for _ in combos for loads in loads_by_scenario], dtype=np.float64
        )
        latencies = StackedModel(cells).evaluate_latencies(grids)
    except Exception:
        return None
    return [[float(v) for v in row] for row in latencies]


def _rank_key(record: dict):
    """Deterministic ranking: score ascending, NaN last, ties by index."""
    score = record["score"]
    return (score if score == score else float("inf"), record["index"])


def _aggregate(values: list) -> float:
    """Cross-scenario aggregate of one metric: the plain mean (inf sticks)."""
    return float(sum(values) / len(values))


# ---------------------------------------------------------------------------
# the calibration engine
# ---------------------------------------------------------------------------


def calibrate_options(
    scenarios,
    *,
    axes=None,
    fixed: "dict | None" = None,
    fractions=DEFAULT_FRACTIONS,
    metric: str = "rms_weighted",
    messages: int = 10_000,
    seed: int = 0,
    seed_stride: int = 1,
    granularity: str = "message",
    jobs: "int | str | None" = None,
    cache: "ResultCache | str | None" = None,
    policy: "RunPolicy | None" = None,
    resume: bool = False,
) -> ExperimentResult:
    """Score every option combination against the simulators; rank them.

    *scenarios* is an iterable of registered names and/or
    :class:`~repro.scenarios.ScenarioSpec` instances; *axes*/*fixed*
    restrict the combination space (see :func:`option_combinations`).

    Protocol knobs: *fractions* are the scored loads as fractions of each
    scenario's reference λ* (strictly increasing, each in ``(0, 1)``);
    point ``i`` simulates under seed ``seed + seed_stride·i`` —
    ``seed_stride=1`` matches :func:`~repro.validation.compare
    .run_validation`'s per-point seeds, ``seed_stride=0`` the ablation
    benches' single shared seed.  *messages* sets the measured-message
    budget per point (the paper's window protocol, scaled); *granularity*
    picks the message-level or the flit-accurate engine.

    ``jobs`` fans both the simulation points and the per-combination model
    curves across the shared process pool; tables are bit-identical for
    any worker count.  ``cache`` (a directory path or
    :class:`~repro.io.cache.ResultCache`) memoises simulator curves on
    disk, so option combinations re-score against cached ground truth and
    a repeated calibration simulates nothing.

    Resilience: both fan-outs run under the supervised runtime with
    retries per *policy*.  A scenario whose simulator curve still fails
    is excluded from scoring (the result is then *partial*: its errors
    land in ``data["errors"]``) rather than aborting the calibration.
    With a cache, completed curves are journaled as they land;
    ``resume=True`` requires that journal and replays its curves from the
    cache, simulating only the remainder.
    """
    from repro.simulation.metrics import MeasurementWindow
    from repro.simulation.parallel import SimWorkItem, map_jobs, resolve_jobs, run_work_item

    specs = [get_scenario(s) if isinstance(s, str) else s for s in scenarios]
    require(len(specs) > 0, "calibrate needs at least one scenario")
    for spec in specs:
        require(isinstance(spec, ScenarioSpec), "scenarios must be names or ScenarioSpec")
    names = [spec.name for spec in specs]
    require(len(set(names)) == len(names), f"duplicate scenario names: {names}")
    spec_dicts = [spec.to_dict() for spec in specs]  # fail fast if unserialisable

    fractions = tuple(float(f) for f in fractions)
    require(len(fractions) >= 1, "fractions must not be empty")
    for f in fractions:
        require(0.0 < f < 1.0, f"load fractions must be in (0, 1), got {f!r}")
    require(
        all(a < b for a, b in zip(fractions, fractions[1:])),
        f"load fractions must be strictly increasing, got {list(fractions)}",
    )
    require(metric in ACCURACY_METRICS, f"metric must be one of {ACCURACY_METRICS}, got {metric!r}")
    require_int(messages, "messages", minimum=1)
    require_int(seed, "seed", minimum=0)
    require_int(seed_stride, "seed_stride", minimum=0)
    require(granularity in ("message", "flit"), f"granularity must be 'message' or 'flit', got {granularity!r}")

    varied, combos = option_combinations(axes=axes, fixed=fixed)
    window = MeasurementWindow.scaled_paper(messages)
    seeds = [seed + seed_stride * i for i in range(len(fractions))]
    store = None
    if cache is not None:
        store = cache if isinstance(cache, ResultCache) else ResultCache(cache)

    # -- ground truth: one (cached) simulator curve per scenario ------------
    loads_by_scenario = []
    for spec in specs:
        lam_ref = BatchedModel(spec.system, spec.message, spec.options, spec.pattern).saturation_load()
        require(
            math.isfinite(lam_ref) and lam_ref > 0,
            f"scenario {spec.name!r} has no finite reference saturation load",
        )
        loads_by_scenario.append([f * lam_ref for f in fractions])

    keys = [
        sim_curve_key(spec, loads, seeds, window, granularity)
        for spec, loads in zip(specs, loads_by_scenario)
    ]
    # The run's identity is its full curve list: the same calibration
    # resumes itself, any protocol/scenario change starts a fresh journal.
    journal = None
    if store is not None:
        run_key = content_key(
            {"schema": RUN_JOURNAL_SCHEMA, "kind": "calibrate", "keys": keys}
        )
        journal = RunJournal.for_cache(store, run_key)
    if resume:
        require(store is not None, "resume requires a result cache (--cache)")
        assert journal is not None
        require(
            journal.exists(),
            f"resume requested but no run journal exists at {journal.path}",
        )
    journaled = journal.completed_keys() if journal is not None else set()

    curves: list = [None] * len(specs)
    n_resumed = 0
    if store is not None:
        for idx, key in enumerate(keys):
            entry = store.get(key)
            if _valid_curve_entry(entry, len(fractions)):
                curves[idx] = entry
                if key in journaled:
                    n_resumed += 1
    from_cache = [curves[si] is not None for si in range(len(specs))]
    pending = [idx for idx, c in enumerate(curves) if c is None]
    items = []
    slot_map = []  # fan-out slot -> (scenario index, point index)
    for idx in pending:
        for i, lam in enumerate(loads_by_scenario[idx]):
            items.append(
                SimWorkItem(
                    system=specs[idx].system,
                    message=specs[idx].message,
                    options=specs[idx].options,
                    generation_rate=float(lam),
                    seed=seeds[i],
                    window=window,
                    granularity=granularity,
                    pattern=specs[idx].pattern,
                )
            )
            slot_map.append((idx, i))
    n_jobs = resolve_jobs(jobs)

    point_results: dict = {idx: [None] * len(fractions) for idx in pending}
    remaining = {idx: len(fractions) for idx in pending}
    failed_scenarios: set = set()

    def _persist_curve(slot, outcome):
        # Runs in the supervising process as each point finalises; a
        # scenario's curve is cached+journaled the moment its last point
        # lands, so a killed calibration resumes at curve granularity.
        si, pi = slot_map[slot]
        if not outcome.ok:
            failed_scenarios.add(si)
            return
        point_results[si][pi] = outcome.value
        remaining[si] -= 1
        if remaining[si] or si in failed_scenarios:
            return
        curves[si] = {
            "schema": SIM_CURVE_SCHEMA,
            "scenario": specs[si].name,
            "loads": [float(lam) for lam in loads_by_scenario[si]],
            "seeds": list(seeds),
            "latencies": [float(r.mean_latency) for r in point_results[si]],
            "stds": [float(r.stats.std) for r in point_results[si]],
            "completed": [bool(r.completed) for r in point_results[si]],
            "events": [int(r.events) for r in point_results[si]],
        }
        if store is not None:
            store.put(keys[si], curves[si])
            maybe_corrupt_cache(store, keys[si], slot)
            journal.record(keys[si], scenario=specs[si].name)

    outcomes = run_supervised(
        run_work_item,
        items,
        jobs=min(n_jobs, max(1, len(items))),
        policy=policy,
        on_result=_persist_curve,
    )
    run_errors = []
    for slot, outcome in enumerate(outcomes):
        if outcome.ok:
            continue
        si, pi = slot_map[slot]
        failed_scenarios.add(si)
        run_errors.append(
            {
                "scenario": specs[si].name,
                "load_index": pi,
                **outcome.error_record(),
            }
        )

    # A scenario without ground truth cannot be scored: drop it from the
    # calibration (partial result) instead of aborting everything.
    ok_idx = [si for si in range(len(specs)) if curves[si] is not None]
    require(
        len(ok_idx) >= 1,
        "calibration failed: no scenario produced a simulator curve",
    )
    failed_names = [specs[si].name for si in range(len(specs)) if si not in ok_idx]
    if failed_names:
        specs = [specs[si] for si in ok_idx]
        spec_dicts = [spec_dicts[si] for si in ok_idx]
        loads_by_scenario = [loads_by_scenario[si] for si in ok_idx]
        curves = [curves[si] for si in ok_idx]
        from_cache = [from_cache[si] for si in ok_idx]
        names = [spec.name for spec in specs]

    # -- score every combination against the cached ground truth ------------
    # Serial runs without a fault policy stack the whole model side —
    # every combination × scenario priced in one cross-cell evaluation,
    # bit-identical to the per-combination fan-out below.
    model_curves = None
    stacked = False
    if jobs in (None, 1) and policy is None:
        model_curves = _stacked_model_curves(specs, combos, loads_by_scenario)
        stacked = model_curves is not None
    if model_curves is None:
        payloads = [
            (spec_dicts[si], options.to_dict(), loads_by_scenario[si])
            for _, options in combos
            for si in range(len(specs))
        ]
        model_curves = map_jobs(
            _model_curve, payloads, jobs=min(n_jobs, len(payloads)), policy=policy
        )

    records = []
    for ci, (combo_name, options) in enumerate(combos):
        per_scenario = {}
        metric_values = {m: [] for m in ACCURACY_METRICS}
        for si, spec in enumerate(specs):
            model_lat = model_curves[ci * len(specs) + si]
            loads = np.asarray(loads_by_scenario[si], dtype=np.float64)
            errors = relative_errors(model_lat, curves[si]["latencies"])
            scores = score_errors(loads, errors)
            per_scenario[spec.name] = {
                "model": [float(v) for v in model_lat],
                "errors": [float(e) for e in errors],
                **scores,
            }
            for m in ACCURACY_METRICS:
                metric_values[m].append(scores[m])
        aggregate = {m: _aggregate(metric_values[m]) for m in ACCURACY_METRICS}
        records.append(
            {
                "index": ci,
                "name": combo_name,
                "options": options.to_dict(),
                "per_scenario": per_scenario,
                "aggregate": aggregate,
                "score": aggregate[metric],
            }
        )

    ranking = [r["index"] for r in sorted(records, key=_rank_key)]
    winner = records[ranking[0]]
    per_scenario_winners = {}
    for si, spec in enumerate(specs):
        best = min(
            records,
            key=lambda r: (
                v if (v := r["per_scenario"][spec.name][metric]) == v else float("inf"),
                r["index"],
            ),
        )
        per_scenario_winners[spec.name] = {
            "name": best["name"],
            "index": best["index"],
            metric: best["per_scenario"][spec.name][metric],
        }

    # -- per-knob marginal impact (one-factor-at-a-time, à la explore) ------
    finite_cells = [
        {
            "coords": {knob: r["options"][knob] for knob, _ in varied},
            "metrics": {"score": r["score"]},
        }
        for r in records
        if math.isfinite(r["score"])
    ]
    sensitivity = axis_sensitivity(finite_cells, metric="score") if finite_cells else ()
    n_dropped = len(records) - len(finite_cells)

    # -- assemble the uniform result ----------------------------------------
    columns: dict[str, list] = {"combination": [r["name"] for r in records]}
    for knob, _ in varied:
        columns[knob] = [r["options"][knob] for r in records]
    for spec in specs:
        columns[f"{metric}:{spec.name}"] = [
            r["per_scenario"][spec.name][metric] for r in records
        ]
    columns["score"] = [r["score"] for r in records]

    data = {
        "metric": metric,
        "fractions": list(fractions),
        "messages": messages,
        "granularity": granularity,
        "seed": seed,
        "seed_stride": seed_stride,
        "varied": [{"knob": knob, "values": list(values)} for knob, values in varied],
        "scenarios": [
            {
                "name": spec.name,
                "loads": [float(lam) for lam in loads_by_scenario[si]],
                "seeds": list(seeds),
                "sim_latencies": list(curves[si]["latencies"]),
                "sim_stds": list(curves[si]["stds"]),
                "sim_completed": list(curves[si]["completed"]),
                "from_cache": from_cache[si],
            }
            for si, spec in enumerate(specs)
        ],
        "combinations": records,
        "ranking": ranking,
        "winner": {
            "name": winner["name"],
            "index": winner["index"],
            "options": winner["options"],
            "score": winner["score"],
        },
        "per_scenario_winners": per_scenario_winners,
        "sensitivity": [
            {"knob": s.path, "spread": s.spread, "groups": s.groups} for s in sensitivity
        ],
        "sensitivity_dropped": n_dropped,
        "columns": columns,
        "simulated_points": len(items),
        "stacked": stacked,
        "cached_curves": sum(from_cache),
        "resumed": n_resumed,
        "jobs": n_jobs,
        "cache_root": str(store.root) if store is not None else None,
        "errors": run_errors,
        "partial": bool(run_errors),
    }

    text = _render(specs, varied, records, ranking, per_scenario_winners, sensitivity, data)
    if resume:
        text += f"\nresumed {n_resumed} curve(s) from the run journal"
    if failed_names:
        text += (
            f"\nPARTIAL: {len(failed_names)} scenario(s) failed after retries "
            f"and are excluded from scoring: {', '.join(failed_names)}"
        )
    return ExperimentResult(
        kind="calibrate",
        scenario=",".join(names),
        spec={
            "scenarios": spec_dicts,
            "axes": [{"knob": knob, "values": list(values)} for knob, values in varied],
            "fixed": {k: v for k, v in (fixed or {}).items()},
        },
        data=data,
        text=text,
        schema=CALIBRATION_SCHEMA,
    )


def _fmt_score(value: float) -> str:
    return f"{value:.6f}" if math.isfinite(value) else str(value)


def _render(specs, varied, records, ranking, per_scenario_winners, sensitivity, data) -> str:
    """Human-readable calibration report (the CLI's stdout)."""
    metric = data["metric"]
    top = [records[i] for i in ranking[:10]]
    rows = [
        [rank + 1, r["name"]]
        + [_fmt_score(r["per_scenario"][spec.name][metric]) for spec in specs]
        + [_fmt_score(r["score"])]
        for rank, r in enumerate(top)
    ]
    shown = "" if len(top) == len(records) else f", top {len(top)} shown"
    text = render_table(
        ["rank", "combination"] + [f"{metric}:{spec.name}" for spec in specs] + ["score"],
        rows,
        title=(
            f"calibration of {len(records)} option combinations over "
            f"{len(specs)} scenario(s), metric={metric} "
            f"(loads at {', '.join(f'{f:g}' for f in data['fractions'])} of reference λ*"
            f"{shown})"
        ),
    )
    winner = data["winner"]
    text += f"\n\nglobal winner: {winner['name']} (score {_fmt_score(winner['score'])})"
    default_options = ModelOptions().to_dict()
    if winner["options"] == default_options:
        text += "\n  = the paper-default reading"
    else:
        flips = {
            k: v for k, v in winner["options"].items() if v != default_options[k]
        }
        text += "\n  differs from the paper-default reading on: " + ", ".join(
            f"{k}={format_axis_value(v)}" for k, v in flips.items()
        )
    if len(specs) > 1:
        text += "\nper-scenario winners:"
        for spec in specs:
            w = per_scenario_winners[spec.name]
            text += f"\n  {spec.name}: {w['name']} ({metric} {_fmt_score(w[metric])})"
    if sensitivity:
        sens_rows = [[s.path, f"{s.spread:.4f}", s.groups] for s in sensitivity]
        text += "\n\n" + render_table(
            ["knob", f"relative spread of {metric}", "groups"],
            sens_rows,
            title="per-knob marginal impact (most influential first)",
        )
        if data["sensitivity_dropped"]:
            text += (
                f"\n({data['sensitivity_dropped']} combination(s) saturate inside the "
                "scoring grid and are excluded from the impact ranking)"
            )
    text += (
        f"\nsimulated {data['simulated_points']} point(s) "
        f"({data['cached_curves']} of {len(specs)} curves from cache, jobs={data['jobs']})"
    )
    return text
