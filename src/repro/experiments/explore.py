"""Design-space exploration: evaluate every cell of a :class:`DesignGrid`.

This is the scaffolding the paper's §4 promise ("help system designers
explore the design space") runs on: a grid of derived scenario variants is
evaluated **entirely through the batched closed forms** — per cell one
load-independent decomposition, the exact per-resource saturation
inversion, a vectorised knee search and (when the spec carries a finite
``latency_budget``) the capacity planner — so thousands of design points
cost milliseconds each, no simulation.

Per-cell metrics (the ``metrics`` mapping of each cell record and the
columns of the long-format table):

``saturation_load``
    λ* — smallest load at which any modelled queue reaches ρ = 1.
``binding_resource`` / ``binding_kind``
    the resource attaining that minimum (``source-queue``/``concentrator``).
``zero_load_latency``
    the no-contention mean latency floor.
``knee_load``
    the load at which mean latency reaches ``knee_threshold_factor`` ×
    the zero-load latency (the curve's practical knee; default 4×).
``lambda_at_budget``
    largest load meeting the spec's ``latency_budget`` (NaN when the spec
    carries no budget).
``total_nodes`` / ``cost_proxy``
    system size and the provisioning cost proxy
    (:func:`repro.analysis.frontier.bandwidth_cost_proxy`).

Cells are pure functions of their spec, so :func:`explore_grid` prices
them either through one cross-cell stacked evaluation
(:class:`repro.core.stacked.StackedModel`; the serial fast path) or by
fanning them across the supervised process pool
(:func:`repro.exec.run_supervised`)
with results bit-identical for any worker count, and memoises them in a
content-addressed on-disk cache (:mod:`repro.io.cache`) keyed by the
cell's numeric spec content, the metric parameters and
:data:`repro.core.batch.ENGINE_VERSION` — re-running an enlarged grid only
evaluates the new cells.

Resilience: worker crashes and failures are retried under a
:class:`~repro.exec.RunPolicy`; cells that still fail produce NaN metric
rows plus an ``errors`` section in the result (a *partial* table) rather
than aborting the run.  With a cache, every completed cell is journaled
as it lands (:class:`~repro.exec.RunJournal`), so a killed run resumed
with ``resume=True`` replays the completed cells and evaluates only the
remainder — byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import require
from repro.analysis.capacity import max_load_for_latency
from repro.analysis.frontier import axis_sensitivity, bandwidth_cost_proxy, pareto_frontier_cells
from repro.analysis.tables import render_table
from repro.core.batch import ENGINE_VERSION, BatchedModel, refine_monotone_crossing
from repro.core.stacked import StackedModel
from repro.exec import (
    RunJournal,
    RunPolicy,
    maybe_corrupt_cache,
    resolve_jobs,
    run_supervised,
)
from repro.experiments.experiment import ExperimentResult
from repro.io.cache import ResultCache, canonical_numbers, content_key
from repro.io.schemas import EXPLORE_CELL_SCHEMA, RUN_JOURNAL_SCHEMA
from repro.scenarios.grid import DesignGrid, format_axis_value
from repro.scenarios.spec import ScenarioSpec

__all__ = ["EXPLORE_CELL_SCHEMA", "cell_cache_key", "explore_grid"]

#: Column order of the long-format table (after the cell name and axes).
_METRIC_COLUMNS = (
    "total_nodes",
    "cost_proxy",
    "saturation_load",
    "knee_load",
    "zero_load_latency",
    "lambda_at_budget",
    "binding_resource",
    "binding_kind",
)


def cell_cache_key(spec: ScenarioSpec, knee_threshold_factor: float) -> str:
    """Content key of one cell's metrics in the on-disk cache.

    Hashes everything the metrics depend on — and nothing they don't: the
    serialised spec minus its derived ``name``/``description`` and minus
    the ``load_grid`` policy (which only shapes sweep grids, never these
    metrics), plus the knee threshold and the engine version.  Numeric
    leaves are canonicalised (int → float) first.  The same design
    reached through different grids, grid policies or value spellings
    therefore shares one entry.
    """
    payload = spec.to_dict()
    payload.pop("name", None)
    payload.pop("description", None)
    payload.pop("load_grid", None)
    payload = canonical_numbers(payload)
    return content_key(
        {
            "schema": EXPLORE_CELL_SCHEMA,
            "engine_version": ENGINE_VERSION,
            "knee_threshold_factor": float(knee_threshold_factor),
            "spec": payload,
        }
    )


def _model_knee(engine: BatchedModel, lam_star: float, zero: float, factor: float) -> float:
    """Load where the model's latency first reaches ``factor ×`` its floor."""
    threshold = factor * zero

    def beyond(grid: np.ndarray) -> np.ndarray:
        latencies = engine.evaluate_many(grid, with_results=False).latencies
        return ~(np.isfinite(latencies) & (latencies < threshold))

    lo, _ = refine_monotone_crossing(0.0, lam_star * (1.0 - 1e-9), beyond, rel_tol=1e-6)
    return lo


def _cell_metrics(spec: ScenarioSpec, knee_threshold_factor: float) -> dict:
    """Evaluate one cell through the batched closed forms (pure function)."""
    engine = BatchedModel(spec.system, spec.message, spec.options, spec.pattern)
    lam_star = engine.saturation_load()
    binding = engine.binding_resource()
    zero = engine.zero_load_latency()
    knee = _model_knee(engine, lam_star, zero, knee_threshold_factor)
    if math.isfinite(spec.latency_budget):
        plan = max_load_for_latency(spec.system, spec.message, spec.latency_budget, engine=engine)
        lambda_at_budget = plan.achieved
    else:
        lambda_at_budget = float("nan")
    return {
        "saturation_load": lam_star,
        "binding_resource": binding,
        "binding_kind": "concentrator" if binding.endswith(":concentrator") else "source-queue",
        "zero_load_latency": zero,
        "knee_load": knee,
        "lambda_at_budget": lambda_at_budget,
        "total_nodes": spec.system.total_nodes,
        "cost_proxy": bandwidth_cost_proxy(spec.system),
    }


def _evaluate_cell(payload: tuple) -> dict:
    """Worker for :func:`explore_grid` (module-level: picklable)."""
    spec_dict, knee_threshold_factor = payload
    return _cell_metrics(ScenarioSpec.from_dict(spec_dict), knee_threshold_factor)


def _stacked_metrics(specs: "list[ScenarioSpec]", knee_threshold_factor: float) -> "list[dict] | None":
    """All pending cells priced in one :class:`StackedModel` evaluation.

    Returns per-cell metric mappings bit-identical to
    :func:`_cell_metrics` (the stacked engine's contract, locked by
    ``tests/test_stacked.py``), or ``None`` if the stack cannot evaluate
    this cell set — the caller then falls back to the supervised
    per-cell path, which also owns retry/NaN-row semantics.
    """
    try:
        stack = StackedModel.from_specs(specs)
        lam_star = stack.saturation_load()
        binding = stack.binding_resources()
        zero = stack.zero_load_latencies()
        knee = stack.knee_loads(knee_threshold_factor)
        budgets = np.array(
            [
                spec.latency_budget if math.isfinite(spec.latency_budget) else float("nan")
                for spec in specs
            ],
            dtype=np.float64,
        )
        at_budget = stack.loads_at_budget(budgets)
    except Exception:
        return None
    return [
        {
            "saturation_load": float(lam_star[k]),
            "binding_resource": binding[k],
            "binding_kind": (
                "concentrator" if binding[k].endswith(":concentrator") else "source-queue"
            ),
            "zero_load_latency": float(zero[k]),
            "knee_load": float(knee[k]),
            "lambda_at_budget": float(at_budget[k]),
            "total_nodes": spec.system.total_nodes,
            "cost_proxy": bandwidth_cost_proxy(spec.system),
        }
        for k, spec in enumerate(specs)
    ]


def _error_metrics(spec: ScenarioSpec) -> dict:
    """Placeholder metric row for a cell that failed after all retries."""
    nan = float("nan")
    return {
        "saturation_load": nan,
        "binding_resource": "",
        "binding_kind": "error",
        "zero_load_latency": nan,
        "knee_load": nan,
        "lambda_at_budget": nan,
        "total_nodes": spec.system.total_nodes,
        "cost_proxy": nan,
    }


def explore_grid(
    grid: DesignGrid,
    *,
    jobs: "int | str | None" = None,
    cache: "ResultCache | str | None" = None,
    frontier: bool = False,
    knee_threshold_factor: float = 4.0,
    policy: "RunPolicy | None" = None,
    resume: bool = False,
) -> ExperimentResult:
    """Evaluate every cell of *grid*; returns a uniform ``explore`` result.

    ``jobs`` fans the uncached cells across a supervised process pool
    (``0``/"auto" = one worker per CPU); the table is bit-identical for
    any worker count.  ``cache`` (a directory path or
    :class:`ResultCache`) memoises per-cell metrics on disk — a repeated
    run re-evaluates nothing and an enlarged grid only evaluates its new
    cells.  With ``frontier=True`` the result additionally carries the
    Pareto frontier (min ``cost_proxy``, max ``saturation_load``) and the
    per-axis sensitivity ranking of λ*.

    ``policy`` tunes retries/timeouts/pool respawn
    (:class:`~repro.exec.RunPolicy`; default policy retries twice).
    Cells still failing after retries yield NaN metric rows and an
    ``errors`` section (``data["partial"]`` is then true; frontier views
    are skipped).  With a cache, completed cells are journaled as they
    land; ``resume=True`` requires that journal and replays its cells
    from the cache, evaluating only the remainder.

    Serial runs (``jobs`` absent or 1) with no explicit ``policy`` and no
    ``resume`` price all uncached cells through one
    :class:`~repro.core.stacked.StackedModel` evaluation — bit-identical
    to the per-cell path by the stacked engine's contract, roughly 50×
    faster on large grids (``data["stacked"]`` reports which path ran).

    The result's ``data`` holds the long-format ``columns`` (one row per
    cell: name, one column per axis, then the metric columns), the full
    ``cells`` records, and ``evaluated``/``cached``/``cache_hits``/
    ``stacked``/``resumed``/``jobs`` counters plus ``errors``/``partial``.
    """
    require(isinstance(grid, DesignGrid), "grid must be a DesignGrid")
    require(
        isinstance(knee_threshold_factor, (int, float)) and knee_threshold_factor > 1.0,
        f"knee_threshold_factor must exceed 1, got {knee_threshold_factor!r}",
    )
    knee_threshold_factor = float(knee_threshold_factor)
    cells = grid.cells()
    store = None
    if cache is not None:
        store = cache if isinstance(cache, ResultCache) else ResultCache(cache)

    # Cache keys only exist to address the store and the journal; with no
    # cache configured, hashing 500 specs is pure overhead on the hot
    # stacked path, so the whole identity block is store-gated.
    keys: "list[str]" = []
    journal = None
    if store is not None:
        keys = [cell_cache_key(cell.spec, knee_threshold_factor) for cell in cells]
        # The run's identity is its full work list: the same grid resumes
        # itself, any change to the cell set starts a fresh journal.
        run_key = content_key(
            {"schema": RUN_JOURNAL_SCHEMA, "kind": "explore", "keys": keys}
        )
        journal = RunJournal.for_cache(store, run_key)
    if resume:
        require(store is not None, "resume requires a result cache (--cache)")
        assert journal is not None
        require(
            journal.exists(),
            f"resume requested but no run journal exists at {journal.path}",
        )
    journaled = journal.completed_keys() if journal is not None else set()

    # Cache lookups resolve *before* any model construction: pure cache
    # hits never build an engine, and the one-pass ``get_many`` replaces
    # N per-key stats with one directory listing per fan-out prefix.
    metrics: list = [None] * len(cells)
    n_cached = 0
    n_resumed = 0
    if store is not None:
        for idx, (key, entry) in enumerate(zip(keys, store.get_many(keys))):
            # A hit must carry the full metric set: an incomplete mapping
            # (hand-edited, or written by a build whose metric set changed
            # without a schema bump) is a miss to recompute, not a crash.
            if (
                isinstance(entry, dict)
                and entry.get("schema") == EXPLORE_CELL_SCHEMA
                and isinstance(entry.get("metrics"), dict)
                and all(name in entry["metrics"] for name in _METRIC_COLUMNS)
            ):
                metrics[idx] = entry["metrics"]
                n_cached += 1
                if key in journaled:
                    n_resumed += 1
    pending = [idx for idx, m in enumerate(metrics) if m is None]
    n_jobs = min(resolve_jobs(jobs), len(pending))

    def _persist_cell(slot, value):
        # Runs in the supervising process as each cell finalises, so a
        # kill at any instant leaves cache+journal describing exactly the
        # completed cells (crash-safe resume).
        if store is None:
            return
        idx = pending[slot]
        store.put(
            keys[idx],
            {
                "schema": EXPLORE_CELL_SCHEMA,
                "engine_version": ENGINE_VERSION,
                "cell": cells[idx].name,
                "metrics": value,
            },
        )
        maybe_corrupt_cache(store, keys[idx], slot)
        journal.record(keys[idx], cell=cells[idx].name)

    # Serial runs without fault-injection/resume machinery price every
    # pending cell in ONE stacked evaluation (bit-identical, ~50x).  The
    # supervised per-cell pool keeps ownership of ``--jobs`` fan-out and
    # retry/NaN-row/resume semantics — nothing there changes shape.
    errors = []
    stacked = False
    stacked_values = None
    if pending and jobs in (None, 1) and policy is None and not resume:
        stacked_values = _stacked_metrics(
            [cells[idx].spec for idx in pending], knee_threshold_factor
        )
    if stacked_values is not None:
        stacked = True
        for slot, idx in enumerate(pending):
            metrics[idx] = stacked_values[slot]
            _persist_cell(slot, stacked_values[slot])
    else:
        outcomes = run_supervised(
            _evaluate_cell,
            [(cells[idx].spec.to_dict(), knee_threshold_factor) for idx in pending],
            jobs=n_jobs,
            policy=policy,
            on_result=lambda slot, outcome: (
                _persist_cell(slot, outcome.value) if outcome.ok else None
            ),
        )
        for slot, outcome in enumerate(outcomes):
            idx = pending[slot]
            if outcome.ok:
                metrics[idx] = outcome.value
            else:
                metrics[idx] = _error_metrics(cells[idx].spec)
                errors.append({"cell": cells[idx].name, **outcome.error_record()})

    columns: dict[str, list] = {"cell": [cell.name for cell in cells]}
    for axis in grid.axes:
        columns[axis.path] = [cell.coords[axis.path] for cell in cells]
    for name in _METRIC_COLUMNS:
        columns[name] = [m[name] for m in metrics]
    records = [
        {"index": cell.index, "name": cell.name, "coords": cell.coords, "metrics": m}
        for cell, m in zip(cells, metrics)
    ]
    data = {
        "columns": columns,
        "cells": records,
        "axes": [axis.to_dict() for axis in grid.axes],
        "knee_threshold_factor": knee_threshold_factor,
        "evaluated": len(pending),
        "cached": n_cached,
        "cache_hits": n_cached,
        "stacked": stacked,
        "resumed": n_resumed,
        "jobs": n_jobs,
        "cache_root": str(store.root) if store is not None else None,
        "errors": errors,
        "partial": bool(errors),
    }

    rows = [
        [cell.name]
        + [format_axis_value(cell.coords[axis.path]) for axis in grid.axes]
        + [f"{m['saturation_load']:.4e}", f"{m['knee_load']:.4e}", m["binding_resource"]]
        for cell, m in zip(cells, metrics)
    ]
    text = render_table(
        ["cell"] + [axis.path for axis in grid.axes] + ["λ*", "knee", "binding"],
        rows,
        title=(
            f"design grid over {grid.base.name!r}: "
            f"{len(grid.axes)} axes, {len(cells)} cells"
        ),
    )
    if frontier and not errors:
        frontier_text, frontier_data = _frontier_views(records)
        data.update(frontier_data)
        text += "\n\n" + frontier_text
    elif frontier:
        text += "\n\nfrontier views skipped: the table is partial"
    text += (
        f"\nevaluated {len(pending)} of {len(cells)} cells "
        f"({n_cached} from cache, jobs={n_jobs})"
    )
    if resume:
        text += f"\nresumed {n_resumed} cell(s) from the run journal"
    if errors:
        text += (
            f"\nPARTIAL: {len(errors)} of {len(cells)} cell(s) failed after retries"
        )
    return ExperimentResult(
        kind="explore",
        scenario=grid.base.name,
        spec=grid.to_dict(),
        data=data,
        text=text,
    )


def _frontier_views(records: list) -> tuple[str, dict]:
    """Pareto frontier + sensitivity tables over the evaluated cells."""
    indices = pareto_frontier_cells(records)
    frontier_rows = [
        [
            records[i]["name"],
            f"{records[i]['metrics']['cost_proxy']:.4e}",
            f"{records[i]['metrics']['saturation_load']:.4e}",
        ]
        for i in indices
    ]
    sensitivity = axis_sensitivity(records)
    sensitivity_rows = [[s.path, f"{s.spread:.4f}", s.groups] for s in sensitivity]
    text = (
        render_table(
            ["cell", "cost_proxy", "λ*"],
            frontier_rows,
            title=f"Pareto frontier (min cost_proxy, max λ*): {len(indices)} of {len(records)} cells",
        )
        + "\n\n"
        + render_table(
            ["axis", "relative spread of λ*", "groups"],
            sensitivity_rows,
            title="axis sensitivity (most influential first)",
        )
    )
    data = {
        "frontier": {
            "x": "cost_proxy",
            "y": "saturation_load",
            "indices": [int(i) for i in indices],
            "cells": [records[i]["name"] for i in indices],
        },
        "sensitivity": [
            {"path": s.path, "spread": s.spread, "groups": s.groups} for s in sensitivity
        ],
    }
    return text, data
