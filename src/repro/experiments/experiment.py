"""One facade over every workflow: ``Experiment(spec)``.

Before this module, each analysis entry point took a different ad-hoc
signature (``sweep_load(engine, grid)``, ``max_load_for_latency(system,
message, budget)``, ``run_validation(system, message, grid, ...)``, …).
:class:`Experiment` consumes one declarative
:class:`~repro.scenarios.ScenarioSpec` and exposes each workflow as a
method; all methods share a single cached
:class:`~repro.core.batch.BatchedModel` (one load-independent precompute
per experiment) and return a uniform :class:`ExperimentResult` that
serialises through :func:`repro.io.results.to_jsonable` with a stable
schema.

The numeric outputs are *identical* to the direct calls — ``.sweep()`` is
``sweep_load`` on the spec's grid, ``.capacity()`` is
``max_load_for_latency``, ``.bottlenecks()`` is ``model_bottlenecks`` —
because each method delegates to those functions with the shared engine
(locked by ``tests/test_experiment.py``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace

import numpy as np

from repro._util import reject_unknown_keys, require, require_positive
from repro.analysis.bottleneck import model_bottlenecks
from repro.analysis.capacity import max_load_for_latency
from repro.analysis.tables import render_series, render_table
from repro.analysis.whatif import curve_label, scale_network
from repro.core.batch import BatchedModel
from repro.core.model import AnalyticalModel
from repro.core.sweep import sweep_load
from repro.io.results import to_jsonable
from repro.io.schemas import EXPERIMENT_SCHEMA
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["Experiment", "ExperimentResult", "EXPERIMENT_SCHEMA"]


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform return value of every :class:`Experiment` workflow.

    kind:
        which workflow produced it (``"sweep"``, ``"saturation"``, …).
    scenario:
        the spec's name.
    spec:
        the serialised input that reproduces the result: for single-
        scenario workflows the full :class:`~repro.scenarios.ScenarioSpec`;
        for the multi-spec kinds it is composite — ``sweep_many`` carries
        ``{"scenarios": [spec, ...]}`` and ``explore`` the serialised
        :class:`~repro.scenarios.DesignGrid` (schema ``repro.grid/1``) —
        so every saved result stays self-describing.
    data:
        workflow-specific payload.  Curve-shaped results put their
        equal-length columns under ``data["columns"]`` (that is what CSV
        export writes); scalar results use plain keys.
    text:
        the human-readable rendering the CLI prints.
    """

    kind: str
    scenario: str
    spec: dict
    data: dict
    text: str
    schema: str = EXPERIMENT_SCHEMA

    def to_dict(self) -> dict:
        """JSON-safe dict with the stable result schema."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a saved result from a :meth:`to_dict` mapping.

        Unknown keys and foreign schemas are rejected.  Payload values
        come back JSON-native (``to_dict`` flattens numpy arrays to
        lists), so ``from_dict(r.to_dict()).to_dict() == r.to_dict()``
        holds for every result kind — the on-disk form is the fixed
        point, not the in-memory one.
        """
        reject_unknown_keys(
            data,
            ("kind", "scenario", "spec", "data", "text", "schema"),
            "experiment result",
            required=("kind", "scenario", "spec", "data"),
        )
        schema = data.get("schema", EXPERIMENT_SCHEMA)
        require(
            schema == EXPERIMENT_SCHEMA,
            f"unsupported experiment schema {schema!r} "
            f"(this build reads {EXPERIMENT_SCHEMA!r})",
        )
        return cls(
            kind=data["kind"],
            scenario=data["scenario"],
            spec=data["spec"],
            data=data["data"],
            text=data.get("text", ""),
            schema=schema,
        )

    def columns(self) -> dict:
        """The result's tabular columns (for CSV export).

        Raises ``ValueError`` for result kinds with no tabular view.
        """
        columns = self.data.get("columns")
        require(
            isinstance(columns, dict) and len(columns) > 0,
            f"result kind {self.kind!r} has no tabular columns to export as CSV",
        )
        return columns


class Experiment:
    """All of the library's workflows, driven by one scenario spec.

    Accepts a :class:`~repro.scenarios.ScenarioSpec` or a registered
    scenario name.  The batched engine, its load grid and the simulation
    session are built lazily and cached, so e.g. ``.sweep()`` followed by
    ``.bottlenecks()`` pays the load-independent precompute once.
    """

    def __init__(self, spec: "ScenarioSpec | str") -> None:
        if isinstance(spec, str):
            spec = get_scenario(spec)
        require(isinstance(spec, ScenarioSpec), "spec must be a ScenarioSpec or a scenario name")
        self.spec = spec
        # Serialise once, up front: every result embeds the spec, so an
        # unserialisable spec (unregistered pattern) must fail here — before
        # any workflow burns compute — not after the first sweep finishes.
        self._spec_dict = spec.to_dict()
        self._engine: BatchedModel | None = None
        self._grid: np.ndarray | None = None
        self._session = None

    # -- shared machinery ------------------------------------------------------

    @property
    def engine(self) -> BatchedModel:
        """The experiment's cached batched engine (one precompute)."""
        if self._engine is None:
            s = self.spec
            self._engine = BatchedModel(s.system, s.message, s.options, s.pattern)
        return self._engine

    @property
    def model(self) -> AnalyticalModel:
        """The scalar reference model behind :attr:`engine`."""
        return self.engine.reference_model

    def load_grid(self) -> np.ndarray:
        """The spec's load grid, materialised once per experiment."""
        if self._grid is None:
            self._grid = self.spec.load_grid.grid(self.engine)
        return self._grid

    def session(self):
        """Cached :class:`~repro.simulation.runner.SimulationSession`."""
        if self._session is None:
            from repro.simulation.runner import SimulationSession

            s = self.spec
            self._session = SimulationSession(s.system, s.message, options=s.options)
        return self._session

    def _result(self, kind: str, data: dict, text: str) -> ExperimentResult:
        return ExperimentResult(
            kind=kind,
            scenario=self.spec.name,
            spec=self._spec_dict,
            data=data,
            text=text,
        )

    # -- workflows -------------------------------------------------------------

    def describe(self) -> ExperimentResult:
        """Structural summary of the scenario (the Table 1 view)."""
        s = self.spec
        system = s.system
        classes = [
            {
                "name": c.name,
                "count": c.count,
                "tree_depth": c.tree_depth,
                "nodes": c.nodes,
                "outgoing_probability": c.u,
            }
            for c in self.engine.cluster_classes
        ]
        rows = [
            [c["name"], c["count"], c["tree_depth"], c["nodes"], f"{c['outgoing_probability']:.4f}"]
            for c in classes
        ]
        head = (
            f"{s.name}: {system.name}, N={system.total_nodes}, C={system.num_clusters}, "
            f"m={system.switch_ports}, n_c={system.icn2_tree_depth}\n"
        )
        if s.pattern is not None:
            head += f"traffic pattern: {s.pattern!r}\n"
        text = head + render_table(["class", "count", "n_i", "N_i", "U_i (Eq.2)"], rows)
        data = {
            "system_name": system.name,
            "total_nodes": system.total_nodes,
            "num_clusters": system.num_clusters,
            "switch_ports": system.switch_ports,
            "icn2_tree_depth": system.icn2_tree_depth,
            "classes": classes,
        }
        return self._result("describe", data, text)

    def evaluate(self, load: float) -> ExperimentResult:
        """Model latency (with per-class breakdown) at one load."""
        result = self.engine.evaluate(load)
        if result.saturated:
            resources = sorted(set(result.saturated_resources))
            text = f"SATURATED at λ_g={load:g}: {', '.join(resources[:4])}"
        else:
            rows = [
                [c.name, c.intra.total, c.inter_network, c.concentrator_wait, c.mean]
                for c in result.clusters
            ]
            table = render_table(["class", "L_in", "L_ex", "W_d", "mean (Eq.1)"], rows)
            text = f"mean message latency (Eq.3): {result.latency:.3f}\n\n{table}"
        data = {
            "load": load,
            "latency": result.latency,
            "saturated": result.saturated,
            "saturated_resources": sorted(set(result.saturated_resources)),
            "clusters": [
                {
                    "name": c.name,
                    "intra": c.intra.total,
                    "inter_network": c.inter_network,
                    "concentrator_wait": c.concentrator_wait,
                    "mean": c.mean,
                }
                for c in result.clusters
            ],
        }
        return self._result("latency", data, text)

    def sweep(self, loads: "np.ndarray | list[float] | None" = None) -> ExperimentResult:
        """Model latency curve over the spec's load grid (or *loads*)."""
        s = self.spec
        grid = self.load_grid() if loads is None else np.asarray(loads, dtype=np.float64)
        result = sweep_load(self.engine, grid, with_results=False)
        loads_list = [float(v) for v in result.loads]
        latency_list = [float(v) for v in result.latencies]
        text = render_series(
            f"model latency, {s.system.name}, M={s.message.length_flits}, "
            f"d_m={s.message.flit_bytes:g}",
            "lambda_g",
            loads_list,
            {"latency": latency_list},
        )
        data = {
            "columns": {"load": loads_list, "latency": latency_list},
            "saturation_load": self.engine.saturation_load(),
        }
        return self._result("sweep", data, text)

    def saturation(self) -> ExperimentResult:
        """Saturation load λ*, binding resource and per-resource rates."""
        engine = self.engine
        lam_star = engine.saturation_load()
        binding = engine.binding_resource()
        per_resource = dict(sorted(engine.saturation_loads().items(), key=lambda kv: kv[1]))
        report = model_bottlenecks(
            self.spec.system, self.spec.message, 0.9 * lam_star, engine=engine
        )
        rows = [[name, f"{lam:.4e}"] for name, lam in list(per_resource.items())[:5]]
        table = render_table(
            ["resource", "λ* (ρ=1)"], rows, title="tightest per-resource saturation rates"
        )
        text = (
            f"saturation load λ* = {lam_star:.4e} messages/node/time-unit\n"
            f"binding resource   = {report.binding.resource} ({report.binding.kind}, "
            f"ρ={report.binding.utilization:.3f} at 0.9 λ*)\n\n{table}"
        )
        data = {
            "saturation_load": lam_star,
            "binding_resource": binding,
            "per_resource": per_resource,
        }
        return self._result("saturation", data, text)

    def capacity(self, budget: float | None = None) -> ExperimentResult:
        """Max sustainable load under a latency *budget*.

        Defaults to the spec's ``latency_budget``; a spec with the ``inf``
        placeholder requires an explicit budget.
        """
        if budget is None:
            budget = self.spec.latency_budget
            require(
                np.isfinite(budget),
                f"scenario {self.spec.name!r} sets no latency_budget; pass one explicitly",
            )
        require_positive(budget, "budget")
        plan = max_load_for_latency(
            self.spec.system, self.spec.message, budget, engine=self.engine
        )
        status = "feasible" if plan.feasible else "INFEASIBLE"
        text = f"{status}: λ_max = {plan.achieved:.4e}\n{plan.detail}"
        data = {
            "target": plan.target,
            "achieved": plan.achieved,
            "feasible": plan.feasible,
            "detail": plan.detail,
            "columns": {
                "target": [plan.target],
                "achieved": [plan.achieved],
                "feasible": [plan.feasible],
            },
        }
        return self._result("capacity", data, text)

    def bottlenecks(self, load: float | None = None) -> ExperimentResult:
        """Ranked resource utilisations at *load* (default: 0.9 λ*)."""
        if load is None:
            load = 0.9 * self.engine.saturation_load()
        report = model_bottlenecks(
            self.spec.system, self.spec.message, load, engine=self.engine
        )
        rows = [[r.resource, r.kind, f"{r.utilization:.4f}"] for r in report.top(8)]
        table = render_table(
            ["resource", "kind", "ρ"], rows, title=f"utilisations at λ_g={load:.4e}"
        )
        text = (
            f"binding resource: {report.binding.resource} ({report.binding.kind}, "
            f"ρ={report.binding.utilization:.3f})\n\n{table}"
        )
        data = {
            "load": report.load,
            "saturation_load": report.saturation_load,
            "binding": {
                "resource": report.binding.resource,
                "kind": report.binding.kind,
                "utilization": report.binding.utilization,
            },
            "resources": [
                {"resource": r.resource, "kind": r.kind, "utilization": r.utilization}
                for r in report.resources
            ],
            "columns": {
                "resource": [r.resource for r in report.resources],
                "kind": [r.kind for r in report.resources],
                "utilization": [r.utilization for r in report.resources],
            },
        }
        return self._result("bottlenecks", data, text)

    def whatif(self, role: str = "icn2", factor: float = 1.2) -> ExperimentResult:
        """Latency curves of the base system vs one network role rescaled.

        Generalises the paper's Fig. 7 (+20 % ICN2) to any role/factor; both
        curves share the spec's load grid so they are directly comparable.
        """
        s = self.spec
        grid = self.load_grid()
        variant_system = scale_network(s.system, role, factor)
        variant_engine = BatchedModel(variant_system, s.message, s.options, s.pattern)
        curves = []
        series: dict[str, list[float]] = {}
        for label, engine in (
            (curve_label(s.system, "base"), self.engine),
            (curve_label(s.system, f"{role} x{factor:g}"), variant_engine),
        ):
            result = engine.evaluate_many(grid, with_results=False)
            latencies = [float(v) for v in result.latencies]
            curves.append(
                {
                    "label": label,
                    "loads": [float(v) for v in result.loads],
                    "latencies": latencies,
                    "saturation_load": engine.saturation_load(),
                }
            )
            series[label] = latencies
        gain = curves[1]["saturation_load"] / curves[0]["saturation_load"]
        text = (
            render_series(
                f"what-if: {role} bandwidth x{factor:g} ({s.system.name})",
                "lambda_g",
                [float(v) for v in grid],
                series,
            )
            + f"\nsaturation gain: x{gain:.4f}"
        )
        data = {
            "role": role,
            "factor": factor,
            "curves": curves,
            "saturation_gain": gain,
            "columns": {
                "load": curves[0]["loads"],
                "base": curves[0]["latencies"],
                "variant": curves[1]["latencies"],
            },
        }
        return self._result("whatif", data, text)

    def knee(
        self,
        *,
        threshold_factor: float = 4.0,
        messages: int = 5_000,
        seed: int = 0,
        iterations: int = 7,
    ) -> ExperimentResult:
        """Empirical simulated knee relative to the model's λ*."""
        from repro.analysis.knee import estimate_sim_knee
        from repro.simulation.metrics import MeasurementWindow

        estimate = estimate_sim_knee(
            self.session(),
            threshold_factor=threshold_factor,
            window=MeasurementWindow.scaled_paper(messages),
            seed=seed,
            iterations=iterations,
            pattern=self.spec.pattern,
        )
        text = (
            f"simulated knee ≈ {estimate.sim_knee:.4e} "
            f"({estimate.knee_fraction:.0%} of the model's λ* = {estimate.model_saturation:.4e}, "
            f"threshold {estimate.threshold_factor:g}x zero-load latency)"
        )
        data = {
            "sim_knee": estimate.sim_knee,
            "model_saturation": estimate.model_saturation,
            "knee_fraction": estimate.knee_fraction,
            "threshold_factor": estimate.threshold_factor,
            "probes": [list(p) for p in estimate.probes],
            "columns": {
                "sim_knee": [estimate.sim_knee],
                "model_saturation": [estimate.model_saturation],
                "knee_fraction": [estimate.knee_fraction],
                "threshold_factor": [estimate.threshold_factor],
            },
        }
        return self._result("knee", data, text)

    def simulate(
        self,
        load: float,
        *,
        messages: int = 10_000,
        seed: int = 0,
        granularity: str = "message",
        replicas: "int | None" = None,
        jobs: "int | str | None" = None,
        engine: str = "reference",
    ) -> ExperimentResult:
        """Discrete-event simulation at *load*.

        With *replicas* (≥ 2) the point is replicated under independent
        spawned seeds and summarised with a confidence interval; ``jobs``
        fans the replicas across a process pool (results are bit-identical
        for any worker count).  Without *replicas*, one run at *seed*.
        *engine* selects the message-level event engine (bit-identical
        either way, see :mod:`repro.simulation.eventcore`).
        """
        from repro.simulation.metrics import MeasurementWindow

        if replicas is not None:
            return self._simulate_replicated(
                load, messages=messages, seed=seed, granularity=granularity,
                replicas=replicas, jobs=jobs, engine=engine,
            )
        result = self.session().run(
            load,
            seed=seed,
            window=MeasurementWindow.scaled_paper(messages),
            granularity=granularity,
            pattern=self.spec.pattern,
            engine=engine,
        )
        util = ", ".join(f"{k}={v:.3f}" for k, v in sorted(result.network_utilization.items()))
        text = (
            f"simulated mean latency: {result.mean_latency:.3f} "
            f"(p95={result.stats.p95:.2f}, n={result.stats.count}, "
            f"intra={result.stats.mean_intra:.2f}, inter={result.stats.mean_inter:.2f})\n"
            f"events={result.events}, wall={result.wall_seconds:.2f}s, "
            f"completed={result.completed}\n"
            f"utilization: {util}"
        )
        data = {
            "load": load,
            "mean_latency": result.mean_latency,
            "p95": result.stats.p95,
            "measured_messages": result.stats.count,
            "events": result.events,
            "completed": result.completed,
            "network_utilization": dict(sorted(result.network_utilization.items())),
        }
        return self._result("simulate", data, text)

    def _simulate_replicated(
        self, load, *, messages, seed, granularity, replicas, jobs, engine="reference"
    ) -> ExperimentResult:
        from repro.simulation.metrics import MeasurementWindow
        from repro.simulation.replication import replicate

        rep = replicate(
            self.session(),
            load,
            replicas=replicas,
            base_seed=seed,
            window=MeasurementWindow.scaled_paper(messages),
            jobs=jobs,
            granularity=granularity,
            pattern=self.spec.pattern,
            engine=engine,
        )
        text = (
            f"simulated mean latency: {rep.mean_latency:.3f} "
            f"± {rep.ci_half_width:.3f} ({rep.confidence:.0%} CI, "
            f"{replicas} replicas, base seed {seed})\n"
            f"events={rep.events}, elapsed={rep.elapsed_seconds:.2f}s "
            f"-> {rep.events_per_second:,.0f} events/s (jobs={rep.jobs})"
        )
        data = {
            "load": load,
            "mean_latency": rep.mean_latency,
            "ci_half_width": rep.ci_half_width,
            "confidence": rep.confidence,
            "replicas": replicas,
            "seeds": list(rep.seeds),
            "replica_means": [r.mean_latency for r in rep.replicas],
            "events": rep.events,
            "wall_seconds": rep.wall_seconds,
            "elapsed_seconds": rep.elapsed_seconds,
            "events_per_second": rep.events_per_second,
            "jobs": rep.jobs,
        }
        return self._result("simulate", data, text)

    def validate(
        self,
        *,
        points: int | None = None,
        messages: int = 10_000,
        seed: int = 0,
        granularity: str = "message",
        jobs: "int | str | None" = None,
        engine: str = "reference",
    ) -> ExperimentResult:
        """Model-vs-simulation comparison across the spec's load grid.

        ``jobs`` fans the per-point simulations across a process pool;
        the curve is bit-identical for any worker count — as it is for
        either message-level event *engine* (``"reference"``/``"array"``).
        """
        from repro.io.reporting import format_validation_curve
        from repro.simulation.metrics import MeasurementWindow
        from repro.simulation.parallel import resolve_jobs
        from repro.validation.compare import run_validation

        s = self.spec
        if points is None:
            grid = self.load_grid()
        else:
            grid = replace(s.load_grid, points=points).grid(self.engine)
        # Cap at the point count so the reported jobs matches the workers
        # that could actually run (run_work_items applies the same cap).
        n_jobs = min(resolve_jobs(jobs), len(grid))
        start = _time.perf_counter()
        curve = run_validation(
            s.system,
            s.message,
            grid,
            seed=seed,
            window=MeasurementWindow.scaled_paper(messages),
            granularity=granularity,
            options=s.options,
            session=self.session(),
            pattern=s.pattern,
            jobs=n_jobs,
            engine=engine,
        )
        elapsed = _time.perf_counter() - start
        events_per_second = curve.sim_events / elapsed if elapsed > 0 else float("nan")
        text = format_validation_curve(curve) + (
            f"\nsim events={curve.sim_events}, elapsed={elapsed:.2f}s "
            f"-> {events_per_second:,.0f} events/s (jobs={n_jobs})"
        )
        data = {
            "columns": {
                "load": [p.load for p in curve.points],
                "model": [p.model_latency for p in curve.points],
                "simulation": [p.sim_latency for p in curve.points],
                "rel_error": [p.relative_error for p in curve.points],
            },
            "max_abs_error": curve.max_abs_error(),
            "sim_events": curve.sim_events,
            "sim_wall_seconds": curve.sim_wall_seconds,
            "elapsed_seconds": elapsed,
            "events_per_second": events_per_second,
            "jobs": n_jobs,
        }
        return self._result("validate", data, text)

    def explore(
        self,
        axes,
        *,
        jobs: "int | str | None" = None,
        cache=None,
        frontier: bool = False,
        knee_threshold_factor: float = 4.0,
        policy=None,
        resume: bool = False,
    ) -> ExperimentResult:
        """Design-space exploration around this experiment's spec.

        *axes* is a sequence of :class:`~repro.scenarios.AxisSpec` or
        ``(dotted_path, values)`` pairs; the Cartesian product of derived
        variants is evaluated through the batched closed forms (see
        :func:`repro.experiments.explore_grid`, which this wraps with
        ``self.spec`` as the grid base; ``policy``/``resume`` pass
        through to the supervised runtime).
        """
        from repro.experiments.explore import explore_grid
        from repro.scenarios.grid import DesignGrid, as_axis

        grid = DesignGrid(base=self.spec, axes=tuple(as_axis(a) for a in axes))
        return explore_grid(
            grid,
            jobs=jobs,
            cache=cache,
            frontier=frontier,
            knee_threshold_factor=knee_threshold_factor,
            policy=policy,
            resume=resume,
        )

    def performability(
        self,
        failures,
        *,
        jobs: "int | str | None" = None,
        cache=None,
        policy=None,
        resume: bool = False,
    ) -> ExperimentResult:
        """Availability-weighted performance of this scenario under churn.

        *failures* is a :class:`~repro.performability.FailureScenario` (or
        its serialised dict / a JSON config path).  The failure scenario's
        availability CTMC is solved, every degraded system is priced by
        the batched closed forms, and the result carries λ*_A, expected
        capacity, the weighted latency curve and the failure ranking; see
        :func:`repro.performability.performability_analysis`, which this
        wraps with ``self.spec`` (``jobs``/``cache`` pass through).
        """
        from repro.performability import FailureScenario, performability_analysis

        if isinstance(failures, dict):
            failures = FailureScenario.from_dict(failures)
        elif isinstance(failures, str):
            failures = FailureScenario.load(failures)
        return performability_analysis(self.spec, failures, jobs=jobs, cache=cache)

    def calibrate(
        self,
        *,
        axes=None,
        fixed: "dict | None" = None,
        **kwargs,
    ) -> ExperimentResult:
        """Calibrate the ``ModelOptions`` readings against the simulators.

        Enumerates the (optionally restricted) option space and scores
        every combination against this scenario's simulated ground truth;
        see :func:`repro.experiments.calibrate.calibrate_options`, which
        this wraps with ``[self.spec]`` — all its protocol knobs
        (``fractions``, ``metric``, ``messages``, ``seed``,
        ``seed_stride``, ``granularity``, ``jobs``, ``cache``) pass
        through.
        """
        from repro.experiments.calibrate import calibrate_options

        return calibrate_options([self.spec], axes=axes, fixed=fixed, **kwargs)

    @classmethod
    def sweep_many(
        cls,
        scenarios,
        *,
        jobs: "int | str | None" = None,
        points: int | None = None,
    ) -> ExperimentResult:
        """Model sweep across many scenarios, fanned out over a process pool.

        *scenarios* is an iterable of registered names and/or
        :class:`~repro.scenarios.ScenarioSpec` instances.  Each scenario
        pays its own load-independent precompute, so with ``jobs > 1`` they
        run concurrently in worker processes; the gathered result is one
        uniform long-format table (``scenario``/``load``/``latency``
        columns plus a per-scenario summary) with a stable schema.
        """
        from repro.simulation.parallel import map_jobs, resolve_jobs

        specs = [get_scenario(s) if isinstance(s, str) else s for s in scenarios]
        require(len(specs) > 0, "sweep_many needs at least one scenario")
        for spec in specs:
            require(isinstance(spec, ScenarioSpec), "scenarios must be names or ScenarioSpec")
        names = [spec.name for spec in specs]
        require(len(set(names)) == len(names), f"duplicate scenario names: {names}")
        payloads = [(spec.to_dict(), points) for spec in specs]
        n_jobs = min(resolve_jobs(jobs), len(payloads))
        rows = map_jobs(_sweep_one, payloads, jobs=n_jobs)
        scenario_col: list[str] = []
        load_col: list[float] = []
        latency_col: list[float] = []
        for row in rows:
            scenario_col.extend([row["scenario"]] * len(row["loads"]))
            load_col.extend(row["loads"])
            latency_col.extend(row["latencies"])
        table = render_table(
            ["scenario", "N", "points", "λ*", "latency @ grid top"],
            [
                [
                    row["scenario"],
                    row["total_nodes"],
                    len(row["loads"]),
                    f"{row['saturation_load']:.4e}",
                    f"{row['latencies'][-1]:.3f}",
                ]
                for row in rows
            ],
            title=f"model sweep across {len(rows)} scenarios (jobs={n_jobs})",
        )
        data = {
            "scenarios": rows,
            "jobs": n_jobs,
            "columns": {
                "scenario": scenario_col,
                "load": load_col,
                "latency": latency_col,
            },
        }
        return ExperimentResult(
            kind="sweep_many",
            scenario=",".join(names),
            spec={"scenarios": [p[0] for p in payloads]},
            data=data,
            text=table,
        )


def _sweep_one(payload: tuple) -> dict:
    """Worker for :meth:`Experiment.sweep_many` (module-level: picklable).

    Reconstructs the spec from its serialised form, runs the standard
    ``sweep`` workflow, and returns the plain-dict row the gatherer
    assembles — identical numbers to ``Experiment(spec).sweep()``.
    """
    spec_dict, points = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    if points is not None:
        spec = replace(spec, load_grid=replace(spec.load_grid, points=points))
    result = Experiment(spec).sweep()
    return {
        "scenario": spec.name,
        "total_nodes": spec.system.total_nodes,
        "loads": result.data["columns"]["load"],
        "latencies": result.data["columns"]["latency"],
        "saturation_load": result.data["saturation_load"],
    }
