"""Backward stage recursion shared by the intra- and inter-cluster models.

The paper analyses a wormhole journey as a pipeline of *stages* — the
switches between source and destination, numbered ``0`` (next to the
source) through ``K-1`` (next to the destination).  The channel service
time at stage ``k`` is the message transfer time **plus the waiting times
of every later stage** (a blocked wormhole header idles its channel), and
each stage's waiting time follows the paper's quadratic approximation:

* Eq. 14 / Eq. 29:  ``T_k = M·t(k) + Σ_{s>k} W_s``   (``T_{K-1} = M·t_cn``)
* Eq. 13 / Eq. 26:  ``W_k = ½ · η(k) · T_k²``

The network latency of the whole journey is ``T_0``.  Channel rates ``η``
and per-flit times ``t`` may vary per stage (the inter-cluster pipeline
mixes three networks), so both are supplied as arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require

__all__ = ["StagePipeline", "PipelineSolution", "solve_pipeline"]


@dataclass(frozen=True)
class StagePipeline:
    """Per-stage description of one journey.

    flit_times:
        per-flit channel service time of each stage's outgoing channel
        (``t_cs`` for interior hops, ``t_cn`` for the final hop).
    channel_rates:
        message arrival rate ``η`` seen by each stage's channel, already
        scaled by the relaxing factor where applicable (Eq. 27).
    """

    flit_times: np.ndarray
    channel_rates: np.ndarray

    def __post_init__(self) -> None:
        require(self.flit_times.ndim == 1, "flit_times must be 1-D")
        require(
            self.flit_times.shape == self.channel_rates.shape,
            "flit_times and channel_rates must have identical shapes",
        )
        require(len(self.flit_times) >= 1, "a pipeline needs at least one stage")

    @property
    def num_stages(self) -> int:
        return len(self.flit_times)


@dataclass(frozen=True)
class PipelineSolution:
    """Result of the backward recursion for one journey."""

    network_latency: float  # T_0 — the mean service time seen at stage 0
    stage_service_times: np.ndarray  # T_k for every stage
    stage_waits: np.ndarray  # W_k for every stage

    @property
    def total_wait(self) -> float:
        """Σ_k W_k — the blocking component of the network latency."""
        return float(self.stage_waits.sum())


#: Values above this are treated as "effectively infinite".  The recursion
#: ``W ∝ η T²`` grows doubly exponentially once channel utilisation passes
#: its useful range, so without a clamp absurd loads overflow float64 long
#: before any M/G/1 queue reports saturation.  Real latencies in any sane
#: unit system are far below this threshold.
_LATENCY_CAP = 1e60


def solve_pipeline(pipeline: StagePipeline, length_flits: int) -> PipelineSolution:
    """Run the Eq. 13/14 backward recursion for one journey.

    Walks from the destination-side stage to the source-side stage keeping a
    running suffix sum of waits; O(K) with no fixed-point iteration (the
    recursion is strictly backward).  Values beyond :data:`_LATENCY_CAP`
    saturate to ``inf`` instead of overflowing.
    """
    require(length_flits >= 1, "length_flits must be >= 1")
    k_stages = pipeline.num_stages
    t = pipeline.flit_times
    eta = pipeline.channel_rates
    service = np.empty(k_stages, dtype=np.float64)
    waits = np.empty(k_stages, dtype=np.float64)
    suffix_wait = 0.0
    inf = float("inf")
    for k in range(k_stages - 1, -1, -1):
        t_k = length_flits * float(t[k]) + suffix_wait
        if t_k > _LATENCY_CAP:
            t_k = inf
            w_k = inf
        else:
            w_k = 0.5 * float(eta[k]) * t_k * t_k
            if w_k > _LATENCY_CAP:
                w_k = inf
        service[k] = t_k
        waits[k] = w_k
        suffix_wait += w_k
    return PipelineSolution(
        network_latency=float(service[0]),
        stage_service_times=service,
        stage_waits=waits,
    )
