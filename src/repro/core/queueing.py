"""M/G/1 queueing primitives used by the model's source and concentrator queues.

The paper models every injection queue and the concentrator/dispatcher
buffers as M/G/1 queues (Kleinrock, Eq. 15):

    W = λ (x̄² + σ²) / (2 (1 − ρ)),   ρ = λ x̄

Saturation (``ρ >= 1``) is the only mechanism by which the analytical model
diverges; channel waits (Eq. 13) grow polynomially but never blow up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_nonnegative

__all__ = ["MG1Result", "mg1_wait"]


@dataclass(frozen=True)
class MG1Result:
    """Outcome of one M/G/1 evaluation."""

    wait: float
    utilization: float
    saturated: bool

    def __post_init__(self) -> None:
        if self.saturated and self.wait != float("inf"):
            raise ValueError("a saturated queue must report an infinite wait")


def mg1_wait(arrival_rate: float, mean_service: float, service_variance: float) -> MG1Result:
    """Mean waiting time of an M/G/1 queue (paper Eq. 15).

    Returns an infinite wait with ``saturated=True`` once ``ρ = λ x̄ >= 1``
    instead of raising, so sweeps can chart the approach to saturation.
    An infinite *mean_service* (a blown-up upstream pipeline) is likewise
    reported as saturation whenever any traffic arrives.
    """
    require_nonnegative(arrival_rate, "arrival_rate")
    if mean_service == float("inf") or service_variance == float("inf"):
        if arrival_rate == 0.0:
            return MG1Result(wait=0.0, utilization=0.0, saturated=False)
        return MG1Result(wait=float("inf"), utilization=float("inf"), saturated=True)
    require_nonnegative(mean_service, "mean_service")
    require_nonnegative(service_variance, "service_variance")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return MG1Result(wait=float("inf"), utilization=rho, saturated=True)
    if arrival_rate == 0.0:
        return MG1Result(wait=0.0, utilization=0.0, saturated=False)
    second_moment = mean_service * mean_service + service_variance
    wait = arrival_rate * second_moment / (2.0 * (1.0 - rho))
    return MG1Result(wait=wait, utilization=rho, saturated=False)
