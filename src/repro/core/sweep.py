"""Load sweeps and saturation-point search for the analytical model.

The paper's figures plot mean latency against the traffic generation rate
``λ_g`` up to the saturation point.  This module provides:

* :func:`find_saturation_load` — exact per-resource saturation via the
  batched engine (closed form for constant-service queues), with the
  original full-model bisection kept as ``method="bisection"``,
* :func:`auto_load_grid` — a figure-ready grid covering (0, fraction·λ*],
* :func:`sweep_load` — evaluate the model across a grid.

All three accept either a scalar :class:`~repro.core.model.AnalyticalModel`
or a :class:`~repro.core.batch.BatchedModel`; scalar models are promoted to
a batched engine once and the engine is cached on the model instance, so
repeated sweeps/searches pay the load-independent precompute a single time
(see ``docs/batched_engine.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_positive
from repro.core.batch import BatchedModel
from repro.core.model import AnalyticalModel, ModelResult

__all__ = ["LoadSweep", "sweep_load", "find_saturation_load", "auto_load_grid"]


@dataclass(frozen=True)
class LoadSweep:
    """Model latency curve over a load grid.

    ``results`` may be empty when the sweep was produced latency-only
    (``BatchedModel.evaluate_many(..., with_results=False)``).
    """

    loads: np.ndarray
    latencies: np.ndarray
    results: tuple[ModelResult, ...]

    def finite_mask(self) -> np.ndarray:
        """Boolean mask of non-saturated points."""
        return np.isfinite(self.latencies)

    def as_rows(self) -> list[tuple[float, float]]:
        """(λ_g, latency) rows for reporting."""
        return [(float(lo), float(la)) for lo, la in zip(self.loads, self.latencies)]


def _engine(model: "AnalyticalModel | BatchedModel") -> BatchedModel:
    """Promote *model* to its (cached) batched engine."""
    if isinstance(model, BatchedModel):
        return model
    return BatchedModel.from_model(model)


def sweep_load(
    model: "AnalyticalModel | BatchedModel",
    loads: "np.ndarray | list[float]",
    *,
    with_results: bool = True,
) -> LoadSweep:
    """Evaluate *model* at every load in *loads* (ascending not required).

    Runs on the batched engine: the load-independent decomposition is built
    once and the M/G/1 / stage-recursion terms are vectorised across the
    grid, matching the scalar ``model.evaluate`` loop to float64 round-off.
    """
    return _engine(model).evaluate_many(loads, with_results=with_results)


def find_saturation_load(
    model: "AnalyticalModel | BatchedModel",
    *,
    upper_hint: float = 1.0,
    rel_tol: float = 1e-4,
    max_iterations: int = 200,
    method: str = "exact",
) -> float:
    """Smallest ``λ_g`` at which the model saturates.

    ``method="exact"`` (default) takes the minimum of the per-resource
    saturation rates from :meth:`BatchedModel.saturation_loads` — closed
    form for the constant-service concentrator queues, a per-resource
    monotone inversion for the source queues — at a cost independent of
    ``rel_tol``.  ``method="bisection"`` preserves the original full-model
    bracketing search (every queue utilisation is monotone in ``λ_g``) and
    is kept as the reference the exact path is tested against;
    *upper_hint*, *rel_tol* and *max_iterations* only affect this mode.
    """
    require_positive(upper_hint, "upper_hint")
    require_positive(rel_tol, "rel_tol")
    require(method in ("exact", "bisection"), f"unknown saturation method {method!r}")
    if method == "exact":
        return _engine(model).saturation_load()
    reference = model.reference_model if isinstance(model, BatchedModel) else model
    lo, hi = 0.0, upper_hint
    expansions = 0
    while not reference.is_saturated(hi):
        lo, hi = hi, hi * 4.0
        expansions += 1
        require(expansions < 60, "could not find a saturating load (system unsaturable?)")
    for _ in range(max_iterations):
        if hi - lo <= rel_tol * hi:
            break
        mid = 0.5 * (lo + hi)
        if reference.is_saturated(mid):
            hi = mid
        else:
            lo = mid
    return hi


def auto_load_grid(
    model: "AnalyticalModel | BatchedModel",
    *,
    points: int = 12,
    fraction_of_saturation: float = 0.95,
    include_zero: bool = False,
) -> np.ndarray:
    """Evenly spaced load grid from light load to near saturation.

    Mirrors the paper's figures, which sample λ_g from ~10 % of saturation
    up to just before the blow-up.
    """
    require(points >= 2, "points must be >= 2")
    require(0.0 < fraction_of_saturation < 1.0, "fraction_of_saturation must be in (0, 1)")
    lam_star = find_saturation_load(model)
    top = fraction_of_saturation * lam_star
    start = 0.0 if include_zero else top / points
    return np.linspace(start, top, points)
