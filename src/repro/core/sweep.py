"""Load sweeps and saturation-point search for the analytical model.

The paper's figures plot mean latency against the traffic generation rate
``λ_g`` up to the saturation point.  This module provides:

* :func:`find_saturation_load` — bisection on the model's saturation flag,
* :func:`auto_load_grid` — a figure-ready grid covering (0, fraction·λ*],
* :func:`sweep_load` — evaluate the model across a grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_positive
from repro.core.model import AnalyticalModel, ModelResult

__all__ = ["LoadSweep", "sweep_load", "find_saturation_load", "auto_load_grid"]


@dataclass(frozen=True)
class LoadSweep:
    """Model latency curve over a load grid."""

    loads: np.ndarray
    latencies: np.ndarray
    results: tuple[ModelResult, ...]

    def finite_mask(self) -> np.ndarray:
        """Boolean mask of non-saturated points."""
        return np.isfinite(self.latencies)

    def as_rows(self) -> list[tuple[float, float]]:
        """(λ_g, latency) rows for reporting."""
        return [(float(lo), float(la)) for lo, la in zip(self.loads, self.latencies)]


def sweep_load(model: AnalyticalModel, loads: "np.ndarray | list[float]") -> LoadSweep:
    """Evaluate *model* at every load in *loads* (ascending not required)."""
    loads_arr = np.asarray(loads, dtype=np.float64)
    require(loads_arr.ndim == 1 and loads_arr.size > 0, "loads must be a non-empty 1-D sequence")
    require(bool(np.all(loads_arr >= 0)), "loads must be non-negative")
    results = tuple(model.evaluate(float(lam)) for lam in loads_arr)
    latencies = np.array([r.latency for r in results], dtype=np.float64)
    return LoadSweep(loads=loads_arr, latencies=latencies, results=results)


def find_saturation_load(
    model: AnalyticalModel,
    *,
    upper_hint: float = 1.0,
    rel_tol: float = 1e-4,
    max_iterations: int = 200,
) -> float:
    """Smallest ``λ_g`` at which the model saturates, via bisection.

    Expands the bracket geometrically from *upper_hint* first (the model is
    monotone in load: every queue utilisation is linear in ``λ_g``).
    """
    require_positive(upper_hint, "upper_hint")
    require_positive(rel_tol, "rel_tol")
    lo, hi = 0.0, upper_hint
    expansions = 0
    while not model.is_saturated(hi):
        lo, hi = hi, hi * 4.0
        expansions += 1
        require(expansions < 60, "could not find a saturating load (system unsaturable?)")
    for _ in range(max_iterations):
        if hi - lo <= rel_tol * hi:
            break
        mid = 0.5 * (lo + hi)
        if model.is_saturated(mid):
            hi = mid
        else:
            lo = mid
    return hi


def auto_load_grid(
    model: AnalyticalModel,
    *,
    points: int = 12,
    fraction_of_saturation: float = 0.95,
    include_zero: bool = False,
) -> np.ndarray:
    """Evenly spaced load grid from light load to near saturation.

    Mirrors the paper's figures, which sample λ_g from ~10 % of saturation
    up to just before the blow-up.
    """
    require(points >= 2, "points must be >= 2")
    require(0.0 < fraction_of_saturation < 1.0, "fraction_of_saturation must be in (0, 1)")
    lam_star = find_saturation_load(model)
    top = fraction_of_saturation * lam_star
    start = 0.0 if include_zero else top / points
    return np.linspace(start, top, points)
