"""Configuration objects for the analytical model and the simulator.

This module defines the vocabulary of the whole library:

* :class:`NetworkCharacteristics` — bandwidth/latency triple of one network
  (paper Table 2),
* :class:`ClusterSpec` — one cluster: tree depth, its two networks,
* :class:`SystemConfig` — the cluster-of-clusters system (paper Fig. 1),
* :class:`MessageSpec` — fixed message geometry (``M`` flits of ``d_m`` bytes),
* :class:`ModelOptions` — documented resolutions of the paper's ambiguous
  equations (see DESIGN.md §3),
* paper presets: :data:`NET1`, :data:`NET2`, :func:`paper_system_1120`,
  :func:`paper_system_544`.

Units are consistent but anonymous: bandwidth is bytes per time-unit and all
latencies are time-units (the paper never names the unit; with
bandwidth 500 B/µs the time-unit is 1 µs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace

from repro._util import (
    integer_log,
    reject_unknown_keys as _reject_unknown_keys,
    require,
    require_int,
    require_positive,
)

__all__ = [
    "NetworkCharacteristics",
    "ClusterSpec",
    "SystemConfig",
    "MessageSpec",
    "ModelOptions",
    "ClusterClass",
    "NET1",
    "NET2",
    "paper_system_1120",
    "paper_system_544",
    "paper_message",
]


#: Shared-instance memos for the frozen leaf deserialisers (value-keyed —
#: the key records each field's type so ``500`` and ``500.0`` stay distinct
#: through ``to_dict`` round-trips).  Bounded: cleared wholesale at the cap.
_MEMO_CAP = 4096
_NETWORK_MEMO: dict = {}
_CLUSTER_MEMO: dict = {}


def nodes_in_tree(switch_ports: int, tree_depth: int) -> int:
    """Number of processing nodes of an ``m``-port ``n``-tree: ``2*(m/2)**n``."""
    require_int(switch_ports, "switch_ports", minimum=2)
    require(switch_ports % 2 == 0, f"switch_ports must be even, got {switch_ports}")
    require_int(tree_depth, "tree_depth", minimum=1)
    return 2 * (switch_ports // 2) ** tree_depth


@dataclass(frozen=True)
class NetworkCharacteristics:
    """Physical characteristics of one interconnection network.

    Parameters mirror paper Table 2:

    bandwidth:
        link bandwidth in bytes per time-unit (the inverse of the per-byte
        transmission time ``β_n``).
    network_latency:
        ``α_n`` — propagation/interface latency of a link.
    switch_latency:
        ``α_s`` — latency of a switch traversal.
    name:
        display label (e.g. ``"Net.1"``).
    """

    bandwidth: float
    network_latency: float
    switch_latency: float
    name: str = "net"

    def __post_init__(self) -> None:
        require_positive(self.bandwidth, "bandwidth")
        if not (math.isfinite(self.network_latency) and self.network_latency >= 0):
            raise ValueError(f"network_latency must be >= 0, got {self.network_latency!r}")
        if not (math.isfinite(self.switch_latency) and self.switch_latency >= 0):
            raise ValueError(f"switch_latency must be >= 0, got {self.switch_latency!r}")

    @property
    def beta(self) -> float:
        """Per-byte transmission time ``β_n = 1 / bandwidth``."""
        return 1.0 / self.bandwidth

    def scaled_bandwidth(self, factor: float, *, name: str | None = None) -> "NetworkCharacteristics":
        """Return a copy with bandwidth multiplied by *factor* (Fig. 7 study)."""
        require_positive(factor, "factor")
        return replace(self, bandwidth=self.bandwidth * factor, name=name or f"{self.name}x{factor:g}")

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {
            "bandwidth": self.bandwidth,
            "network_latency": self.network_latency,
            "switch_latency": self.switch_latency,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkCharacteristics":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected).

        Instances are frozen value objects, so identical mappings share one
        instance via a small memo — design-grid expansion deserialises the
        same handful of network sections tens of thousands of times.
        """
        _reject_unknown_keys(
            data,
            ("bandwidth", "network_latency", "switch_latency", "name"),
            "network",
            required=("bandwidth", "network_latency", "switch_latency"),
        )
        key = tuple(
            (type(v), v)
            for v in (
                data["bandwidth"],
                data["network_latency"],
                data["switch_latency"],
                data.get("name", "net"),
            )
        )
        inst = _NETWORK_MEMO.get(key)
        if inst is None:
            if len(_NETWORK_MEMO) >= _MEMO_CAP:
                _NETWORK_MEMO.clear()
            inst = cls(
                bandwidth=data["bandwidth"],
                network_latency=data["network_latency"],
                switch_latency=data["switch_latency"],
                name=data.get("name", "net"),
            )
            _NETWORK_MEMO[key] = inst
        return inst


#: Paper Table 2, "Net.1" (used for all ICN1 networks and for ICN2).
NET1 = NetworkCharacteristics(bandwidth=500.0, network_latency=0.01, switch_latency=0.02, name="Net.1")

#: Paper Table 2, "Net.2" (used for all ECN1 networks).
NET2 = NetworkCharacteristics(bandwidth=250.0, network_latency=0.05, switch_latency=0.01, name="Net.2")


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster of the system.

    tree_depth:
        ``n_i`` of the cluster's m-port n-tree; the cluster then has
        ``N_i = 2*(m/2)**n_i`` nodes (paper assumption 3).
    icn1 / ecn1:
        characteristics of the intra- and inter-communication networks of
        this cluster (paper allows full per-cluster heterogeneity).
    compute_power:
        per-node computational power ``s_i``.  Recorded for completeness
        (paper Fig. 1); it does not enter the latency model (assumption 4 —
        the companion paper [25] covers processor heterogeneity).
    name:
        optional label for reports.
    """

    tree_depth: int
    icn1: NetworkCharacteristics = NET1
    ecn1: NetworkCharacteristics = NET2
    compute_power: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        require_int(self.tree_depth, "tree_depth", minimum=1)
        require_positive(self.compute_power, "compute_power")

    def nodes(self, switch_ports: int) -> int:
        """Number of nodes ``N_i`` given the system-wide switch arity."""
        return nodes_in_tree(switch_ports, self.tree_depth)

    def class_key(self) -> tuple:
        """Key identifying the *cluster class* for model aggregation.

        Two clusters of the same class are exchangeable in every model
        equation (same ``n_i`` and the same network characteristics).
        """
        return (self.tree_depth, self.icn1, self.ecn1)

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {
            "tree_depth": self.tree_depth,
            "icn1": self.icn1.to_dict(),
            "ecn1": self.ecn1.to_dict(),
            "compute_power": self.compute_power,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected).

        Like :meth:`NetworkCharacteristics.from_dict`, identical mappings
        share one frozen instance (a grid of N cells re-reads every
        cluster section N times).
        """
        _reject_unknown_keys(
            data,
            ("tree_depth", "icn1", "ecn1", "compute_power", "name"),
            "cluster",
            required=("tree_depth",),
        )
        icn1 = NetworkCharacteristics.from_dict(data["icn1"]) if "icn1" in data else NET1
        ecn1 = NetworkCharacteristics.from_dict(data["ecn1"]) if "ecn1" in data else NET2
        depth = data["tree_depth"]
        power = data.get("compute_power", 1.0)
        name = data.get("name", "")
        key = ((type(depth), depth), icn1, ecn1, (type(power), power), name)
        inst = _CLUSTER_MEMO.get(key)
        if inst is None:
            if len(_CLUSTER_MEMO) >= _MEMO_CAP:
                _CLUSTER_MEMO.clear()
            inst = cls(
                tree_depth=depth, icn1=icn1, ecn1=ecn1, compute_power=power, name=name
            )
            _CLUSTER_MEMO[key] = inst
        return inst


@dataclass(frozen=True)
class MessageSpec:
    """Fixed-length message geometry (paper assumption 7).

    length_flits:
        ``M`` — message length in flits.
    flit_bytes:
        ``d_m`` — flit length in bytes.  DESIGN.md §3 item 10 documents why
        this is the *flit* (not message) size: the saturation points of
        Figs. 3–7 only line up under this reading.
    """

    length_flits: int
    flit_bytes: float

    def __post_init__(self) -> None:
        require_int(self.length_flits, "length_flits", minimum=1)
        require_positive(self.flit_bytes, "flit_bytes")

    @property
    def total_bytes(self) -> float:
        """Message payload in bytes (``M * d_m``)."""
        return self.length_flits * self.flit_bytes

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {"length_flits": self.length_flits, "flit_bytes": self.flit_bytes}

    @classmethod
    def from_dict(cls, data: dict) -> "MessageSpec":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        _reject_unknown_keys(
            data, ("length_flits", "flit_bytes"), "message", required=("length_flits", "flit_bytes")
        )
        return cls(length_flits=data["length_flits"], flit_bytes=data["flit_bytes"])


def paper_message(length_flits: int = 32, flit_bytes: float = 256.0) -> MessageSpec:
    """Message spec used in the validation section (M ∈ {32,64,128}, d_m ∈ {256,512})."""
    return MessageSpec(length_flits=length_flits, flit_bytes=flit_bytes)


@dataclass(frozen=True)
class ModelOptions:
    """Switchable resolutions of the paper's OCR-ambiguous equations.

    Defaults are the readings defended in DESIGN.md §3; every alternative is
    kept selectable so the ablation benches can quantify the difference.

    tcn_convention:
        ``"half_network_latency"`` — ``t_cn = 0.5 α_n + β_n d_m`` (default);
        ``"full_network_latency"`` — ``t_cn = α_n + β_n d_m``.
    source_queue_rate:
        arrival-rate convention of the M/G/1 source queues.
        ``"paper"`` — Eq. 18 uses the aggregate ``λ_I1 = N_i λ_g (1-U_i)``
        while Eq. 31 uses the physical per-injection-port rate ``λ_g U_i``
        (the literal pair rate contradicts Figs. 3–6, DESIGN.md §3 item 8);
        ``"per_node"`` — both queues use per-node rates;
        ``"aggregate_pair"`` — Eq. 31 uses the literal ``λ_E1^{(i,j)}``.
    relaxing_factor:
        apply the Eq. 27/28 ICN2 wait correction ``δ_i = β_I2 / β_E1(i)``.
    variance_approximation:
        ``"paper"`` — Eq. 17's ``σ² = (T - M t_cn)²``;
        ``"exponential"`` — ``σ² = T²`` (M/M/1-like alternative).
    inter_average:
        ``"paper"`` — Eq. 35/38 unweighted mean over destination clusters;
        ``"traffic_weighted"`` — weight destination clusters by the actual
        probability a uniform-traffic message targets them (∝ N_j).
    concentrator_rate:
        arrival rate of the Eq. 37 concentrator queues.
        ``"pair_mean"`` — the paper's ``λ_I2^{(i,j)} = λ_g(N_i U_i + N_j U_j)/2``;
        ``"source_outgoing"`` — a beyond-paper correction using the queue's
        physical load ``λ_g N_i U_i`` (cluster i's own outgoing rate), which
        tracks the simulator more closely at mid loads because the paper's
        pair-averaging dilutes the hottest concentrator.
    """

    tcn_convention: str = "half_network_latency"
    source_queue_rate: str = "paper"
    relaxing_factor: bool = True
    variance_approximation: str = "paper"
    inter_average: str = "paper"
    concentrator_rate: str = "pair_mean"

    _TCN = ("half_network_latency", "full_network_latency")
    _SRC = ("paper", "per_node", "aggregate_pair")
    _VAR = ("paper", "exponential")
    _AVG = ("paper", "traffic_weighted")
    _CON = ("pair_mean", "source_outgoing")

    def __post_init__(self) -> None:
        require(self.tcn_convention in self._TCN, f"tcn_convention must be one of {self._TCN}, got {self.tcn_convention!r}")
        require(self.source_queue_rate in self._SRC, f"source_queue_rate must be one of {self._SRC}, got {self.source_queue_rate!r}")
        require(self.variance_approximation in self._VAR, f"variance_approximation must be one of {self._VAR}, got {self.variance_approximation!r}")
        require(self.inter_average in self._AVG, f"inter_average must be one of {self._AVG}, got {self.inter_average!r}")
        require(self.concentrator_rate in self._CON, f"concentrator_rate must be one of {self._CON}, got {self.concentrator_rate!r}")
        require(isinstance(self.relaxing_factor, bool), "relaxing_factor must be a bool")

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The option names accepted by :meth:`from_dict` (and the CLI)."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def option_values(cls) -> dict:
        """Every knob's admissible values, in declaration order.

        This is the single source of truth the calibration engine
        (:mod:`repro.experiments.calibrate`) enumerates — the Cartesian
        product of these domains is the full 2·3·2·2·2·2 = 96-combination
        ablation space.
        """
        return {
            "tcn_convention": cls._TCN,
            "source_queue_rate": cls._SRC,
            "relaxing_factor": (True, False),
            "variance_approximation": cls._VAR,
            "inter_average": cls._AVG,
            "concentrator_rate": cls._CON,
        }

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {name: getattr(self, name) for name in self.field_names()}

    @classmethod
    def from_dict(cls, data: dict) -> "ModelOptions":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected).

        Partial mappings are accepted — absent options keep their defaults —
        so config files only need to name the readings they change.
        """
        _reject_unknown_keys(data, cls.field_names(), "model option")
        return cls(**data)


@dataclass(frozen=True)
class ClusterClass:
    """A group of exchangeable clusters used by the aggregated model.

    Attributes are derived quantities the model equations need:
    ``count`` clusters of depth ``tree_depth`` with ``nodes`` nodes each,
    outgoing-traffic probability ``u`` (Eq. 2) and the two networks.
    """

    tree_depth: int
    nodes: int
    count: int
    u: float
    icn1: NetworkCharacteristics
    ecn1: NetworkCharacteristics
    name: str = ""


@dataclass(frozen=True)
class SystemConfig:
    """The heterogeneous cluster-of-clusters system (paper Fig. 1 / §2).

    switch_ports:
        ``m`` — fixed arity of every switch in the system (paper adopts
        m-port n-trees with a single arity across ICN1/ECN1/ICN2).
    clusters:
        one :class:`ClusterSpec` per cluster, in cluster-index order.
    icn2:
        characteristics of the global inter-cluster network.
    name:
        optional label for reports.

    The number of clusters must be a valid m-port tree population,
    ``C = 2*(m/2)**n_c`` (the concentrators are the ICN2's nodes).
    """

    switch_ports: int
    clusters: tuple[ClusterSpec, ...]
    icn2: NetworkCharacteristics = NET1
    name: str = "system"

    def __post_init__(self) -> None:
        require_int(self.switch_ports, "switch_ports", minimum=4)
        require(self.switch_ports % 2 == 0, f"switch_ports must be even, got {self.switch_ports}")
        require(isinstance(self.clusters, tuple), "clusters must be a tuple of ClusterSpec")
        require(len(self.clusters) >= 1, "at least one cluster is required")
        for c in self.clusters:
            require(isinstance(c, ClusterSpec), f"clusters must contain ClusterSpec, got {type(c).__name__}")
        if len(self.clusters) > 1:
            q = self.switch_ports // 2
            c = len(self.clusters)
            require(
                c % 2 == 0 and _is_tree_population(c, q),
                f"number of clusters C={c} must equal 2*(m/2)**n_c for integer "
                f"n_c>=1 with m={self.switch_ports} (the concentrators form the "
                f"ICN2's node population)",
            )

    # -- structural properties -------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """``C`` — number of clusters."""
        return len(self.clusters)

    @property
    def cluster_sizes(self) -> tuple[int, ...]:
        """``N_i`` for every cluster, in order."""
        m = self.switch_ports
        return tuple(c.nodes(m) for c in self.clusters)

    @property
    def total_nodes(self) -> int:
        """``N = Σ N_i`` — total node count of the system."""
        return sum(self.cluster_sizes)

    @property
    def icn2_tree_depth(self) -> int:
        """``n_c`` with ``C = 2*(m/2)**n_c`` (1 for a single-cluster system)."""
        if self.num_clusters == 1:
            return 1
        return integer_log(self.num_clusters // 2, self.switch_ports // 2)

    def outgoing_probability(self, cluster_index: int) -> float:
        """Eq. 2: ``U_i = 1 - (N_i - 1)/(N - 1)`` (0 for a single-node system)."""
        sizes = self.cluster_sizes
        n_total = self.total_nodes
        if n_total <= 1:
            return 0.0
        return 1.0 - (sizes[cluster_index] - 1) / (n_total - 1)

    def cluster_classes(self) -> tuple[ClusterClass, ...]:
        """Group clusters into exchangeable classes (DESIGN.md §3, aggregation).

        Classes preserve first-appearance order; ``u`` is identical within a
        class because it depends only on ``N_i`` and ``N``.
        """
        order: list[tuple] = []
        counts: dict[tuple, int] = {}
        reps: dict[tuple, ClusterSpec] = {}
        for spec in self.clusters:
            key = spec.class_key()
            if key not in counts:
                order.append(key)
                reps[key] = spec
            counts[key] = counts.get(key, 0) + 1
        n_total = self.total_nodes
        m = self.switch_ports
        classes = []
        for key in order:
            spec = reps[key]
            nodes = spec.nodes(m)
            u = 0.0 if n_total <= 1 else 1.0 - (nodes - 1) / (n_total - 1)
            classes.append(
                ClusterClass(
                    tree_depth=spec.tree_depth,
                    nodes=nodes,
                    count=counts[key],
                    u=u,
                    icn1=spec.icn1,
                    ecn1=spec.ecn1,
                    name=spec.name or f"n={spec.tree_depth}",
                )
            )
        return tuple(classes)

    def with_icn2(self, icn2: NetworkCharacteristics, *, name: str | None = None) -> "SystemConfig":
        """Copy of this system with a different ICN2 (Fig. 7 what-if)."""
        return replace(self, icn2=icn2, name=name or self.name)

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {
            "switch_ports": self.switch_ports,
            "clusters": [c.to_dict() for c in self.clusters],
            "icn2": self.icn2.to_dict(),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        _reject_unknown_keys(
            data,
            ("switch_ports", "clusters", "icn2", "name"),
            "system",
            required=("switch_ports", "clusters"),
        )
        clusters = data["clusters"]
        require(isinstance(clusters, (list, tuple)), "system 'clusters' must be a list")
        return cls(
            switch_ports=data["switch_ports"],
            clusters=tuple(ClusterSpec.from_dict(c) for c in clusters),
            icn2=NetworkCharacteristics.from_dict(data["icn2"]) if "icn2" in data else NET1,
            name=data.get("name", "system"),
        )


def _is_tree_population(count: int, q: int) -> bool:
    """True if ``count == 2*q**k`` for some integer ``k >= 1``."""
    if count % 2 != 0:
        return False
    half = count // 2
    if half < q:
        return False
    while half % q == 0:
        half //= q
    return half == 1


def paper_system_1120(
    *,
    icn1: NetworkCharacteristics = NET1,
    ecn1: NetworkCharacteristics = NET2,
    icn2: NetworkCharacteristics = NET1,
) -> SystemConfig:
    """Paper Table 1, row 1: N=1120, C=32, m=8.

    Node organisation: ``n_i = 1`` for clusters 0–11 (8 nodes each),
    ``n_i = 2`` for clusters 12–27 (32 nodes each), ``n_i = 3`` for
    clusters 28–31 (128 nodes each); 12*8 + 16*32 + 4*128 = 1120.
    """
    clusters = tuple(
        ClusterSpec(tree_depth=n, icn1=icn1, ecn1=ecn1, name=f"c{idx}")
        for idx, n in enumerate([1] * 12 + [2] * 16 + [3] * 4)
    )
    return SystemConfig(switch_ports=8, clusters=clusters, icn2=icn2, name="N1120-m8-C32")


def paper_system_544(
    *,
    icn1: NetworkCharacteristics = NET1,
    ecn1: NetworkCharacteristics = NET2,
    icn2: NetworkCharacteristics = NET1,
) -> SystemConfig:
    """Paper Table 1, row 2: N=544, C=16, m=4.

    Node organisation: ``n_i = 3`` for clusters 0–7 (16 nodes each),
    ``n_i = 4`` for clusters 8–10 (32 nodes each), ``n_i = 5`` for
    clusters 11–15 (64 nodes each); 8*16 + 3*32 + 5*64 = 544.
    """
    clusters = tuple(
        ClusterSpec(tree_depth=n, icn1=icn1, ecn1=ecn1, name=f"c{idx}")
        for idx, n in enumerate([3] * 8 + [4] * 3 + [5] * 5)
    )
    return SystemConfig(switch_ports=4, clusters=clusters, icn2=icn2, name="N544-m4-C16")
