"""The paper's primary contribution: the analytical latency model.

Everything a model user needs is re-exported here; see
:class:`repro.core.model.AnalyticalModel` for the entry point.
"""

from repro.core.batch import BatchedModel, ResourceRates
from repro.core.concentrator import ConcentratorWait, concentrator_pair_wait
from repro.core.inter import InterPairLatency, inter_pair_latency, pair_rates
from repro.core.intra import IntraClusterLatency, intra_cluster_latency
from repro.core.model import AnalyticalModel, ClusterBreakdown, ModelResult, TrafficPatternLike
from repro.core.parameters import (
    NET1,
    NET2,
    ClusterClass,
    ClusterSpec,
    MessageSpec,
    ModelOptions,
    NetworkCharacteristics,
    SystemConfig,
    paper_message,
    paper_system_544,
    paper_system_1120,
)
from repro.core.queueing import MG1Result, mg1_wait
from repro.core.service_times import ServiceTimes, node_channel_time, switch_channel_time
from repro.core.stages import PipelineSolution, StagePipeline, solve_pipeline
from repro.core.sweep import LoadSweep, auto_load_grid, find_saturation_load, sweep_load
from repro.core.topology_math import (
    journey_length_pmf,
    mean_journey_links,
    mean_journey_links_closed_form,
    nca_level_counts,
    num_nodes,
    num_switches,
    num_unidirectional_channels,
    radix,
    switches_per_level,
)

__all__ = [
    "AnalyticalModel",
    "BatchedModel",
    "ResourceRates",
    "ModelResult",
    "ClusterBreakdown",
    "TrafficPatternLike",
    "NetworkCharacteristics",
    "ClusterSpec",
    "ClusterClass",
    "SystemConfig",
    "MessageSpec",
    "ModelOptions",
    "NET1",
    "NET2",
    "paper_system_1120",
    "paper_system_544",
    "paper_message",
    "IntraClusterLatency",
    "intra_cluster_latency",
    "InterPairLatency",
    "inter_pair_latency",
    "pair_rates",
    "ConcentratorWait",
    "concentrator_pair_wait",
    "MG1Result",
    "mg1_wait",
    "ServiceTimes",
    "node_channel_time",
    "switch_channel_time",
    "StagePipeline",
    "PipelineSolution",
    "solve_pipeline",
    "LoadSweep",
    "sweep_load",
    "find_saturation_load",
    "auto_load_grid",
    "radix",
    "num_nodes",
    "num_switches",
    "switches_per_level",
    "num_unidirectional_channels",
    "journey_length_pmf",
    "mean_journey_links",
    "mean_journey_links_closed_form",
    "nca_level_counts",
]
