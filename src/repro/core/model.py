"""Top-level analytical model (paper Eqs. 1–3, 35, 38–39).

:class:`AnalyticalModel` composes the intra-cluster model (§3.1), the
inter-cluster model (§3.2) and the concentrator queues into the system-wide
mean message latency:

* Eq. 1 — per-cluster mean ``ℓ_i = (1-U_i) L_in + U_i L_out``,
* Eq. 35 — average of ``L_ex^{(i,j)}`` over destination clusters,
* Eq. 38 — average concentrator wait ``W_d``,
* Eq. 39 — ``L_out = L_ex + W_d``,
* Eq. 3 — node-weighted system mean ``Latency = Σ (N_i/N) ℓ_i``.

The model aggregates exchangeable clusters into *classes* (an exact
algebraic rewrite of the Σ_j averages; see DESIGN.md §3) so that evaluating
a 32-cluster system costs the same as a 3-class system.

Traffic patterns
----------------
By default destinations are uniform over all other nodes (paper
assumption 2, Eq. 2).  A :class:`TrafficPatternLike` object may override
the per-cluster outgoing probability and the destination-cluster weights —
this implements the paper's "non-uniform traffic" future-work item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro._util import require, require_nonnegative
from repro.core.concentrator import ConcentratorWait, concentrator_pair_wait
from repro.core.inter import InterPairLatency, inter_pair_latency
from repro.core.intra import IntraClusterLatency, intra_cluster_latency
from repro.core.parameters import ClusterClass, MessageSpec, ModelOptions, SystemConfig

__all__ = ["AnalyticalModel", "ModelResult", "ClusterBreakdown", "TrafficPatternLike"]


@runtime_checkable
class TrafficPatternLike(Protocol):
    """Structural interface of traffic patterns accepted by the model.

    Implementations live in :mod:`repro.workloads.patterns`; the model only
    needs two questions answered per source cluster.
    """

    def outgoing_probability(self, system: SystemConfig, cluster_index: int) -> float:
        """P(message leaves its cluster) for nodes of *cluster_index*."""
        ...

    def destination_cluster_weights(self, system: SystemConfig, cluster_index: int) -> list[float]:
        """Unnormalised weights of destination clusters (0 for self allowed)."""
        ...


@dataclass(frozen=True)
class ClusterBreakdown:
    """Latency breakdown of one cluster class (Eqs. 1, 35, 38, 39)."""

    name: str
    tree_depth: int
    nodes: int
    count: int
    outgoing_probability: float  # U_i
    intra: IntraClusterLatency
    inter_pairs: tuple[InterPairLatency, ...]  # one per destination class
    inter_network: float  # L_ex^{(i)}  (Eq. 35)
    concentrator_wait: float  # W_d^{(i)}  (Eq. 38)
    outward: float  # L_out^{(i)}  (Eq. 39)
    mean: float  # ℓ_i  (Eq. 1)
    saturated: bool


@dataclass(frozen=True)
class ModelResult:
    """System-wide evaluation at one generation rate λ_g."""

    load: float
    latency: float  # Eq. 3 (inf when saturated)
    saturated: bool
    clusters: tuple[ClusterBreakdown, ...]
    saturated_resources: tuple[str, ...]

    def breakdown_for(self, name: str) -> ClusterBreakdown:
        """Look up a cluster-class breakdown by its name."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster class named {name!r}")


class AnalyticalModel:
    """Mean message latency model of a heterogeneous cluster-of-clusters.

    Parameters
    ----------
    system:
        the :class:`~repro.core.parameters.SystemConfig` under study.
    message:
        fixed message geometry (``M`` flits × ``d_m`` bytes).
    options:
        equation-interpretation switches (defaults follow DESIGN.md §3).
    pattern:
        optional non-uniform traffic pattern.  When given, clusters are no
        longer aggregated by class (a pattern may break exchangeability)
        and destination clusters are weighted by the pattern.
    """

    def __init__(
        self,
        system: SystemConfig,
        message: MessageSpec,
        options: ModelOptions | None = None,
        pattern: TrafficPatternLike | None = None,
    ) -> None:
        require(isinstance(system, SystemConfig), "system must be a SystemConfig")
        require(isinstance(message, MessageSpec), "message must be a MessageSpec")
        if pattern is not None and not isinstance(pattern, TrafficPatternLike):
            raise ValueError("pattern must implement the TrafficPatternLike protocol")
        self.system = system
        self.message = message
        self.options = options or ModelOptions()
        self.pattern = pattern
        self._classes = self._build_classes()

    # -- construction ---------------------------------------------------------

    def _build_classes(self) -> tuple[ClusterClass, ...]:
        """Cluster classes; one singleton class per cluster under a pattern."""
        if self.pattern is None:
            return self.system.cluster_classes()
        m = self.system.switch_ports
        classes = []
        for idx, spec in enumerate(self.system.clusters):
            u = self.pattern.outgoing_probability(self.system, idx)
            require(0.0 <= u <= 1.0, f"pattern returned invalid U={u} for cluster {idx}")
            classes.append(
                ClusterClass(
                    tree_depth=spec.tree_depth,
                    nodes=spec.nodes(m),
                    count=1,
                    u=u,
                    icn1=spec.icn1,
                    ecn1=spec.ecn1,
                    name=spec.name or f"cluster{idx}",
                )
            )
        return tuple(classes)

    @property
    def cluster_classes(self) -> tuple[ClusterClass, ...]:
        """The class decomposition the model evaluates over."""
        return self._classes

    # -- destination weighting (Eq. 35 / Eq. 38 averages) ----------------------

    def _destination_weights(self, src_idx: int) -> list[float]:
        """Weights over destination *classes* for the Σ_{j≠i} averages."""
        classes = self._classes
        if self.pattern is not None:
            per_cluster = self.pattern.destination_cluster_weights(self.system, self._class_to_cluster_index(src_idx))
            require(
                len(per_cluster) == self.system.num_clusters,
                "pattern weights must have one entry per cluster",
            )
            return [per_cluster[self._class_to_cluster_index(j)] for j in range(len(classes))]
        weights = []
        src = classes[src_idx]
        for j, dst in enumerate(classes):
            other_count = dst.count - (1 if j == src_idx else 0)
            if self.options.inter_average == "paper":
                weights.append(float(other_count))  # Eq. 35: unweighted over clusters
            else:  # traffic_weighted: P(dest cluster) ∝ N_j under uniform traffic
                weights.append(float(other_count) * dst.nodes)
        _ = src
        return weights

    def _class_to_cluster_index(self, class_idx: int) -> int:
        """Map a singleton class index back to its cluster index (pattern mode)."""
        return class_idx

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, generation_rate: float) -> ModelResult:
        """Mean latency at per-node Poisson rate ``λ_g`` (Eqs. 1–3)."""
        require_nonnegative(generation_rate, "generation_rate")
        system = self.system
        classes = self._classes
        single_cluster = system.num_clusters == 1

        breakdowns: list[ClusterBreakdown] = []
        saturated_resources: list[str] = []
        for i, src in enumerate(classes):
            intra = intra_cluster_latency(
                src,
                switch_ports=system.switch_ports,
                generation_rate=generation_rate,
                message=self.message,
                options=self.options,
            )
            if intra.saturated:
                saturated_resources.append(f"{src.name}:icn1-source-queue")

            if single_cluster or src.u == 0.0:
                inter_pairs: tuple[InterPairLatency, ...] = ()
                inter_network = 0.0
                conc_wait = 0.0
                pair_saturated = False
            else:
                pairs: list[InterPairLatency] = []
                concs: list[ConcentratorWait] = []
                weights = self._destination_weights(i)
                for j, dst in enumerate(classes):
                    pairs.append(
                        inter_pair_latency(
                            src,
                            dst,
                            switch_ports=system.switch_ports,
                            icn2=system.icn2,
                            icn2_tree_depth=system.icn2_tree_depth,
                            generation_rate=generation_rate,
                            message=self.message,
                            options=self.options,
                        )
                    )
                    concs.append(
                        concentrator_pair_wait(
                            src,
                            dst,
                            icn2=system.icn2,
                            generation_rate=generation_rate,
                            message=self.message,
                            options=self.options,
                        )
                    )
                total_weight = sum(weights)
                require(total_weight > 0, "destination weights must not all be zero")
                inter_network = sum(w * p.total for w, p in zip(weights, pairs) if w > 0) / total_weight
                conc_wait = sum(w * c.pair_wait for w, c in zip(weights, concs) if w > 0) / total_weight
                pair_saturated = any(p.saturated for p, w in zip(pairs, weights) if w > 0) or any(
                    c.saturated for c, w in zip(concs, weights) if w > 0
                )
                for (p, c, w, dst) in zip(pairs, concs, weights, classes):
                    if w <= 0:
                        continue
                    if p.saturated:
                        saturated_resources.append(f"{src.name}->{dst.name}:ecn1-source-queue")
                    if c.saturated:
                        saturated_resources.append(f"{src.name}->{dst.name}:concentrator")
                inter_pairs = tuple(pairs)

            outward = inter_network + conc_wait  # Eq. 39
            mean = (1.0 - src.u) * intra.total + src.u * outward  # Eq. 1
            breakdowns.append(
                ClusterBreakdown(
                    name=src.name,
                    tree_depth=src.tree_depth,
                    nodes=src.nodes,
                    count=src.count,
                    outgoing_probability=src.u,
                    intra=intra,
                    inter_pairs=inter_pairs,
                    inter_network=inter_network,
                    concentrator_wait=conc_wait,
                    outward=outward,
                    mean=mean,
                    saturated=intra.saturated or pair_saturated,
                )
            )

        total_nodes = system.total_nodes
        latency = sum(b.mean * b.nodes * b.count for b in breakdowns) / total_nodes  # Eq. 3
        saturated = any(b.saturated for b in breakdowns)
        return ModelResult(
            load=generation_rate,
            latency=float("inf") if saturated else latency,
            saturated=saturated,
            clusters=tuple(breakdowns),
            saturated_resources=tuple(saturated_resources),
        )

    # -- conveniences -----------------------------------------------------------

    def zero_load_latency(self) -> float:
        """Mean latency in the λ_g → 0 limit (pure transmission time)."""
        return self.evaluate(0.0).latency

    def is_saturated(self, generation_rate: float) -> bool:
        """True if any modelled queue reaches ρ >= 1 at this load."""
        return self.evaluate(generation_rate).saturated
