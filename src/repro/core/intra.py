"""Intra-cluster latency model (paper §3.1, Eqs. 4–19).

A message that stays inside cluster ``i`` crosses only the ICN1(i) network.
Its mean latency decomposes as ``L_in = W_in + T_in + E_in``:

* ``T_in`` — mean network latency of the header across the stage pipeline
  (Eqs. 5, 13, 14), averaged over the journey-length pmf (Eq. 6);
* ``W_in`` — mean wait at the source queue, an M/G/1 with the Eq. 17
  variance approximation (Eqs. 15–18);
* ``E_in`` — mean time for the tail flit to arrive after the header
  (Eq. 19).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ClusterClass, MessageSpec, ModelOptions
from repro.core.queueing import mg1_wait
from repro.core.service_times import ServiceTimes
from repro.core.stages import StagePipeline, solve_pipeline
from repro.core.topology_math import journey_length_pmf, mean_journey_links

__all__ = ["IntraClusterLatency", "intra_cluster_latency"]


@dataclass(frozen=True)
class IntraClusterLatency:
    """Breakdown of the mean intra-cluster message latency of one cluster."""

    source_wait: float  # W_in  (Eq. 18)
    network_latency: float  # T_in  (Eq. 5)
    tail_time: float  # E_in  (Eq. 19)
    total: float  # L_in  (Eq. 4)
    aggregate_rate: float  # λ_I1  (Eq. 7)
    channel_rate: float  # η_I1  (Eq. 10)
    source_utilization: float  # ρ of the source queue
    saturated: bool

    @property
    def blocking_fraction(self) -> float:
        """Share of ``L_in`` not explained by pure transmission (contention)."""
        if not np.isfinite(self.total) or self.total == 0:
            return float("nan")
        return self.source_wait / self.total


def intra_cluster_latency(
    cluster: ClusterClass,
    *,
    switch_ports: int,
    generation_rate: float,
    message: MessageSpec,
    options: ModelOptions | None = None,
) -> IntraClusterLatency:
    """Evaluate Eqs. 4–19 for one cluster class at per-node load λ_g.

    ``cluster.u`` supplies Eq. 2's outgoing probability; only the
    ``1 - u`` fraction of each node's traffic enters ICN1.
    """
    options = options or ModelOptions()
    m_flits = message.length_flits
    n_depth = cluster.tree_depth
    st = ServiceTimes.for_network(cluster.icn1, message, options)

    pmf = journey_length_pmf(switch_ports, n_depth)
    intra_fraction = 1.0 - cluster.u

    # Eq. 7: aggregate message rate entering ICN1(i).
    lambda_i1 = cluster.nodes * generation_rate * intra_fraction
    # Eqs. 8-10: per-channel rate.
    mean_links = mean_journey_links(switch_ports, n_depth)
    eta_i1 = lambda_i1 * mean_links / (4.0 * n_depth * cluster.nodes)

    # Eqs. 5, 13, 14: network latency averaged over journey lengths.
    network_latency = 0.0
    for h in range(1, n_depth + 1):
        k_stages = 2 * h - 1
        flit_times = np.full(k_stages, st.t_cs, dtype=np.float64)
        flit_times[-1] = st.t_cn
        rates = np.full(k_stages, eta_i1, dtype=np.float64)
        solution = solve_pipeline(StagePipeline(flit_times, rates), m_flits)
        network_latency += float(pmf[h - 1]) * solution.network_latency

    # Eq. 19: tail-flit catch-up time.
    h_values = np.arange(1, n_depth + 1, dtype=np.float64)
    tail_time = float(np.sum(pmf * (2.0 * (h_values - 1.0) * st.t_cs + st.t_cn)))

    # Eqs. 15-18: source queue (M/G/1).
    if options.source_queue_rate == "per_node":
        source_rate = generation_rate * intra_fraction
    else:  # "paper" and "aggregate_pair" keep Eq. 18's aggregate rate
        source_rate = lambda_i1
    min_service = m_flits * st.t_cn
    if options.variance_approximation == "paper":
        variance = (network_latency - min_service) ** 2  # Eq. 17
    else:
        variance = network_latency**2  # exponential-service alternative
    queue = mg1_wait(source_rate, network_latency, variance)

    total = queue.wait + network_latency + tail_time
    return IntraClusterLatency(
        source_wait=queue.wait,
        network_latency=network_latency,
        tail_time=tail_time,
        total=total,
        aggregate_rate=lambda_i1,
        channel_rate=eta_i1,
        source_utilization=queue.utilization,
        saturated=queue.saturated,
    )
