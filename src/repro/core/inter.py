"""Inter-cluster latency model (paper §3.2, Eqs. 20–35).

An inter-cluster message from cluster ``i`` to cluster ``j`` traverses, as
one merged wormhole pipeline, the ECN1(i) (``r`` links), the global ICN2
(``2l`` links) and the destination's ECN1(j) (``v`` links), with the
journey-length components distributed per Eq. 21.  The pipeline has
``K = r + v + 2l - 1`` stages whose per-flit times follow Eq. 30 and whose
channel rates follow Eq. 27 (ICN2 stages use the relaxed rate ``η_I2 δ_i``).

The per-pair mean ``L_ex^{(i,j)} = W_ex + T_ex + E_ex`` (Eq. 32) is then
averaged over destination clusters (Eq. 35) by :mod:`repro.core.model`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ClusterClass, MessageSpec, ModelOptions, NetworkCharacteristics
from repro.core.queueing import mg1_wait
from repro.core.service_times import ServiceTimes
from repro.core.stages import StagePipeline, solve_pipeline
from repro.core.topology_math import journey_length_pmf, mean_journey_links

__all__ = ["InterPairLatency", "inter_pair_latency", "pair_rates"]


@dataclass(frozen=True)
class InterPairLatency:
    """Breakdown of ``L_ex^{(i,j)}`` for one ordered cluster-class pair."""

    source_wait: float  # W_ex  (Eq. 31)
    network_latency: float  # T_ex  (Eq. 20)
    tail_time: float  # E_ex  (Eq. 33)
    total: float  # L_ex^{(i,j)}  (Eq. 32)
    ecn1_rate: float  # λ_E1^{(i,j)}  (Eq. 22)
    icn2_rate: float  # λ_I2^{(i,j)}  (Eq. 23)
    ecn1_channel_rate: float  # η_E1^{(i,j)}  (Eq. 24)
    icn2_channel_rate: float  # η_I2^{(i,j)}  (Eq. 25)
    relaxing_factor: float  # δ_i  (Eq. 28)
    source_utilization: float
    saturated: bool


def pair_rates(
    source: ClusterClass,
    destination: ClusterClass,
    generation_rate: float,
) -> tuple[float, float]:
    """Eqs. 22–23: ECN1 and ICN2/concentrator rates for a cluster pair.

    ``λ_E1 = λ_g (N_i U_i + N_j U_j)`` — an ECN1 carries both directions of
    its cluster's external traffic; ``λ_I2 = λ_E1 / 2`` — one concentrator's
    (single-direction) share.  DESIGN.md §3 item 7 derives the ``/2`` from
    the saturation points of Figs. 3–7.
    """
    external = source.nodes * source.u + destination.nodes * destination.u
    lambda_e1 = generation_rate * external
    return lambda_e1, 0.5 * lambda_e1


def inter_pair_latency(
    source: ClusterClass,
    destination: ClusterClass,
    *,
    switch_ports: int,
    icn2: NetworkCharacteristics,
    icn2_tree_depth: int,
    generation_rate: float,
    message: MessageSpec,
    options: ModelOptions | None = None,
) -> InterPairLatency:
    """Evaluate Eqs. 20–34 for one ordered cluster-class pair at λ_g."""
    options = options or ModelOptions()
    m_flits = message.length_flits
    n_i, n_j, n_c = source.tree_depth, destination.tree_depth, icn2_tree_depth

    st_src = ServiceTimes.for_network(source.ecn1, message, options)
    st_dst = ServiceTimes.for_network(destination.ecn1, message, options)
    st_i2 = ServiceTimes.for_network(icn2, message, options)

    lambda_e1, lambda_i2 = pair_rates(source, destination, generation_rate)

    # Eq. 24: per-channel rate in the source's ECN1 (its own geometry).
    d_e1 = mean_journey_links(switch_ports, n_i)
    eta_e1 = lambda_e1 * d_e1 / (4.0 * n_i * source.nodes)
    # Eq. 25: per-channel rate in ICN2 (paper denominator is 4 n_c; the
    # pairwise λ_I2 already carries the 1/C share of the total load).
    d_i2 = mean_journey_links(switch_ports, n_c)
    eta_i2 = lambda_i2 * d_i2 / (4.0 * n_c)
    # Eq. 28: relaxing factor — ICN2 waits shrink when ICN2 is faster.
    delta = (icn2.beta / source.ecn1.beta) if options.relaxing_factor else 1.0
    eta_i2_eff = eta_i2 * delta

    pmf_r = journey_length_pmf(switch_ports, n_i)
    pmf_v = journey_length_pmf(switch_ports, n_j)
    pmf_l = journey_length_pmf(switch_ports, n_c)

    # Eqs. 20-21, 26-30, 33-34: average over every (r, v, l) journey.
    network_latency = 0.0
    tail_time = 0.0
    for r in range(1, n_i + 1):
        p_r = float(pmf_r[r - 1])
        for v in range(1, n_j + 1):
            p_rv = p_r * float(pmf_v[v - 1])
            for l_hops in range(1, n_c + 1):
                weight = p_rv * float(pmf_l[l_hops - 1])
                k_stages = r + v + 2 * l_hops - 1
                icn2_lo, icn2_hi = r, r + 2 * l_hops - 1  # Eq. 30 ranges
                flit_times = np.empty(k_stages, dtype=np.float64)
                rates = np.full(k_stages, eta_e1, dtype=np.float64)
                flit_times[:icn2_lo] = st_src.t_cs
                flit_times[icn2_lo:icn2_hi] = st_i2.t_cs
                flit_times[icn2_hi:] = st_dst.t_cs
                flit_times[k_stages - 1] = st_dst.t_cn  # Eq. 29 final stage
                rates[icn2_lo:icn2_hi] = eta_i2_eff  # Eq. 27
                solution = solve_pipeline(StagePipeline(flit_times, rates), m_flits)
                network_latency += weight * solution.network_latency
                # Eq. 34: tail catch-up across the three segments.
                tail = (
                    (r - 1) * st_src.t_cs
                    + (v - 1) * st_dst.t_cs
                    + 2 * l_hops * st_i2.t_cs
                    + st_dst.t_cn
                )
                tail_time += weight * tail

    # Eq. 31: source queue for inter traffic (per-injection-port rate by
    # default; see DESIGN.md §3 item 8 for why the literal pair rate is
    # kept only as an ablation).
    if options.source_queue_rate == "aggregate_pair":
        source_rate = lambda_e1
    else:
        source_rate = generation_rate * source.u
    min_service = m_flits * st_src.t_cn
    if options.variance_approximation == "paper":
        variance = (network_latency - min_service) ** 2
    else:
        variance = network_latency**2
    queue = mg1_wait(source_rate, network_latency, variance)

    total = queue.wait + network_latency + tail_time
    return InterPairLatency(
        source_wait=queue.wait,
        network_latency=network_latency,
        tail_time=tail_time,
        total=total,
        ecn1_rate=lambda_e1,
        icn2_rate=lambda_i2,
        ecn1_channel_rate=eta_e1,
        icn2_channel_rate=eta_i2,
        relaxing_factor=delta,
        source_utilization=queue.utilization,
        saturated=queue.saturated,
    )
