"""Batched load-grid evaluation engine (precompute / vectorize split).

:class:`repro.core.model.AnalyticalModel` is the scalar *reference*
implementation: one :meth:`~repro.core.model.AnalyticalModel.evaluate` call
walks every cluster class, destination pair and journey length, rebuilding
all load-independent structure (service times, journey pmfs, visit ratios,
stage layouts) from scratch.  Every analysis entry point — saturation
search, capacity planning, what-if studies, figure sweeps — drives hundreds
of such calls over a *load grid*, so the load-independent work is repaid
hundreds of times per study.

:class:`BatchedModel` splits that cost exactly once per
``(system, message, options, pattern)``:

* **precompute** — the per-class/per-pair decomposition that does not
  depend on ``λ_g``: journey-length pmfs, per-stage flit-time arrays,
  per-stage rate *slopes* (every channel/queue arrival rate in the model is
  linear in ``λ_g``), tail times, destination weights and M/G/1 service
  constants (see ``docs/batched_engine.md``);
* **vectorize** — the load-dependent terms (the Eq. 13/14 backward stage
  recursion and the Eq. 15 M/G/1 waits) evaluated with NumPy across the
  entire load grid at once.  The recursion runs backwards over the ≤ K
  stages of each journey exactly as the scalar solver does, but each step
  operates on the whole grid, so the Python-level work is O(journeys ×
  stages) instead of O(journeys × stages × loads).

The arithmetic mirrors the scalar code expression-for-expression (same
association order, same clamping), so batched and scalar results agree to
float64 round-off; ``tests/test_batch.py`` locks the equivalence at 1e-9.

Closed-form saturation
----------------------
Saturation is the only divergence mechanism of the model (an M/G/1 queue
reaching ``ρ >= 1``), and each queue's utilisation is a *monotone* function
of ``λ_g`` with a known structure:

* concentrator/dispatcher queues have a **constant** service time
  ``M t_cs^{I2}`` (Eq. 36), so ``ρ = slope · λ_g`` is exactly linear and
  the per-resource saturation rate is the closed form
  ``λ* = 1 / (slope · M t_cs^{I2})``;
* source queues serve the load-dependent pipeline latency ``T(λ_g)``
  (Eqs. 18/31), so ``ρ(λ_g) = rate(λ_g) · T(λ_g)`` is mildly superlinear;
  ``λ* = ρ⁻¹(1)`` is obtained by inverting the *single-resource* monotone
  function with vectorised bracket refinement (bounded above by the
  linearised estimate ``1 / (rate_slope · T(0))``), costing a handful of
  batched journey recursions instead of full-model evaluations.

:meth:`BatchedModel.saturation_loads` returns the per-resource map;
:meth:`BatchedModel.saturation_load` (their minimum) is exact, so
``find_saturation_load`` no longer needs ~260 full-model bisection
evaluations.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro._util import require, require_positive
from repro.core.inter import InterPairLatency
from repro.core.intra import IntraClusterLatency
from repro.core.model import (
    AnalyticalModel,
    ClusterBreakdown,
    ModelResult,
    TrafficPatternLike,
)
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.core.service_times import ServiceTimes, switch_channel_time
from repro.core.stages import _LATENCY_CAP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports batch)
    from repro.core.sweep import LoadSweep

__all__ = ["BatchedModel", "ENGINE_VERSION", "ResourceRates", "refine_monotone_crossing"]

#: Version tag of the engine's numerics, embedded in on-disk cache keys
#: (:mod:`repro.io.cache`).  Bump whenever a change alters any number the
#: closed forms produce — saturation loads, latencies, resource rates —
#: or the evaluation path that produces them (e.g. the cross-cell stacked
#: engine in :mod:`repro.core.stacked`), so stale cached results can never
#: be mistaken for fresh ones.
ENGINE_VERSION = "batch/2"


def refine_monotone_crossing(
    lo: float,
    hi: float,
    crossed: Callable[[np.ndarray], np.ndarray],
    *,
    rel_tol: float,
    points: int = 33,
    max_rounds: int = 100,
) -> tuple[float, float]:
    """Narrow ``[lo, hi]`` to the cell where a monotone condition flips.

    ``crossed(grid) -> bool array`` evaluates the condition over a whole
    load grid at once; the bracket invariant is ``not crossed(lo)`` and
    ``crossed(hi)``.  Each round probes *points* evenly spaced loads and
    keeps the cell containing the first ``True``, shrinking the bracket by
    ``points - 1`` per vectorised evaluation, until ``hi - lo <= rel_tol *
    hi``, the bracket stops making progress at float64 resolution, or
    *max_rounds* rounds have run (the relative test alone cannot terminate
    when the crossing sits at ``lo == 0`` exactly, where the bracket can
    only shrink toward a denormal ``hi``).  Shared by the capacity
    planner's latency-budget search and the per-resource saturation
    inversion.
    """
    for _ in range(max_rounds):
        if hi - lo <= rel_tol * hi:
            break
        grid = np.linspace(lo, hi, points)
        above = crossed(grid)
        if not above.any():  # pragma: no cover - callers guarantee crossed(hi)
            lo, hi = hi, hi * 2.0
            continue
        first = int(np.argmax(above))
        if first == 0:  # bracket degenerated to the crossing itself
            break
        new_lo, new_hi = float(grid[first - 1]), float(grid[first])
        if new_lo <= lo and new_hi >= hi:  # float64 resolution reached
            break
        lo, hi = new_lo, new_hi
    return lo, hi


# ---------------------------------------------------------------------------
# vectorised numerical kernels
# ---------------------------------------------------------------------------


def _solve_journeys_batched(
    batch: "_JourneyBatch",
    rate_arrays: tuple[np.ndarray, ...],
    m_flits: int,
) -> np.ndarray:
    """Weighted mean network latency of a journey batch over the load grid.

    Vectorised Eq. 13/14 backward recursion — per stage ``T_k = M t_k +
    Σ_{s>k} W_s`` and ``W_k = ½ η_k T_k²`` — run simultaneously over *both*
    axes of the (journeys × loads) plane: the Python loop advances one
    stage *column* at a time over right-aligned journeys.  Left-padding
    columns carry ``t = 0, η = 0`` so they leave a journey's suffix sum
    unchanged, and each journey's ``T_0`` is captured at its own first real
    column; within a journey the operation sequence is identical to the
    scalar :func:`repro.core.stages.solve_pipeline`, including the
    :data:`_LATENCY_CAP` clamping, so saturating grid points blow up to
    ``inf`` bit-identically.  The final weighted sum runs in journey order
    to match the scalar accumulation exactly.
    """
    num_journeys, num_cols = batch.flit_times.shape
    grid = rate_arrays[0]
    home = np.broadcast_to(rate_arrays[0], (num_journeys, grid.shape[0]))
    alt = np.broadcast_to(rate_arrays[-1], (num_journeys, grid.shape[0]))
    suffix = np.zeros((num_journeys, grid.shape[0]), dtype=np.float64)
    t0 = np.zeros_like(suffix)
    with np.errstate(invalid="ignore", over="ignore"):
        for col in range(num_cols - 1, -1, -1):
            flit = batch.flit_times[:, col][:, None]
            select = batch.eta_select[:, col]
            t_col = m_flits * flit + suffix
            over = t_col > _LATENCY_CAP
            eta = np.where((select == 1)[:, None], alt, home)
            eta = eta * (select >= 0)[:, None]  # zero out padding columns
            w_col = 0.5 * eta * t_col * t_col
            w_col = np.where(w_col > _LATENCY_CAP, np.inf, w_col)
            w_col = np.where(over, np.inf, w_col)
            starts = batch.start_col == col
            if starts.any():
                t0 = np.where(starts[:, None], np.where(over, np.inf, t_col), t0)
            suffix = suffix + w_col
        total = np.zeros_like(grid)
        for j in range(num_journeys):
            total = total + batch.weights[j] * t0[j]
    return total


def _mg1_wait_batched(
    rate: np.ndarray, mean_service: np.ndarray, variance: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`repro.core.queueing.mg1_wait` (Eq. 15).

    Returns ``(wait, utilization, saturated)`` arrays with the scalar
    function's exact semantics: an infinite service time (blown-up upstream
    pipeline) counts as saturation whenever any traffic arrives, and a
    zero-rate queue never waits regardless of its service time.
    """
    finite = np.isfinite(mean_service) & np.isfinite(variance)
    service = np.where(finite, mean_service, 0.0)
    var = np.where(finite, variance, 0.0)
    rho = rate * service
    infinite_service = ~finite & (rate > 0.0)
    saturated = infinite_service | (rho >= 1.0)
    second_moment = service * service + var
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wait = rate * second_moment / (2.0 * (1.0 - rho))
    wait = np.where(saturated, np.inf, wait)
    wait = np.where(rate == 0.0, 0.0, wait)
    utilization = np.where(infinite_service, np.inf, rho)
    return wait, utilization, saturated


# ---------------------------------------------------------------------------
# precomputed (load-independent) structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _JourneyBatch:
    """All journey-length terms of an Eq. 5/20 average, stacked and padded.

    Journeys are right-aligned into a (journeys × max-stages) plane so the
    backward recursion can advance one column at a time across the whole
    batch.  ``eta_select`` holds ``-1`` on left-padding columns (zero rate,
    zero flit time — a no-op for the suffix sums), ``0`` for stages driven
    by the pipeline's home-network rate and ``1`` for the relaxed ICN2
    segment; ``start_col[j]`` is journey *j*'s first real column, where its
    ``T_0`` is read off.
    """

    weights: np.ndarray  # (J,)
    flit_times: np.ndarray  # (J, K_max), zero on padding
    eta_select: np.ndarray  # (J, K_max) int8
    start_col: np.ndarray  # (J,)


def _stack_journeys(entries: list[tuple[float, np.ndarray, np.ndarray]]) -> _JourneyBatch:
    """Right-align ``(weight, flit_times, rate_select)`` journeys into a batch."""
    k_max = max(len(flit_times) for _, flit_times, _ in entries)
    count = len(entries)
    weights = np.array([weight for weight, _, _ in entries], dtype=np.float64)
    flit = np.zeros((count, k_max), dtype=np.float64)
    select = np.full((count, k_max), -1, dtype=np.int8)
    start = np.empty(count, dtype=np.intp)
    for j, (_, flit_times, rate_select) in enumerate(entries):
        pad = k_max - len(flit_times)
        flit[j, pad:] = flit_times
        select[j, pad:] = rate_select
        start[j] = pad
    return _JourneyBatch(weights=weights, flit_times=flit, eta_select=select, start_col=start)


@dataclass(frozen=True)
class _IntraPlan:
    """Load-independent decomposition of one class's intra-cluster model."""

    intra_fraction: float  # 1 - U_i
    nodes: int  # N_i
    eta_divisor: float  # Eq. 10 denominator 4 n_i N_i
    mean_links: float
    tree_depth: int
    journeys: _JourneyBatch
    tail_time: float  # E_in (Eq. 19) — load independent
    min_service: float  # M t_cn, the Eq. 17 variance anchor
    channel_time: float  # t_cs of ICN1(i), for channel utilisation


@dataclass(frozen=True)
class _PairPlan:
    """Load-independent decomposition of one ordered class pair (i, j)."""

    external: float  # N_i U_i + N_j U_j  (Eq. 22 slope)
    src_nodes: int  # N_i
    src_u: float  # U_i
    d_e1: float  # mean journey links in the source's ECN1 (Eq. 24)
    d_i2: float  # mean journey links in ICN2 (Eq. 25)
    eta_e1_divisor: float
    eta_i2_divisor: float
    delta: float  # Eq. 28 relaxing factor
    journeys: _JourneyBatch
    tail_time: float  # E_ex (Eq. 33) — load independent
    min_service: float  # M t_cn^{E1(i)}
    conc_service: float  # M t_cs^{I2}
    conc_variance: float  # Eq. 36 variance (constant)
    weight: float  # destination weight of j in the Eq. 35/38 averages
    ecn1_channel_time: float
    icn2_channel_time: float


def _validate_loads(loads: "np.ndarray | list[float]") -> np.ndarray:
    """Shared load-grid validation: 1-D, non-empty, non-negative, finite."""
    loads_arr = np.asarray(loads, dtype=np.float64)
    require(loads_arr.ndim == 1 and loads_arr.size > 0, "loads must be a non-empty 1-D sequence")
    require(bool(np.all(loads_arr >= 0)), "loads must be non-negative")
    require(bool(np.all(np.isfinite(loads_arr))), "loads must be finite")
    return loads_arr


def _intra_rate_arrays(plan: "_IntraPlan", loads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``λ_I1`` and ``η_I1`` over the grid (Eqs. 7-10).

    The single source of the intra rate arithmetic — shared by the latency
    evaluation and the saturation inversion so the two can never drift.
    """
    lambda_i1 = plan.nodes * loads * plan.intra_fraction
    eta_i1 = lambda_i1 * plan.mean_links / plan.eta_divisor
    return lambda_i1, eta_i1


def _pair_rate_arrays(
    plan: "_PairPlan", loads: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``λ_E1, λ_I2, η_E1, η_I2, η_I2·δ`` over the grid (Eqs. 22-28).

    The single source of the pair rate arithmetic — shared by the latency
    evaluation and the saturation inversion so the two can never drift.
    """
    lambda_e1 = loads * plan.external
    lambda_i2 = 0.5 * lambda_e1
    eta_e1 = lambda_e1 * plan.d_e1 / plan.eta_e1_divisor
    eta_i2 = lambda_i2 * plan.d_i2 / plan.eta_i2_divisor
    eta_i2_eff = eta_i2 * plan.delta  # Eq. 28 relaxing factor
    return lambda_e1, lambda_i2, eta_e1, eta_i2, eta_i2_eff


@dataclass(frozen=True)
class ResourceRates:
    """Utilisation of one modelled resource across a load grid."""

    resource: str
    kind: str  # "source-queue" | "concentrator" | "channel"
    utilization: np.ndarray


class BatchedModel:
    """Batched evaluator for :class:`~repro.core.model.AnalyticalModel`.

    Construction performs the load-independent precompute; each
    :meth:`evaluate_many` call then costs O(journeys × stages) NumPy
    operations over the whole grid.  The wrapped scalar model stays
    available as :attr:`reference_model` (it is the semantics oracle the
    equivalence tests compare against).

    Parameters match :class:`~repro.core.model.AnalyticalModel`.
    """

    def __init__(
        self,
        system: SystemConfig,
        message: MessageSpec,
        options: ModelOptions | None = None,
        pattern: TrafficPatternLike | None = None,
    ) -> None:
        self._attach(AnalyticalModel(system, message, options, pattern))

    def _attach(self, model: AnalyticalModel) -> None:
        """Build the load-independent precompute around *model*."""
        self._model = model
        self.system = self._model.system
        self.message = self._model.message
        self.options = self._model.options
        self.pattern = self._model.pattern
        self._classes = self._model.cluster_classes
        self._single_cluster = self.system.num_clusters == 1
        self._m_flits = self.message.length_flits
        self._saturation_cache: dict[str, float] | None = None
        self._intra_plans = tuple(self._plan_intra(src) for src in self._classes)
        self._pair_plans: tuple[tuple[_PairPlan, ...], ...] = tuple(
            self._plan_pairs(i) for i in range(len(self._classes))
        )

    @classmethod
    def from_model(cls, model: AnalyticalModel) -> "BatchedModel":
        """Batched engine wrapping an existing scalar model (cached on it).

        The engine's :attr:`reference_model` *is* the given instance — no
        duplicate :class:`AnalyticalModel` is constructed.  Repeated calls
        with the same model reuse one precompute, so rewired entry points
        (``find_saturation_load``, ``sweep_load``, …) pay the decomposition
        once per model object; if the model's attributes were reassigned
        since the engine was cached, a fresh engine is built instead of
        returning stale results.
        """
        require(isinstance(model, AnalyticalModel), "model must be an AnalyticalModel")
        cached = getattr(model, "_batched_engine", None)
        if cached is None or not cached._wraps(model):
            cached = cls.__new__(cls)
            cached._attach(model)
            model._batched_engine = cached  # type: ignore[attr-defined]
        return cached

    def _wraps(self, model: AnalyticalModel) -> bool:
        """True if this engine's precompute still reflects *model*'s state."""
        return (
            self._model is model
            and self.system is model.system
            and self.message is model.message
            and self.options is model.options
            and self.pattern is model.pattern
        )

    @property
    def reference_model(self) -> AnalyticalModel:
        """The scalar reference implementation this engine was built from."""
        return self._model

    @property
    def cluster_classes(self):
        """The class decomposition the engine evaluates over."""
        return self._classes

    # -- precompute ------------------------------------------------------------

    def _plan_intra(self, src) -> _IntraPlan:
        from repro.core.topology_math import journey_length_pmf, mean_journey_links

        options = self.options
        st = ServiceTimes.for_network(src.icn1, self.message, options)
        n_depth = src.tree_depth
        pmf = journey_length_pmf(self.system.switch_ports, n_depth)
        mean_links = mean_journey_links(self.system.switch_ports, n_depth)
        intra_fraction = 1.0 - src.u

        journeys = []
        for h in range(1, n_depth + 1):
            k_stages = 2 * h - 1
            flit_times = np.full(k_stages, st.t_cs, dtype=np.float64)
            flit_times[-1] = st.t_cn
            journeys.append((float(pmf[h - 1]), flit_times, np.zeros(k_stages, dtype=np.int8)))

        h_values = np.arange(1, n_depth + 1, dtype=np.float64)
        tail_time = float(np.sum(pmf * (2.0 * (h_values - 1.0) * st.t_cs + st.t_cn)))

        return _IntraPlan(
            intra_fraction=intra_fraction,
            nodes=src.nodes,
            eta_divisor=4.0 * n_depth * src.nodes,
            mean_links=mean_links,
            tree_depth=n_depth,
            journeys=_stack_journeys(journeys),
            tail_time=tail_time,
            min_service=self._m_flits * st.t_cn,
            channel_time=switch_channel_time(src.icn1, self.message.flit_bytes),
        )

    def _plan_pairs(self, src_idx: int) -> tuple[_PairPlan, ...]:
        from repro.core.topology_math import journey_length_pmf, mean_journey_links

        if self._single_cluster:
            return ()
        system, message, options = self.system, self.message, self.options
        classes = self._classes
        src = classes[src_idx]
        weights = self._model._destination_weights(src_idx)
        if src.u > 0.0:
            require(sum(weights) > 0, "destination weights must not all be zero")
        n_c = system.icn2_tree_depth
        st_src = ServiceTimes.for_network(src.ecn1, message, options)
        st_i2 = ServiceTimes.for_network(system.icn2, message, options)
        d_e1 = mean_journey_links(system.switch_ports, src.tree_depth)
        d_i2 = mean_journey_links(system.switch_ports, n_c)
        delta = (system.icn2.beta / src.ecn1.beta) if options.relaxing_factor else 1.0
        pmf_r = journey_length_pmf(system.switch_ports, src.tree_depth)
        pmf_l = journey_length_pmf(system.switch_ports, n_c)

        plans = []
        for j, dst in enumerate(classes):
            st_dst = ServiceTimes.for_network(dst.ecn1, message, options)
            pmf_v = journey_length_pmf(system.switch_ports, dst.tree_depth)
            journeys: list[tuple[float, np.ndarray, np.ndarray]] = []
            tail_time = 0.0
            for r in range(1, src.tree_depth + 1):
                p_r = float(pmf_r[r - 1])
                for v in range(1, dst.tree_depth + 1):
                    p_rv = p_r * float(pmf_v[v - 1])
                    for l_hops in range(1, n_c + 1):
                        weight = p_rv * float(pmf_l[l_hops - 1])
                        k_stages = r + v + 2 * l_hops - 1
                        icn2_lo, icn2_hi = r, r + 2 * l_hops - 1  # Eq. 30 ranges
                        flit_times = np.empty(k_stages, dtype=np.float64)
                        flit_times[:icn2_lo] = st_src.t_cs
                        flit_times[icn2_lo:icn2_hi] = st_i2.t_cs
                        flit_times[icn2_hi:] = st_dst.t_cs
                        flit_times[k_stages - 1] = st_dst.t_cn  # Eq. 29 final stage
                        rate_select = np.zeros(k_stages, dtype=np.int8)
                        rate_select[icn2_lo:icn2_hi] = 1  # Eq. 27
                        journeys.append((weight, flit_times, rate_select))
                        tail = (
                            (r - 1) * st_src.t_cs
                            + (v - 1) * st_dst.t_cs
                            + 2 * l_hops * st_i2.t_cs
                            + st_dst.t_cn
                        )
                        tail_time += weight * tail

            external = src.nodes * src.u + dst.nodes * dst.u
            conc_service = self._m_flits * st_i2.t_cs
            if options.variance_approximation == "paper":
                conc_variance = (conc_service - self._m_flits * st_src.t_cs) ** 2  # Eq. 36
            else:
                conc_variance = conc_service**2
            plans.append(
                _PairPlan(
                    external=external,
                    src_nodes=src.nodes,
                    src_u=src.u,
                    d_e1=d_e1,
                    d_i2=d_i2,
                    eta_e1_divisor=4.0 * src.tree_depth * src.nodes,
                    eta_i2_divisor=4.0 * n_c,
                    delta=delta,
                    journeys=_stack_journeys(journeys),
                    tail_time=tail_time,
                    min_service=self._m_flits * st_src.t_cn,
                    conc_service=conc_service,
                    conc_variance=conc_variance,
                    weight=float(weights[j]),
                    ecn1_channel_time=switch_channel_time(src.ecn1, message.flit_bytes),
                    icn2_channel_time=switch_channel_time(system.icn2, message.flit_bytes),
                )
            )
        return tuple(plans)

    # -- vectorised evaluation --------------------------------------------------

    # -- queue arrival rates (single source for evaluation AND inversion) -------

    def _intra_source_rate(
        self, plan: _IntraPlan, loads: np.ndarray, lambda_i1: np.ndarray
    ) -> np.ndarray:
        """Eq. 18 source-queue rate under the configured convention."""
        if self.options.source_queue_rate == "per_node":
            return loads * plan.intra_fraction
        return lambda_i1  # "paper" / "aggregate_pair" keep the aggregate rate

    def _pair_source_rate(
        self, plan: _PairPlan, loads: np.ndarray, lambda_e1: np.ndarray
    ) -> np.ndarray:
        """Eq. 31 source-queue rate under the configured convention."""
        if self.options.source_queue_rate == "aggregate_pair":
            return lambda_e1
        return loads * plan.src_u

    def _concentrator_rate(
        self, plan: _PairPlan, loads: np.ndarray, lambda_e1: np.ndarray
    ) -> np.ndarray:
        """Eq. 37 concentrator rate under the configured convention."""
        if self.options.concentrator_rate == "source_outgoing":
            return loads * plan.src_nodes * plan.src_u
        return 0.5 * lambda_e1  # "pair_mean": λ_I2 = λ_E1 / 2

    def _intra_terms(self, plan: _IntraPlan, loads: np.ndarray) -> dict[str, np.ndarray]:
        # Eq. 7 / Eqs. 8-10, expression-for-expression with intra_cluster_latency.
        lambda_i1, eta_i1 = _intra_rate_arrays(plan, loads)
        network_latency = _solve_journeys_batched(plan.journeys, (eta_i1,), self._m_flits)
        source_rate = self._intra_source_rate(plan, loads, lambda_i1)
        if self.options.variance_approximation == "paper":
            variance = (network_latency - plan.min_service) ** 2  # Eq. 17
        else:
            variance = network_latency**2
        wait, utilization, saturated = _mg1_wait_batched(source_rate, network_latency, variance)
        total = wait + network_latency + plan.tail_time
        return {
            "wait": wait,
            "network_latency": network_latency,
            "total": total,
            "lambda_i1": lambda_i1,
            "eta_i1": eta_i1,
            "utilization": utilization,
            "saturated": saturated,
        }

    def _pair_terms(self, plan: _PairPlan, loads: np.ndarray) -> dict[str, np.ndarray]:
        # Eqs. 22-25, 27-28 with the same association order as inter_pair_latency.
        lambda_e1, lambda_i2, eta_e1, eta_i2, eta_i2_eff = _pair_rate_arrays(plan, loads)
        network_latency = _solve_journeys_batched(
            plan.journeys, (eta_e1, eta_i2_eff), self._m_flits
        )
        source_rate = self._pair_source_rate(plan, loads, lambda_e1)
        if self.options.variance_approximation == "paper":
            variance = (network_latency - plan.min_service) ** 2
        else:
            variance = network_latency**2
        wait, utilization, saturated = _mg1_wait_batched(source_rate, network_latency, variance)
        total = wait + network_latency + plan.tail_time
        # Eqs. 36-37 — the concentrator/dispatcher M/G/1 (constant service).
        conc_rate = self._concentrator_rate(plan, loads, lambda_e1)
        conc_wait, conc_util, conc_saturated = _mg1_wait_batched(
            conc_rate,
            np.full_like(loads, plan.conc_service),
            np.full_like(loads, plan.conc_variance),
        )
        pair_wait = 2.0 * conc_wait  # Eq. 38 summand (2 inf stays inf)
        return {
            "wait": wait,
            "network_latency": network_latency,
            "total": total,
            "lambda_e1": lambda_e1,
            "lambda_i2": lambda_i2,
            "eta_e1": eta_e1,
            "eta_i2": eta_i2,
            "utilization": utilization,
            "saturated": saturated,
            "conc_wait": conc_wait,
            "conc_pair_wait": pair_wait,
            "conc_rate": conc_rate,
            "conc_utilization": conc_util,
            "conc_saturated": conc_saturated,
        }

    def evaluate_many(
        self, loads: "np.ndarray | list[float]", *, with_results: bool = True
    ) -> "LoadSweep":
        """Evaluate the model at every load in *loads* (Eqs. 1-3, batched).

        Returns the same :class:`~repro.core.sweep.LoadSweep` a scalar
        :func:`~repro.core.sweep.sweep_load` would produce.  With
        ``with_results=False`` the per-load :class:`ModelResult` breakdowns
        are skipped (``results`` is empty) — use this for latency-only
        sweeps where constructing per-point dataclasses is pure overhead.
        """
        from repro.core.sweep import LoadSweep

        loads_arr = _validate_loads(loads)
        classes = self._classes
        n_loads = loads_arr.size
        per_class: list[dict] = []
        latency = np.zeros(n_loads, dtype=np.float64)
        any_saturated = np.zeros(n_loads, dtype=bool)
        for i, src in enumerate(classes):
            intra = self._intra_terms(self._intra_plans[i], loads_arr)
            entry: dict = {"intra": intra, "pairs": None}
            inter_network = np.zeros(n_loads, dtype=np.float64)
            conc_wait = np.zeros(n_loads, dtype=np.float64)
            pair_saturated = np.zeros(n_loads, dtype=bool)
            if not (self._single_cluster or src.u == 0.0):
                pairs = [
                    self._pair_terms(plan, loads_arr) for plan in self._pair_plans[i]
                ]
                entry["pairs"] = pairs
                total_weight = sum(plan.weight for plan in self._pair_plans[i])
                for plan, pair in zip(self._pair_plans[i], pairs):
                    if plan.weight <= 0:
                        continue
                    inter_network = inter_network + plan.weight * pair["total"]
                    conc_wait = conc_wait + plan.weight * pair["conc_pair_wait"]
                    pair_saturated = pair_saturated | pair["saturated"] | pair["conc_saturated"]
                inter_network = inter_network / total_weight
                conc_wait = conc_wait / total_weight
            outward = inter_network + conc_wait  # Eq. 39
            mean = (1.0 - src.u) * intra["total"] + src.u * outward  # Eq. 1
            class_saturated = intra["saturated"] | pair_saturated
            entry.update(
                inter_network=inter_network,
                conc_wait=conc_wait,
                outward=outward,
                mean=mean,
                saturated=class_saturated,
            )
            per_class.append(entry)
            latency = latency + mean * src.nodes * src.count
            any_saturated = any_saturated | class_saturated
        latency = latency / self.system.total_nodes  # Eq. 3
        latencies = np.where(any_saturated, np.inf, latency)

        results: tuple[ModelResult, ...] = ()
        if with_results:
            results = tuple(
                self._build_result(idx, float(loads_arr[idx]), per_class, latencies)
                for idx in range(n_loads)
            )
        return LoadSweep(loads=loads_arr, latencies=latencies, results=results)

    # -- scalar result reconstruction -------------------------------------------

    def _build_result(
        self, idx: int, load: float, per_class: list[dict], latencies: np.ndarray
    ) -> ModelResult:
        """Materialise one grid point as a scalar-identical :class:`ModelResult`."""
        breakdowns = []
        saturated_resources: list[str] = []
        for i, src in enumerate(self._classes):
            entry = per_class[i]
            plan = self._intra_plans[i]
            terms = entry["intra"]
            intra = IntraClusterLatency(
                source_wait=float(terms["wait"][idx]),
                network_latency=float(terms["network_latency"][idx]),
                tail_time=plan.tail_time,
                total=float(terms["total"][idx]),
                aggregate_rate=float(terms["lambda_i1"][idx]),
                channel_rate=float(terms["eta_i1"][idx]),
                source_utilization=float(terms["utilization"][idx]),
                saturated=bool(terms["saturated"][idx]),
            )
            if intra.saturated:
                saturated_resources.append(f"{src.name}:icn1-source-queue")
            inter_pairs: tuple[InterPairLatency, ...] = ()
            if entry["pairs"] is not None:
                pair_objs = []
                for plan_p, pair, dst in zip(self._pair_plans[i], entry["pairs"], self._classes):
                    pair_objs.append(
                        InterPairLatency(
                            source_wait=float(pair["wait"][idx]),
                            network_latency=float(pair["network_latency"][idx]),
                            tail_time=plan_p.tail_time,
                            total=float(pair["total"][idx]),
                            ecn1_rate=float(pair["lambda_e1"][idx]),
                            icn2_rate=float(pair["lambda_i2"][idx]),
                            ecn1_channel_rate=float(pair["eta_e1"][idx]),
                            icn2_channel_rate=float(pair["eta_i2"][idx]),
                            relaxing_factor=plan_p.delta,
                            source_utilization=float(pair["utilization"][idx]),
                            saturated=bool(pair["saturated"][idx]),
                        )
                    )
                    if plan_p.weight <= 0:
                        continue
                    if bool(pair["saturated"][idx]):
                        saturated_resources.append(f"{src.name}->{dst.name}:ecn1-source-queue")
                    if bool(pair["conc_saturated"][idx]):
                        saturated_resources.append(f"{src.name}->{dst.name}:concentrator")
                inter_pairs = tuple(pair_objs)
            breakdowns.append(
                ClusterBreakdown(
                    name=src.name,
                    tree_depth=src.tree_depth,
                    nodes=src.nodes,
                    count=src.count,
                    outgoing_probability=src.u,
                    intra=intra,
                    inter_pairs=inter_pairs,
                    inter_network=float(entry["inter_network"][idx]),
                    concentrator_wait=float(entry["conc_wait"][idx]),
                    outward=float(entry["outward"][idx]),
                    mean=float(entry["mean"][idx]),
                    saturated=bool(entry["saturated"][idx]),
                )
            )
        saturated = any(b.saturated for b in breakdowns)
        return ModelResult(
            load=load,
            latency=float(latencies[idx]),
            saturated=saturated,
            clusters=tuple(breakdowns),
            saturated_resources=tuple(saturated_resources),
        )

    # -- conveniences -----------------------------------------------------------

    def evaluate(self, generation_rate: float) -> ModelResult:
        """Single-point evaluation through the batched path (for spot checks)."""
        return self.evaluate_many(np.array([generation_rate], dtype=np.float64)).results[0]

    def zero_load_latency(self) -> float:
        """Mean latency in the λ_g → 0 limit (pure transmission time)."""
        sweep = self.evaluate_many(np.array([0.0]), with_results=False)
        return float(sweep.latencies[0])

    # -- per-resource utilisation / saturation ----------------------------------

    def resource_utilizations(self, loads: "np.ndarray | list[float]") -> tuple[ResourceRates, ...]:
        """Utilisation of every modelled queue *and* channel over the grid.

        The enumeration (names, kinds, values) matches
        :func:`repro.analysis.bottleneck.model_bottlenecks`, which is built
        on this method.
        """
        loads_arr = _validate_loads(loads)
        m_flits = self._m_flits
        out: list[ResourceRates] = []
        for i, src in enumerate(self._classes):
            plan = self._intra_plans[i]
            terms = self._intra_terms(plan, loads_arr)
            out.append(
                ResourceRates(f"{src.name}:icn1-source-queue", "source-queue", terms["utilization"])
            )
            out.append(
                ResourceRates(
                    f"{src.name}:icn1-channels",
                    "channel",
                    terms["eta_i1"] * m_flits * plan.channel_time,
                )
            )
            if self._single_cluster:
                continue
            for plan_p, dst in zip(self._pair_plans[i], self._classes):
                pair = self._pair_terms(plan_p, loads_arr)
                pair_name = f"{src.name}->{dst.name}"
                out.append(
                    ResourceRates(f"{pair_name}:ecn1-source-queue", "source-queue", pair["utilization"])
                )
                out.append(
                    ResourceRates(f"{pair_name}:concentrator", "concentrator", pair["conc_utilization"])
                )
                out.append(
                    ResourceRates(
                        f"{pair_name}:ecn1-channels",
                        "channel",
                        pair["eta_e1"] * m_flits * plan_p.ecn1_channel_time,
                    )
                )
                out.append(
                    ResourceRates(
                        f"{pair_name}:icn2-channels",
                        "channel",
                        pair["eta_i2"] * m_flits * plan_p.icn2_channel_time,
                    )
                )
        return tuple(out)

    #: Probes per bracket-refinement round of the source-queue inversion.
    _ROOT_GRID = 33
    #: Relative bracket width at which the inversion stops.
    _ROOT_REL_TOL = 1e-13

    def _source_queue_saturation(
        self,
        rate_of_many: Callable[[np.ndarray], np.ndarray],
        latency_of_many: Callable[[np.ndarray], np.ndarray],
    ) -> float:
        """λ* solving ``rate(λ) · T(λ) = 1`` for one source queue.

        ``rate`` is the queue's arrival rate (linear in ``λ_g``, shared with
        the evaluation path) and ``T`` the monotone non-decreasing pipeline
        latency of the queue's own journey set, so the root is unique and
        upper-bounded by the linearised estimate ``1 / (rate'(0) · T(0))``.
        The bracket is narrowed by vectorised grid refinement — each round
        evaluates one :data:`_ROOT_GRID`-point batch of the queue's own
        journey recursion (not the whole model) and keeps the cell
        containing the ρ = 1 crossing — down to :data:`_ROOT_REL_TOL`
        relative width.
        """
        rate_slope = float(rate_of_many(np.ones(1))[0])  # rates are linear, zero at 0
        if rate_slope <= 0.0:
            return float("inf")
        zero_load_latency = float(latency_of_many(np.zeros(1))[0])
        require_positive(zero_load_latency, "zero-load pipeline latency")

        def saturated(grid: np.ndarray) -> np.ndarray:
            t = latency_of_many(grid)
            rho = np.where(np.isfinite(t), rate_of_many(grid) * t, np.inf)
            return rho >= 1.0

        # The tiny headroom keeps ρ(hi) >= 1 even when T is load-independent
        # (a one-stage pipeline) and the bound is the root itself.
        upper = (1.0 / (rate_slope * zero_load_latency)) * (1.0 + 1e-9)
        _, hi = refine_monotone_crossing(
            0.0, upper, saturated, rel_tol=self._ROOT_REL_TOL, points=self._ROOT_GRID
        )
        return hi

    def saturation_loads(self) -> dict[str, float]:
        """Per-resource saturation rates ``λ*`` (ρ = 1), keyed like
        ``ModelResult.saturated_resources``.

        Concentrator entries are exact closed forms
        ``1 / (slope · M t_cs^{I2})``; source-queue entries invert the
        single-resource monotone utilisation (see the module docstring).
        Only resources that can saturate the model are listed (zero-weight
        destination pairs and zero-rate queues are excluded, mirroring
        ``AnalyticalModel.evaluate``).
        """
        if self._saturation_cache is not None:
            return dict(self._saturation_cache)
        out: dict[str, float] = {}
        for i, src in enumerate(self._classes):
            plan = self._intra_plans[i]

            def intra_latency(loads: np.ndarray, *, _plan=plan) -> np.ndarray:
                _, eta_i1 = _intra_rate_arrays(_plan, loads)
                return _solve_journeys_batched(_plan.journeys, (eta_i1,), self._m_flits)

            def intra_rate(loads: np.ndarray, *, _plan=plan) -> np.ndarray:
                lambda_i1, _ = _intra_rate_arrays(_plan, loads)
                return self._intra_source_rate(_plan, loads, lambda_i1)

            # A zero-rate queue (intra_fraction == 0 under a pattern with
            # U_i == 1) can never saturate and is excluded, like zero-weight
            # pairs, mirroring AnalyticalModel.evaluate's saturation scope.
            lam = self._source_queue_saturation(intra_rate, intra_latency)
            if np.isfinite(lam):
                out[f"{src.name}:icn1-source-queue"] = lam

            if self._single_cluster or src.u == 0.0:
                continue
            for plan_p, dst in zip(self._pair_plans[i], self._classes):
                if plan_p.weight <= 0:
                    continue
                pair_name = f"{src.name}->{dst.name}"

                def pair_latency(loads: np.ndarray, *, _plan=plan_p) -> np.ndarray:
                    _, _, eta_e1, _, eta_i2_eff = _pair_rate_arrays(_plan, loads)
                    return _solve_journeys_batched(
                        _plan.journeys, (eta_e1, eta_i2_eff), self._m_flits
                    )

                def pair_rate(loads: np.ndarray, *, _plan=plan_p) -> np.ndarray:
                    return self._pair_source_rate(_plan, loads, loads * _plan.external)

                lam = self._source_queue_saturation(pair_rate, pair_latency)
                if np.isfinite(lam):
                    out[f"{pair_name}:ecn1-source-queue"] = lam
                # Constant service time ⇒ ρ = slope · service · λ is exactly
                # linear and the saturation rate is closed form.  The slope
                # comes from the same rate helper the evaluation path uses.
                ones = np.ones(1)
                conc_slope = float(
                    self._concentrator_rate(plan_p, ones, ones * plan_p.external)[0]
                )
                if conc_slope > 0.0:
                    out[f"{pair_name}:concentrator"] = 1.0 / (
                        conc_slope * plan_p.conc_service
                    )
        self._saturation_cache = dict(out)
        return out

    def saturation_load(self) -> float:
        """Smallest ``λ_g`` at which any modelled queue reaches ρ = 1."""
        loads = self.saturation_loads()
        lam_star = min(loads.values(), default=float("inf"))
        require(
            np.isfinite(lam_star),
            "could not find a saturating load (system unsaturable?)",
        )
        return lam_star

    def binding_resource(self) -> str:
        """Name of the resource whose saturation rate is smallest."""
        loads = self.saturation_loads()
        require(len(loads) > 0, "no saturable resources in this system")
        return min(loads, key=loads.get)
