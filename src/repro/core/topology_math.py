"""Closed-form combinatorics of the m-port n-tree topology.

These are the quantities the analytical model needs about a tree without
ever constructing it: node/switch counts, the journey-length distribution
under uniform traffic (paper Eq. 6) and the mean message distance
(paper Eqs. 8–9).

Conventions: ``q = m/2`` is the down/up radix of non-root switches; an
``h``-level journey crosses ``2h`` links (``h`` ascending to the nearest
common ancestor, ``h`` descending — paper §2).  All pmfs are returned as
NumPy arrays indexed by ``h-1`` (i.e. ``pmf[0]`` is ``P(h=1)``).
"""

from __future__ import annotations

import numpy as np

from repro._util import require, require_int

__all__ = [
    "radix",
    "num_nodes",
    "num_switches",
    "switches_per_level",
    "num_unidirectional_channels",
    "journey_length_pmf",
    "mean_journey_links",
    "mean_journey_links_closed_form",
    "nca_level_counts",
]


def radix(switch_ports: int) -> int:
    """Half-arity ``q = m/2`` (down-radix of every non-root switch)."""
    require_int(switch_ports, "switch_ports", minimum=2)
    require(switch_ports % 2 == 0, f"switch_ports must be even, got {switch_ports}")
    return switch_ports // 2


def num_nodes(switch_ports: int, tree_depth: int) -> int:
    """Processing-node count ``N = 2 * (m/2)**n`` (paper §2)."""
    require_int(tree_depth, "tree_depth", minimum=1)
    return 2 * radix(switch_ports) ** tree_depth


def num_switches(switch_ports: int, tree_depth: int) -> int:
    """Switch count ``N_sw = (2n - 1) * (m/2)**(n-1)`` (paper §2)."""
    require_int(tree_depth, "tree_depth", minimum=1)
    return (2 * tree_depth - 1) * radix(switch_ports) ** (tree_depth - 1)


def switches_per_level(switch_ports: int, tree_depth: int) -> tuple[int, ...]:
    """Switch counts for levels ``1..n``.

    Levels ``1..n-1`` have ``2 q**(n-1)`` switches; the root level has
    ``q**(n-1)`` switches with all ``m`` ports facing down.  The total
    matches :func:`num_switches`.
    """
    require_int(tree_depth, "tree_depth", minimum=1)
    q = radix(switch_ports)
    body = 2 * q ** (tree_depth - 1)
    return tuple([body] * (tree_depth - 1) + [q ** (tree_depth - 1)])


def num_unidirectional_channels(switch_ports: int, tree_depth: int) -> int:
    """Channel count used by the paper's per-channel rates: ``4 n N``.

    The physical topology has ``n*N`` full-duplex links (``N`` between any
    two adjacent levels, including nodes↔level-1); the paper's Eq. 10
    denominator ``4 n_i N_i`` counts each full-duplex link as four
    unidirectional channel resources (separate ascending/descending channel
    pairs).  We keep the paper's constant so Eq. 10 reproduces exactly.
    """
    return 4 * tree_depth * num_nodes(switch_ports, tree_depth)


def nca_level_counts(switch_ports: int, tree_depth: int) -> np.ndarray:
    """Number of destinations whose NCA with a fixed source is at level ``h``.

    For ``h < n`` the destinations sharing a level-``h`` subtree but not a
    level-``h-1`` subtree number ``q**h - q**(h-1)``; the root level attracts
    the remaining ``N - q**(n-1)`` nodes.  Sums to ``N - 1``.
    """
    q = radix(switch_ports)
    n = tree_depth
    counts = np.array([q**h - q ** (h - 1) for h in range(1, n)] + [0], dtype=np.int64)
    counts[n - 1] = num_nodes(switch_ports, n) - q ** (n - 1)
    return counts


def journey_length_pmf(switch_ports: int, tree_depth: int) -> np.ndarray:
    """Paper Eq. 6 — pmf of the NCA level ``h`` under uniform traffic.

    ``P(h) = q**(h-1) (q-1) / (N-1)`` for ``h = 1..n-1`` and
    ``P(n) = q**(n-1) (m-1) / (N-1)``.  Index ``h-1`` holds ``P(h)``.
    A journey with NCA level ``h`` crosses ``2h`` links.
    """
    require_int(tree_depth, "tree_depth", minimum=1)
    n_nodes = num_nodes(switch_ports, tree_depth)
    counts = nca_level_counts(switch_ports, tree_depth).astype(np.float64)
    return counts / (n_nodes - 1)


def mean_journey_links(switch_ports: int, tree_depth: int) -> float:
    """Paper Eq. 8 — mean number of links crossed, ``D = 2 Σ_h h P(h)``."""
    pmf = journey_length_pmf(switch_ports, tree_depth)
    h = np.arange(1, tree_depth + 1, dtype=np.float64)
    return float(2.0 * np.sum(h * pmf))


def mean_journey_links_closed_form(switch_ports: int, tree_depth: int) -> float:
    """Closed form of Eq. 9 (derived independently; tested against Eq. 8).

    With ``q = m/2`` and ``N = 2 q**n``::

        D = 2 * [ Σ_{h=1}^{n-1} h q^{h-1}(q-1)  +  n (2 q^n - q^{n-1}) ] / (N-1)

    The finite sum telescopes to ``(n-1) q^{n-1}  - (q^{n-1} - 1)/(q - 1)``
    for ``q > 1`` (and to ``n(n-1)/2 * 0`` degenerately for ``q = 1``,
    which cannot occur since ``m >= 4``).
    """
    q = radix(switch_ports)
    n = tree_depth
    n_nodes = num_nodes(switch_ports, tree_depth)
    if q == 1:  # pragma: no cover - excluded by validation (m >= 4)
        raise ValueError("m-port n-tree requires m >= 4")
    # sum_{h=1}^{n-1} h (q^h - q^{h-1}) = (n-1) q^{n-1} - (q^{n-2} + ... + 1)
    partial = (n - 1) * q ** (n - 1) - (q ** (n - 1) - 1) // (q - 1)
    total = partial + n * (2 * q**n - q ** (n - 1))
    return 2.0 * total / (n_nodes - 1)
