"""Cross-cell stacked evaluation: the closed forms over (cells × loads).

:class:`~repro.core.batch.BatchedModel` vectorises the model across *loads*
but still prices one design cell at a time; a design-space sweep therefore
pays the Python/NumPy call overhead of the saturation inversion, the knee
search and the journey recursion once **per cell**.  This module adds the
missing axis: a :class:`ParameterPlan` packs a list of model configurations
into stacked parameter arrays with a leading *cells* axis, and
:class:`StackedModel` evaluates the whole set with the same ndarray
operations the batched engine runs per cell — every intermediate array is
shaped ``(cells, …)`` or ``(cells, loads)``, so the per-call overhead is
amortised across the entire cell set.

Bit-identity contract
---------------------
Every number a :class:`StackedModel` produces is **bit-identical** to the
per-cell :class:`~repro.core.batch.BatchedModel` result (not merely close):
the stacked code mirrors the batched code expression-for-expression, and
all float operations are elementwise, so each cell's lane computes the
exact scalar sequence.  The mechanisms:

* **grouping** — cells are partitioned by structure signature (switch
  arity, class decomposition, ICN2 depth), so within a group every journey
  set has identical layout and the group-constant structure (journey
  dimensions, pmf weights) is built once;
* **shared suffix chains** — the batched engine right-pads journeys into
  ``(journeys × max-stages)`` planes, but right-aligned journeys *share*
  their trailing stages, so the backward Eq. 13/14 recursion collapses to
  suffix chains (destination → ICN2 → source segments) touching each
  distinct column state once: pure common-subexpression elimination of
  bit-identical elementwise chains, with temporaries shaped ``(cells,
  loads)`` instead of ``(cells, journeys, loads)`` (the padding columns'
  ``+0.0`` contributions and the ``eta·1.0`` select factors drop out as
  exact identities);
* **masks** — per-cell *control flow* of the scalar code (option
  branches, ``U_i == 0`` and zero-weight skips) becomes ``np.where``
  masks selecting between fully-evaluated branches;
* **replicated termination** — the bracket refinements (saturation
  inversion, knee and budget searches) run per-cell brackets with per-cell
  round/termination state replicating
  :func:`~repro.core.batch.refine_monotone_crossing` decision-for-decision,
  including :func:`numpy.linspace`'s internal ``step == 0`` branch
  (:func:`_linspace_rows` reproduces it per row);
* **fold order** — every accumulation that the scalar code runs as a
  Python-order fold (journey-weight sums, destination-weight averages, the
  Eq. 3 class combination) stays an explicit fold over the same index
  order, never an ``np.sum`` reduction with a different association.

``tests/test_stacked.py`` locks the equivalence (``==``, not ``allclose``)
over the scenario registry, heterogeneity ladders, ragged mixed-topology
cell sets and degraded performability configurations.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.batch import _mg1_wait_batched
from repro.core.model import AnalyticalModel, TrafficPatternLike
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.core.service_times import ServiceTimes
from repro.core.stages import _LATENCY_CAP
from repro.core.topology_math import journey_length_pmf, mean_journey_links

__all__ = ["ParameterPlan", "StackedModel"]


# ---------------------------------------------------------------------------
# per-row numerical kernels (cells axis leading)
# ---------------------------------------------------------------------------


def _linspace_rows(start: np.ndarray, stop: np.ndarray, num: int) -> np.ndarray:
    """Row-wise ``np.linspace(start[r], stop[r], num)`` — bit-identical.

    ``np.linspace`` with *array* endpoints would take its internal
    ``step == 0`` branch (denormal handling, numpy gh-5437) for **all**
    rows whenever any one row's step is zero, diverging from the scalar
    calls the per-cell engine makes.  This helper computes both variants
    and selects per row, so each row reproduces its own scalar branch.
    """
    div = num - 1
    base = np.arange(0, num, dtype=np.float64)
    delta = stop - start
    step = delta / div
    normal = base[None, :] * step[:, None]
    denormal = (base / div)[None, :] * delta[:, None]
    grid = np.where((step == 0.0)[:, None], denormal, normal)
    grid = grid + start[:, None]
    grid[:, -1] = stop
    return grid


def _refine_rows(
    lo: np.ndarray,
    hi: np.ndarray,
    crossed: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    rel_tol: float,
    points: int = 33,
    max_rounds: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row :func:`~repro.core.batch.refine_monotone_crossing`.

    ``crossed(rows, grid)`` evaluates the monotone condition for the given
    row subset over per-row grids shaped ``(len(rows), points)``.  Every
    row runs the scalar loop's exact decision sequence — the convergence
    test at the top of each round, the ``first == 0`` and no-progress
    breaks, the (never-taken in practice) bracket re-expansion — with rows
    dropping out independently, so each row's final ``(lo, hi)`` matches
    its scalar bracket bit for bit.
    """
    lo = np.array(lo, dtype=np.float64)
    hi = np.array(hi, dtype=np.float64)
    alive = np.ones(lo.size, dtype=bool)
    for _ in range(max_rounds):
        alive &= ~(hi - lo <= rel_tol * hi)
        if not alive.any():
            break
        rows = np.flatnonzero(alive)
        grid = _linspace_rows(lo[rows], hi[rows], points)
        above = crossed(rows, grid)
        has = above.any(axis=1)
        none_r = rows[~has]  # pragma: no cover - callers guarantee crossed(hi)
        if none_r.size:  # pragma: no cover
            lo[none_r] = hi[none_r]
            hi[none_r] = hi[none_r] * 2.0
        first = np.argmax(above, axis=1)
        stop_rows = rows[has & (first == 0)]  # bracket degenerated
        alive[stop_rows] = False
        sel = np.flatnonzero(has & (first != 0))
        r_ok = rows[sel]
        new_lo = grid[sel, first[sel] - 1]
        new_hi = grid[sel, first[sel]]
        no_prog = (new_lo <= lo[r_ok]) & (new_hi >= hi[r_ok])  # float64 floor
        alive[r_ok[no_prog]] = False
        upd = ~no_prog
        lo[r_ok[upd]] = new_lo[upd]
        hi[r_ok[upd]] = new_hi[upd]
    return lo, hi


def _chain_step(
    m_col: np.ndarray, suffix: np.ndarray, half_eta: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One backward column of the Eq. 13/14 recursion on a shared suffix.

    ``m_col`` is the column's per-cell ``M · t`` (broadcastable against
    *suffix*), ``suffix`` the ``Σ_{s>k} W_s`` accumulated so far and
    ``half_eta`` the column's pre-halved channel rate ``0.5 η``; returns
    ``(T_k, T_k > cap, suffix + W_k)``.  The float sequence per element is
    exactly ``_solve_journeys_batched``'s column body — hoisting ``0.5 η``
    reassociates nothing (it is the scalar's own leftmost product), the
    in-place ``inf`` clamp writes the same values the two ``np.where``
    selections produce, and the flipped operand orders (``m + s``,
    ``w += s``) are bitwise commutative.
    """
    t_col = m_col + suffix
    over = t_col > _LATENCY_CAP
    over_any = bool(over.any())
    w_col = half_eta * t_col
    w_col *= t_col
    clip = w_col > _LATENCY_CAP
    if over_any:
        clip |= over
    if over_any or bool(clip.any()):
        np.copyto(w_col, np.inf, where=clip)
    w_col += suffix
    return t_col, over, w_col


def _solve_intra_stacked(
    t_cs: np.ndarray,  # (C,)
    t_cn: np.ndarray,  # (C,)
    depth: int,
    weights: np.ndarray,  # (depth,) journey pmf
    eta_i1: np.ndarray,  # (C, L)
    m_flits: np.ndarray,  # (C,)
) -> np.ndarray:
    """Stacked Eq. 5 average via one shared suffix chain.

    Right-aligned intra journeys all share their trailing columns (one
    ``t_cn`` stage then ``t_cs`` stages), so the ``(journeys × stages)``
    plane recursion of the batched engine degenerates to a single
    backward chain: journey *h*'s ``T_0`` is the chain's ``T`` at depth
    ``2h − 1``.  Per journey the float sequence is identical to
    ``_solve_journeys_batched`` — the collapse is common-subexpression
    elimination, not a reformulation — so results stay bit-identical.
    """
    m_cn = (m_flits * t_cn)[:, None]
    m_cs = (m_flits * t_cs)[:, None]
    half_eta = 0.5 * eta_i1
    suffix = np.zeros_like(eta_i1)
    total = np.zeros_like(eta_i1)
    t0_planes: list[np.ndarray] = []
    with np.errstate(invalid="ignore", over="ignore"):
        for step in range(1, 2 * depth):
            t_col, over, suffix = _chain_step(
                m_cn if step == 1 else m_cs, suffix, half_eta
            )
            if step % 2 == 1:  # journey h = (step + 1) / 2 starts here
                t_col[over] = np.inf
                t0_planes.append(t_col)
        for h in range(depth):
            total += weights[h] * t0_planes[h]
    return total


_SCRATCH: dict[tuple[int, int, int, int], dict[str, np.ndarray]] = {}


def _pair_scratch(shape4: tuple[int, int, int, int]) -> dict[str, np.ndarray]:
    """Reusable buffers for :func:`_solve_pair_stacked`, keyed by shape.

    A pair solve needs ~six multi-megabyte temporaries; allocating them
    fresh per call dominates the solve at design-space sizes (hundreds of
    map/unmap cycles per refinement).  Solves are strictly sequential
    within a process (the repo parallelises with processes, not threads)
    and never hold buffer references across calls, so a small shape-keyed
    cache is safe.  The cache is cleared wholesale when it grows past a
    few dozen shapes (refinements shrink the active-cell axis near
    convergence, creating short-lived shapes).
    """
    bufs = _SCRATCH.get(shape4)
    if bufs is None:
        if len(_SCRATCH) >= 32:
            _SCRATCH.clear()
        n_c, d_dst, cells, loads = shape4
        shape3 = (d_dst, cells, loads)
        bufs = {
            "t4": np.empty(shape4),
            "wa4": np.empty(shape4),
            "wb4": np.empty(shape4),
            "o4": np.empty(shape4, dtype=bool),
            "c4": np.empty(shape4, dtype=bool),
            "dst": np.empty(shape3),
            "w3": np.empty(shape3),
            "t3": np.empty(shape3),
            "o3": np.empty(shape3, dtype=bool),
            "c3": np.empty(shape3, dtype=bool),
        }
        _SCRATCH[shape4] = bufs
    return bufs


def _solve_pair_stacked(
    src_cs: np.ndarray,  # (C,)
    i2_cs: np.ndarray,  # (C,)
    dst_cs: np.ndarray,  # (C,)
    dst_cn: np.ndarray,  # (C,)
    d_src: int,
    d_dst: int,
    n_c: int,
    weights: np.ndarray,  # (J,) pmf products in (r, v, l) journey order
    eta_e1: np.ndarray,  # (C, L)
    eta_i2_eff: np.ndarray,  # (C, L)
    m_flits: np.ndarray,  # (C,)
) -> np.ndarray:
    """Stacked Eq. 20 average via shared suffix chains (dst → ICN2 → src).

    An inter-cluster journey's stages read, right to left: one ``dst
    t_cn``, ``v − 1`` dst ``t_cs``, ``2l − 1`` ICN2 ``t_cs`` (the relaxed
    η), ``r`` src ``t_cs``.  Journeys sharing a suffix share the backward
    recursion state exactly, so instead of a ``(journeys × stages)``
    plane the solver walks a three-level chain tree — ``d_dst`` dst
    depths, × ``n_c`` ICN2 depths, × ``d_src`` src depths — touching each
    distinct column state once.  The independent branches are stacked on
    leading axes (``(v, cells, loads)`` for the ICN2 chains, ``(l, v,
    cells, loads)`` for the source chains) so each chain level is a
    handful of large elementwise steps.  Every journey's ``T_0`` and the
    final weighted fold (scalar ``(r, v, l)`` journey order) are
    bit-identical to the plane recursion.
    """
    cells, loads = eta_e1.shape
    m_src = (m_flits * src_cs)[:, None]
    m_i2 = (m_flits * i2_cs)[:, None]
    m_dst_cs = (m_flits * dst_cs)[:, None]
    m_dst_cn = (m_flits * dst_cn)[:, None]
    half_e1 = 0.5 * eta_e1
    half_i2 = 0.5 * eta_i2_eff
    # Reusable working set (see _pair_scratch): fresh per-op temporaries
    # at these shapes would thrash the allocator; buffers carry no state.
    shape4 = (n_c, d_dst, cells, loads)
    s = _pair_scratch(shape4)
    t_buf, over_buf, clip_buf = s["t4"], s["o4"], s["c4"]
    t3, o3, c3 = s["t3"], s["o3"], s["c3"]
    with np.errstate(invalid="ignore", over="ignore"):
        suffix = np.zeros_like(eta_e1)
        dst_states = s["dst"]
        for v in range(1, d_dst + 1):
            _, _, suffix = _chain_step(
                m_dst_cn if v == 1 else m_dst_cs, suffix, half_e1
            )
            dst_states[v - 1] = suffix
        # ICN2 chains for every v at once: (v, cells, loads); odd chain
        # depths (journeys of l hops end there) seed the source chains.
        i2_a, i2_b = dst_states, s["w3"]
        src_start = s["wa4"]
        for step in range(1, 2 * n_c):
            np.add(m_i2[None], i2_a, out=t3)
            np.greater(t3, _LATENCY_CAP, out=o3)
            over_any = bool(o3.any())
            np.multiply(half_i2[None], t3, out=i2_b)
            i2_b *= t3
            np.greater(i2_b, _LATENCY_CAP, out=c3)
            if over_any:
                c3 |= o3
            if over_any or bool(c3.any()):
                np.copyto(i2_b, np.inf, where=c3)
            i2_b += i2_a
            i2_a, i2_b = i2_b, i2_a
            if step % 2 == 1:  # l = (step + 1) / 2 hops end here
                src_start[(step + 1) // 2 - 1] = i2_a
        # Source chains for every (l, v) at once: (l, v, cells, loads).
        # Journey order is r-outermost, so each source depth's (v, l)
        # contributions fold into the total before the next depth — the
        # exact scalar (r, v, l) accumulation order.
        src_suffix = src_start
        w_buf = s["wb4"]
        total = np.zeros_like(eta_e1)
        for r in range(d_src):
            np.add(m_src[None, None], src_suffix, out=t_buf)
            np.greater(t_buf, _LATENCY_CAP, out=over_buf)
            over_any = bool(over_buf.any())
            if r + 1 < d_src:  # the deepest column's W_k is never consumed
                np.multiply(half_e1[None, None], t_buf, out=w_buf)
                w_buf *= t_buf
                np.greater(w_buf, _LATENCY_CAP, out=clip_buf)
                if over_any:
                    clip_buf |= over_buf
                if over_any or bool(clip_buf.any()):
                    np.copyto(w_buf, np.inf, where=clip_buf)
                w_buf += src_suffix
            if over_any:
                np.copyto(t_buf, np.inf, where=over_buf)
            w_r = weights[r * d_dst * n_c : (r + 1) * d_dst * n_c].reshape(d_dst, n_c)
            t_buf *= w_r.T[:, :, None, None]
            for v in range(d_dst):
                for l_hops in range(n_c):
                    total += t_buf[l_hops, v]
            src_suffix, w_buf = w_buf, src_suffix
    return total


# ---------------------------------------------------------------------------
# group-constant journey structure (shapes shared by every cell of a group)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _IntraStructure:
    """Journey layout of one class's intra-cluster model (cell-independent)."""

    weights: np.ndarray  # (depth,) journey pmf
    pmf: np.ndarray  # (depth,)
    two_h_minus_1: np.ndarray  # (depth,) = 2·(h − 1), the tail-time slopes
    mean_links: float
    tree_depth: int


@dataclass(frozen=True)
class _PairStructure:
    """Journey layout of one ordered class pair (cell-independent)."""

    weights: np.ndarray  # (J,) journey pmf products (r, v, l order)
    r_minus_1: np.ndarray  # (J,)
    v_minus_1: np.ndarray  # (J,)
    two_l: np.ndarray  # (J,)
    d_src: int
    d_dst: int
    n_c: int
    d_e1: float
    d_i2: float


def _intra_structure(switch_ports: int, depth: int) -> _IntraStructure:
    pmf = journey_length_pmf(switch_ports, depth)
    weights = np.array([float(p) for p in pmf], dtype=np.float64)
    h_values = np.arange(1, depth + 1, dtype=np.float64)
    return _IntraStructure(
        weights=weights,
        pmf=np.asarray(pmf, dtype=np.float64),
        two_h_minus_1=2.0 * (h_values - 1.0),
        mean_links=mean_journey_links(switch_ports, depth),
        tree_depth=depth,
    )


def _pair_structure(
    switch_ports: int, depth_src: int, depth_dst: int, n_c: int
) -> _PairStructure:
    pmf_r = journey_length_pmf(switch_ports, depth_src)
    pmf_v = journey_length_pmf(switch_ports, depth_dst)
    pmf_l = journey_length_pmf(switch_ports, n_c)
    count = depth_src * depth_dst * n_c
    weights = np.empty(count, dtype=np.float64)
    r_m1 = np.empty(count, dtype=np.float64)
    v_m1 = np.empty(count, dtype=np.float64)
    two_l = np.empty(count, dtype=np.float64)
    j = 0
    for r in range(1, depth_src + 1):
        p_r = float(pmf_r[r - 1])
        for v in range(1, depth_dst + 1):
            p_rv = p_r * float(pmf_v[v - 1])
            for l_hops in range(1, n_c + 1):
                weights[j] = p_rv * float(pmf_l[l_hops - 1])
                r_m1[j] = float(r - 1)
                v_m1[j] = float(v - 1)
                two_l[j] = float(2 * l_hops)
                j += 1
    return _PairStructure(
        weights=weights,
        r_minus_1=r_m1,
        v_minus_1=v_m1,
        two_l=two_l,
        d_src=depth_src,
        d_dst=depth_dst,
        n_c=n_c,
        d_e1=mean_journey_links(switch_ports, depth_src),
        d_i2=mean_journey_links(switch_ports, n_c),
    )


# ---------------------------------------------------------------------------
# stacked (per-cell) parameter planes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _StackedIntra:
    """One class's intra-cluster parameters across a group's cells."""

    structure: _IntraStructure
    t_cs: np.ndarray  # (C,) ICN1 switch-stage channel time
    t_cn: np.ndarray  # (C,) ICN1 final-stage channel time
    nodes: np.ndarray  # (C,) N_i (float64, exact)
    u: np.ndarray  # (C,) U_i
    count: np.ndarray  # (C,)
    intra_fraction: np.ndarray  # (C,) 1 − U_i
    eta_divisor: np.ndarray  # (C,) 4 n_i N_i
    tail_time: np.ndarray  # (C,) E_in (Eq. 19)
    min_service: np.ndarray  # (C,) M t_cn


@dataclass(frozen=True)
class _StackedPair:
    """One ordered class pair's parameters across a group's cells."""

    structure: _PairStructure
    src_cs: np.ndarray  # (C,) source ECN1 switch-stage channel time
    i2_cs: np.ndarray  # (C,) ICN2 switch-stage channel time
    dst_cs: np.ndarray  # (C,) destination ECN1 switch-stage channel time
    dst_cn: np.ndarray  # (C,) destination ECN1 final-stage channel time
    external: np.ndarray  # (C,) N_i U_i + N_j U_j (Eq. 22 slope)
    src_nodes: np.ndarray  # (C,)
    src_u: np.ndarray  # (C,)
    eta_e1_divisor: np.ndarray  # (C,)
    eta_i2_divisor: float  # 4 n_c — group constant
    delta: np.ndarray  # (C,) Eq. 28 relaxing factor
    tail_time: np.ndarray  # (C,) E_ex (Eq. 33)
    min_service: np.ndarray  # (C,) M t_cn^{E1(i)}
    conc_service: np.ndarray  # (C,) M t_cs^{I2}
    conc_variance: np.ndarray  # (C,) Eq. 36 variance
    weight: np.ndarray  # (C,) destination weight of j in the Eq. 35/38 averages


@dataclass(frozen=True)
class _CellGroup:
    """All cells sharing one structure signature, packed into arrays."""

    indices: np.ndarray  # positions in the original cell list
    single_cluster: bool
    class_names: tuple[str, ...]
    m_flits: np.ndarray  # (C,)
    total_nodes: np.ndarray  # (C,)
    var_paper: np.ndarray  # (C,) bool: variance_approximation == "paper"
    sqr_per_node: np.ndarray  # (C,) bool: source_queue_rate == "per_node"
    sqr_aggregate: np.ndarray  # (C,) bool: source_queue_rate == "aggregate_pair"
    conc_outgoing: np.ndarray  # (C,) bool: concentrator_rate == "source_outgoing"
    intra: tuple[_StackedIntra, ...]
    pairs: tuple[tuple[_StackedPair, ...], ...]  # () when single_cluster

    @property
    def size(self) -> int:
        return int(self.indices.size)


def _group_signature(model: AnalyticalModel) -> tuple:
    """Cells with equal signatures share every journey-plane shape."""
    classes = model.cluster_classes
    return (
        model.system.switch_ports,
        model.system.num_clusters == 1,
        model.system.icn2_tree_depth,
        tuple((cls.tree_depth, cls.name) for cls in classes),
    )


class ParameterPlan:
    """Packed parameters of a cell list, grouped by structure signature.

    Packing builds one scalar :class:`AnalyticalModel` per cell (the
    cheap class decomposition and destination weighting — *not* the
    per-cell journey planning the batched engine performs), derives each
    group's journey structure once, and fills the per-cell parameter
    planes.  Heterogeneous cluster counts are handled by the grouping
    (cells whose class decompositions differ land in different groups)
    plus the right-aligned journey padding within each group.
    """

    def __init__(self, models: Sequence[AnalyticalModel]) -> None:
        require(len(models) > 0, "ParameterPlan needs at least one cell")
        for model in models:
            require(
                isinstance(model, AnalyticalModel),
                "ParameterPlan cells must be AnalyticalModel instances",
            )
        self.models = tuple(models)
        by_sig: dict[tuple, list[int]] = {}
        for pos, model in enumerate(self.models):
            by_sig.setdefault(_group_signature(model), []).append(pos)
        self.groups: tuple[_CellGroup, ...] = tuple(
            self._build_group(positions) for positions in by_sig.values()
        )

    @property
    def cells(self) -> int:
        return len(self.models)

    # -- packing ---------------------------------------------------------------

    def _build_group(self, positions: list[int]) -> _CellGroup:
        models = [self.models[p] for p in positions]
        rep = models[0]
        ports = rep.system.switch_ports
        classes0 = rep.cluster_classes
        n_cls = len(classes0)
        single = rep.system.num_clusters == 1
        n_c = rep.system.icn2_tree_depth
        m_flits = np.array([m.message.length_flits for m in models], dtype=np.float64)
        total_nodes = np.array([m.system.total_nodes for m in models], dtype=np.float64)
        var_paper = np.array(
            [m.options.variance_approximation == "paper" for m in models], dtype=bool
        )
        sqr_per_node = np.array(
            [m.options.source_queue_rate == "per_node" for m in models], dtype=bool
        )
        sqr_aggregate = np.array(
            [m.options.source_queue_rate == "aggregate_pair" for m in models], dtype=bool
        )
        conc_outgoing = np.array(
            [m.options.concentrator_rate == "source_outgoing" for m in models], dtype=bool
        )

        intra: list[_StackedIntra] = []
        icn1_times: list[tuple[np.ndarray, np.ndarray]] = []
        ecn1_times: list[tuple[np.ndarray, np.ndarray]] = []
        for i in range(n_cls):
            structure = _intra_structure(ports, classes0[i].tree_depth)
            count = len(models)
            t_cs = np.empty(count)
            t_cn = np.empty(count)
            e_cs = np.empty(count)
            e_cn = np.empty(count)
            nodes = np.empty(count)
            u = np.empty(count)
            counts = np.empty(count)
            for c, model in enumerate(models):
                src = model.cluster_classes[i]
                st = ServiceTimes.for_network(src.icn1, model.message, model.options)
                t_cs[c], t_cn[c] = st.t_cs, st.t_cn
                st_e = ServiceTimes.for_network(src.ecn1, model.message, model.options)
                e_cs[c], e_cn[c] = st_e.t_cs, st_e.t_cn
                nodes[c] = src.nodes
                u[c] = src.u
                counts[c] = src.count
            icn1_times.append((t_cs, t_cn))
            ecn1_times.append((e_cs, e_cn))
            terms = structure.pmf[None, :] * (
                structure.two_h_minus_1[None, :] * t_cs[:, None] + t_cn[:, None]
            )
            intra.append(
                _StackedIntra(
                    structure=structure,
                    t_cs=t_cs,
                    t_cn=t_cn,
                    nodes=nodes,
                    u=u,
                    count=counts,
                    intra_fraction=1.0 - u,
                    eta_divisor=4.0 * structure.tree_depth * nodes,
                    tail_time=np.sum(terms, axis=1),
                    min_service=m_flits * t_cn,
                )
            )

        pairs: tuple[tuple[_StackedPair, ...], ...] = ()
        if not single:
            i2_cs = np.array(
                [
                    ServiceTimes.for_network(m.system.icn2, m.message, m.options).t_cs
                    for m in models
                ]
            )
            relax = np.array([m.options.relaxing_factor for m in models], dtype=bool)
            i2_beta = np.array([m.system.icn2.beta for m in models])
            dest_weights = []
            for c, model in enumerate(models):
                rows = [model._destination_weights(i) for i in range(n_cls)]
                for i in range(n_cls):
                    if model.cluster_classes[i].u > 0.0:
                        require(
                            sum(rows[i]) > 0, "destination weights must not all be zero"
                        )
                dest_weights.append(rows)
            structures: dict[tuple[int, int], _PairStructure] = {}
            all_pairs: list[tuple[_StackedPair, ...]] = []
            for i in range(n_cls):
                src_cs, src_cn = ecn1_times[i]
                src_beta = np.array([m.cluster_classes[i].ecn1.beta for m in models])
                with np.errstate(divide="ignore", invalid="ignore"):
                    delta = np.where(relax, i2_beta / src_beta, 1.0)
                row: list[_StackedPair] = []
                for j in range(n_cls):
                    key = (classes0[i].tree_depth, classes0[j].tree_depth)
                    if key not in structures:
                        structures[key] = _pair_structure(ports, key[0], key[1], n_c)
                    structure = structures[key]
                    dst_cs, dst_cn = ecn1_times[j]
                    tails = (
                        structure.r_minus_1[None, :] * src_cs[:, None]
                        + structure.v_minus_1[None, :] * dst_cs[:, None]
                        + structure.two_l[None, :] * i2_cs[:, None]
                    ) + dst_cn[:, None]
                    tail_time = np.zeros(len(models), dtype=np.float64)
                    for jj in range(structure.weights.size):
                        tail_time = tail_time + structure.weights[jj] * tails[:, jj]
                    conc_service = m_flits * i2_cs
                    conc_variance = np.where(
                        var_paper,
                        (conc_service - m_flits * src_cs) ** 2,  # Eq. 36
                        conc_service**2,
                    )
                    row.append(
                        _StackedPair(
                            structure=structure,
                            src_cs=src_cs,
                            i2_cs=i2_cs,
                            dst_cs=dst_cs,
                            dst_cn=dst_cn,
                            external=intra[i].nodes * intra[i].u
                            + intra[j].nodes * intra[j].u,
                            src_nodes=intra[i].nodes,
                            src_u=intra[i].u,
                            eta_e1_divisor=4.0 * classes0[i].tree_depth * intra[i].nodes,
                            eta_i2_divisor=4.0 * n_c,
                            delta=delta,
                            tail_time=tail_time,
                            min_service=m_flits * src_cn,
                            conc_service=conc_service,
                            conc_variance=conc_variance,
                            weight=np.array(
                                [float(dest_weights[c][i][j]) for c in range(len(models))]
                            ),
                        )
                    )
                all_pairs.append(tuple(row))
            pairs = tuple(all_pairs)

        return _CellGroup(
            indices=np.asarray(positions, dtype=np.intp),
            single_cluster=single,
            class_names=tuple(cls.name for cls in classes0),
            m_flits=m_flits,
            total_nodes=total_nodes,
            var_paper=var_paper,
            sqr_per_node=sqr_per_node,
            sqr_aggregate=sqr_aggregate,
            conc_outgoing=conc_outgoing,
            intra=tuple(intra),
            pairs=pairs,
        )


def _take(array: np.ndarray, rows: "np.ndarray | None") -> np.ndarray:
    return array if rows is None else array[rows]


class StackedModel:
    """Evaluate a whole cell set through the closed forms at once.

    Construction packs the cells (see :class:`ParameterPlan`); every
    method then returns per-cell results in the original cell order,
    bit-identical to running one :class:`~repro.core.batch.BatchedModel`
    per cell.  The API mirrors what the design-space consumers need:
    latency curves over per-cell load grids, the per-resource saturation
    inversion, the knee search and the latency-budget capacity search.
    """

    def __init__(
        self,
        cells: Sequence[
            "AnalyticalModel | tuple[SystemConfig, MessageSpec, ModelOptions | None, TrafficPatternLike | None]"
        ],
    ) -> None:
        models = [
            cell if isinstance(cell, AnalyticalModel) else AnalyticalModel(*cell)
            for cell in cells
        ]
        self.plan = ParameterPlan(models)
        self._saturation: "list[dict[str, float]] | None" = None
        self._binding: "list[str] | None" = None

    @classmethod
    def from_specs(cls, specs: Sequence) -> "StackedModel":
        """Stack scenario-spec-like objects (``system/message/options/pattern``)."""
        return cls([(s.system, s.message, s.options, s.pattern) for s in specs])

    @property
    def cells(self) -> int:
        return self.plan.cells

    # -- rates (mirroring BatchedModel's single-source rate helpers) -----------

    def _intra_rates(
        self, group: _CellGroup, i: int, rows: "np.ndarray | None", loads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eqs. 7–10: ``λ_I1`` and ``η_I1`` with the cells axis leading."""
        plan = group.intra[i]
        lambda_i1 = (
            _take(plan.nodes, rows)[:, None] * loads
        ) * _take(plan.intra_fraction, rows)[:, None]
        eta_i1 = (
            lambda_i1 * plan.structure.mean_links
        ) / _take(plan.eta_divisor, rows)[:, None]
        return lambda_i1, eta_i1

    def _pair_rates(
        self, group: _CellGroup, i: int, j: int, rows: "np.ndarray | None", loads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Eqs. 22–28: ``λ_E1, λ_I2, η_E1, η_I2, η_I2·δ`` stacked."""
        plan = group.pairs[i][j]
        lambda_e1 = loads * _take(plan.external, rows)[:, None]
        lambda_i2 = 0.5 * lambda_e1
        eta_e1 = (lambda_e1 * plan.structure.d_e1) / _take(plan.eta_e1_divisor, rows)[
            :, None
        ]
        eta_i2 = (lambda_i2 * plan.structure.d_i2) / plan.eta_i2_divisor
        eta_i2_eff = eta_i2 * _take(plan.delta, rows)[:, None]
        return lambda_e1, lambda_i2, eta_e1, eta_i2, eta_i2_eff

    def _intra_source_rate(
        self,
        group: _CellGroup,
        i: int,
        rows: "np.ndarray | None",
        loads: np.ndarray,
        lambda_i1: np.ndarray,
    ) -> np.ndarray:
        """Eq. 18 source-queue rate, option branch as a per-cell mask."""
        plan = group.intra[i]
        return np.where(
            _take(group.sqr_per_node, rows)[:, None],
            loads * _take(plan.intra_fraction, rows)[:, None],
            lambda_i1,
        )

    def _pair_source_rate(
        self,
        group: _CellGroup,
        i: int,
        rows: "np.ndarray | None",
        loads: np.ndarray,
        lambda_e1: np.ndarray,
    ) -> np.ndarray:
        """Eq. 31 source-queue rate, option branch as a per-cell mask."""
        plan = group.pairs[i][0]
        return np.where(
            _take(group.sqr_aggregate, rows)[:, None],
            lambda_e1,
            loads * _take(plan.src_u, rows)[:, None],
        )

    def _concentrator_rate(
        self,
        group: _CellGroup,
        i: int,
        j: int,
        rows: "np.ndarray | None",
        loads: np.ndarray,
        lambda_e1: np.ndarray,
    ) -> np.ndarray:
        """Eq. 37 concentrator rate, option branch as a per-cell mask."""
        plan = group.pairs[i][j]
        return np.where(
            _take(group.conc_outgoing, rows)[:, None],
            (loads * _take(plan.src_nodes, rows)[:, None])
            * _take(plan.src_u, rows)[:, None],
            0.5 * lambda_e1,
        )

    # -- journey latencies ------------------------------------------------------

    def _intra_latency(
        self, group: _CellGroup, i: int, rows: "np.ndarray | None", eta_i1: np.ndarray
    ) -> np.ndarray:
        plan = group.intra[i]
        return _solve_intra_stacked(
            _take(plan.t_cs, rows),
            _take(plan.t_cn, rows),
            plan.structure.tree_depth,
            plan.structure.weights,
            eta_i1,
            _take(group.m_flits, rows),
        )

    def _pair_latency(
        self,
        group: _CellGroup,
        i: int,
        j: int,
        rows: "np.ndarray | None",
        eta_e1: np.ndarray,
        eta_i2_eff: np.ndarray,
    ) -> np.ndarray:
        plan = group.pairs[i][j]
        return _solve_pair_stacked(
            _take(plan.src_cs, rows),
            _take(plan.i2_cs, rows),
            _take(plan.dst_cs, rows),
            _take(plan.dst_cn, rows),
            plan.structure.d_src,
            plan.structure.d_dst,
            plan.structure.n_c,
            plan.structure.weights,
            eta_e1,
            eta_i2_eff,
            _take(group.m_flits, rows),
        )

    # -- full latency evaluation (Eqs. 1–3, stacked) ----------------------------

    def _group_latencies(
        self, group: _CellGroup, rows: "np.ndarray | None", loads: np.ndarray
    ) -> np.ndarray:
        """Mean latency over per-cell load rows for one group.

        Mirrors ``BatchedModel.evaluate_many`` statement-for-statement;
        the per-cell ``U_i == 0`` / zero-weight control-flow skips of the
        scalar path become post-hoc ``np.where`` selections, so a masked
        cell's lanes never leak the ``0 · ∞`` artifacts of branches the
        scalar code would not have executed.
        """
        latency = np.zeros_like(loads)
        any_saturated = np.zeros(loads.shape, dtype=bool)
        for i in range(len(group.intra)):
            plan = group.intra[i]
            lambda_i1, eta_i1 = self._intra_rates(group, i, rows, loads)
            network = self._intra_latency(group, i, rows, eta_i1)
            source_rate = self._intra_source_rate(group, i, rows, loads, lambda_i1)
            with np.errstate(invalid="ignore", over="ignore"):
                variance = np.where(
                    _take(group.var_paper, rows)[:, None],
                    (network - _take(plan.min_service, rows)[:, None]) ** 2,  # Eq. 17
                    network**2,
                )
            wait, _, saturated = _mg1_wait_batched(source_rate, network, variance)
            intra_total = wait + network + _take(plan.tail_time, rows)[:, None]

            inter_network = np.zeros_like(loads)
            conc_wait = np.zeros_like(loads)
            pair_saturated = np.zeros(loads.shape, dtype=bool)
            u = _take(plan.u, rows)
            active = (u > 0.0) & (not group.single_cluster)
            if not group.single_cluster and bool(active.any()):
                total_weight = np.zeros(u.shape, dtype=np.float64)
                for j in range(len(group.intra)):
                    pair = self._pair_terms(group, i, j, rows, loads)
                    w = _take(group.pairs[i][j].weight, rows)
                    with np.errstate(invalid="ignore", over="ignore"):
                        inter_network = inter_network + np.where(
                            (w > 0)[:, None], w[:, None] * pair["total"], 0.0
                        )
                        conc_wait = conc_wait + np.where(
                            (w > 0)[:, None], w[:, None] * pair["conc_pair_wait"], 0.0
                        )
                    pair_saturated = pair_saturated | (
                        (w > 0)[:, None] & (pair["saturated"] | pair["conc_saturated"])
                    )
                    total_weight = total_weight + w
                with np.errstate(divide="ignore", invalid="ignore"):
                    inter_network = np.where(
                        active[:, None], inter_network / total_weight[:, None], 0.0
                    )
                    conc_wait = np.where(
                        active[:, None], conc_wait / total_weight[:, None], 0.0
                    )
                pair_saturated = pair_saturated & active[:, None]
            outward = inter_network + conc_wait  # Eq. 39
            with np.errstate(invalid="ignore", over="ignore"):
                mean = (
                    _take(plan.intra_fraction, rows)[:, None] * intra_total
                    + u[:, None] * outward
                )  # Eq. 1
            class_saturated = saturated | pair_saturated
            latency = latency + (
                mean * _take(plan.nodes, rows)[:, None]
            ) * _take(plan.count, rows)[:, None]
            any_saturated = any_saturated | class_saturated
        latency = latency / _take(group.total_nodes, rows)[:, None]  # Eq. 3
        return np.where(any_saturated, np.inf, latency)

    def _pair_terms(
        self, group: _CellGroup, i: int, j: int, rows: "np.ndarray | None", loads: np.ndarray
    ) -> dict:
        """Stacked ``BatchedModel._pair_terms`` (the fields consumers use)."""
        plan = group.pairs[i][j]
        lambda_e1, _, eta_e1, _, eta_i2_eff = self._pair_rates(group, i, j, rows, loads)
        network = self._pair_latency(group, i, j, rows, eta_e1, eta_i2_eff)
        source_rate = self._pair_source_rate(group, i, rows, loads, lambda_e1)
        with np.errstate(invalid="ignore", over="ignore"):
            variance = np.where(
                _take(group.var_paper, rows)[:, None],
                (network - _take(plan.min_service, rows)[:, None]) ** 2,
                network**2,
            )
        wait, _, saturated = _mg1_wait_batched(source_rate, network, variance)
        total = wait + network + _take(plan.tail_time, rows)[:, None]
        conc_rate = self._concentrator_rate(group, i, j, rows, loads, lambda_e1)
        ones = np.ones_like(loads)
        conc_wait, _, conc_saturated = _mg1_wait_batched(
            conc_rate,
            ones * _take(plan.conc_service, rows)[:, None],
            ones * _take(plan.conc_variance, rows)[:, None],
        )
        return {
            "total": total,
            "saturated": saturated,
            "conc_pair_wait": 2.0 * conc_wait,  # Eq. 38 summand
            "conc_saturated": conc_saturated,
        }

    # -- public evaluation ------------------------------------------------------

    def _as_rows(self, loads: np.ndarray) -> np.ndarray:
        loads_arr = np.asarray(loads, dtype=np.float64)
        if loads_arr.ndim == 1:
            loads_arr = np.broadcast_to(loads_arr, (self.cells, loads_arr.size))
        require(
            loads_arr.ndim == 2 and loads_arr.shape[0] == self.cells and loads_arr.size > 0,
            "loads must be (loads,) or (cells, loads)",
        )
        require(bool(np.all(loads_arr >= 0)), "loads must be non-negative")
        require(bool(np.all(np.isfinite(loads_arr))), "loads must be finite")
        return loads_arr

    def evaluate_latencies(self, loads: np.ndarray) -> np.ndarray:
        """Mean latency at per-cell load rows — shape ``(cells, loads)``.

        *loads* is either one shared grid ``(loads,)`` or per-cell rows
        ``(cells, loads)``.  Equivalent to calling per-cell
        ``BatchedModel.evaluate_many(..., with_results=False)``.
        """
        loads_arr = self._as_rows(loads)
        out = np.empty_like(loads_arr)
        for group in self.plan.groups:
            out[group.indices] = self._group_latencies(
                group, None, np.ascontiguousarray(loads_arr[group.indices])
            )
        return out

    def zero_load_latencies(self) -> np.ndarray:
        """Per-cell latency floor (λ_g → 0), shape ``(cells,)``."""
        return self.evaluate_latencies(np.zeros((self.cells, 1)))[:, 0]

    # -- per-resource saturation (stacked inversion) ----------------------------

    def _source_queue_saturation_rows(
        self,
        size: int,
        include: np.ndarray,
        rate_of: Callable[[np.ndarray, np.ndarray], np.ndarray],
        latency_of: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Per-cell λ* of one source queue; excluded cells get ``inf``.

        Mirrors ``BatchedModel._source_queue_saturation``: the linearised
        upper bound, the ρ ≥ 1 crossing refined per cell down to the same
        relative tolerance, the same exclusion of zero-rate queues.
        ``rate_of``/``latency_of`` take ``(rows, loads)`` with *rows*
        indexing the group's cells.
        """
        out = np.full(size, np.inf)
        rows_all = np.flatnonzero(include)
        if rows_all.size == 0:
            return out
        slope = rate_of(rows_all, np.ones((rows_all.size, 1)))[:, 0]
        inc = slope > 0.0
        rows = rows_all[inc]
        if rows.size == 0:
            return out
        slope = slope[inc]
        zero_latency = latency_of(rows, np.zeros((rows.size, 1)))[:, 0]
        require(
            bool(np.all(np.isfinite(zero_latency) & (zero_latency > 0.0))),
            "zero-load pipeline latency must be positive",
        )

        def crossed(sub: np.ndarray, grid: np.ndarray) -> np.ndarray:
            sub_rows = rows[sub]
            t = latency_of(sub_rows, grid)
            with np.errstate(invalid="ignore", over="ignore"):
                rho = np.where(np.isfinite(t), rate_of(sub_rows, grid) * t, np.inf)
            return rho >= 1.0

        # Same tiny headroom as the scalar path: ρ(hi) >= 1 even when the
        # pipeline latency is load-independent and the bound is the root.
        upper = (1.0 / (slope * zero_latency)) * (1.0 + 1e-9)
        _, hi = _refine_rows(
            np.zeros(rows.size), upper, crossed, rel_tol=1e-13, points=33
        )
        out[rows] = hi
        return out

    def _group_saturation(self, group: _CellGroup) -> tuple[list[str], np.ndarray]:
        """Per-resource λ* planes, resources in the scalar insertion order."""
        size = group.size
        names: list[str] = []
        values: list[np.ndarray] = []
        include_all = np.ones(size, dtype=bool)
        for i, name in enumerate(group.class_names):
            def intra_rate(rows: np.ndarray, loads: np.ndarray, *, _i: int = i) -> np.ndarray:
                lambda_i1, _ = self._intra_rates(group, _i, rows, loads)
                return self._intra_source_rate(group, _i, rows, loads, lambda_i1)

            def intra_latency(rows: np.ndarray, loads: np.ndarray, *, _i: int = i) -> np.ndarray:
                _, eta_i1 = self._intra_rates(group, _i, rows, loads)
                return self._intra_latency(group, _i, rows, eta_i1)

            names.append(f"{name}:icn1-source-queue")
            values.append(
                self._source_queue_saturation_rows(
                    size, include_all, intra_rate, intra_latency
                )
            )
            if group.single_cluster:
                continue
            class_active = group.intra[i].u > 0.0
            for j, dst_name in enumerate(group.class_names):
                plan = group.pairs[i][j]
                pair_include = class_active & (plan.weight > 0.0)
                pair_name = f"{name}->{dst_name}"

                def pair_rate(
                    rows: np.ndarray, loads: np.ndarray, *, _i: int = i, _j: int = j
                ) -> np.ndarray:
                    external = _take(group.pairs[_i][_j].external, rows)
                    return self._pair_source_rate(
                        group, _i, rows, loads, loads * external[:, None]
                    )

                def pair_latency(
                    rows: np.ndarray, loads: np.ndarray, *, _i: int = i, _j: int = j
                ) -> np.ndarray:
                    _, _, eta_e1, _, eta_i2_eff = self._pair_rates(
                        group, _i, _j, rows, loads
                    )
                    return self._pair_latency(group, _i, _j, rows, eta_e1, eta_i2_eff)

                names.append(f"{pair_name}:ecn1-source-queue")
                values.append(
                    self._source_queue_saturation_rows(
                        size, pair_include, pair_rate, pair_latency
                    )
                )
                # Constant service time ⇒ closed form, as in the scalar path.
                ones = np.ones((size, 1))
                conc_slope = self._concentrator_rate(
                    group, i, j, None, ones, ones * plan.external[:, None]
                )[:, 0]
                conc = np.full(size, np.inf)
                inc = pair_include & (conc_slope > 0.0)
                conc[inc] = 1.0 / (conc_slope[inc] * plan.conc_service[inc])
                names.append(f"{pair_name}:concentrator")
                values.append(conc)
        return names, np.stack(values, axis=0)

    def saturation_loads(self) -> list[dict[str, float]]:
        """Per-cell ``{resource: λ*}`` maps, as ``BatchedModel.saturation_loads``.

        Excluded resources (zero-rate queues, zero-weight pairs, ``U_i ==
        0`` classes) are omitted per cell, mirroring the scalar dicts.
        """
        if self._saturation is None:
            per_cell: list[dict[str, float]] = [dict() for _ in range(self.cells)]
            binding: list[str] = [""] * self.cells
            for group in self.plan.groups:
                names, values = self._group_saturation(group)
                finite = np.isfinite(values)
                with np.errstate(invalid="ignore"):
                    argmin = np.argmin(values, axis=0)
                for c, pos in enumerate(group.indices):
                    cell_map = {
                        names[r]: float(values[r, c])
                        for r in range(len(names))
                        if finite[r, c]
                    }
                    per_cell[pos] = cell_map
                    if cell_map:
                        binding[pos] = names[int(argmin[c])]
            self._saturation = per_cell
            self._binding = binding
        return [dict(m) for m in self._saturation]

    def saturation_load(self) -> np.ndarray:
        """Per-cell smallest saturating load, shape ``(cells,)``."""
        table = self.saturation_loads()
        out = np.empty(self.cells)
        for idx, cell_map in enumerate(table):
            lam = min(cell_map.values(), default=float("inf"))
            require(
                np.isfinite(lam),
                "could not find a saturating load (system unsaturable?)",
            )
            out[idx] = lam
        return out

    def binding_resources(self) -> list[str]:
        """Per-cell binding resource names (first minimum, scalar order)."""
        self.saturation_loads()
        assert self._binding is not None
        for idx, name in enumerate(self._binding):
            require(name != "", "no saturable resources in this system")
            _ = idx
        return list(self._binding)

    # -- knee and capacity searches ---------------------------------------------

    def knee_loads(self, knee_threshold_factor: float) -> np.ndarray:
        """Per-cell load where latency reaches ``factor ×`` its floor.

        Mirrors ``repro.experiments.explore._model_knee`` per cell: the
        same bracket ``[0, λ*·(1 − 1e-9)]``, threshold test and 1e-6
        relative refinement.
        """
        lam_star = self.saturation_load()
        zero = self.zero_load_latencies()
        threshold = knee_threshold_factor * zero
        out = np.empty(self.cells)
        for group in self.plan.groups:
            idx = group.indices
            thr = threshold[idx]

            def beyond(sub: np.ndarray, grid: np.ndarray) -> np.ndarray:
                latencies = self._group_latencies(group, sub, grid)
                return ~(np.isfinite(latencies) & (latencies < thr[sub][:, None]))

            lo, _ = _refine_rows(
                np.zeros(group.size),
                lam_star[idx] * (1.0 - 1e-9),
                beyond,
                rel_tol=1e-6,
            )
            out[idx] = lo
        return out

    def loads_at_budget(self, budgets: np.ndarray) -> np.ndarray:
        """Per-cell ``max_load_for_latency(...).achieved``; NaN budgets pass through.

        Mirrors :func:`repro.analysis.capacity.max_load_for_latency` with
        its default ``rel_tol=1e-4``: infeasible budgets (below the
        zero-load floor) achieve 0, budgets met at ``0.9999 λ*`` achieve
        that bound, the rest refine the budget crossing.
        """
        budgets = np.asarray(budgets, dtype=np.float64)
        require(budgets.shape == (self.cells,), "budgets must be one value per cell")
        has_budget = np.isfinite(budgets)
        require(
            bool(np.all(budgets[has_budget] > 0.0)),
            "latency_budget must be positive",
        )
        out = np.full(self.cells, np.nan)
        if not has_budget.any():
            return out
        lam_star = self.saturation_load()
        zero = self.zero_load_latencies()
        infeasible = has_budget & (budgets < zero)
        out[infeasible] = 0.0
        hi = lam_star * 0.9999
        hi_lat = self.evaluate_latencies(hi[:, None])[:, 0]
        met = has_budget & ~infeasible & np.isfinite(hi_lat) & (hi_lat <= budgets)
        out[met] = hi[met]
        search = has_budget & ~infeasible & ~met
        for group in self.plan.groups:
            idx = group.indices
            rows = np.flatnonzero(search[idx])
            if rows.size == 0:
                continue
            limits = budgets[idx]

            def beyond(sub: np.ndarray, grid: np.ndarray) -> np.ndarray:
                sub_rows = rows[sub]
                latencies = self._group_latencies(group, sub_rows, grid)
                return ~(
                    np.isfinite(latencies) & (latencies <= limits[sub_rows][:, None])
                )

            lo, _ = _refine_rows(
                np.zeros(rows.size), hi[idx][rows], beyond, rel_tol=1e-4
            )
            out[idx[rows]] = lo
        return out

    def auto_load_grids(
        self,
        *,
        points: int = 12,
        fraction_of_saturation: float = 0.95,
        include_zero: bool = False,
    ) -> np.ndarray:
        """Per-cell :func:`repro.core.sweep.auto_load_grid` rows, ``(cells, points)``."""
        require(points >= 2, "points must be >= 2")
        require(
            0.0 < fraction_of_saturation < 1.0, "fraction_of_saturation must be in (0, 1)"
        )
        lam_star = self.saturation_load()
        top = fraction_of_saturation * lam_star
        start = np.zeros(self.cells) if include_zero else top / points
        return _linspace_rows(start, top, points)
