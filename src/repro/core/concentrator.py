"""Concentrator/dispatcher queueing model (paper Eqs. 36–38).

The concentrator/dispatcher of a cluster bridges its ECN1 and the global
ICN2 with simple store-and-forward buffers.  Both the concentrate buffer
(into ICN2) and the dispatch buffer (out of ICN2) are modelled as M/G/1
queues with mean service ``M·t_cs^{I2}`` and the Eq. 36 variance
``(M t_cs^{I2} − M t_cs^{E1(i)})²`` that captures the bandwidth mismatch
between the two networks they interface.

These queues are the binding resource of the whole system: their
saturation load ``λ_g* = 2 / ((N_i U_i + N_j U_j) · M · t_cs^{I2})``
reproduces the x-axis ranges of the paper's Figs. 3–7 (DESIGN.md §3
item 7) and underlies the paper's "ICN2 is the bottleneck" conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inter import pair_rates
from repro.core.parameters import ClusterClass, MessageSpec, ModelOptions, NetworkCharacteristics
from repro.core.queueing import mg1_wait
from repro.core.service_times import ServiceTimes

__all__ = ["ConcentratorWait", "concentrator_pair_wait"]


@dataclass(frozen=True)
class ConcentratorWait:
    """Waiting-time contribution of the concentrator/dispatcher pair."""

    single_buffer_wait: float  # W_c^{(i,j)}  (Eq. 37)
    pair_wait: float  # 2 W_c^{(i,j)} — concentrate + dispatch (Eq. 38 summand)
    arrival_rate: float  # λ_I2^{(i,j)}
    utilization: float
    saturated: bool


def concentrator_pair_wait(
    source: ClusterClass,
    destination: ClusterClass,
    *,
    icn2: NetworkCharacteristics,
    generation_rate: float,
    message: MessageSpec,
    options: ModelOptions | None = None,
) -> ConcentratorWait:
    """Evaluate Eqs. 36–37 for one ordered cluster-class pair at λ_g."""
    options = options or ModelOptions()
    m_flits = message.length_flits
    st_i2 = ServiceTimes.for_network(icn2, message, options)
    st_e1 = ServiceTimes.for_network(source.ecn1, message, options)

    if options.concentrator_rate == "source_outgoing":
        lambda_i2 = generation_rate * source.nodes * source.u
    else:
        _, lambda_i2 = pair_rates(source, destination, generation_rate)
    service = m_flits * st_i2.t_cs
    if options.variance_approximation == "paper":
        variance = (service - m_flits * st_e1.t_cs) ** 2  # Eq. 36
    else:
        variance = service**2
    queue = mg1_wait(lambda_i2, service, variance)
    pair_wait = 2.0 * queue.wait if not queue.saturated else float("inf")
    return ConcentratorWait(
        single_buffer_wait=queue.wait,
        pair_wait=pair_wait,
        arrival_rate=lambda_i2,
        utilization=queue.utilization,
        saturated=queue.saturated,
    )
