"""Channel service-time primitives (paper Eqs. 11–12).

Two connection types exist in an m-port n-tree:

* node↔switch (``t_cn``) — the first and last hop of every journey,
* switch↔switch (``t_cs``) — every interior hop.

Both the analytical model and the simulators consume these primitives, so
the model-vs-simulation comparison is invariant to the OCR-ambiguous
``t_cn`` convention (DESIGN.md §3 item 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require, require_positive
from repro.core.parameters import MessageSpec, ModelOptions, NetworkCharacteristics

__all__ = ["node_channel_time", "switch_channel_time", "ServiceTimes"]


def node_channel_time(
    network: NetworkCharacteristics,
    flit_bytes: float,
    convention: str = "half_network_latency",
) -> float:
    """Per-flit service time of a node↔switch channel (paper Eq. 11).

    ``t_cn = 0.5 α_n + β_n d_m`` under the default convention (local links
    incur half the network latency; serialising the flit is never halved).
    ``"full_network_latency"`` uses ``α_n + β_n d_m`` instead.
    """
    require_positive(flit_bytes, "flit_bytes")
    require(
        convention in ("half_network_latency", "full_network_latency"),
        f"unknown t_cn convention {convention!r}",
    )
    alpha = network.network_latency
    if convention == "half_network_latency":
        alpha = 0.5 * alpha
    return alpha + network.beta * flit_bytes


def switch_channel_time(network: NetworkCharacteristics, flit_bytes: float) -> float:
    """Per-flit service time of a switch↔switch channel (paper Eq. 12).

    ``t_cs = α_s + β_n d_m``.
    """
    require_positive(flit_bytes, "flit_bytes")
    return network.switch_latency + network.beta * flit_bytes


@dataclass(frozen=True)
class ServiceTimes:
    """Bundled ``(t_cn, t_cs)`` of one network for one flit size.

    Provides the message-granularity values the queueing equations use
    (``M * t``) via :meth:`message_node_time` / :meth:`message_switch_time`.
    """

    t_cn: float
    t_cs: float

    @classmethod
    def for_network(
        cls,
        network: NetworkCharacteristics,
        message: MessageSpec,
        options: ModelOptions | None = None,
    ) -> "ServiceTimes":
        """Compute both channel times for *network* under *options*."""
        convention = (options or ModelOptions()).tcn_convention
        return cls(
            t_cn=node_channel_time(network, message.flit_bytes, convention),
            t_cs=switch_channel_time(network, message.flit_bytes),
        )

    def message_node_time(self, length_flits: int) -> float:
        """Whole-message transfer time over a node↔switch channel, ``M t_cn``."""
        return length_flits * self.t_cn

    def message_switch_time(self, length_flits: int) -> float:
        """Whole-message transfer time over a switch↔switch channel, ``M t_cs``."""
        return length_flits * self.t_cs
