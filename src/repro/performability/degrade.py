"""Map availability states to degraded systems the closed forms can price.

This is the glue of the hierarchical decomposition: every state of the
availability chain (:mod:`repro.performability.states`) becomes a concrete
:class:`~repro.core.parameters.SystemConfig` that the existing
:class:`~repro.core.BatchedModel` evaluates unchanged — no simulator, no
new model equations.

Degradation semantics (the documented approximations):

* **switch / link / ports** failures derate the *aggregate bandwidth* of
  the affected network: losing ``k`` of the ``S`` components at one tree
  level multiplies that network's bandwidth by ``(S - k) / S`` (for
  ``ports``, by ``1 - k * fraction``).  This treats a partially-failed
  level as a uniformly thinner level rather than re-deriving the journey
  distribution of an irregular tree — the standard capacity-oriented
  reading, and the one that keeps every state inside the paper's closed
  forms.  Factors from multiple modes hitting the same network compose
  multiplicatively.
* **node** failures leave the topology's shape alone (an m-port n-tree
  with holes is still routed as the full tree) and are instead accounted
  as *capacity weighting*: a state with ``k`` failed nodes serves load on
  ``N - k`` of ``N`` nodes, which the evaluation layer folds into the
  availability-weighted metrics.

Construction is validated *hard*, mirroring ``DesignGrid``'s invalid-cell
behaviour: a scenario whose tracked states would disconnect the fabric
(remove a level's last switch/link, or every compute node) fails at
spec-expansion time with a diagnostic naming the offending state — not
with NaNs three layers later.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import require
from repro.core.parameters import NetworkCharacteristics, SystemConfig
from repro.core.topology_math import num_nodes, switches_per_level
from repro.performability.spec import FailureMode, FailureScenario
from repro.performability.states import enumerate_states, state_label

__all__ = [
    "DegradedState",
    "expand_states",
    "mode_population",
    "resolve_populations",
]

#: Bandwidth factors at or below this are treated as a disconnected fabric.
_MIN_FACTOR = 1e-9


@dataclass(frozen=True)
class DegradedState:
    """One availability state resolved against a concrete system.

    state:
        failure multiplicities per mode (the chain's state tuple).
    label:
        human-readable name (:func:`~repro.performability.states.state_label`).
    system:
        the degraded :class:`~repro.core.parameters.SystemConfig` —
        bandwidth-derated networks, topology shape unchanged.
    active_nodes:
        compute nodes still serving load in this state (``N`` minus the
        state's node failures); the evaluation layer weights capacity by
        ``active_nodes / N``.
    """

    state: tuple[int, ...]
    label: str
    system: SystemConfig
    active_nodes: int


def _tree_depth_for(system: SystemConfig, mode: FailureMode) -> int:
    """Tree depth of the network a switch/link/ports mode targets."""
    if mode.role == "icn2":
        require(
            system.num_clusters > 1,
            f"failure mode {mode.label!r} targets the ICN2, but system "
            f"{system.name!r} has a single cluster (no ICN2 exists)",
        )
        return system.icn2_tree_depth
    cluster = mode.cluster
    assert cluster is not None  # enforced by FailureMode validation
    require(
        cluster < system.num_clusters,
        f"failure mode {mode.label!r} targets cluster {cluster}, but system "
        f"{system.name!r} has {system.num_clusters} cluster(s)",
    )
    return system.clusters[cluster].tree_depth


def _level_for(mode: FailureMode, depth: int) -> int:
    """Resolved tree level of a mode (``None`` means the top level)."""
    if mode.level is None:
        return depth
    require(
        mode.level <= depth,
        f"failure mode {mode.label!r} targets level {mode.level} of a "
        f"depth-{depth} tree",
    )
    return mode.level


def mode_population(system: SystemConfig, mode: FailureMode) -> int:
    """Number of components a mode draws failures from in *system*.

    ``node`` — the cluster's node count (or the whole system's when no
    cluster is named); ``switch`` — switches at the resolved level of the
    target tree; ``link`` — full-duplex links at that level (``N`` per
    adjacent level pair of an m-port n-tree); ``ports`` — the mode's own
    ``count`` (each unit degrades the level by ``fraction``).
    """
    if mode.kind == "node":
        if mode.cluster is None:
            population = system.total_nodes
        else:
            require(
                mode.cluster < system.num_clusters,
                f"failure mode {mode.label!r} targets cluster {mode.cluster}, "
                f"but system {system.name!r} has {system.num_clusters} cluster(s)",
            )
            population = system.cluster_sizes[mode.cluster]
    elif mode.kind == "ports":
        _level_for(mode, _tree_depth_for(system, mode))  # validate targeting
        population = mode.count
    else:
        depth = _tree_depth_for(system, mode)
        level = _level_for(mode, depth)
        if mode.kind == "switch":
            population = switches_per_level(system.switch_ports, depth)[level - 1]
        else:  # link
            population = num_nodes(system.switch_ports, depth)
    require(
        mode.count <= population,
        f"failure mode {mode.label!r} tracks up to {mode.count} simultaneous "
        f"failures but only {population} component(s) exist in system "
        f"{system.name!r}",
    )
    return population


def resolve_populations(
    system: SystemConfig, scenario: FailureScenario
) -> tuple[int, ...]:
    """Component populations per mode, in mode order (feeds the CTMC)."""
    return tuple(mode_population(system, mode) for mode in scenario.modes)


def _derate(
    net: NetworkCharacteristics, factor: float, what: str
) -> NetworkCharacteristics:
    """Multiply a network's bandwidth by *factor*; refuse a dead network."""
    require(
        factor > _MIN_FACTOR,
        f"would disconnect the fabric: {what} has no capacity left",
    )
    if factor == 1.0:
        return net
    return replace(net, bandwidth=net.bandwidth * factor)


def _degraded_system(
    system: SystemConfig, scenario: FailureScenario, state: tuple[int, ...]
) -> DegradedState:
    """Build the degraded system of one state (raises on a dead fabric)."""
    # Accumulate bandwidth factors per target network, then apply them in
    # one pass so several modes hitting the same network compose.
    icn2_factor = 1.0
    cluster_factors: dict[tuple[int, str], float] = {}
    node_losses = 0
    for mode, k in zip(scenario.modes, state):
        if k == 0:
            continue
        if mode.kind == "node":
            node_losses += k
            continue
        if mode.kind == "ports":
            fraction = mode.fraction
            assert fraction is not None  # enforced by FailureMode validation
            factor = 1.0 - k * fraction
        else:
            population = mode_population(system, mode)
            factor = (population - k) / population
        depth = _tree_depth_for(system, mode)
        level = _level_for(mode, depth)
        what = (
            f"{mode.role} level {level} after {k} {mode.kind} failure(s) "
            f"({mode.label!r})"
        )
        require(
            factor > _MIN_FACTOR,
            f"would disconnect the fabric: {what} has no capacity left",
        )
        if mode.role == "icn2":
            icn2_factor *= factor
        else:
            assert mode.cluster is not None and mode.role is not None
            key = (mode.cluster, mode.role)
            cluster_factors[key] = cluster_factors.get(key, 1.0) * factor

    active = system.total_nodes - node_losses
    require(
        active >= 1,
        f"removes all {system.total_nodes} compute nodes",
    )

    degraded = system
    if icn2_factor != 1.0:
        degraded = replace(
            degraded, icn2=_derate(system.icn2, icn2_factor, "the ICN2")
        )
    if cluster_factors:
        clusters = list(degraded.clusters)
        for (cluster, role), factor in sorted(cluster_factors.items()):
            spec = clusters[cluster]
            net = getattr(spec, role)
            clusters[cluster] = replace(
                spec,
                **{role: _derate(net, factor, f"cluster {cluster}'s {role}")},
            )
        degraded = replace(degraded, clusters=tuple(clusters))
    return DegradedState(
        state=state,
        label=state_label(scenario, state),
        system=degraded,
        active_nodes=active,
    )


def expand_states(
    system: SystemConfig, scenario: FailureScenario
) -> list[DegradedState]:
    """Resolve every tracked availability state to a degraded system.

    Order matches :func:`~repro.performability.states.enumerate_states`
    (pristine first).  Any state whose degraded system would be invalid —
    disconnected fabric, no compute nodes left, a mode targeting a level
    or cluster the system does not have — raises :class:`ValueError`
    naming the state, in the same shape as ``DesignGrid``'s invalid-cell
    diagnostic, so a bad failure spec dies at expansion time.
    """
    resolve_populations(system, scenario)  # validate all modes up front
    out = []
    for state in enumerate_states(scenario):
        try:
            out.append(_degraded_system(system, scenario, state))
        except ValueError as exc:
            label = state_label(scenario, state)
            raise ValueError(
                f"availability state {label!r} is invalid: {exc}"
            ) from exc
    return out
