"""Performability: availability-weighted performance of degraded systems.

The paper's closed forms assume a pristine m-port n-tree; production
clusters run degraded.  This subsystem composes a high-level availability
model with the existing low-level performance model (the hierarchical
decomposition of Kirsal & Ever and Thomasian's review):

* :mod:`~repro.performability.spec` — declarative, JSON-round-trippable
  failure scenarios (:class:`FailureMode`, :class:`FailureScenario`);
* :mod:`~repro.performability.states` — the birth–death/CTMC availability
  chain and its dense steady-state solve;
* :mod:`~repro.performability.degrade` — availability states resolved to
  degraded :class:`~repro.core.parameters.SystemConfig` values (hard
  boundary validation: a spec that would disconnect the fabric fails at
  expansion time);
* :mod:`~repro.performability.evaluate` — availability-weighted λ*_A,
  expected capacity under churn, weighted latency curves and the
  "which failure hurts most" ranking
  (:func:`performability_analysis`).

The whole pipeline runs on :class:`~repro.core.BatchedModel` closed
forms — no simulation — so even many-state studies cost milliseconds per
state, cache on disk, and fan out across the shared process pool.
"""

from repro.performability.degrade import (
    DegradedState,
    expand_states,
    mode_population,
    resolve_populations,
)
from repro.performability.evaluate import (
    PERFORMABILITY_STATE_SCHEMA,
    performability_analysis,
    state_cache_key,
)
from repro.performability.spec import (
    PERFORMABILITY_SCHEMA,
    FailureMode,
    FailureScenario,
)
from repro.performability.states import (
    enumerate_states,
    state_label,
    steady_state,
    two_state_availability,
)

__all__ = [
    "DegradedState",
    "FailureMode",
    "FailureScenario",
    "PERFORMABILITY_SCHEMA",
    "PERFORMABILITY_STATE_SCHEMA",
    "enumerate_states",
    "expand_states",
    "mode_population",
    "performability_analysis",
    "resolve_populations",
    "state_cache_key",
    "state_label",
    "steady_state",
    "two_state_availability",
]
