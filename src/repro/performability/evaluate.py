"""Availability-weighted performance: the performability answer surface.

The top of the hierarchical decomposition (Thomasian's framing): the CTMC
of :mod:`repro.performability.states` says how much steady-state time the
system spends in each degraded configuration, the closed forms of
:class:`~repro.core.BatchedModel` price each configuration, and this
module combines the two into the quantities a capacity planner actually
asks for:

``availability``
    steady-state probability of the pristine (no-failure) state.
``saturation_load_weighted`` (λ*_A)
    availability-adjusted per-node saturation load
    ``Σ_s π_s · λ*_s · (nodes_s / N)`` — the long-run per-node capacity a
    planner can bank on, strictly below the pristine λ* whenever failures
    have non-zero rates and exactly equal to it when all rates are zero.
``expected_capacity``
    expected whole-system message throughput capacity under churn,
    ``Σ_s π_s · nodes_s · λ*_s`` (messages per time-unit).
``curve``
    the availability-weighted latency curve over the scenario's load
    grid: at each load, the π-weighted mean latency over the states that
    can still serve it, plus the ``served_probability`` column (the π
    mass of those states) — the two together describe graceful
    degradation, a conditional mean avoids infecting low-load points
    with the saturation of deep-failure states.
``ranking``
    "which failure hurts most": every single-failure state scored by its
    capacity impact ``1 − (nodes_s · λ*_s) / (N · λ*_pristine)`` — the
    one-factor attribution style of ``analysis/frontier.axis_sensitivity``,
    independent of how likely the failure is, so zero-rate what-if modes
    rank too.

Per-state evaluations are pure functions of the degraded spec, so serial
runs price every distinct degraded system in one cross-cell stack
(:class:`repro.core.stacked.StackedModel`) while ``jobs``/fault-policy
runs fan out through the supervised runtime
(:func:`repro.exec.run_supervised`; bit-identical tables either way and
for any worker count), and memoise in a content-addressed
:class:`~repro.io.cache.ResultCache` keyed by the degraded spec, the load
grid and the engine version.  States that degrade to the *same* system
(e.g. node-loss states, which only change capacity weighting) share one
cache key and are evaluated once.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import require
from repro.analysis.tables import render_table
from repro.core.batch import ENGINE_VERSION, BatchedModel
from repro.core.stacked import StackedModel
from repro.exec import (
    ItemOutcome,
    RunJournal,
    RunPolicy,
    maybe_corrupt_cache,
    resolve_jobs,
    run_supervised,
)
from repro.experiments.experiment import ExperimentResult
from repro.io.cache import ResultCache, canonical_numbers, content_key
from repro.io.schemas import PERFORMABILITY_STATE_SCHEMA, RUN_JOURNAL_SCHEMA
from repro.performability.degrade import DegradedState, expand_states, resolve_populations
from repro.performability.spec import FailureScenario
from repro.performability.states import steady_state
from repro.scenarios.spec import ScenarioSpec

__all__ = ["PERFORMABILITY_STATE_SCHEMA", "performability_analysis", "state_cache_key"]

#: Metrics every cached per-state entry must carry to count as a hit.
_STATE_METRICS = ("saturation_load", "binding_resource", "zero_load_latency", "latencies")


def state_cache_key(degraded_spec: ScenarioSpec, loads: "tuple[float, ...]") -> str:
    """Content key of one degraded state's metrics in the on-disk cache.

    Mirrors :func:`repro.experiments.explore.cell_cache_key`: hash the
    serialised degraded spec minus its derived ``name``/``description``
    and its ``load_grid`` policy (the *materialised* loads are hashed
    instead, since the latency curve depends on them), plus the engine
    version.  Numeric leaves are canonicalised first, so states reached
    through differently-spelled specs share an entry — as do distinct
    availability states that degrade to the same system.
    """
    payload = degraded_spec.to_dict()
    payload.pop("name", None)
    payload.pop("description", None)
    payload.pop("load_grid", None)
    return content_key(
        {
            "schema": PERFORMABILITY_STATE_SCHEMA,
            "engine_version": ENGINE_VERSION,
            "loads": [float(v) for v in loads],
            "spec": canonical_numbers(payload),
        }
    )


def _error_state_metrics(n_loads: int) -> dict:
    """Placeholder metrics for a state that failed after all retries."""
    nan = float("nan")
    return {
        "saturation_load": nan,
        "binding_resource": "",
        "zero_load_latency": nan,
        "latencies": [nan] * n_loads,
    }


def _evaluate_state(payload: tuple) -> dict:
    """Worker for :func:`performability_analysis` (module-level: picklable)."""
    spec_dict, loads = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    engine = BatchedModel(spec.system, spec.message, spec.options, spec.pattern)
    latencies = engine.evaluate_many(
        np.asarray(loads, dtype=np.float64), with_results=False
    ).latencies
    return {
        "saturation_load": engine.saturation_load(),
        "binding_resource": engine.binding_resource(),
        "zero_load_latency": engine.zero_load_latency(),
        "latencies": [float(v) for v in latencies],
    }


def _stacked_state_metrics(
    specs: "list[ScenarioSpec]", loads: "list[float]"
) -> "list[dict] | None":
    """All pending degraded states priced in one stacked evaluation.

    Returns per-state metric mappings bit-identical to
    :func:`_evaluate_state` (the stacked engine's contract, locked by
    ``tests/test_stacked.py``), or ``None`` if the stack cannot evaluate
    this state set — the caller then falls back to the supervised
    per-state path, which also owns retry/NaN-row semantics.
    """
    try:
        stack = StackedModel.from_specs(specs)
        latencies = stack.evaluate_latencies(np.asarray(loads, dtype=np.float64))
        lam_star = stack.saturation_load()
        binding = stack.binding_resources()
        zero = stack.zero_load_latencies()
    except Exception:
        return None
    return [
        {
            "saturation_load": float(lam_star[k]),
            "binding_resource": binding[k],
            "zero_load_latency": float(zero[k]),
            "latencies": [float(v) for v in latencies[k]],
        }
        for k in range(len(specs))
    ]


def _weighted_curve(
    loads: "list[float]", probs: "list[float]", metrics: "list[dict]"
) -> dict:
    """Conditional availability-weighted latency curve (see module doc)."""
    latency: list[float] = []
    served: list[float] = []
    for j in range(len(loads)):
        num = 0.0
        den = 0.0
        for p, m in zip(probs, metrics):
            if p <= 0.0:
                continue
            value = m["latencies"][j]
            if math.isfinite(value):
                num += p * value
                den += p
        served.append(den)
        latency.append(num / den if den > 0.0 else float("inf"))
    return {"load": loads, "latency": latency, "served_probability": served}


def _ranking(
    scenario: FailureScenario,
    states: "list[DegradedState]",
    probs: "list[float]",
    metrics: "list[dict]",
    n_total: int,
    lam_pristine: float,
) -> list[dict]:
    """Single-failure states scored by capacity impact, worst first."""
    rows = []
    for st, p, m in zip(states, probs, metrics):
        if sum(st.state) != 1:
            continue
        mode = scenario.modes[st.state.index(1)]
        capacity = st.active_nodes * m["saturation_load"]
        impact = 1.0 - capacity / (n_total * lam_pristine)
        # A state whose evaluation failed (NaN metrics in a partial
        # result) cannot be ranked; keep the table well-ordered.
        if not math.isfinite(impact):
            continue
        rows.append(
            {
                "mode": mode.label,
                "state": st.label,
                "impact": impact,
                "saturation_load": m["saturation_load"],
                "active_nodes": st.active_nodes,
                "probability": p,
            }
        )
    rows.sort(key=lambda r: (-r["impact"], r["state"]))
    return rows


def performability_analysis(
    spec: ScenarioSpec,
    failures: FailureScenario,
    *,
    jobs: "int | str | None" = None,
    cache: "ResultCache | str | None" = None,
    policy: "RunPolicy | None" = None,
    resume: bool = False,
) -> ExperimentResult:
    """Availability-weighted performance of *spec* under *failures*.

    Expands the failure scenario's availability states against the spec's
    system (hard-validated — see
    :func:`~repro.performability.degrade.expand_states`), solves the CTMC
    for steady-state probabilities, evaluates every distinct degraded
    system through the batched closed forms, and aggregates the
    availability-weighted metrics described in the module docstring.

    ``jobs`` fans the uncached state evaluations across a process pool
    (``0``/"auto" = one worker per CPU); tables are bit-identical for any
    worker count.  ``cache`` (a directory path or
    :class:`~repro.io.cache.ResultCache`) memoises per-state metrics on
    disk, so a repeated run evaluates nothing.

    ``policy`` tunes retries/timeouts/pool respawn
    (:class:`~repro.exec.RunPolicy`).  States still failing after
    retries yield NaN metric rows and an ``errors`` section (the result
    is then *partial*: NaN propagates into the weighted aggregates, and
    unrankable states drop out of the failure ranking).  With a cache,
    completed states are journaled as they land; ``resume=True``
    requires that journal and replays its states from the cache,
    evaluating only the remainder.

    The result's ``data`` holds the per-state ``columns`` table (what CSV
    export writes), the weighted ``curve``, the failure ``ranking``, the
    summary scalars and ``evaluated``/``cached``/``resumed``/``jobs``
    counters plus ``errors``/``partial``; its ``spec`` is composite —
    ``{"scenario": ..., "failures": ...}`` — so a saved result reproduces
    the whole study.
    """
    require(isinstance(spec, ScenarioSpec), "spec must be a ScenarioSpec")
    require(isinstance(failures, FailureScenario), "failures must be a FailureScenario")

    states = expand_states(spec.system, failures)
    populations = resolve_populations(spec.system, failures)
    probs = steady_state(failures, populations)

    engine = BatchedModel(spec.system, spec.message, spec.options, spec.pattern)
    loads = [float(v) for v in spec.load_grid.grid(engine)]

    store = None
    if cache is not None:
        store = cache if isinstance(cache, ResultCache) else ResultCache(cache)

    spec_dicts = []
    keys = []
    for st in states:
        degraded = ScenarioSpec.from_dict(
            {**spec.to_dict(), "system": st.system.to_dict()}
        )
        spec_dicts.append(degraded.to_dict())
        keys.append(state_cache_key(degraded, tuple(loads)))

    # The run's identity is its full (deduplicated) state key list: the
    # same study resumes itself, any change starts a fresh journal.
    journal: "RunJournal | None" = None
    if store is not None:
        run_key = content_key(
            {"schema": RUN_JOURNAL_SCHEMA, "kind": "performability", "keys": keys}
        )
        journal = RunJournal.for_cache(store, run_key)
    if resume:
        require(store is not None, "resume requires a result cache (--cache)")
        assert journal is not None
        require(
            journal.exists(),
            f"resume requested but no run journal exists at {journal.path}",
        )
    journaled = journal.completed_keys() if journal is not None else set()

    metrics: list = [None] * len(states)
    n_cached = 0
    n_resumed = 0
    resumed_keys: set[str] = set()
    if store is not None:
        for idx, (key, entry) in enumerate(zip(keys, store.get_many(keys))):
            # A hit must carry the full metric set with a curve matching
            # the load grid; anything less is a miss to recompute.
            if (
                isinstance(entry, dict)
                and entry.get("schema") == PERFORMABILITY_STATE_SCHEMA
                and isinstance(entry.get("metrics"), dict)
                and all(name in entry["metrics"] for name in _STATE_METRICS)
                and isinstance(entry["metrics"]["latencies"], list)
                and len(entry["metrics"]["latencies"]) == len(loads)
            ):
                metrics[idx] = entry["metrics"]
                n_cached += 1
                if key in journaled and key not in resumed_keys:
                    resumed_keys.add(key)
                    n_resumed += 1

    # Distinct availability states can degrade to the same system (node
    # losses leave the topology alone); group pending states by cache key
    # and evaluate each distinct degraded system once.
    pending: dict[str, list[int]] = {}
    for idx, m in enumerate(metrics):
        if m is None:
            pending.setdefault(keys[idx], []).append(idx)
    unique = list(pending)
    n_jobs = min(resolve_jobs(jobs), len(unique))

    def _persist_state(slot: int, value: dict) -> None:
        # Runs in the supervising process as each state finalises, so a
        # kill at any instant leaves cache+journal describing exactly the
        # completed states (crash-safe resume).
        if store is None:
            return
        key = unique[slot]
        store.put(
            key,
            {
                "schema": PERFORMABILITY_STATE_SCHEMA,
                "engine_version": ENGINE_VERSION,
                "state": states[pending[key][0]].label,
                "metrics": value,
            },
        )
        maybe_corrupt_cache(store, key, slot)
        assert journal is not None
        journal.record(key, state=states[pending[key][0]].label)

    def _on_result(slot: int, outcome: ItemOutcome) -> None:
        if outcome.ok:
            _persist_state(slot, outcome.value)

    # Serial runs without fault-injection/resume machinery price every
    # distinct pending degraded system in ONE stacked evaluation
    # (bit-identical); the supervised pool keeps ``--jobs`` fan-out and
    # retry/NaN-row/resume semantics.
    errors: list[dict] = []
    stacked = False
    stacked_values = None
    if unique and jobs in (None, 1) and policy is None and not resume:
        stacked_values = _stacked_state_metrics(
            [ScenarioSpec.from_dict(spec_dicts[pending[key][0]]) for key in unique],
            loads,
        )
    if stacked_values is not None:
        stacked = True
        for slot, key in enumerate(unique):
            for idx in pending[key]:
                metrics[idx] = stacked_values[slot]
            _persist_state(slot, stacked_values[slot])
    else:
        outcomes = run_supervised(
            _evaluate_state,
            [(spec_dicts[pending[key][0]], tuple(loads)) for key in unique],
            jobs=n_jobs,
            policy=policy,
            on_result=_on_result,
        )
        for slot, outcome in enumerate(outcomes):
            key = unique[slot]
            if outcome.ok:
                for idx in pending[key]:
                    metrics[idx] = outcome.value
            else:
                for idx in pending[key]:
                    metrics[idx] = _error_state_metrics(len(loads))
                errors.append(
                    {
                        "state": states[pending[key][0]].label,
                        **outcome.error_record(),
                    }
                )

    n_total = spec.system.total_nodes
    lam_pristine = metrics[0]["saturation_load"]
    availability = probs[0]
    lam_weighted = 0.0
    expected_capacity = 0.0
    for st, p, m in zip(states, probs, metrics):
        if p <= 0.0:
            continue
        lam_weighted += p * m["saturation_load"] * (st.active_nodes / n_total)
        expected_capacity += p * st.active_nodes * m["saturation_load"]

    curve = _weighted_curve(loads, probs, metrics)
    ranking = _ranking(failures, states, probs, metrics, n_total, lam_pristine)

    columns: dict[str, list] = {
        "state": [st.label for st in states],
        "probability": list(probs),
        "active_nodes": [st.active_nodes for st in states],
        "saturation_load": [m["saturation_load"] for m in metrics],
        "zero_load_latency": [m["zero_load_latency"] for m in metrics],
        "binding_resource": [m["binding_resource"] for m in metrics],
    }
    records = [
        {
            "state": list(st.state),
            "label": st.label,
            "probability": p,
            "active_nodes": st.active_nodes,
            "metrics": m,
        }
        for st, p, m in zip(states, probs, metrics)
    ]
    data = {
        "columns": columns,
        "states": records,
        "populations": list(populations),
        "availability": availability,
        "saturation_load_pristine": lam_pristine,
        "saturation_load_weighted": lam_weighted,
        "expected_capacity": expected_capacity,
        "curve": curve,
        "ranking": ranking,
        "evaluated": len(unique),
        "cached": n_cached,
        "cache_hits": n_cached,
        "stacked": stacked,
        "resumed": n_resumed,
        "jobs": n_jobs,
        "cache_root": str(store.root) if store is not None else None,
        "errors": errors,
        "partial": bool(errors),
    }

    state_rows = [
        [st.label, f"{p:.6f}", st.active_nodes, f"{m['saturation_load']:.4e}", m["binding_resource"]]
        for st, p, m in zip(states, probs, metrics)
    ]
    text = render_table(
        ["state", "π", "nodes", "λ*_s", "binding"],
        state_rows,
        title=(
            f"performability of {spec.name!r}: {len(states)} availability "
            f"state(s), {len(failures.modes)} failure mode(s)"
        ),
    )
    if ranking:
        ranking_rows = [
            [r["mode"], r["state"], f"{r['impact']:.6f}", f"{r['saturation_load']:.4e}"]
            for r in ranking
        ]
        text += "\n\n" + render_table(
            ["failure", "state", "capacity impact", "λ*_s"],
            ranking_rows,
            title="which failure hurts most (single-failure states, worst first)",
        )
    text += (
        f"\n\navailability (pristine state) = {availability:.6f}\n"
        f"λ* pristine                    = {lam_pristine:.4e}\n"
        f"λ*_A availability-weighted     = {lam_weighted:.4e}\n"
        f"expected capacity under churn  = {expected_capacity:.4e} messages/time-unit"
    )
    text += (
        f"\nevaluated {len(unique)} of {len(states)} states "
        f"({n_cached} from cache, jobs={n_jobs})"
    )
    if resume:
        text += f"\nresumed {n_resumed} state(s) from the run journal"
    if errors:
        text += (
            f"\nPARTIAL: {len(errors)} distinct state(s) failed after retries"
        )
    return ExperimentResult(
        kind="performability",
        scenario=spec.name,
        spec={"scenario": spec.to_dict(), "failures": failures.to_dict()},
        data=data,
        text=text,
    )
