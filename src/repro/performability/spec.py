"""Declarative failure/repair scenarios (the performability input layer).

Production clusters run degraded: nodes, switches and links fail with some
rate and are repaired with another.  This module is the declarative
vocabulary for such churn:

* :class:`FailureMode` — one class of component failures (compute-node
  loss, switch loss at a tree level, link loss at a tree level, or a
  per-level port degradation) with exponential failure/repair rates and a
  truncation knob (``count`` — the maximum number of simultaneous failures
  of this mode the availability chain tracks);
* :class:`FailureScenario` — a bundle of modes plus an optional global
  concurrency truncation, JSON-round-trippable exactly like
  :class:`~repro.scenarios.ScenarioSpec` (``scenario ==
  FailureScenario.from_dict(scenario.to_dict())``), so a whole failure
  study is one config file (the CLI's ``performability --failures``).

A mode is *structural* here — which components of which network it
removes.  Resolving it against a concrete system (component populations,
boundary validation, the degraded :class:`~repro.core.parameters.
SystemConfig` per availability state) happens in
:mod:`repro.performability.degrade`; the CTMC arithmetic lives in
:mod:`repro.performability.states`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro._util import reject_unknown_keys, require, require_int
from repro.io.results import from_jsonable, load_json, save_json, to_jsonable
from repro.io.schemas import PERFORMABILITY_SCHEMA

__all__ = ["FailureMode", "FailureScenario", "PERFORMABILITY_SCHEMA"]

#: Component classes a mode may remove.
_KINDS = ("node", "switch", "link", "ports")

#: Network roles a switch/link/ports mode may target.
_ROLES = ("icn1", "ecn1", "icn2")


def _require_rate(value: Any, name: str) -> None:
    """Rates are finite and non-negative (0 = the mode never fires)."""
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value == value and float("-inf") < value < float("inf") and value >= 0,
        f"{name} must be a finite non-negative number, got {value!r}",
    )


@dataclass(frozen=True)
class FailureMode:
    """One class of component failures with exponential failure/repair.

    kind:
        ``"node"`` — compute-node loss (the topology keeps its shape; the
        failed nodes stop counting toward deliverable capacity);
        ``"switch"`` — switch loss at one level of a tree (derates that
        level's aggregate capacity by the failed fraction);
        ``"link"`` — full-duplex link loss at one level of a tree (same
        derating mechanism, milder per unit — levels have more links than
        switches);
        ``"ports"`` — per-level port degradation: each failed unit removes
        a declared *fraction* of a level's ports.
    role:
        which network a ``switch``/``link``/``ports`` mode targets
        (``"icn1"``/``"ecn1"``/``"icn2"``); must be ``None`` for ``node``.
    cluster:
        cluster index for ``node`` (optional — ``None`` spreads the losses
        over the whole system) and for ``icn1``/``ecn1`` roles (required:
        a physical switch/link lives in exactly one cluster); must be
        ``None`` for ``icn2``.
    level:
        tree level of a ``switch``/``link``/``ports`` mode (1..n, the root
        level is ``n``); ``None`` defaults to the top level — the fewest
        components, hence the biggest per-failure impact.
    count:
        maximum simultaneous failures of this mode the availability chain
        tracks (the per-mode truncation knob, >= 1).
    failure_rate:
        per-component exponential failure rate (1/MTBF per component);
        0 keeps the mode in the state space with probability 0 — useful
        for pure "what would this failure cost" rankings.
    repair_rate:
        per-failed-component exponential repair rate (1/MTTR); must be
        positive whenever ``failure_rate`` is.
    fraction:
        ``ports`` only — fraction of the level's ports one failed unit
        removes (in (0, 1)).
    name:
        label used in state names and tables; defaults to a derived
        ``kind``/``role`` label (:attr:`label`).
    """

    kind: str
    failure_rate: float
    repair_rate: float
    role: str | None = None
    cluster: int | None = None
    level: int | None = None
    count: int = 1
    fraction: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        require(self.kind in _KINDS, f"failure kind must be one of {_KINDS}, got {self.kind!r}")
        _require_rate(self.failure_rate, "failure_rate")
        _require_rate(self.repair_rate, "repair_rate")
        require(
            self.failure_rate == 0 or self.repair_rate > 0,
            f"repair_rate must be positive when failure_rate > 0 "
            f"(got failure_rate={self.failure_rate!r}, repair_rate={self.repair_rate!r})",
        )
        require_int(self.count, "count", minimum=1)
        if self.kind == "node":
            require(self.role is None, f"node failures take no network role, got {self.role!r}")
            require(self.level is None, f"node failures take no tree level, got {self.level!r}")
        else:
            require(
                self.role in _ROLES,
                f"{self.kind} failures need a network role in {_ROLES}, got {self.role!r}",
            )
            if self.role == "icn2":
                require(
                    self.cluster is None,
                    f"icn2 failures are system-wide; cluster must be None, got {self.cluster!r}",
                )
            else:
                require(
                    self.cluster is not None,
                    f"{self.role} failures need a cluster index (a physical "
                    f"{self.kind} lives in exactly one cluster)",
                )
            if self.level is not None:
                require_int(self.level, "level", minimum=1)
        if self.cluster is not None:
            require_int(self.cluster, "cluster", minimum=0)
        if self.kind == "ports":
            require(
                isinstance(self.fraction, (int, float)) and not isinstance(self.fraction, bool)
                and 0.0 < self.fraction < 1.0,
                f"ports failures need a fraction in (0, 1), got {self.fraction!r}",
            )
        else:
            require(
                self.fraction is None,
                f"fraction only applies to ports failures, got {self.fraction!r}",
            )
        require(isinstance(self.name, str), "name must be a string")

    @property
    def label(self) -> str:
        """Display name: the explicit ``name`` or a derived structural label."""
        if self.name:
            return self.name
        parts = [self.role] if self.role is not None else []
        parts.append(self.kind)
        if self.cluster is not None:
            parts.append(f"c{self.cluster}")
        if self.level is not None:
            parts.append(f"L{self.level}")
        return "-".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly.

        ``None``-valued optionals are omitted so configs stay minimal.
        """
        out: dict = {
            "kind": self.kind,
            "failure_rate": self.failure_rate,
            "repair_rate": self.repair_rate,
            "count": self.count,
        }
        for key in ("role", "cluster", "level", "fraction"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FailureMode":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(
            data,
            ("kind", "failure_rate", "repair_rate", "count", "role", "cluster", "level", "fraction", "name"),
            "failure mode",
            required=("kind", "failure_rate", "repair_rate"),
        )
        return cls(
            kind=data["kind"],
            failure_rate=data["failure_rate"],
            repair_rate=data["repair_rate"],
            count=data.get("count", 1),
            role=data.get("role"),
            cluster=data.get("cluster"),
            level=data.get("level"),
            fraction=data.get("fraction"),
            name=data.get("name", ""),
        )


@dataclass(frozen=True)
class FailureScenario:
    """A set of failure modes plus the global concurrency truncation.

    modes:
        the failure modes, in declaration order (state tuples index them
        in this order; labels must be unique).
    max_concurrent:
        global truncation knob — states with more than this many total
        simultaneous failures are cut from the availability chain;
        ``None`` keeps the full per-mode product space.
    name:
        optional label for reports.
    """

    modes: tuple[FailureMode, ...] = field(default_factory=tuple)
    max_concurrent: int | None = None
    name: str = ""

    def __post_init__(self) -> None:
        require(isinstance(self.modes, tuple), "modes must be a tuple of FailureMode")
        require(len(self.modes) >= 1, "a failure scenario needs at least one mode")
        for mode in self.modes:
            require(
                isinstance(mode, FailureMode),
                f"modes must contain FailureMode, got {type(mode).__name__}",
            )
        labels = [mode.label for mode in self.modes]
        require(
            len(set(labels)) == len(labels),
            f"failure mode labels must be unique, got {labels} "
            "(set explicit names on modes sharing a structural label)",
        )
        if self.max_concurrent is not None:
            require_int(self.max_concurrent, "max_concurrent", minimum=1)
        require(isinstance(self.name, str), "name must be a string")

    @property
    def labels(self) -> tuple[str, ...]:
        """Mode labels, in mode order."""
        return tuple(mode.label for mode in self.modes)

    def with_rates_zeroed(self) -> "FailureScenario":
        """Copy with every failure rate set to 0 (the pristine-limit check)."""
        return replace(
            self, modes=tuple(replace(m, failure_rate=0.0) for m in self.modes)
        )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        out: dict = {
            "schema": PERFORMABILITY_SCHEMA,
            "modes": [mode.to_dict() for mode in self.modes],
        }
        if self.max_concurrent is not None:
            out["max_concurrent"] = self.max_concurrent
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FailureScenario":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(
            data, ("schema", "modes", "max_concurrent", "name"), "failure scenario",
            required=("modes",),
        )
        schema = data.get("schema", PERFORMABILITY_SCHEMA)
        require(
            schema == PERFORMABILITY_SCHEMA,
            f"unsupported failure-scenario schema {schema!r} "
            f"(this build reads {PERFORMABILITY_SCHEMA!r})",
        )
        modes = data["modes"]
        require(isinstance(modes, (list, tuple)), "failure scenario 'modes' must be a list")
        return cls(
            modes=tuple(FailureMode.from_dict(m) for m in modes),
            max_concurrent=data.get("max_concurrent"),
            name=data.get("name", ""),
        )

    def to_json(self) -> str:
        """Pretty JSON text of the scenario (non-finite floats tagged)."""
        return json.dumps(to_jsonable(self.to_dict()), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FailureScenario":
        """Inverse of :meth:`to_json` (restores tagged non-finite floats)."""
        return cls.from_dict(from_jsonable(json.loads(text)))

    def save(self, path: "str | Path") -> Path:
        """Write the scenario as a JSON file."""
        return save_json(path, self.to_dict())

    @classmethod
    def load(cls, path: "str | Path") -> "FailureScenario":
        """Read a scenario from a JSON file written by :meth:`save`."""
        return cls.from_dict(load_json(path))
