"""Birth–death/CTMC availability model over a failure scenario.

The availability layer of the hierarchical decomposition: a continuous-time
Markov chain whose state counts the simultaneous failures of each
:class:`~repro.performability.FailureMode`.  With per-component exponential
failure rates and independent per-component repair (machine-repairman
style), the chain is a multi-dimensional birth–death process:

* birth (one more failure of mode *i*): rate ``(population_i - k_i) * failure_rate_i``;
* death (one repair of mode *i*): rate ``k_i * repair_rate_i``.

The state space is the product of ``0..count_i`` per mode, truncated by the
scenario's ``max_concurrent`` knob, so a study over a 544-node system never
enumerates 2^544 states — only the handful of failure multiplicities that
carry non-negligible probability.  Steady-state probabilities come from a
dense linear solve of ``pi @ Q = 0`` with the normalisation ``sum(pi) = 1``
(the state spaces here are tens of states, far below dense-solver limits).

Modes with ``failure_rate == 0`` are kept in the state space (so the
"which failure hurts most" ranking can price them) but receive *exact*
probability 0 — the solve runs on the reachable subspace only, which also
makes the all-rates-zero limit return the pristine state with probability
exactly 1.0 rather than 1-within-roundoff.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro._util import require, require_int
from repro.performability.spec import FailureScenario

__all__ = [
    "enumerate_states",
    "state_label",
    "steady_state",
    "two_state_availability",
]

#: Tiny negative steady-state entries from the dense solve are clipped to 0;
#: anything more negative than this indicates a genuinely broken chain.
_NEGATIVE_TOLERANCE = 1e-9


def two_state_availability(mtbf: float, mttr: float) -> float:
    """Closed-form steady-state availability of a single repairable unit.

    The textbook two-state chain (up/down, failure rate ``1/mtbf``, repair
    rate ``1/mttr``) has availability ``MTBF / (MTBF + MTTR)``.  Exposed as
    the independent cross-check for :func:`steady_state`.
    """
    require(
        isinstance(mtbf, (int, float)) and not isinstance(mtbf, bool) and mtbf > 0,
        f"mtbf must be a positive number, got {mtbf!r}",
    )
    require(
        isinstance(mttr, (int, float)) and not isinstance(mttr, bool) and mttr > 0,
        f"mttr must be a positive number, got {mttr!r}",
    )
    return mtbf / (mtbf + mttr)


def enumerate_states(scenario: FailureScenario) -> list[tuple[int, ...]]:
    """All tracked failure-multiplicity states, pristine first.

    Each state is a tuple ``(k_0, ..., k_{M-1})`` giving the number of
    simultaneous failures per mode (mode order = declaration order), with
    ``k_i <= count_i`` and ``sum(k) <= max_concurrent``.  Enumeration is
    lexicographic ascending, so index 0 is always the pristine state
    ``(0, ..., 0)`` and the order is deterministic for caching and tables.
    """
    ranges = [range(mode.count + 1) for mode in scenario.modes]
    cap = scenario.max_concurrent
    return [
        state
        for state in itertools.product(*ranges)
        if cap is None or sum(state) <= cap
    ]


def state_label(scenario: FailureScenario, state: tuple[int, ...]) -> str:
    """Human-readable name of a state (``"pristine"`` for all-zero).

    Non-zero multiplicities are rendered as ``label=k`` joined with ``+``,
    e.g. ``"icn2-switch-L3=1+node=2"`` — the same names the degraded-state
    validator and the ranking table use.
    """
    require(
        len(state) == len(scenario.modes),
        f"state has {len(state)} entries for {len(scenario.modes)} mode(s)",
    )
    parts = [
        f"{mode.label}={k}" for mode, k in zip(scenario.modes, state) if k > 0
    ]
    return "+".join(parts) if parts else "pristine"


def _reachable(state: tuple[int, ...], rates: tuple[float, ...]) -> bool:
    """A state is reachable iff no zero-rate mode shows a failure."""
    return all(k == 0 or rate > 0 for k, rate in zip(state, rates))


def steady_state(
    scenario: FailureScenario, populations: "tuple[int, ...] | list[int]"
) -> list[float]:
    """Steady-state probability of every state of :func:`enumerate_states`.

    populations:
        number of components each mode draws from (one entry per mode, in
        mode order) — e.g. 544 for system-wide node failures, or 4 for
        top-level ICN2 switches.  Birth rates scale with the number of
        still-healthy components, ``(population_i - k_i) * failure_rate_i``.

    Returns probabilities aligned with :func:`enumerate_states` order; they
    sum to 1 (after clipping roundoff negatives).  Unreachable states —
    any failures of a zero-rate mode — get exactly 0.0.
    """
    modes = scenario.modes
    require(
        len(populations) == len(modes),
        f"need one population per mode: got {len(populations)} "
        f"for {len(modes)} mode(s)",
    )
    for mode, population in zip(modes, populations):
        require_int(population, f"population of mode {mode.label!r}", minimum=1)
        require(
            mode.count <= population,
            f"mode {mode.label!r} tracks up to {mode.count} failures but only "
            f"{population} component(s) exist",
        )

    states = enumerate_states(scenario)
    rates = tuple(mode.failure_rate for mode in modes)
    live = [i for i, state in enumerate(states) if _reachable(state, rates)]

    probs = [0.0] * len(states)
    if len(live) == 1:
        # Only the pristine state is reachable (all rates zero): exact 1.0,
        # no solver roundoff in the "no failures" limit.
        probs[live[0]] = 1.0
        return probs

    index = {states[i]: row for row, i in enumerate(live)}
    n = len(live)
    generator = np.zeros((n, n), dtype=float)
    cap = scenario.max_concurrent
    for state, row in index.items():
        total = sum(state)
        for m, mode in enumerate(modes):
            k = state[m]
            if (
                k < mode.count
                and (cap is None or total < cap)
                and populations[m] - k > 0
                and mode.failure_rate > 0
            ):
                up = state[:m] + (k + 1,) + state[m + 1 :]
                generator[row, index[up]] += (populations[m] - k) * mode.failure_rate
            if k > 0:
                down = state[:m] + (k - 1,) + state[m + 1 :]
                generator[row, index[down]] += k * mode.repair_rate
        generator[row, row] = -generator[row].sum()

    # pi @ Q = 0 with sum(pi) = 1: transpose, overwrite one balance
    # equation (they are linearly dependent) with the normalisation row.
    system = generator.T.copy()
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    solution = np.linalg.solve(system, rhs)

    require(
        bool(solution.min() >= -_NEGATIVE_TOLERANCE),
        f"availability chain solve produced probability {solution.min():g} < 0; "
        "the scenario's generator matrix is ill-conditioned",
    )
    clipped = np.clip(solution, 0.0, None)
    clipped /= clipped.sum()
    for i, value in zip(live, clipped):
        probs[i] = float(value)
    return probs
