"""Small internal helpers shared across :mod:`repro`.

Nothing in this module is part of the public API.
"""

from __future__ import annotations

import math
import numbers
from collections.abc import Iterable, Sequence


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds.

    Used for configuration validation so that every public constructor fails
    fast with an actionable message instead of producing NaNs downstream.
    """
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Validate that *value* is a finite, strictly positive number."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")


def require_nonnegative(value: float, name: str) -> None:
    """Validate that *value* is a finite, non-negative number."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value >= 0):
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")


def require_int(value: int, name: str, *, minimum: int | None = None) -> None:
    """Validate that *value* is an integer (optionally ``>= minimum``).

    Accepts any :class:`numbers.Integral` — in particular NumPy integer
    scalars such as ``np.int64`` produced by grid/array indexing — while
    still rejecting ``bool`` (and ``np.bool_``, which is not ``Integral``),
    since ``True`` silently behaving as 1 hides configuration mistakes.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


def reject_unknown_keys(
    data: dict, allowed: "Iterable[str]", what: str, *, required: "Iterable[str]" = ()
) -> None:
    """Fail fast on typo'd or missing mapping keys instead of a bare KeyError.

    Shared by every ``from_dict`` deserialiser so the error surface stays
    uniform: *data* must be a mapping whose keys are a subset of *allowed*
    and a superset of *required* — a hand-edited config with a missing
    field then reports the section name, not a cryptic ``KeyError: 'x'``.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{what} must be a mapping, got {type(data).__name__}")
    allowed = tuple(allowed)
    # Deserialisers call this on every nested section of every spec, so the
    # happy path stays allocation-free; sets/sorting only build error text.
    if any(key not in allowed for key in data):
        unknown = sorted(set(data) - set(allowed))
        raise ValueError(f"unknown {what} key(s) {unknown}; allowed: {sorted(allowed)}")
    if any(key not in data for key in required):
        missing = sorted(set(required) - set(data))
        raise ValueError(f"{what} missing required key(s) {missing}")


def is_power_of(value: int, base: int) -> bool:
    """Return True if ``value == base**k`` for some integer ``k >= 0``."""
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


def integer_log(value: int, base: int) -> int:
    """Return ``k`` such that ``base**k == value`` or raise ValueError."""
    k = 0
    v = value
    while v > 1 and v % base == 0:
        v //= base
        k += 1
    if v != 1:
        raise ValueError(f"{value} is not an integer power of {base}")
    return k


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Weighted arithmetic mean; weights need not be normalised."""
    total = 0.0
    wsum = 0.0
    for v, w in zip(values, weights, strict=True):
        total += v * w
        wsum += w
    if wsum == 0.0:
        raise ValueError("weights sum to zero")
    return total / wsum


def cumulative_suffix_sums(values: Sequence[float]) -> list[float]:
    """Return ``s`` with ``s[k] = sum(values[k:])`` (length ``len(values)+1``).

    ``s[len(values)]`` is 0 so callers can index one-past-the-end safely.
    """
    out = [0.0] * (len(values) + 1)
    for k in range(len(values) - 1, -1, -1):
        out[k] = out[k + 1] + values[k]
    return out


def format_float(value: float, digits: int = 4) -> str:
    """Compact fixed/scientific formatting used by the ASCII reporters."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 1e-3 <= magnitude < 1e6:
        return f"{value:.{digits}g}"
    return f"{value:.{digits - 1}e}"
