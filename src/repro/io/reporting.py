"""Figure/table reporting in the paper's vocabulary.

Formats validation curves and what-if studies as the text series the
benchmark harness prints (one block per paper figure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.tables import render_series, render_table

if TYPE_CHECKING:  # avoid a runtime cycle: validation.report uses this module
    from repro.validation.compare import ValidationCurve

__all__ = ["format_validation_curve", "format_whatif_study", "format_table1", "format_table2"]


def format_validation_curve(curve: "ValidationCurve", *, figure: str = "") -> str:
    """One paper-figure block: load, model, sim, relative error."""
    rows = curve.as_rows()
    title = f"{figure} {curve.label}".strip()
    return render_series(
        title,
        "lambda_g",
        [r[0] for r in rows],
        {
            "model": [r[1] for r in rows],
            "simulation": [r[2] for r in rows],
            "rel_err": [r[3] for r in rows],
        },
    )


def format_whatif_study(study) -> str:
    """Fig. 7-style block: one latency column per system variant."""
    columns = {}
    loads = None
    for curve in study.curves:
        loads = curve.loads if loads is None else loads
        columns[curve.label] = list(curve.latencies)
    return render_series(study.title, "lambda_g", list(loads), columns)


def format_table1(rows: list[dict]) -> str:
    """Paper Table 1 (system organisations)."""
    return render_table(
        ["N", "C", "m", "Node Organizations"],
        [[r["N"], r["C"], r["m"], r["organization"]] for r in rows],
        title="Table 1. System Organizations for Model Validation",
    )


def format_table2(networks) -> str:
    """Paper Table 2 (network characteristics)."""
    return render_table(
        ["Network", "Bandwidth", "Network Latency", "Switch Latency"],
        [[n.name, n.bandwidth, n.network_latency, n.switch_latency] for n in networks],
        title="Table 2. Network Characteristics for Model Validation",
    )
