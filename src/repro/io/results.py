"""Persistence of model/simulation/validation results (JSON and CSV).

Everything serialises to plain dicts first (:func:`to_jsonable`), so saved
artifacts are tool-agnostic; loaders return dictionaries rather than
reconstructing live objects, keeping the on-disk format decoupled from the
class layout.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro._util import require

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_json",
    "load_json",
    "save_curve_csv",
    "load_curve_csv",
]


def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/arrays/scalars to JSON-safe objects."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        # Before np.floating/np.integer: np.bool_ is neither, and without
        # this case it would fall through to str() and round-trip as the
        # (always truthy) string "True"/"False".
        return bool(value)
    if isinstance(value, (np.floating, np.integer)):
        return to_jsonable(value.item())  # re-dispatch so non-finite floats get tagged
    if isinstance(value, float) and not np.isfinite(value):
        return {"__float__": "inf" if value > 0 else ("-inf" if value < 0 else "nan")}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None or isinstance(value, float):
        return value
    return str(value)


def _restore_floats(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {"__float__"}:
            return {"inf": float("inf"), "-inf": float("-inf"), "nan": float("nan")}[value["__float__"]]
        return {k: _restore_floats(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore_floats(v) for v in value]
    return value


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable`'s float tagging.

    Restores ``{"__float__": ...}`` markers to ``inf``/``-inf``/``nan``
    anywhere in a decoded JSON tree — use this when JSON text arrives from
    somewhere other than :func:`load_json` (e.g. a config piped on stdin).
    """
    return _restore_floats(value)


def save_json(path: str | Path, payload: Any) -> Path:
    """Serialise *payload* (any dataclass/dict tree) to pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(payload), indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON artifact saved by :func:`save_json` (restores inf/nan)."""
    return _restore_floats(json.loads(Path(path).read_text()))


def _format_csv_cell(value: Any) -> str:
    """One CSV cell: bools and strings natively, everything else as a float.

    Floats go through ``repr`` so they round-trip bit-for-bit; bools use
    their Python repr (``True``/``False``) and strings are written verbatim.
    """
    if isinstance(value, (bool, np.bool_)):
        return repr(bool(value))
    if isinstance(value, str):
        return value
    return repr(float(value))


def _parse_csv_cell(text: str) -> "float | bool | str":
    """Inverse of :func:`_format_csv_cell` for one cell.

    A string cell whose text happens to parse as a float (or as
    ``True``/``False``) comes back as that value — column producers that
    need verbatim strings should avoid purely numeric labels.
    """
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return float(text)
    except ValueError:
        return text


def save_curve_csv(path: str | Path, columns: dict[str, "list | np.ndarray"]) -> Path:
    """Write named columns of equal length as CSV.

    Cells may be numbers, booleans (e.g. a ``saturated``/``feasible``
    column) or strings (labels); :func:`load_curve_csv` round-trips all
    three.
    """
    require(len(columns) > 0, "at least one column required")
    lengths = {len(v) for v in columns.values()}
    require(len(lengths) == 1, "all columns must have equal length")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns.keys())
        for row in zip(*columns.values()):
            writer.writerow([_format_csv_cell(v) for v in row])
    return path


def load_curve_csv(path: str | Path) -> dict[str, list]:
    """Load a CSV written by :func:`save_curve_csv`.

    Each cell is restored to its native type: ``True``/``False`` to bools,
    numeric text to floats, anything else to the verbatim string.
    """
    with Path(path).open() as fh:
        reader = csv.reader(fh)
        header = next(reader)
        columns: dict[str, list] = {h: [] for h in header}
        for row in reader:
            for h, v in zip(header, row):
                columns[h].append(_parse_csv_cell(v))
    return columns
