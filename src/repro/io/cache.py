"""Content-addressed on-disk result cache.

Design-space exploration re-runs the same grid with more values per axis,
more axes, or a different worker count; the expensive part — one
load-independent model decomposition plus the closed-form saturation
inversion per cell — is a pure function of the cell's spec.  This module
memoises such results on disk:

* :func:`content_key` — SHA-256 over the canonical JSON of an arbitrary
  payload tree (``sort_keys`` + the library's non-finite float tagging),
  so a key is stable across processes, worker counts and dict ordering;
* :class:`ResultCache` — a two-level directory of ``<key>.json`` files
  under one root, with atomic durable writes (temp file + ``fsync`` +
  ``os.replace``) so neither a concurrent reader nor a post-crash resume
  ever sees a torn entry; temp files orphaned by killed writers are
  swept when the cache is opened.

Callers build keys from *all* numeric inputs — for exploration cells that
is the serialised spec (minus its derived ``name``/``description``), the
metric parameters and :data:`repro.core.batch.ENGINE_VERSION` — so a cache
hit is bit-identical to a fresh evaluation by construction, and bumping
the engine version orphans (rather than corrupts) old entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path

from repro._util import require
from repro.io.results import load_json, to_jsonable

__all__ = ["ResultCache", "canonical_numbers", "content_key"]


def canonical_numbers(value):
    """Replace non-bool ints with equal floats throughout a payload tree.

    Spec values arrive as ``500`` from CLI coercion but ``500.0`` from the
    Python API or a config file; both build the identical model/simulation
    (the math is float throughout), so a cache key must not distinguish
    them.  Spec ints are small (ports, depths, flit counts) — far below
    float64's integer-exact range — so the conversion never collides two
    values.
    """
    if isinstance(value, dict):
        return {k: canonical_numbers(v) for k, v in value.items()}
    if isinstance(value, list):
        return [canonical_numbers(v) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return float(value)
    return value


def content_key(payload) -> str:
    """SHA-256 hex digest of *payload*'s canonical JSON form.

    The payload goes through :func:`~repro.io.results.to_jsonable` first,
    so dataclasses, numpy scalars and non-finite floats hash the same way
    they serialise — two payloads share a key iff they would save as the
    same JSON document.
    """
    canonical = json.dumps(
        to_jsonable(payload), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON results.

    Entries are stored as ``<root>/<key[:2]>/<key>.json`` (the two-char
    fan-out keeps directory listings manageable for large studies).  The
    cache is append-only from the library's point of view; deleting the
    root directory is the supported way to clear it.
    """

    #: Temp-file names embed the writing pid: ``.<key>.json.<pid>.tmp``.
    _TMP_SUFFIX = re.compile(r"\.(?P<pid>\d+)\.tmp$")

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self._sweep_stale_tmp()

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        except OSError:
            return True
        return True

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files abandoned by dead writer processes.

        A writer killed between creating its temp file and the atomic
        ``os.replace`` leaves ``.<name>.<pid>.tmp`` behind.  Opening the
        cache sweeps any whose pid no longer exists; temp files of live
        concurrent writers are left alone.
        """
        if not self.root.is_dir():
            return
        for tmp in self.root.glob("??/.*.tmp"):
            match = self._TMP_SUFFIX.search(tmp.name)
            if match is None or self._pid_alive(int(match.group("pid"))):
                continue
            try:
                tmp.unlink()
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        require(
            isinstance(key, str) and len(key) >= 8 and all(c in "0123456789abcdef" for c in key),
            f"cache key must be a hex digest, got {key!r}",
        )
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str):
        """The payload stored under *key*, or ``None`` on a miss.

        An unreadable or corrupt entry counts as a miss — exploration then
        recomputes and overwrites it — rather than poisoning the run.
        Corruption surfaces as ``OSError`` (unreadable), ``ValueError``
        (bad JSON / bad encoding — ``JSONDecodeError`` and
        ``UnicodeDecodeError`` both subclass it) or ``KeyError``
        (a malformed non-finite-float tag in ``load_json``'s restore).
        """
        path = self._path(key)
        try:
            return load_json(path)
        except (OSError, ValueError, KeyError):
            return None

    def get_many(self, keys: "list[str]") -> list:
        """Payloads for *keys* in order, ``None`` per miss — one listing pass.

        Equivalent to ``[self.get(k) for k in keys]`` but lists each
        touched fan-out directory once and answers membership from the
        listing, so a large mostly-cold grid costs one ``scandir`` per
        two-char prefix instead of one ``stat`` per key.  Corrupt or
        unreadable entries count as misses exactly as in :meth:`get`.
        """
        paths = [self._path(key) for key in keys]
        listed: dict[Path, "set[str]"] = {}
        for path in paths:
            parent = path.parent
            if parent not in listed:
                try:
                    listed[parent] = set(os.listdir(parent))
                except OSError:
                    listed[parent] = set()
        out = []
        for path in paths:
            if path.name not in listed[path.parent]:
                out.append(None)
                continue
            try:
                out.append(load_json(path))
            except (OSError, ValueError, KeyError):
                out.append(None)
        return out

    def put(self, key: str, payload) -> Path:
        """Store *payload* under *key* atomically and durably.

        The temp file is flushed and fsynced before the atomic
        ``os.replace``, so a crash (or power loss) can leave either the
        old entry or the complete new one — never a torn file that a
        resumed run would have to treat as corrupt.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(to_jsonable(payload), indent=2, sort_keys=True) + "\n"
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk (walks the fan-out dirs)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
