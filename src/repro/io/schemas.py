"""The single registry of on-disk schema tags (``repro.<kind>/<version>``).

Every serialised artifact the library writes — scenario configs, design
grids, experiment results, cache entries — carries a schema tag so a
reader can refuse (or migrate) documents written by an incompatible
build.  All tags are *declared here and only here*; other modules import
the named constants.  The ``reprolint`` gate (rule RS203) enforces the
single-declaration invariant mechanically: a ``repro.*/N`` string
literal anywhere else in ``src/repro`` fails CI.

Bump a tag's ``/N`` suffix on any breaking change to the corresponding
document layout; readers validate against the constant, so old documents
are rejected with a clear message rather than misread.
"""

from __future__ import annotations

__all__ = [
    "CALIBRATION_SCHEMA",
    "EXPERIMENT_SCHEMA",
    "EXPLORE_CELL_SCHEMA",
    "FAULTS_SCHEMA",
    "GRID_SCHEMA",
    "ITEM_OUTCOME_SCHEMA",
    "PERFORMABILITY_SCHEMA",
    "PERFORMABILITY_STATE_SCHEMA",
    "RUN_JOURNAL_SCHEMA",
    "SCENARIO_SCHEMA",
    "SIM_CURVE_SCHEMA",
    "declared_schemas",
]

#: One fully-described study (:class:`repro.scenarios.ScenarioSpec`).
SCENARIO_SCHEMA = "repro.scenario/1"

#: A base scenario plus parameter axes (:class:`repro.scenarios.DesignGrid`).
GRID_SCHEMA = "repro.grid/1"

#: Uniform workflow results (:class:`repro.experiments.ExperimentResult`).
EXPERIMENT_SCHEMA = "repro.experiment/1"

#: One cached design-space cell (:func:`repro.experiments.explore_grid`).
EXPLORE_CELL_SCHEMA = "repro.explore-cell/1"

#: A full calibration study (:func:`repro.experiments.calibrate_options`).
CALIBRATION_SCHEMA = "repro.calibration/1"

#: One cached simulator ground-truth curve (calibration's memoised runs).
SIM_CURVE_SCHEMA = "repro.sim-curve/1"

#: A failure/repair scenario (:class:`repro.performability.FailureScenario`).
PERFORMABILITY_SCHEMA = "repro.performability/1"

#: One cached degraded-state evaluation (:func:`repro.performability.performability_analysis`).
PERFORMABILITY_STATE_SCHEMA = "repro.performability-state/1"

#: One failed/timed-out item in a partial result's ``errors`` section
#: (:class:`repro.exec.ItemOutcome`).
ITEM_OUTCOME_SCHEMA = "repro.item-outcome/1"

#: One line of the append-only run journal (:class:`repro.exec.RunJournal`).
RUN_JOURNAL_SCHEMA = "repro.run-journal/1"

#: A deterministic fault-injection plan (:class:`repro.exec.FaultPlan`).
FAULTS_SCHEMA = "repro.faults/1"


def declared_schemas() -> dict[str, str]:
    """Constant name -> tag for every declared schema (for tooling/tests)."""
    return {
        name: globals()[name]
        for name in __all__
        if name.endswith("_SCHEMA")
    }
