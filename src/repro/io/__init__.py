"""Result persistence, content-addressed caching and paper-style reporting."""

from repro.io.cache import ResultCache, content_key
from repro.io.reporting import (
    format_table1,
    format_table2,
    format_validation_curve,
    format_whatif_study,
)
from repro.io.results import (
    from_jsonable,
    load_curve_csv,
    load_json,
    save_curve_csv,
    save_json,
    to_jsonable,
)
from repro.io.schemas import (
    CALIBRATION_SCHEMA,
    EXPERIMENT_SCHEMA,
    EXPLORE_CELL_SCHEMA,
    GRID_SCHEMA,
    SCENARIO_SCHEMA,
    SIM_CURVE_SCHEMA,
    declared_schemas,
)

__all__ = [
    "SCENARIO_SCHEMA",
    "GRID_SCHEMA",
    "EXPERIMENT_SCHEMA",
    "EXPLORE_CELL_SCHEMA",
    "CALIBRATION_SCHEMA",
    "SIM_CURVE_SCHEMA",
    "declared_schemas",
    "to_jsonable",
    "from_jsonable",
    "save_json",
    "load_json",
    "save_curve_csv",
    "load_curve_csv",
    "ResultCache",
    "content_key",
    "format_validation_curve",
    "format_whatif_study",
    "format_table1",
    "format_table2",
]
