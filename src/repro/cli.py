"""Command-line interface: ``python -m repro <command>``.

Every workflow subcommand is driven by a declarative scenario
(:class:`repro.scenarios.ScenarioSpec`) resolved from, in order of
precedence:

``--config <file.json>``
    a spec file written by ``export-config`` (``-`` reads stdin),
``--scenario <name>``
    a registered scenario (``python -m repro scenarios`` lists them),
``--system <name>``
    kept as an alias of ``--scenario`` (the historical ``1120``/``544``
    flags still work).

On top of the resolved scenario, ``--flits``/``--flit-bytes`` override the
message geometry, ``--option KEY=VALUE`` flips
:class:`~repro.core.parameters.ModelOptions` readings, and
``--pattern NAME[:k=v,...]`` swaps the traffic pattern (``--pattern none``
restores uniform traffic).

Subcommands mirror the :class:`repro.experiments.Experiment` facade:

``describe``      structural summary of the scenario (Table 1 view).
``latency``       evaluate the analytical model at one load (with breakdown).
``saturation``    saturation load λ* and the binding resource.
``sweep``         model latency curve up to the knee (a paper-figure column);
                  ``--scenario A,B,...`` or ``--all`` sweeps many scenarios at
                  once (optionally fanned out with ``--jobs``).
``simulate``      run the discrete-event simulator at one load; ``--replicas``
                  adds a confidence interval over independent spawned seeds.
``validate``      model-vs-simulation comparison across a load grid.
``capacity``      max sustainable load under a latency budget.
``bottlenecks``   ranked per-resource utilisations at one load (default 0.9 λ*).
``knee``          empirical simulated knee relative to the model's λ*.
``whatif``        base-vs-rescaled-network latency curves (Fig. 7 family).
``explore``       design-space exploration: expand N parameter axes over the
                  scenario (``--axis path=v1,v2,...`` or a ``--grid`` JSON
                  file) and evaluate every cell through the closed forms;
                  ``--frontier`` adds Pareto/sensitivity views, ``--cache``
                  memoises cells on disk (see ``docs/design_space.md``).
``calibrate``     search the ModelOptions ablation space against the
                  simulators: rank every combination of equation readings
                  by accuracy (``--fix``/``--vary`` restrict the space,
                  ``--cache`` memoises the simulated ground truth; see
                  ``docs/calibration.md``).
``performability``availability-weighted capacity under a failure/repair
                  scenario (``--failures file.json``): CTMC state
                  probabilities × degraded-system closed forms give λ*_A,
                  expected capacity and a failure ranking (``--cache``
                  memoises per-state evaluations; see
                  ``docs/performability.md``).
``report``        regenerate the paper's full evaluation section.
``scenarios``     list registered scenarios, or show one as JSON.
``export-config`` print/save the resolved scenario as a JSON config file.

Every result-producing subcommand — ``sweep``, ``validate``,
``capacity``, ``bottlenecks``, ``knee``, ``whatif``, ``explore``,
``calibrate`` and ``performability`` — accepts ``--out <path>`` to
persist the result as JSON or CSV (by extension) via
:mod:`repro.io.results`; the extension is validated before any compute
runs.  ``simulate``, ``validate``, ``calibrate`` and ``report`` accept
``--jobs N`` to fan their simulations across a process pool
(``--jobs 0`` = one worker per CPU), and ``explore``/``performability``
``--jobs`` does the same for model cells/states; results are
bit-identical for any worker count (see ``docs/parallel_validation.md``).

The three study commands — ``explore``, ``calibrate`` and
``performability`` — run under the supervised execution runtime
(:mod:`repro.exec`) and additionally accept ``--retries``/``--timeout``
(per-item retry and timeout policy), ``--resume`` (replay a killed run
from its cache journal; requires ``--cache``) and ``--faults`` (arm a
deterministic fault-injection plan, for testing the runtime itself).
Exit codes: ``0`` success, ``2`` configuration error, ``3`` partial
results (items failed after retries; the result carries an ``errors``
section), ``130`` interrupted.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path

from repro._util import require
from repro.analysis import render_table
from repro.core import MessageSpec, ModelOptions
from repro.exec import FAULTS_ENV, FaultPlan, RunPolicy
from repro.experiments import Experiment, ExperimentResult
from repro.io.results import save_curve_csv, save_json
from repro.scenarios import (
    LoadGridPolicy,
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    scenario_names,
)
from repro.workloads import make_pattern

__all__ = ["main", "build_parser", "resolve_spec"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytical network model of heterogeneous cluster-of-clusters "
        "systems (Javadi et al., CLUSTER 2006) — reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", help="registered scenario name (see `repro scenarios`)")
        p.add_argument("--config", help="ScenarioSpec JSON file ('-' reads stdin)")
        p.add_argument(
            "--system",
            choices=sorted(scenario_names()),
            help="alias of --scenario (historical 1120/544 flags)",
        )
        p.add_argument("--flits", type=int, default=None, help="override message length M in flits")
        p.add_argument("--flit-bytes", type=float, default=None, help="override flit size d_m in bytes")
        p.add_argument(
            "--option",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help=f"override a ModelOptions field ({', '.join(ModelOptions.field_names())})",
        )
        p.add_argument(
            "--pattern",
            default=None,
            metavar="NAME[:k=v,...]",
            help="override the traffic pattern (e.g. 'hotspot:hot_cluster=3,hot_fraction=0.2'; "
            "'none' restores uniform)",
        )

    def out_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out", default=None, help="persist the result (.json or .csv by extension)")

    def jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="process-pool workers for simulation fan-out (0 = one per CPU; "
            "results are identical for any worker count)",
        )

    def resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            help="extra executions granted to a failed item before it is "
            "recorded as an error (default 2; see docs/resilience.md)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-item timeout in seconds under pooled execution "
            "(default: no timeout; not enforceable under serial fallback)",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted run from its cache journal "
            "(requires --cache; only not-yet-journaled items are evaluated)",
        )
        p.add_argument(
            "--faults",
            default=None,
            metavar="PLAN",
            help="arm a deterministic fault-injection plan — a JSON file path "
            "or inline JSON (for testing the runtime; see docs/resilience.md)",
        )

    p = sub.add_parser("describe", help="structural summary of the scenario")
    common(p)

    p = sub.add_parser("latency", help="model latency at one load")
    common(p)
    p.add_argument("--load", type=float, required=True, help="per-node rate λ_g")

    p = sub.add_parser("saturation", help="saturation load and binding resource")
    common(p)

    p = sub.add_parser("sweep", help="model latency curve up to the knee")
    common(p)
    p.add_argument("--points", type=int, default=None, help="override the scenario's grid points")
    p.add_argument(
        "--all",
        action="store_true",
        help="sweep every registered scenario (multi-scenario table; combine with --jobs)",
    )
    jobs_flag(p)
    out_flag(p)

    p = sub.add_parser("simulate", help="discrete-event simulation at one load")
    common(p)
    p.add_argument("--load", type=float, required=True)
    p.add_argument("--messages", type=int, default=10_000, help="measured messages")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--granularity", choices=["message", "flit"], default="message")
    p.add_argument(
        "--engine",
        choices=["reference", "array"],
        default="reference",
        help="message-level event engine (bit-identical trajectories; array is the compiled core)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replicate the point under independent spawned seeds (>= 2) and report a CI",
    )
    jobs_flag(p)

    p = sub.add_parser("validate", help="model vs simulation across a load grid")
    common(p)
    p.add_argument(
        "--points", type=int, default=None, help="override the scenario's grid points"
    )
    p.add_argument("--messages", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--granularity",
        choices=["message", "flit"],
        default="message",
        help="simulator granularity (flit = the slow reference engine)",
    )
    p.add_argument(
        "--engine",
        choices=["reference", "array"],
        default="reference",
        help="message-level event engine (bit-identical trajectories; array is the compiled core)",
    )
    jobs_flag(p)
    out_flag(p)

    p = sub.add_parser("capacity", help="max load within a latency budget")
    common(p)
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="mean-latency budget (time units); defaults to the scenario's latency_budget",
    )
    out_flag(p)

    p = sub.add_parser("bottlenecks", help="ranked per-resource utilisations at one load")
    common(p)
    p.add_argument(
        "--load",
        type=float,
        default=None,
        help="per-node rate λ_g to inspect (default: 0.9 of the saturation load)",
    )
    out_flag(p)

    p = sub.add_parser("knee", help="empirical simulated knee relative to the model's λ*")
    common(p)
    p.add_argument(
        "--threshold-factor",
        type=float,
        default=4.0,
        help="knee = load where simulated latency reaches this multiple of the zero-load latency",
    )
    p.add_argument("--messages", type=int, default=5_000, help="measured messages per probe")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=7, help="bisection iterations")
    out_flag(p)

    p = sub.add_parser("whatif", help="base vs rescaled-network latency curves (Fig. 7 family)")
    common(p)
    p.add_argument("--role", choices=["icn1", "ecn1", "icn2"], default="icn2")
    p.add_argument("--factor", type=float, default=1.2, help="bandwidth scaling factor")
    out_flag(p)

    p = sub.add_parser(
        "explore", help="multi-axis design-space exploration through the closed forms"
    )
    common(p)
    p.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="one parameter axis: a dotted spec path and its values "
        "(e.g. 'system.icn2.bandwidth=250,500,1000'); repeat for more axes",
    )
    p.add_argument(
        "--grid",
        default=None,
        metavar="FILE",
        help="DesignGrid JSON file (base spec + axes); conflicts with --axis "
        "and the scenario selectors",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="latency budget for the λ@budget metric (overrides the scenario's)",
    )
    p.add_argument(
        "--frontier",
        action="store_true",
        help="append the Pareto frontier (cost proxy vs λ*) and axis sensitivity",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="on-disk result cache directory (repeat runs re-evaluate nothing)",
    )
    jobs_flag(p)
    resilience_flags(p)
    out_flag(p)

    p = sub.add_parser(
        "calibrate",
        help="search the ModelOptions ablation space against the simulators",
    )
    common(p)
    p.add_argument(
        "--all",
        action="store_true",
        help="calibrate across every registered scenario (combine with --jobs)",
    )
    p.add_argument(
        "--fix",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin one model option to a single value (repeat to pin more; "
        "the remaining knobs are varied over their full domains)",
    )
    p.add_argument(
        "--vary",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="restrict one knob's candidate values (DesignGrid axis syntax; "
        "with --vary, unmentioned un-pinned knobs keep their defaults)",
    )
    p.add_argument(
        "--metric",
        choices=["max_abs_error", "light_load_error", "rms_weighted"],
        default="rms_weighted",
        help="ranking metric (see docs/calibration.md)",
    )
    p.add_argument(
        "--fractions",
        default=None,
        metavar="F1,F2,...",
        help="scored loads as fractions of the reference λ* (default 0.2,0.4,0.6,0.8)",
    )
    p.add_argument("--messages", type=int, default=10_000, help="measured messages per sim point")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seed-stride",
        type=int,
        default=1,
        help="point i simulates under seed + stride*i (0 = one shared seed, "
        "the ablation benches' protocol)",
    )
    p.add_argument(
        "--granularity",
        choices=["message", "flit"],
        default="message",
        help="simulator granularity (flit = the slow reference engine)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="on-disk simulator-curve cache (repeat runs simulate nothing)",
    )
    jobs_flag(p)
    resilience_flags(p)
    out_flag(p)

    p = sub.add_parser(
        "performability",
        help="availability-weighted capacity under a failure/repair scenario",
    )
    common(p)
    p.add_argument(
        "--failures",
        required=True,
        metavar="FILE",
        help="FailureScenario JSON file (failure modes + rates; "
        "see docs/performability.md for the schema)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="on-disk per-state result cache directory (repeat runs evaluate nothing)",
    )
    jobs_flag(p)
    resilience_flags(p)
    out_flag(p)

    p = sub.add_parser("report", help="regenerate the paper's full evaluation section")
    p.add_argument("--messages", type=int, default=10_000, help="measured messages per sim point")
    p.add_argument("--points", type=int, default=6, help="loads per curve")
    p.add_argument("--model-only", action="store_true", help="skip simulations (seconds instead of minutes)")
    jobs_flag(p)

    p = sub.add_parser("scenarios", help="list registered scenarios (or show one as JSON)")
    p.add_argument("name", nargs="?", default=None, help="show this scenario's full spec as JSON")

    p = sub.add_parser("export-config", help="print/save the resolved scenario as JSON")
    common(p)
    out_flag(p)
    return parser


# ---------------------------------------------------------------------------
# scenario resolution (selection flags -> ScenarioSpec)
# ---------------------------------------------------------------------------


def _coerce_scalar(text: str):
    """CLI value coercion: int, then float, then verbatim string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_pattern(text: str):
    """``NAME[:k=v,...]`` -> a registered pattern instance."""
    name, _, params_text = text.partition(":")
    params = {}
    if params_text:
        for item in params_text.split(","):
            require("=" in item, f"--pattern parameters expect k=v, got {item!r}")
            key, _, value = item.partition("=")
            params[key.strip()] = _coerce_scalar(value.strip())
    return make_pattern(name.strip(), **params)


def _coerce_option_value(key: str, text: str):
    """Coerce one ``--option``/``--fix``/``--vary`` knob value.

    ``relaxing_factor`` is the only non-string knob: ``true``/``false``
    become bools; everything else passes through verbatim (domains are
    validated where the value is consumed).
    """
    if key.endswith("relaxing_factor"):
        lowered = text.lower()
        require(lowered in ("true", "false"), f"relaxing_factor must be true/false, got {text!r}")
        return lowered == "true"
    return text


def _parse_options(base: ModelOptions, entries: "list[str]") -> ModelOptions:
    """Apply ``--option KEY=VALUE`` overrides onto *base*."""
    valid = ModelOptions.field_names()
    updates: dict = {}
    for entry in entries:
        require("=" in entry, f"--option expects KEY=VALUE, got {entry!r}")
        key, _, value = entry.partition("=")
        key = key.strip()
        require(key in valid, f"unknown model option {key!r}; valid: {', '.join(valid)}")
        updates[key] = _coerce_option_value(key, value.strip())
    return replace(base, **updates) if updates else base


def _multi_scenario_names(args, verb: str) -> "list[str] | None":
    """Resolve ``--all`` / a comma-separated ``--scenario`` to a name list.

    Returns ``None`` for the single-scenario path (``resolve_spec``).
    Multi-scenario commands bypass ``resolve_spec``, so every
    single-scenario selector and override must be rejected loudly here —
    not silently ignored.
    """
    if args.all:
        require(
            not (args.config or args.scenario or args.system),
            "--all conflicts with --config/--scenario/--system",
        )
        names = list(scenario_names())
    elif args.scenario and "," in args.scenario:
        require(
            not (args.config or args.system),
            "a --scenario list conflicts with --config/--system",
        )
        names = [part.strip() for part in args.scenario.split(",") if part.strip()]
        require(names, "--scenario got an empty scenario list")
    else:
        return None
    require(
        args.flits is None and args.flit_bytes is None and not args.option and args.pattern is None,
        f"multi-scenario {verb} does not support --flits/--flit-bytes/--option/--pattern overrides",
    )
    return names


def resolve_spec(args) -> ScenarioSpec:
    """Resolve the selection/override flags of one subcommand to a spec."""
    selectors = [
        f"--{flag}" for flag in ("config", "scenario", "system") if getattr(args, flag, None)
    ]
    require(
        len(selectors) <= 1,
        f"conflicting scenario selectors {' and '.join(selectors)}: pass at most one of "
        "--config, --scenario, --system",
    )
    if getattr(args, "config", None):
        if args.config == "-":
            spec = ScenarioSpec.from_json(sys.stdin.read())
        else:
            spec = ScenarioSpec.load(args.config)
    elif getattr(args, "scenario", None):
        spec = get_scenario(args.scenario)
    else:
        spec = get_scenario(getattr(args, "system", None) or "1120")

    if args.flits is not None or args.flit_bytes is not None:
        message = MessageSpec(
            args.flits if args.flits is not None else spec.message.length_flits,
            args.flit_bytes if args.flit_bytes is not None else spec.message.flit_bytes,
        )
        spec = spec.with_overrides(message=message)
    if args.option:
        spec = spec.with_overrides(options=_parse_options(spec.options, args.option))
    if args.pattern is not None:
        if args.pattern.strip().lower() == "none":
            spec = spec.with_overrides(clear_pattern=True)
        else:
            spec = spec.with_overrides(pattern=_parse_pattern(args.pattern))
    if getattr(args, "points", None) is not None and args.command in ("sweep", "validate"):
        spec = replace(spec, load_grid=replace(spec.load_grid, points=args.points))
    return spec


def _check_out_extension(out: "str | None", allowed: tuple) -> None:
    """Reject a bad --out extension *before* any expensive work runs."""
    if out:
        require(
            Path(out).suffix.lower() in allowed,
            f"--out requires a {' or '.join(allowed)} extension, got {out!r}",
        )


def _persist(result: ExperimentResult, out: "str | None") -> str:
    """Write *result* to *out* (.json or .csv); returns a trailer line."""
    if not out:
        return ""
    suffix = Path(out).suffix.lower()
    if suffix == ".json":
        save_json(out, result.to_dict())
    else:
        save_curve_csv(out, result.columns())
    return f"\nwrote {out}"


def _run_policy(args) -> "RunPolicy | None":
    """``--retries``/``--timeout`` -> a RunPolicy, or None for defaults."""
    if args.retries is None and args.timeout is None:
        return None
    overrides: dict = {}
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    return RunPolicy(**overrides)


def _arm_faults(args) -> None:
    """Validate and arm a ``--faults`` plan before any compute runs.

    The plan is parsed eagerly so a malformed file/JSON fails with exit 2
    up front; arming happens via the environment so pool workers inherit
    the plan at fork.
    """
    if getattr(args, "faults", None):
        FaultPlan.load(args.faults)
        os.environ[FAULTS_ENV] = args.faults


def _study_exit_code(result: ExperimentResult) -> int:
    """3 when the table is partial (items failed after retries), else 0."""
    return 3 if result.data.get("errors") else 0


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def _experiment(args) -> Experiment:
    return Experiment(resolve_spec(args))


def _cmd_describe(args) -> str:
    return _experiment(args).describe().text


def _cmd_latency(args) -> str:
    return _experiment(args).evaluate(args.load).text


def _cmd_saturation(args) -> str:
    return _experiment(args).saturation().text


def _cmd_sweep(args) -> str:
    # Multi-scenario fan-out: `--all` or a comma-separated `--scenario` list
    # route through Experiment.sweep_many (one uniform long-format table).
    names = _multi_scenario_names(args, "sweep")
    if names is not None:
        result = Experiment.sweep_many(names, jobs=args.jobs, points=args.points)
        return result.text + _persist(result, args.out)
    require(
        args.jobs is None,
        "--jobs only applies to a multi-scenario sweep (--all or --scenario A,B,...)",
    )
    result = _experiment(args).sweep()
    return result.text + _persist(result, args.out)


def _cmd_simulate(args) -> str:
    require(
        args.jobs is None or args.replicas is not None,
        "--jobs on simulate requires --replicas (a single run has nothing to fan out)",
    )
    return (
        _experiment(args)
        .simulate(
            args.load,
            messages=args.messages,
            seed=args.seed,
            granularity=args.granularity,
            replicas=args.replicas,
            jobs=args.jobs,
            engine=args.engine,
        )
        .text
    )


def _cmd_validate(args) -> str:
    # --points is already folded into the spec's grid policy by resolve_spec.
    # Without --points and without a scenario-customised grid, drop to 5
    # points: validate runs one discrete-event simulation per point, and the
    # sweep-oriented 12-point default would silently 2.4x the runtime.
    spec = resolve_spec(args)
    if args.points is None and spec.load_grid == LoadGridPolicy():
        spec = replace(spec, load_grid=replace(spec.load_grid, points=5))
    result = Experiment(spec).validate(
        messages=args.messages,
        seed=args.seed,
        granularity=args.granularity,
        jobs=args.jobs,
        engine=args.engine,
    )
    return result.text + _persist(result, args.out)


def _cmd_capacity(args) -> str:
    result = _experiment(args).capacity(args.budget)
    return result.text + _persist(result, args.out)


def _cmd_bottlenecks(args) -> str:
    result = _experiment(args).bottlenecks(args.load)
    return result.text + _persist(result, args.out)


def _cmd_knee(args) -> str:
    result = _experiment(args).knee(
        threshold_factor=args.threshold_factor,
        messages=args.messages,
        seed=args.seed,
        iterations=args.iterations,
    )
    return result.text + _persist(result, args.out)


def _cmd_whatif(args) -> str:
    result = _experiment(args).whatif(role=args.role, factor=args.factor)
    return result.text + _persist(result, args.out)


def _cmd_performability(args) -> "tuple[str, int]":
    _arm_faults(args)
    result = _experiment(args).performability(
        args.failures,
        jobs=args.jobs,
        cache=args.cache,
        policy=_run_policy(args),
        resume=args.resume,
    )
    return result.text + _persist(result, args.out), _study_exit_code(result)


def _parse_axis(text: str):
    """``PATH=V1,V2,...`` -> an :class:`~repro.scenarios.AxisSpec`."""
    from repro.scenarios import AxisSpec

    require("=" in text, f"--axis expects PATH=V1,V2,..., got {text!r}")
    path, _, values_text = text.partition("=")
    values = tuple(_coerce_scalar(v.strip()) for v in values_text.split(",") if v.strip())
    require(len(values) >= 1, f"--axis {path.strip()!r} got no values")
    return AxisSpec(path=path.strip(), values=values)


def _cmd_explore(args) -> "tuple[str, int]":
    from repro.experiments.explore import explore_grid
    from repro.scenarios import DesignGrid

    if args.grid is not None:
        require(
            not args.axis,
            "--grid carries its own axes and conflicts with --axis",
        )
        require(
            not (args.config or args.scenario or args.system),
            "--grid carries its own base spec and conflicts with --config/--scenario/--system",
        )
        require(
            args.flits is None and args.flit_bytes is None and not args.option and args.pattern is None,
            "--grid does not support --flits/--flit-bytes/--option/--pattern overrides",
        )
        grid = DesignGrid.load(args.grid)
        if args.budget is not None:
            grid = replace(grid, base=replace(grid.base, latency_budget=args.budget))
    else:
        require(len(args.axis) >= 1, "explore needs at least one --axis (or a --grid file)")
        spec = resolve_spec(args)
        if args.budget is not None:
            spec = replace(spec, latency_budget=args.budget)
        grid = DesignGrid(base=spec, axes=tuple(_parse_axis(a) for a in args.axis))
    _arm_faults(args)
    result = explore_grid(
        grid,
        jobs=args.jobs,
        cache=args.cache,
        frontier=args.frontier,
        policy=_run_policy(args),
        resume=args.resume,
    )
    return result.text + _persist(result, args.out), _study_exit_code(result)


def _parse_fix(entries: "list[str]") -> dict:
    """``--fix KEY=VALUE`` entries -> a pinned-knob mapping."""
    fixed: dict = {}
    for entry in entries:
        require("=" in entry, f"--fix expects KEY=VALUE, got {entry!r}")
        key, _, value = entry.partition("=")
        key = key.strip()
        require(key not in fixed, f"--fix names {key!r} twice")
        fixed[key] = _coerce_option_value(key, value.strip())
    return fixed


def _parse_vary(text: str) -> tuple:
    """``--vary KEY=V1,V2,...`` -> an option-axis ``(knob, values)`` pair."""
    require("=" in text, f"--vary expects KEY=V1,V2,..., got {text!r}")
    key, _, values_text = text.partition("=")
    key = key.strip()
    values = tuple(
        _coerce_option_value(key, v.strip()) for v in values_text.split(",") if v.strip()
    )
    require(len(values) >= 1, f"--vary {key!r} got no values")
    return (key, values)


def _cmd_calibrate(args) -> "tuple[str, int]":
    from repro.experiments.calibrate import DEFAULT_FRACTIONS, calibrate_options

    fixed = _parse_fix(args.fix)
    axes = [_parse_vary(v) for v in args.vary] or None
    if args.fractions is None:
        fractions = DEFAULT_FRACTIONS
    else:
        try:
            fractions = tuple(
                float(v.strip()) for v in args.fractions.split(",") if v.strip()
            )
        except ValueError:
            raise ValueError(f"--fractions expects F1,F2,..., got {args.fractions!r}") from None
    names = _multi_scenario_names(args, "calibrate")
    if names is not None:
        scenarios: "list" = names
    else:
        # The common overrides shape the *reference* scenario here — e.g.
        # --option tcn_convention=... moves the simulated ground truth.
        scenarios = [resolve_spec(args)]
    _arm_faults(args)
    result = calibrate_options(
        scenarios,
        axes=axes,
        fixed=fixed,
        fractions=fractions,
        metric=args.metric,
        messages=args.messages,
        seed=args.seed,
        seed_stride=args.seed_stride,
        granularity=args.granularity,
        jobs=args.jobs,
        cache=args.cache,
        policy=_run_policy(args),
        resume=args.resume,
    )
    return result.text + _persist(result, args.out), _study_exit_code(result)


def _cmd_report(args) -> str:
    from repro.validation import reproduction_report

    report = reproduction_report(
        messages_per_point=args.messages,
        points_per_curve=args.points,
        include_simulation=not args.model_only,
        jobs=args.jobs,
    )
    return report.text


def _cmd_scenarios(args) -> str:
    if args.name:
        return get_scenario(args.name).to_json().rstrip("\n")
    rows = []
    for name, spec in iter_scenarios():
        system = spec.system
        pattern = spec.pattern.pattern_name if spec.pattern is not None else "uniform"
        rows.append(
            [
                name,
                system.total_nodes,
                system.num_clusters,
                system.switch_ports,
                f"{spec.message.length_flits}x{spec.message.flit_bytes:g}B",
                pattern,
                spec.description,
            ]
        )
    return render_table(["scenario", "N", "C", "m", "message", "pattern", "description"], rows)


def _cmd_export_config(args) -> str:
    spec = resolve_spec(args)
    if args.out:
        spec.save(args.out)
        return f"wrote {args.out}"
    return spec.to_json().rstrip("\n")


_COMMANDS = {
    "describe": _cmd_describe,
    "latency": _cmd_latency,
    "saturation": _cmd_saturation,
    "sweep": _cmd_sweep,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "capacity": _cmd_capacity,
    "bottlenecks": _cmd_bottlenecks,
    "knee": _cmd_knee,
    "whatif": _cmd_whatif,
    "explore": _cmd_explore,
    "calibrate": _cmd_calibrate,
    "performability": _cmd_performability,
    "report": _cmd_report,
    "scenarios": _cmd_scenarios,
    "export-config": _cmd_export_config,
}


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code.

    Configuration mistakes — invalid values (``ValueError``), unknown
    scenario/resource names (``KeyError``) and unreadable config files
    (``OSError``) — print one clean ``error:`` line and exit 2 instead of
    escaping as tracebacks.  Study commands whose result is partial
    (items failed after retries) exit 3 with the partial table printed;
    Ctrl-C exits 130 after the supervised runtime has torn its worker
    pool down.
    """
    args = build_parser().parse_args(argv)
    try:
        _check_out_extension(
            getattr(args, "out", None),
            (".json",) if args.command == "export-config" else (".json", ".csv"),
        )
        output = _COMMANDS[args.command](args)
        text, code = output if isinstance(output, tuple) else (output, 0)
        print(text)
    except BrokenPipeError:  # downstream pager/head closed stdout: not an error
        return 0
    except KeyboardInterrupt:  # pool already torn down by the runtime
        print("interrupted", file=sys.stderr)
        return 130
    except (ValueError, KeyError, OSError) as exc:
        detail = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {detail}", file=sys.stderr)
        return 2
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
