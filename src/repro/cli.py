"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main workflows:

``describe``
    structural summary of a paper system (Table 1 view).
``latency``
    evaluate the analytical model at one load (with breakdown).
``saturation``
    report the saturation load λ* and the binding resource.
``sweep``
    print a model latency curve up to the knee (a paper-figure column).
``simulate``
    run the discrete-event simulator at one load.
``validate``
    model-vs-simulation comparison across a load grid (a full figure).
``capacity``
    max sustainable load under a latency budget.
``report``
    regenerate the paper's full evaluation section (Tables 1-2, Figs. 3-7,
    accuracy and bottleneck claims) in one document.

Every command accepts ``--system {1120,544}`` plus message geometry flags;
outputs are the same text tables the benchmark harness emits.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import model_bottlenecks, render_series, render_table
from repro.analysis.capacity import max_load_for_latency
from repro.core import (
    AnalyticalModel,
    BatchedModel,
    MessageSpec,
    paper_system_544,
    paper_system_1120,
)
from repro.core.sweep import auto_load_grid, sweep_load

__all__ = ["main", "build_parser"]

_SYSTEMS = {"1120": paper_system_1120, "544": paper_system_544}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytical network model of heterogeneous cluster-of-clusters "
        "systems (Javadi et al., CLUSTER 2006) — reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--system", choices=sorted(_SYSTEMS), default="1120", help="paper Table 1 organisation")
        p.add_argument("--flits", type=int, default=32, help="message length M in flits")
        p.add_argument("--flit-bytes", type=float, default=256.0, help="flit size d_m in bytes")

    p = sub.add_parser("describe", help="structural summary of the system")
    common(p)

    p = sub.add_parser("latency", help="model latency at one load")
    common(p)
    p.add_argument("--load", type=float, required=True, help="per-node rate λ_g")

    p = sub.add_parser("saturation", help="saturation load and binding resource")
    common(p)

    p = sub.add_parser("sweep", help="model latency curve up to the knee")
    common(p)
    p.add_argument("--points", type=int, default=10)

    p = sub.add_parser("simulate", help="discrete-event simulation at one load")
    common(p)
    p.add_argument("--load", type=float, required=True)
    p.add_argument("--messages", type=int, default=10_000, help="measured messages")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--granularity", choices=["message", "flit"], default="message")

    p = sub.add_parser("validate", help="model vs simulation across a load grid")
    common(p)
    p.add_argument("--points", type=int, default=5)
    p.add_argument("--messages", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("capacity", help="max load within a latency budget")
    common(p)
    p.add_argument("--budget", type=float, required=True, help="mean-latency budget (time units)")

    p = sub.add_parser("report", help="regenerate the paper's full evaluation section")
    p.add_argument("--messages", type=int, default=10_000, help="measured messages per sim point")
    p.add_argument("--points", type=int, default=6, help="loads per curve")
    p.add_argument("--model-only", action="store_true", help="skip simulations (seconds instead of minutes)")
    return parser


def _setup(args) -> tuple:
    system = _SYSTEMS[args.system]()
    message = MessageSpec(args.flits, args.flit_bytes)
    return system, message


def _cmd_describe(args) -> str:
    system, message = _setup(args)
    model = AnalyticalModel(system, message)
    rows = [
        [c.name, c.count, c.tree_depth, c.nodes, f"{c.u:.4f}"]
        for c in model.cluster_classes
    ]
    head = (
        f"{system.name}: N={system.total_nodes}, C={system.num_clusters}, "
        f"m={system.switch_ports}, n_c={system.icn2_tree_depth}\n"
    )
    return head + render_table(["class", "count", "n_i", "N_i", "U_i (Eq.2)"], rows)


def _cmd_latency(args) -> str:
    system, message = _setup(args)
    result = AnalyticalModel(system, message).evaluate(args.load)
    if result.saturated:
        return f"SATURATED at λ_g={args.load:g}: {', '.join(sorted(set(result.saturated_resources))[:4])}"
    rows = [
        [c.name, c.intra.total, c.inter_network, c.concentrator_wait, c.mean]
        for c in result.clusters
    ]
    table = render_table(["class", "L_in", "L_ex", "W_d", "mean (Eq.1)"], rows)
    return f"mean message latency (Eq.3): {result.latency:.3f}\n\n{table}"


def _cmd_saturation(args) -> str:
    system, message = _setup(args)
    engine = BatchedModel(system, message)
    lam_star = engine.saturation_load()
    report = model_bottlenecks(system, message, 0.9 * lam_star, engine=engine)
    per_resource = sorted(engine.saturation_loads().items(), key=lambda kv: kv[1])
    rows = [[name, f"{lam:.4e}"] for name, lam in per_resource[:5]]
    table = render_table(["resource", "λ* (ρ=1)"], rows, title="tightest per-resource saturation rates")
    return (
        f"saturation load λ* = {lam_star:.4e} messages/node/time-unit\n"
        f"binding resource   = {report.binding.resource} ({report.binding.kind}, "
        f"ρ={report.binding.utilization:.3f} at 0.9 λ*)\n\n{table}"
    )


def _cmd_sweep(args) -> str:
    system, message = _setup(args)
    engine = BatchedModel(system, message)
    grid = auto_load_grid(engine, points=args.points)
    sweep = sweep_load(engine, grid, with_results=False)
    return render_series(
        f"model latency, {system.name}, M={message.length_flits}, d_m={message.flit_bytes:g}",
        "lambda_g",
        list(sweep.loads),
        {"latency": list(sweep.latencies)},
    )


def _cmd_simulate(args) -> str:
    from repro.simulation import MeasurementWindow, SimulationSession

    system, message = _setup(args)
    session = SimulationSession(system, message)
    result = session.run(
        args.load,
        seed=args.seed,
        window=MeasurementWindow.scaled_paper(args.messages),
        granularity=args.granularity,
    )
    util = ", ".join(f"{k}={v:.3f}" for k, v in sorted(result.network_utilization.items()))
    return (
        f"simulated mean latency: {result.mean_latency:.3f} "
        f"(p95={result.stats.p95:.2f}, n={result.stats.count}, "
        f"intra={result.stats.mean_intra:.2f}, inter={result.stats.mean_inter:.2f})\n"
        f"events={result.events}, wall={result.wall_seconds:.2f}s, completed={result.completed}\n"
        f"utilization: {util}"
    )


def _cmd_validate(args) -> str:
    from repro.io import format_validation_curve
    from repro.simulation import MeasurementWindow
    from repro.validation import default_load_grid, run_validation

    system, message = _setup(args)
    grid = default_load_grid(system, message, points=args.points)
    curve = run_validation(
        system,
        message,
        grid,
        seed=args.seed,
        window=MeasurementWindow.scaled_paper(args.messages),
    )
    return format_validation_curve(curve)


def _cmd_report(args) -> str:
    from repro.validation import reproduction_report

    report = reproduction_report(
        messages_per_point=args.messages,
        points_per_curve=args.points,
        include_simulation=not args.model_only,
    )
    return report.text


def _cmd_capacity(args) -> str:
    system, message = _setup(args)
    plan = max_load_for_latency(system, message, args.budget)
    status = "feasible" if plan.feasible else "INFEASIBLE"
    return f"{status}: λ_max = {plan.achieved:.4e}\n{plan.detail}"


_COMMANDS = {
    "describe": _cmd_describe,
    "latency": _cmd_latency,
    "saturation": _cmd_saturation,
    "sweep": _cmd_sweep,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "capacity": _cmd_capacity,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
