"""repro — reproduction of Javadi et al., *Analytical Network Modeling of
Heterogeneous Large-Scale Cluster Systems* (IEEE CLUSTER 2006).

The package provides:

* :mod:`repro.core` — the paper's analytical mean-latency model,
* :mod:`repro.topology` — the m-port n-tree fat-tree substrate with
  deterministic Up*/Down* routing,
* :mod:`repro.cluster` — the heterogeneous cluster-of-clusters assembly,
* :mod:`repro.simulation` — discrete-event wormhole simulators
  (message-level and flit-accurate) used to validate the model,
* :mod:`repro.validation` — the paper's model-vs-simulation studies,
* :mod:`repro.workloads` — uniform and non-uniform traffic patterns,
* :mod:`repro.analysis` — bottleneck and what-if (Fig. 7) analyses,
* :mod:`repro.scenarios` — declarative, JSON-round-trippable scenario
  specs, a registry of named configurations, and multi-axis design grids
  (:class:`~repro.scenarios.DesignGrid`),
* :mod:`repro.experiments` — the :class:`Experiment` facade running every
  workflow off one scenario spec, including cached design-space
  exploration (``Experiment.explore`` / ``explore_grid``),
* :mod:`repro.performability` — failure/repair availability chains over
  degraded systems: availability-weighted λ*_A, expected capacity under
  churn and failure rankings (``Experiment.performability``),
* :mod:`repro.io` — result persistence, a content-addressed on-disk
  result cache, and ASCII reporting.

Quickstart::

    from repro import Experiment

    exp = Experiment("1120")                 # any registered scenario
    print(exp.saturation().text)             # λ* + binding resource
    print(exp.sweep().data["columns"])       # figure-ready curve
"""

from repro.core import (
    NET1,
    NET2,
    AnalyticalModel,
    BatchedModel,
    ClusterSpec,
    MessageSpec,
    ModelOptions,
    ModelResult,
    NetworkCharacteristics,
    SystemConfig,
    auto_load_grid,
    find_saturation_load,
    paper_message,
    paper_system_544,
    paper_system_1120,
    sweep_load,
)
from repro.experiments import Experiment, ExperimentResult
from repro.scenarios import (
    LoadGridPolicy,
    ScenarioSpec,
    get_scenario,
    load_scenario,
    register_scenario,
    scenario_names,
)

__version__ = "1.1.0"

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ScenarioSpec",
    "LoadGridPolicy",
    "get_scenario",
    "load_scenario",
    "register_scenario",
    "scenario_names",
    "AnalyticalModel",
    "BatchedModel",
    "ModelResult",
    "NetworkCharacteristics",
    "ClusterSpec",
    "SystemConfig",
    "MessageSpec",
    "ModelOptions",
    "NET1",
    "NET2",
    "paper_system_1120",
    "paper_system_544",
    "paper_message",
    "sweep_load",
    "find_saturation_load",
    "auto_load_grid",
    "__version__",
]
