"""Typed per-item results of a supervised run.

The supervisor never lets one bad item abort a fan-out: every payload
resolves to exactly one :class:`ItemOutcome` — ``ok`` with the worker's
return value, ``failed`` with the last error, or ``timeout`` when the
per-item budget expired — plus the number of executions it consumed.
Consumers that want the historical throw-on-first-error semantics
(:func:`repro.simulation.parallel.map_jobs`) call
:func:`raise_on_failure`; consumers that want partial tables
(``explore``/``calibrate``/``performability``) keep the failed outcomes
and surface them as an ``errors`` section instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.io.schemas import ITEM_OUTCOME_SCHEMA

__all__ = [
    "ITEM_OUTCOME_SCHEMA",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "ExecutionFailed",
    "ItemOutcome",
    "raise_on_failure",
]

OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_TIMEOUT = "timeout"


class ExecutionFailed(RuntimeError):
    """An item exhausted its retries and no original exception survived.

    Raised by :func:`raise_on_failure` for timeout/interruption outcomes,
    where there is no worker exception object to re-raise.
    """


@dataclass(frozen=True)
class ItemOutcome:
    """One payload's final fate under the supervised runtime.

    index:
        position of the payload in the submitted list (results are
        returned in submission order regardless of completion order).
    status:
        ``"ok"`` / ``"failed"`` / ``"timeout"``.
    attempts:
        executions consumed, including interrupted ones (``>= 1``).
    value:
        the worker's return value; only meaningful when ``status == "ok"``.
    error:
        one-line description of the last failure (empty for ``ok``).
    exception:
        the last exception object raised by the worker, kept so strict
        callers can re-raise the original type; never serialised and
        excluded from equality.
    """

    index: int
    status: str
    attempts: int
    value: Any = None
    error: str = ""
    exception: "BaseException | None" = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK

    def error_record(self) -> "dict[str, Any]":
        """JSON-safe record for a result's ``errors`` section."""
        return {
            "schema": ITEM_OUTCOME_SCHEMA,
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }


def raise_on_failure(outcomes: "list[ItemOutcome]") -> "list[ItemOutcome]":
    """Return *outcomes* unchanged, or raise on the first non-``ok`` one.

    Re-raises the worker's original exception when one survived (so
    ``map_jobs`` keeps its historical contract — a ``ValueError`` in a
    worker surfaces as that ``ValueError``); timeouts and pool-level
    interruptions raise :class:`ExecutionFailed`.
    """
    for outcome in outcomes:
        if outcome.ok:
            continue
        if outcome.exception is not None:
            raise outcome.exception
        raise ExecutionFailed(
            f"item {outcome.index} {outcome.status} after "
            f"{outcome.attempts} attempt(s): {outcome.error}"
        )
    return outcomes
