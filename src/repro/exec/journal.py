"""Append-only, crash-safe run journal for long fan-outs.

A journal records, one JSON line at a time, the content keys of items a
run has finished and persisted to its :class:`~repro.io.cache.ResultCache`.
Because each line is appended, flushed, and fsynced as the item
completes, a run killed at any instant leaves a journal describing
exactly the completed prefix — a later ``--resume`` replays those items
from the cache and evaluates only the remainder.

Torn final lines (the process died mid-write) are expected and skipped;
re-recording an already-journaled key is a no-op, so resumed runs can
blindly record everything they touch.  The journal lives beside the
cache entries it refers to (``<cache root>/journal/<run key>.jsonl``),
keyed by a content hash of the run's full work list: the same study
resumes itself, a different study gets a fresh journal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.io.schemas import RUN_JOURNAL_SCHEMA

__all__ = ["RUN_JOURNAL_SCHEMA", "RunJournal"]


class RunJournal:
    """Append-only record of completed item keys for one run identity."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._seen: "set[str] | None" = None

    @classmethod
    def for_cache(cls, store: Any, run_key: str) -> "RunJournal":
        """The journal for *run_key* stored beside *store*'s entries."""
        return cls(Path(store.root) / "journal" / f"{run_key}.jsonl")

    def exists(self) -> bool:
        return self.path.exists()

    def completed_keys(self) -> "set[str]":
        """Keys of every item this journal has recorded as completed.

        Unparseable lines (a torn final write from a killed process) are
        skipped, not fatal.
        """
        if self._seen is not None:
            return set(self._seen)
        seen: "set[str]" = set()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            self._seen = seen
            return set(seen)
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and entry.get("schema") == RUN_JOURNAL_SCHEMA:
                key = entry.get("key")
                if isinstance(key, str):
                    seen.add(key)
        self._seen = seen
        return set(seen)

    def record(self, key: str, **meta: Any) -> None:
        """Durably append *key* (with optional metadata) to the journal.

        The line is flushed and fsynced before returning, so a kill
        immediately after an item's cache write cannot lose the fact that
        the item completed.  Already-recorded keys are skipped.
        """
        seen = self.completed_keys()
        if key in seen:
            return
        entry = {"schema": RUN_JOURNAL_SCHEMA, "key": key}
        entry.update(meta)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        assert self._seen is not None
        self._seen.add(key)
