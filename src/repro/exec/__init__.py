"""Resilient execution runtime: supervised fan-out for long runs.

This package is the only place in the repository that talks to
``concurrent.futures.ProcessPoolExecutor`` (reprolint rule RP303
enforces it).  It wraps raw pool fan-out with the robustness a
multi-hour study needs:

* :func:`run_supervised` — retries, per-item timeouts, bounded pool
  respawn after worker crashes, graceful degradation to serial
  execution, typed :class:`ItemOutcome` records instead of
  batch-aborting exceptions (:mod:`repro.exec.supervisor`);
* :class:`RunPolicy` — the frozen knob set controlling all of the above,
  with deterministic seed-derived backoff (:mod:`repro.exec.policy`);
* :class:`RunJournal` — an append-only, fsynced record of completed item
  keys enabling crash/``--resume`` semantics (:mod:`repro.exec.journal`);
* :class:`FaultPlan` — deterministic, spec-driven fault injection for
  exercising every path above in tests and CI
  (:mod:`repro.exec.faults`).

See ``docs/resilience.md`` for the operator-facing guide.
"""

from repro.exec.faults import (
    FAULTS_ENV,
    FAULTS_SCHEMA,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    armed_plan,
    corrupt_cache_entry,
    fire,
    mark_worker_process,
    maybe_corrupt_cache,
)
from repro.exec.journal import RUN_JOURNAL_SCHEMA, RunJournal
from repro.exec.outcomes import (
    ITEM_OUTCOME_SCHEMA,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ExecutionFailed,
    ItemOutcome,
    raise_on_failure,
)
from repro.exec.policy import RunPolicy
from repro.exec.supervisor import resolve_jobs, run_supervised

__all__ = [
    "FAULTS_ENV",
    "FAULTS_SCHEMA",
    "ITEM_OUTCOME_SCHEMA",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "RUN_JOURNAL_SCHEMA",
    "ExecutionFailed",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "ItemOutcome",
    "RunJournal",
    "RunPolicy",
    "armed_plan",
    "corrupt_cache_entry",
    "fire",
    "mark_worker_process",
    "maybe_corrupt_cache",
    "raise_on_failure",
    "resolve_jobs",
    "run_supervised",
]
