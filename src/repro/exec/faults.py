"""Deterministic, spec-driven fault injection for the supervised runtime.

Every resilience path — retry, pool respawn, timeout, degrade-to-serial,
journal resume — needs to be exercised *reproducibly*: in tests, in CI,
and on demand from the command line.  This module arms a declarative
:class:`FaultPlan` through one environment variable
(:data:`FAULTS_ENV` = ``REPRO_FAULTS``, a JSON file path or inline JSON),
and the supervisor's worker entry point consults it on every execution:

* ``raise`` — the item raises :class:`FaultInjected`;
* ``crash`` — the worker process dies with ``os._exit`` (a hard kill the
  pool sees as ``BrokenProcessPool``); in serial execution, where exiting
  would kill the caller, it raises :class:`FaultInjected` instead;
* ``hang`` — the item sleeps for ``seconds`` before continuing (pair
  with a :class:`~repro.exec.RunPolicy` timeout to exercise the
  hung-item path);
* ``corrupt-cache`` — consumers with a :class:`~repro.io.cache.ResultCache`
  overwrite the item's just-written entry with garbage (via
  :func:`maybe_corrupt_cache`), exercising the corrupt-entry-is-a-miss
  recovery path.

Faults match on exact ``(index, attempt)`` pairs, so a plan is a pure
function of the run's structure.  With nothing armed, :func:`fire` is a
constant-time no-op and the runtime is provably bit-identical to
fault-free execution (locked by tests).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro._util import reject_unknown_keys, require, require_int
from repro.io.schemas import FAULTS_SCHEMA

__all__ = [
    "FAULTS_ENV",
    "FAULTS_SCHEMA",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "armed_plan",
    "corrupt_cache_entry",
    "fire",
    "mark_worker_process",
    "maybe_corrupt_cache",
]

#: Environment variable carrying the armed plan (file path or inline JSON).
FAULTS_ENV = "REPRO_FAULTS"

_FAULT_OPS = ("raise", "crash", "hang", "corrupt-cache")

#: ``True`` in pool worker processes (set by the pool initializer), so a
#: ``crash`` fault knows whether ``os._exit`` would kill a worker (the
#: intent) or the caller's own process (never acceptable).
_IN_WORKER = False


class FaultInjected(RuntimeError):
    """The error raised by ``raise`` faults (and serial ``crash`` faults)."""


def mark_worker_process() -> None:
    """Pool initializer: flags this process as a sacrificial worker."""
    global _IN_WORKER
    _IN_WORKER = True


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *op* on item *index* at execution *attempt*.

    ``attempt`` counts executions of that item from 0; ``seconds`` is the
    ``hang`` duration; ``message`` the ``raise`` text.  ``corrupt-cache``
    ignores ``attempt`` — it corrupts the entry after it is stored.
    """

    op: str
    index: int
    attempt: int = 0
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        require(self.op in _FAULT_OPS, f"fault op must be one of {_FAULT_OPS}, got {self.op!r}")
        require_int(self.index, "fault index", minimum=0)
        require_int(self.attempt, "fault attempt", minimum=0)
        require(
            isinstance(self.seconds, (int, float)) and self.seconds >= 0,
            f"fault seconds must be >= 0, got {self.seconds!r}",
        )
        require(isinstance(self.message, str), "fault message must be a string")

    def to_dict(self) -> "dict[str, Any]":
        return {
            "op": self.op,
            "index": self.index,
            "attempt": self.attempt,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "FaultSpec":
        reject_unknown_keys(
            data,
            ("op", "index", "attempt", "seconds", "message"),
            "fault spec",
            required=("op", "index"),
        )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A full injection plan: an ordered tuple of :class:`FaultSpec`."""

    faults: "tuple[FaultSpec, ...]" = ()

    def match(self, index: int, attempt: int) -> "FaultSpec | None":
        """The first in-worker fault armed for ``(index, attempt)``."""
        for spec in self.faults:
            if spec.op == "corrupt-cache":
                continue
            if spec.index == index and spec.attempt == attempt:
                return spec
        return None

    def corrupts_cache(self, index: int) -> bool:
        """Whether a ``corrupt-cache`` fault targets item *index*."""
        return any(spec.op == "corrupt-cache" and spec.index == index for spec in self.faults)

    def to_dict(self) -> "dict[str, Any]":
        return {"schema": FAULTS_SCHEMA, "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "FaultPlan":
        reject_unknown_keys(
            data, ("schema", "faults"), "fault plan", required=("schema", "faults")
        )
        require(
            data["schema"] == FAULTS_SCHEMA,
            f"unsupported fault-plan schema {data['schema']!r} "
            f"(this build reads {FAULTS_SCHEMA!r})",
        )
        require(isinstance(data["faults"], list), "fault plan 'faults' must be a list")
        return cls(faults=tuple(FaultSpec.from_dict(entry) for entry in data["faults"]))

    @classmethod
    def load(cls, source: str) -> "FaultPlan":
        """Parse a plan from inline JSON (leading ``{``) or a file path."""
        text = source if source.lstrip().startswith("{") else Path(source).read_text()
        return cls.from_dict(json.loads(text))


# The armed plan is re-parsed only when the env value changes; pool
# workers inherit the parent's environment (and this cache) at fork.
_CACHED: "tuple[str, FaultPlan] | None" = None


def armed_plan() -> "FaultPlan | None":
    """The plan armed through :data:`FAULTS_ENV`, or ``None``."""
    global _CACHED
    source = os.environ.get(FAULTS_ENV)
    if not source:
        return None
    if _CACHED is None or _CACHED[0] != source:
        _CACHED = (source, FaultPlan.load(source))
    return _CACHED[1]


def fire(index: int, attempt: int) -> None:
    """Inject the fault armed for ``(index, attempt)``, if any.

    Called by the supervisor's worker entry point immediately before the
    real work function.  A constant-time no-op when nothing is armed —
    the bit-identical guarantee of the fault-free path rests on that.
    """
    plan = armed_plan()
    if plan is None:
        return
    spec = plan.match(index, attempt)
    if spec is None:
        return
    if spec.op == "raise":
        raise FaultInjected(f"{spec.message} (item {index}, attempt {attempt})")
    if spec.op == "crash":
        if _IN_WORKER:
            os._exit(13)
        raise FaultInjected(
            f"crash fault on item {index}, attempt {attempt} (serial execution)"
        )
    if spec.op == "hang":
        time.sleep(spec.seconds)


def corrupt_cache_entry(store: Any, key: str) -> None:
    """Overwrite *key*'s on-disk entry with unparsable bytes.

    The cache treats corrupt entries as misses, so the next run
    re-evaluates and heals the entry; tests use this directly.
    """
    path = store._path(key)
    if path.exists():
        path.write_text('{"corrupt', encoding="utf-8")


def maybe_corrupt_cache(store: Any, key: str, index: int) -> None:
    """Apply an armed ``corrupt-cache`` fault for item *index* (if any)."""
    if store is None:
        return
    plan = armed_plan()
    if plan is not None and plan.corrupts_cache(index):
        corrupt_cache_entry(store, key)
