"""Supervised fan-out: retries, per-item timeouts, pool respawn, degrade.

:func:`run_supervised` is the generic execution primitive behind
:func:`repro.simulation.parallel.map_jobs` and every study fan-out.  It
maps a module-level function over a payload list — serially or across a
``ProcessPoolExecutor`` — under a :class:`~repro.exec.RunPolicy`, and
returns one :class:`~repro.exec.ItemOutcome` per payload instead of
letting a single bad item abort the batch.

The pooled scheduler runs in *waves*.  Each wave submits every
unresolved item, then polls with a short ``concurrent.futures.wait``
tick, gathering results as they land.  Three kinds of trouble disrupt a
wave:

* a worker **exception** — the item is charged an attempt and either
  retried next wave or finalised ``failed``;
* a **pool break** (a worker died — segfault, ``os._exit``, OOM kill) —
  ``ProcessPoolExecutor`` cannot say which item was responsible, so the
  supervisor charges one attempt to *every* submitted-but-unresolved
  item, tears the pool down, and respawns it.  The guilty item's attempt
  counter is therefore guaranteed to advance (its retry re-executes under
  a new attempt number), while innocent items merely recompute — their
  results are bit-identical by the determinism contract;
* a **hung item** — with ``policy.timeout`` set, an item observed running
  longer than the budget disrupts the wave the same way (a running future
  cannot be cancelled, so the pool is torn down around it); the item is
  charged a ``timeout`` attempt and retried like any other failure.

Pool rebuilds are bounded by ``policy.pool_restarts``; once exhausted the
run either degrades to serial in-process execution
(``policy.degrade_serial``, the default) or finalises the remaining items
as failed.  Serial execution cannot preempt a running call, so per-item
timeouts are not enforced there.

``KeyboardInterrupt`` is never absorbed into an outcome: the pool is
shut down with ``cancel_futures=True`` and its workers killed (no
orphaned children), then the interrupt propagates to the caller.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable

from repro._util import require, require_int
from repro.exec.faults import fire, mark_worker_process
from repro.exec.outcomes import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ItemOutcome,
)
from repro.exec.policy import RunPolicy

__all__ = ["resolve_jobs", "run_supervised"]

# Poll interval of the wave loop: long enough to keep the supervising
# process idle, short enough that timeout enforcement is responsive.
_TICK = 0.05


def resolve_jobs(jobs: "int | str | None") -> int:
    """Normalise a ``--jobs`` value to a worker count.

    ``None``/``1`` mean serial in-process execution; ``0`` or ``"auto"``
    mean one worker per available CPU; any other positive int is taken
    as-is.
    """
    if jobs is None:
        return 1
    require(not isinstance(jobs, bool), "jobs must be an int or 'auto', not a bool")
    if jobs == "auto" or jobs == 0:
        return max(1, os.cpu_count() or 1)
    require_int(jobs, "jobs", minimum=1)
    return int(jobs)


def _invoke(task: "tuple[Callable[[Any], Any], Any, int, int]") -> Any:
    """Worker entry point: fault-injection hook, then the real function.

    ``task`` is ``(fn, payload, index, attempt)`` so the hook can match
    armed faults deterministically; with nothing armed it is a no-op.
    """
    fn, payload, index, attempt = task
    fire(index, attempt)
    return fn(payload)


class _RunState:
    """Mutable bookkeeping shared by the pooled and serial schedulers."""

    def __init__(self, count: int) -> None:
        self.todo: "set[int]" = set(range(count))
        self.attempts: "list[int]" = [0] * count
        self.errors: "list[str]" = [""] * count
        self.excs: "list[BaseException | None]" = [None] * count
        # Status the item would be finalised with if no further execution
        # happens (last failure kind: failed vs timeout).
        self.statuses: "list[str]" = [OUTCOME_FAILED] * count
        self.outcomes: "dict[int, ItemOutcome]" = {}


def _finish(
    state: _RunState,
    index: int,
    outcome: ItemOutcome,
    on_result: "Callable[[int, ItemOutcome], None] | None",
) -> None:
    state.outcomes[index] = outcome
    state.todo.discard(index)
    if on_result is not None:
        on_result(index, outcome)


def _finish_unresolved(
    state: _RunState,
    index: int,
    on_result: "Callable[[int, ItemOutcome], None] | None",
) -> None:
    """Finalise an item from its recorded (non-``ok``) bookkeeping."""
    _finish(
        state,
        index,
        ItemOutcome(
            index=index,
            status=state.statuses[index],
            attempts=state.attempts[index],
            error=state.errors[index],
            exception=state.excs[index],
        ),
        on_result,
    )


def _run_serial(
    fn: "Callable[[Any], Any]",
    items: "list[Any]",
    pol: RunPolicy,
    state: _RunState,
    on_result: "Callable[[int, ItemOutcome], None] | None",
) -> None:
    """Run every unresolved item in this process, honouring prior attempts.

    Used both for ``jobs <= 1`` runs and as the degraded path once pool
    restarts are exhausted.  Only ``Exception`` is absorbed into an
    outcome — ``KeyboardInterrupt``/``SystemExit`` propagate.
    """
    for index in sorted(state.todo):
        while index in state.todo:
            if state.attempts[index] > pol.max_retries:
                _finish_unresolved(state, index, on_result)
                break
            delay = pol.backoff_delay(index, state.attempts[index])
            if delay > 0:
                time.sleep(delay)
            try:
                value = _invoke((fn, items[index], index, state.attempts[index]))
            except Exception as exc:
                state.attempts[index] += 1
                state.errors[index] = f"{type(exc).__name__}: {exc}"
                state.excs[index] = exc
                state.statuses[index] = OUTCOME_FAILED
                continue
            state.attempts[index] += 1
            _finish(
                state,
                index,
                ItemOutcome(
                    index=index,
                    status=OUTCOME_OK,
                    attempts=state.attempts[index],
                    value=value,
                ),
                on_result,
            )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly broken or hung) pool down without orphaning workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.kill()
    for proc in procs:
        proc.join(timeout=1.0)


def _run_wave(
    fn: "Callable[[Any], Any]",
    items: "list[Any]",
    pool: ProcessPoolExecutor,
    pol: RunPolicy,
    state: _RunState,
    on_result: "Callable[[int, ItemOutcome], None] | None",
) -> bool:
    """Submit all unresolved items and gather until done or disrupted.

    Returns ``True`` when the wave was disrupted (pool break or hung
    item) and the pool must be torn down; every submitted-but-unresolved
    item has then been charged one interrupted attempt, so a crashing
    item cannot replay the same attempt number forever.
    """
    futs: "dict[Future[Any], int]" = {}
    disrupted = False
    try:
        for index in sorted(state.todo):
            task = (fn, items[index], index, state.attempts[index])
            futs[pool.submit(_invoke, task)] = index
    except BrokenExecutor:
        disrupted = True
    charged: "set[int]" = set()
    timed_out: "set[int]" = set()
    started: "dict[Future[Any], float]" = {}
    pending = set(futs)
    while pending and not disrupted:
        done, _ = wait(pending, timeout=_TICK, return_when=FIRST_COMPLETED)
        now = time.perf_counter()
        for fut in done:
            pending.discard(fut)
            index = futs[fut]
            try:
                value = fut.result()
            except (BrokenExecutor, CancelledError):
                disrupted = True
                continue
            except Exception as exc:
                state.attempts[index] += 1
                charged.add(index)
                state.errors[index] = f"{type(exc).__name__}: {exc}"
                state.excs[index] = exc
                state.statuses[index] = OUTCOME_FAILED
                if state.attempts[index] > pol.max_retries:
                    _finish_unresolved(state, index, on_result)
                continue
            state.attempts[index] += 1
            charged.add(index)
            _finish(
                state,
                index,
                ItemOutcome(
                    index=index,
                    status=OUTCOME_OK,
                    attempts=state.attempts[index],
                    value=value,
                ),
                on_result,
            )
        if disrupted or pol.timeout is None:
            continue
        for fut in pending:
            if fut not in started:
                if fut.running():
                    started[fut] = now
            elif now - started[fut] > pol.timeout:
                timed_out.add(futs[fut])
                disrupted = True
    if not disrupted:
        return False
    for fut, index in futs.items():
        if index not in state.todo or index in charged:
            continue
        state.attempts[index] += 1
        state.excs[index] = None
        if index in timed_out:
            state.errors[index] = f"timed out after {pol.timeout}s"
            state.statuses[index] = OUTCOME_TIMEOUT
        else:
            state.errors[index] = "interrupted by process-pool failure"
            state.statuses[index] = OUTCOME_FAILED
    return True


def _run_pooled(
    fn: "Callable[[Any], Any]",
    items: "list[Any]",
    n_jobs: int,
    pol: RunPolicy,
    state: _RunState,
    on_result: "Callable[[int, ItemOutcome], None] | None",
) -> None:
    restarts = 0
    pool: "ProcessPoolExecutor | None" = None
    try:
        while state.todo:
            for index in sorted(state.todo):
                if state.attempts[index] > pol.max_retries:
                    _finish_unresolved(state, index, on_result)
            if not state.todo:
                break
            delay = max(pol.backoff_delay(i, state.attempts[i]) for i in state.todo)
            if delay > 0:
                time.sleep(delay)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(state.todo)),
                    initializer=mark_worker_process,
                )
            if not _run_wave(fn, items, pool, pol, state, on_result):
                continue
            _terminate_pool(pool)
            pool = None
            if not state.todo:
                continue
            restarts += 1
            if restarts <= pol.pool_restarts:
                continue
            if pol.degrade_serial:
                _run_serial(fn, items, pol, state, on_result)
            else:
                for index in sorted(state.todo):
                    if not state.errors[index]:
                        state.errors[index] = "process pool could not be rebuilt"
                    _finish_unresolved(state, index, on_result)
            return
    except BaseException:
        # KeyboardInterrupt and friends: never leave worker processes
        # behind — kill them and let the interrupt propagate.
        if pool is not None:
            _terminate_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


def run_supervised(
    fn: "Callable[[Any], Any]",
    payloads: Any,
    *,
    jobs: "int | str | None" = None,
    policy: "RunPolicy | None" = None,
    on_result: "Callable[[int, ItemOutcome], None] | None" = None,
) -> "list[ItemOutcome]":
    """Map *fn* over *payloads* under supervision; one outcome per payload.

    ``jobs`` follows :func:`resolve_jobs` and the pool never exceeds the
    payload count.  Results are returned in payload order regardless of
    completion order; *on_result* (if given) is called as each item
    *finalises* — in completion order — so callers can persist results
    and journal progress crash-safely while the run is still going.
    *fn* must be a module-level callable and payloads picklable when
    ``jobs > 1``.  No exception from a worker escapes this function:
    every payload resolves to an :class:`~repro.exec.ItemOutcome` (use
    :func:`~repro.exec.raise_on_failure` for throwing semantics).
    """
    items = list(payloads)
    pol = policy if policy is not None else RunPolicy()
    n_jobs = min(resolve_jobs(jobs), len(items))
    state = _RunState(len(items))
    if n_jobs <= 1:
        _run_serial(fn, items, pol, state, on_result)
    else:
        _run_pooled(fn, items, n_jobs, pol, state, on_result)
    return [state.outcomes[i] for i in range(len(items))]
