"""Retry/timeout/degrade policy for supervised fan-out.

One frozen :class:`RunPolicy` value describes everything the supervisor
(:mod:`repro.exec.supervisor`) may do on an item's behalf: how many times
a failed item is retried, how long a pooled item may run before it is
declared hung, how long to back off between retries, how many times a
broken process pool is rebuilt, and whether exhausted restarts degrade to
serial in-process execution instead of aborting the run.

Backoff is **deterministic**: the jitter factor is derived from a SHA-256
digest of ``(seed, item index, attempt)`` — never from wall-clock state
or the global ``random`` module — so a retried run sleeps the same
amounts every time and the repository's determinism rules (reprolint RD)
stay green.  The default ``backoff_base`` of ``0.0`` disables sleeping
entirely, which is right for the pure closed-form workers where a retry
is free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro._util import reject_unknown_keys, require

__all__ = ["RunPolicy"]


@dataclass(frozen=True)
class RunPolicy:
    """How the supervised runtime treats failures.

    max_retries:
        extra executions granted to a failed/interrupted item — every
        item runs at most ``max_retries + 1`` times.
    timeout:
        per-item wall-clock budget in seconds for *pooled* execution
        (measured from the moment the supervisor observes the item
        running).  ``None`` disables the check.  Serial execution cannot
        preempt a running call, so timeouts are not enforced there.
    backoff_base / backoff_factor / backoff_max:
        the delay before retry attempt ``k`` (1-based) is
        ``base · factor^(k-1) · jitter`` seconds, capped at
        ``backoff_max``; ``base = 0`` disables sleeping.
    seed:
        root of the deterministic jitter derivation (see
        :meth:`backoff_delay`).
    pool_restarts:
        how many times a broken pool (worker crash / hung item) is torn
        down and respawned before the run degrades or aborts.
    degrade_serial:
        with restarts exhausted, ``True`` finishes the remaining items
        serially in-process; ``False`` marks them failed.
    """

    max_retries: int = 2
    timeout: "float | None" = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    seed: int = 0
    pool_restarts: int = 2
    degrade_serial: bool = True

    def __post_init__(self) -> None:
        require(
            isinstance(self.max_retries, int) and not isinstance(self.max_retries, bool)
            and self.max_retries >= 0,
            f"max_retries must be a non-negative int, got {self.max_retries!r}",
        )
        require(
            self.timeout is None or (isinstance(self.timeout, (int, float)) and self.timeout > 0),
            f"timeout must be None or a positive number of seconds, got {self.timeout!r}",
        )
        require(
            isinstance(self.backoff_base, (int, float)) and self.backoff_base >= 0,
            f"backoff_base must be >= 0 seconds, got {self.backoff_base!r}",
        )
        require(
            isinstance(self.backoff_factor, (int, float)) and self.backoff_factor >= 1.0,
            f"backoff_factor must be >= 1, got {self.backoff_factor!r}",
        )
        require(
            isinstance(self.backoff_max, (int, float)) and self.backoff_max >= 0,
            f"backoff_max must be >= 0 seconds, got {self.backoff_max!r}",
        )
        require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool) and self.seed >= 0,
            f"seed must be a non-negative int, got {self.seed!r}",
        )
        require(
            isinstance(self.pool_restarts, int) and not isinstance(self.pool_restarts, bool)
            and self.pool_restarts >= 0,
            f"pool_restarts must be a non-negative int, got {self.pool_restarts!r}",
        )
        require(
            isinstance(self.degrade_serial, bool),
            f"degrade_serial must be a bool, got {self.degrade_serial!r}",
        )

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Deterministic delay in seconds before *attempt* of item *index*.

        ``attempt`` counts executions already consumed, so the first run
        (``attempt == 0``) never sleeps.  The jitter multiplier lies in
        ``[0.5, 1.5)`` and is a pure function of ``(seed, index,
        attempt)`` — replaying a run replays its backoff schedule.
        """
        if attempt <= 0 or self.backoff_base <= 0.0:
            return 0.0
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{attempt}".encode("utf-8")
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0**64
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1) * jitter
        return min(float(self.backoff_max), float(delay))

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe mapping (embedded in partial-result ``data``)."""
        return {
            "max_retries": self.max_retries,
            "timeout": self.timeout,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "seed": self.seed,
            "pool_restarts": self.pool_restarts,
            "degrade_serial": self.degrade_serial,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "RunPolicy":
        """Rebuild a policy from :meth:`to_dict`; unknown keys rejected."""
        reject_unknown_keys(
            data,
            (
                "max_retries", "timeout", "backoff_base", "backoff_factor",
                "backoff_max", "seed", "pool_restarts", "degrade_serial",
            ),
            "run policy",
        )
        return cls(**data)
