"""System organisations: paper Table 1 plus parametric generators.

The two paper organisations live in :mod:`repro.core.parameters`
(:func:`~repro.core.parameters.paper_system_1120`,
:func:`~repro.core.parameters.paper_system_544`); this module renders them
as the paper's Table 1 rows and provides generators for additional
homogeneous / random-heterogeneous organisations used by examples, tests
and ablations.
"""

from __future__ import annotations

import numpy as np

from repro._util import require, require_int
from repro.core.parameters import (
    NET1,
    NET2,
    ClusterSpec,
    NetworkCharacteristics,
    SystemConfig,
    paper_system_544,
    paper_system_1120,
)

__all__ = [
    "table1_rows",
    "organization_string",
    "homogeneous_system",
    "random_heterogeneous_system",
    "paper_organizations",
]


def organization_string(config: SystemConfig) -> str:
    """Compact ``n_i`` run-length description, e.g. ``"n=1 x12, n=2 x16, n=3 x4"``."""
    runs: list[tuple[int, int]] = []
    for spec in config.clusters:
        if runs and runs[-1][0] == spec.tree_depth:
            runs[-1] = (spec.tree_depth, runs[-1][1] + 1)
        else:
            runs.append((spec.tree_depth, 1))
    return ", ".join(f"n={depth} x{count}" for depth, count in runs)


def table1_rows() -> list[dict]:
    """Paper Table 1 as structured rows (N, C, m, node organisation)."""
    rows = []
    for config in paper_organizations():
        rows.append(
            {
                "N": config.total_nodes,
                "C": config.num_clusters,
                "m": config.switch_ports,
                "organization": organization_string(config),
            }
        )
    return rows


def paper_organizations() -> tuple[SystemConfig, SystemConfig]:
    """Both Table 1 systems, in the paper's order."""
    return (paper_system_1120(), paper_system_544())


def homogeneous_system(
    *,
    switch_ports: int,
    tree_depth: int,
    num_clusters: int,
    icn1: NetworkCharacteristics = NET1,
    ecn1: NetworkCharacteristics = NET2,
    icn2: NetworkCharacteristics = NET1,
    name: str | None = None,
) -> SystemConfig:
    """A cluster-of-clusters with identical clusters (the [11]-style baseline)."""
    require_int(num_clusters, "num_clusters", minimum=1)
    clusters = tuple(
        ClusterSpec(tree_depth=tree_depth, icn1=icn1, ecn1=ecn1, name=f"c{i}")
        for i in range(num_clusters)
    )
    return SystemConfig(
        switch_ports=switch_ports,
        clusters=clusters,
        icn2=icn2,
        name=name or f"homog-m{switch_ports}-n{tree_depth}-C{num_clusters}",
    )


def random_heterogeneous_system(
    rng: np.random.Generator,
    *,
    switch_ports: int,
    num_clusters: int,
    min_depth: int = 1,
    max_depth: int = 3,
    icn1: NetworkCharacteristics = NET1,
    ecn1: NetworkCharacteristics = NET2,
    icn2: NetworkCharacteristics = NET1,
) -> SystemConfig:
    """A random organisation with i.i.d. cluster depths (for property tests)."""
    require(min_depth >= 1 and max_depth >= min_depth, "invalid depth range")
    depths = rng.integers(min_depth, max_depth + 1, size=num_clusters)
    clusters = tuple(
        ClusterSpec(tree_depth=int(depth), icn1=icn1, ecn1=ecn1, name=f"c{i}")
        for i, depth in enumerate(depths)
    )
    return SystemConfig(
        switch_ports=switch_ports,
        clusters=clusters,
        icn2=icn2,
        name=f"random-m{switch_ports}-C{num_clusters}",
    )
