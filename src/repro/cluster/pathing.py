"""End-to-end path construction across the cluster-of-clusters fabric.

A message's journey is a sequence of **segments**, each traversed with
wormhole flow control; segments are separated by the store-and-forward
concentrator/dispatcher buffers (paper Fig. 2, DESIGN.md §4):

* intra-cluster: one segment through ICN1(i);
* inter-cluster: ECN1(i) ascent to the concentrator, ICN2 crossing between
  concentrators, ECN1(j) descent from the dispatcher to the destination.

Each segment is a list of :class:`~repro.cluster.channels.SystemChannel`
in traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require
from repro.cluster.channels import SystemChannel
from repro.cluster.system import GlobalNodeId, HeterogeneousSystem
from repro.topology.mport_ntree import ChannelKind, Link
from repro.topology.routing import ascend_to_root, descend_from_root, home_root, route

__all__ = ["PathSegment", "SystemPath", "build_path", "intra_path", "inter_path"]


@dataclass(frozen=True)
class PathSegment:
    """One wormhole leg of a journey."""

    label: str  # "icn1" | "ecn1-up" | "icn2" | "ecn1-down"
    channels: tuple[SystemChannel, ...]

    @property
    def num_links(self) -> int:
        return len(self.channels)


@dataclass(frozen=True)
class SystemPath:
    """A complete source→destination journey."""

    source: GlobalNodeId
    destination: GlobalNodeId
    segments: tuple[PathSegment, ...]

    @property
    def is_inter_cluster(self) -> bool:
        return len(self.segments) > 1

    @property
    def total_links(self) -> int:
        return sum(s.num_links for s in self.segments)


def _tag(network: tuple, links: tuple[Link, ...]) -> tuple[SystemChannel, ...]:
    return tuple(SystemChannel.from_link(network, link) for link in links)


def intra_path(system: HeterogeneousSystem, source: GlobalNodeId, destination: GlobalNodeId) -> SystemPath:
    """Route a message that stays inside its cluster (through ICN1)."""
    src_cluster, src_addr = system.locate(source)
    dst_cluster, dst_addr = system.locate(destination)
    require(src_cluster.index == dst_cluster.index, "intra_path requires same-cluster endpoints")
    require(source != destination, "source and destination must differ")
    tree_route = route(src_cluster.icn1, src_addr, dst_addr)
    segment = PathSegment("icn1", _tag(("icn1", src_cluster.index), tree_route.links))
    return SystemPath(source, destination, (segment,))


def inter_path(system: HeterogeneousSystem, source: GlobalNodeId, destination: GlobalNodeId) -> SystemPath:
    """Route a message between clusters: ECN1(i) → ICN2 → ECN1(j).

    The ECN1 legs use the deterministic climb to / descent from the
    designated root switch the concentrator attaches to; the ICN2 leg is a
    normal Up*/Down* route between the two concentrators' node slots.
    """
    src_cluster, src_addr = system.locate(source)
    dst_cluster, dst_addr = system.locate(destination)
    require(src_cluster.index != dst_cluster.index, "inter_path requires different clusters")

    i, j = src_cluster.index, dst_cluster.index
    cd_i, cd_j = system.concentrator(i), system.concentrator(j)

    # Leg 1: source node up through ECN1(i) to its concentrator, via the
    # source's home root (spreads concentrate traffic over the roots).
    src_root = home_root(src_cluster.ecn1, src_addr)
    up = ascend_to_root(src_cluster.ecn1, src_addr, src_root)
    up_channels = _tag(("ecn1", i), up.links) + (
        SystemChannel(("ecn1", i), src_root, cd_i, ChannelKind.SWITCH_TO_NODE),
    )

    # Leg 2: concentrator i to concentrator j through ICN2.
    icn2_route = route(system.icn2, system.icn2_address(i), system.icn2_address(j))
    icn2_channels = tuple(
        SystemChannel.from_link(("icn2",), system._substitute_concentrators(link))
        for link in icn2_route.links
    )

    # Leg 3: dispatcher j down through ECN1(j) to the destination node, via
    # the destination's home root (spreads dispatch traffic over the roots).
    dst_root = home_root(dst_cluster.ecn1, dst_addr)
    down = descend_from_root(dst_cluster.ecn1, dst_root, dst_addr)
    down_channels = (
        SystemChannel(("ecn1", j), cd_j, dst_root, ChannelKind.NODE_TO_SWITCH),
    ) + _tag(("ecn1", j), down.links)

    return SystemPath(
        source,
        destination,
        (
            PathSegment("ecn1-up", up_channels),
            PathSegment("icn2", icn2_channels),
            PathSegment("ecn1-down", down_channels),
        ),
    )


def build_path(system: HeterogeneousSystem, source: GlobalNodeId, destination: GlobalNodeId) -> SystemPath:
    """Dispatch to :func:`intra_path` or :func:`inter_path`."""
    src_cluster = system.cluster_of(source)
    if src_cluster.contains_global(destination):
        return intra_path(system, source, destination)
    return inter_path(system, source, destination)
