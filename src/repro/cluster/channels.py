"""System-wide channel identities for the cluster-of-clusters fabric.

Every directed channel in the system is identified by the network it
belongs to plus its two endpoints.  Networks are tagged:

* ``("icn1", i)`` — intra-communication network of cluster ``i``,
* ``("ecn1", i)`` — inter-communication network of cluster ``i``,
* ``("icn2",)``  — the global inter-cluster network.

Concentrator/dispatchers appear as the endpoint ``Concentrator(i)``: they
receive from their ECN1's designated root switch and inject into it, and
simultaneously occupy node slot ``i`` of the ICN2 tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.topology.addressing import NodeAddress, SwitchAddress
from repro.topology.mport_ntree import ChannelKind, Link

__all__ = ["Concentrator", "SystemEndpoint", "SystemChannel", "NetworkTag"]

NetworkTag = tuple


@dataclass(frozen=True, order=True)
class Concentrator:
    """The concentrator/dispatcher of one cluster (paper Fig. 2)."""

    cluster_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"cd{self.cluster_index}"


SystemEndpoint = Union[NodeAddress, SwitchAddress, Concentrator]


@dataclass(frozen=True)
class SystemChannel:
    """A directed channel of the assembled system.

    ``kind`` selects the service-time primitive (``t_cn`` for any link with
    a node-like endpoint — processing node or concentrator — and ``t_cs``
    for switch↔switch links); ``network`` selects whose characteristics
    apply.
    """

    network: NetworkTag
    source: SystemEndpoint
    target: SystemEndpoint
    kind: ChannelKind

    @classmethod
    def from_link(cls, network: NetworkTag, link: Link) -> "SystemChannel":
        """Tag a tree-local :class:`~repro.topology.mport_ntree.Link`."""
        return cls(network=network, source=link.source, target=link.target, kind=link.kind)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        net = ":".join(str(p) for p in self.network)
        return f"{net}//{self.source}->{self.target}"
