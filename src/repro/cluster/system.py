"""Assembly of the heterogeneous cluster-of-clusters system (paper Fig. 1–2).

:class:`HeterogeneousSystem` materialises a :class:`~repro.core.parameters.
SystemConfig` into explicit topologies:

* per cluster: an ICN1 tree and an ECN1 tree over the same ``N_i`` nodes
  (nodes inject into either network directly — paper §2),
* one concentrator/dispatcher per cluster, attached to the ECN1's
  designated root switch and occupying node slot ``i`` of the ICN2 tree,
* the global ICN2 tree over the ``C`` concentrators.

It also owns the global node numbering (flat ids ``0..N-1`` in cluster
order) used by the simulator's traffic generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro._util import require, require_int
from repro.cluster.channels import Concentrator, SystemChannel
from repro.core.parameters import ClusterSpec, SystemConfig
from repro.topology.addressing import NodeAddress
from repro.topology.mport_ntree import ChannelKind, Link, MPortNTree

__all__ = ["ClusterInstance", "GlobalNodeId", "HeterogeneousSystem"]

GlobalNodeId = int


@dataclass(frozen=True)
class ClusterInstance:
    """One materialised cluster: its spec, trees and global id range."""

    index: int
    spec: ClusterSpec
    icn1: MPortNTree
    ecn1: MPortNTree
    first_global_id: int

    @property
    def num_nodes(self) -> int:
        return self.icn1.num_nodes

    def local_to_global(self, local_index: int) -> GlobalNodeId:
        require(0 <= local_index < self.num_nodes, f"local index {local_index} out of range")
        return self.first_global_id + local_index

    def contains_global(self, global_id: GlobalNodeId) -> bool:
        return self.first_global_id <= global_id < self.first_global_id + self.num_nodes


class HeterogeneousSystem:
    """Explicit cluster-of-clusters fabric built from a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        require(isinstance(config, SystemConfig), "config must be a SystemConfig")
        self.config = config
        m = config.switch_ports
        clusters = []
        offset = 0
        for index, spec in enumerate(config.clusters):
            icn1 = MPortNTree(m, spec.tree_depth)
            ecn1 = MPortNTree(m, spec.tree_depth)
            clusters.append(
                ClusterInstance(index=index, spec=spec, icn1=icn1, ecn1=ecn1, first_global_id=offset)
            )
            offset += icn1.num_nodes
        self.clusters: tuple[ClusterInstance, ...] = tuple(clusters)
        self.total_nodes: int = offset
        # The concentrators are the ICN2's nodes; config validation
        # guarantees C = 2*(m/2)**n_c exactly.
        self.icn2: MPortNTree = MPortNTree(m, config.icn2_tree_depth)
        if config.num_clusters > 1:
            require(
                self.icn2.num_nodes == config.num_clusters,
                f"ICN2 population {self.icn2.num_nodes} != cluster count {config.num_clusters}",
            )

    # -- node numbering ---------------------------------------------------------

    def cluster_of(self, global_id: GlobalNodeId) -> ClusterInstance:
        """The cluster owning a flat node id (binary search over offsets)."""
        require_int(global_id, "global_id", minimum=0)
        require(global_id < self.total_nodes, f"node id {global_id} out of range (N={self.total_nodes})")
        lo, hi = 0, len(self.clusters) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.clusters[mid].first_global_id <= global_id:
                lo = mid
            else:
                hi = mid - 1
        return self.clusters[lo]

    def locate(self, global_id: GlobalNodeId) -> tuple[ClusterInstance, NodeAddress]:
        """(cluster, local node address) of a flat node id."""
        cluster = self.cluster_of(global_id)
        local = global_id - cluster.first_global_id
        return cluster, cluster.icn1.node(local)

    def global_ids(self) -> range:
        """All flat node ids."""
        return range(self.total_nodes)

    # -- concentrators ------------------------------------------------------------

    def concentrator(self, cluster_index: int) -> Concentrator:
        require(0 <= cluster_index < len(self.clusters), "cluster index out of range")
        return Concentrator(cluster_index)

    def icn2_address(self, cluster_index: int) -> NodeAddress:
        """ICN2 node slot occupied by cluster *cluster_index*'s concentrator."""
        return self.icn2.node(cluster_index)

    # -- channel enumeration --------------------------------------------------------

    def channels(self) -> Iterator[SystemChannel]:
        """Every directed channel of the assembled system.

        Comprises all ICN1/ECN1 tree channels, the concentrator attachment
        links (ECN1 root ↔ concentrator, node-typed) and the ICN2 tree
        channels with the concentrators substituted for the ICN2's node
        endpoints.
        """
        for cluster in self.clusters:
            icn1_tag = ("icn1", cluster.index)
            for link in cluster.icn1.links():
                yield SystemChannel.from_link(icn1_tag, link)
            ecn1_tag = ("ecn1", cluster.index)
            for link in cluster.ecn1.links():
                yield SystemChannel.from_link(ecn1_tag, link)
            if len(self.clusters) > 1:
                cd = self.concentrator(cluster.index)
                # The concentrator/dispatcher attaches to *every* root switch
                # of its ECN1 so that concentrate and dispatch traffic spread
                # over the replicated roots (DESIGN.md §3 item 11).
                for root in cluster.ecn1.root_switches:
                    yield SystemChannel(ecn1_tag, root, cd, ChannelKind.SWITCH_TO_NODE)
                    yield SystemChannel(ecn1_tag, cd, root, ChannelKind.NODE_TO_SWITCH)
        if len(self.clusters) > 1:
            icn2_tag = ("icn2",)
            for link in self.icn2.links():
                yield SystemChannel.from_link(icn2_tag, self._substitute_concentrators(link))

    def _substitute_concentrators(self, link: Link) -> Link:
        """Replace ICN2 node endpoints with the owning concentrators."""
        source, target = link.source, link.target
        if isinstance(source, NodeAddress):
            source = self.concentrator(self.icn2.node_index(source))
        if isinstance(target, NodeAddress):
            target = self.concentrator(self.icn2.node_index(target))
        return Link(source, target, link.kind)

    # -- summaries ----------------------------------------------------------------

    @cached_property
    def num_channels(self) -> int:
        """Total directed channel count of the fabric."""
        return sum(1 for _ in self.channels())

    def describe(self) -> dict:
        """Structural summary used by reports and tests."""
        return {
            "name": self.config.name,
            "clusters": len(self.clusters),
            "total_nodes": self.total_nodes,
            "switch_ports": self.config.switch_ports,
            "icn2_depth": self.config.icn2_tree_depth,
            "cluster_sizes": [c.num_nodes for c in self.clusters],
            "channels": self.num_channels,
        }
