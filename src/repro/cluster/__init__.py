"""Cluster-of-clusters assembly: explicit fabric, organisations, pathing."""

from repro.cluster.channels import Concentrator, NetworkTag, SystemChannel, SystemEndpoint
from repro.cluster.organizations import (
    homogeneous_system,
    organization_string,
    paper_organizations,
    random_heterogeneous_system,
    table1_rows,
)
from repro.cluster.pathing import PathSegment, SystemPath, build_path, inter_path, intra_path
from repro.cluster.system import ClusterInstance, GlobalNodeId, HeterogeneousSystem

__all__ = [
    "Concentrator",
    "SystemChannel",
    "SystemEndpoint",
    "NetworkTag",
    "HeterogeneousSystem",
    "ClusterInstance",
    "GlobalNodeId",
    "PathSegment",
    "SystemPath",
    "build_path",
    "intra_path",
    "inter_path",
    "homogeneous_system",
    "random_heterogeneous_system",
    "organization_string",
    "table1_rows",
    "paper_organizations",
]
