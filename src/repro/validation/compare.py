"""Model-vs-simulation comparison harness (paper §4).

Runs the analytical model and the discrete-event simulator across a load
grid and reports per-point relative errors — the paper's central validation
methodology ("at light traffic the model differs from simulation by about
4 to 8 percent").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.model import AnalyticalModel
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.core.sweep import find_saturation_load
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.parallel import SimWorkItem, resolve_jobs, run_work_items
from repro.simulation.runner import SimulationResult, SimulationSession

__all__ = ["ValidationPoint", "ValidationCurve", "run_validation", "light_load_error"]


@dataclass(frozen=True)
class ValidationPoint:
    """One load point of a validation curve."""

    load: float
    model_latency: float
    sim_latency: float
    sim_std: float
    sim_completed: bool

    @property
    def relative_error(self) -> float:
        """(model − sim) / sim; negative when the model is optimistic."""
        if not np.isfinite(self.model_latency) or self.sim_latency == 0:
            return float("nan")
        return (self.model_latency - self.sim_latency) / self.sim_latency


@dataclass(frozen=True)
class ValidationCurve:
    """Model and simulation latencies across one load grid."""

    label: str
    points: tuple[ValidationPoint, ...]
    sim_results: tuple[SimulationResult, ...]

    def max_abs_error(self, *, load_fraction_below: float = 1.0) -> float:
        """Largest |relative error| over points with load ≤ fraction·max.

        Delegates to :func:`repro.analysis.accuracy.max_abs_error` under
        the ``"skip"`` policy — validation curves intentionally run up to
        the knee, so saturated points are ignored rather than scored.
        """
        from repro.analysis.accuracy import max_abs_error as metric

        max_load = max(p.load for p in self.points)
        errors = [
            p.relative_error for p in self.points if p.load <= load_fraction_below * max_load
        ]
        return metric(errors, nonfinite="skip") if errors else float("nan")

    def as_rows(self) -> list[tuple[float, float, float, float]]:
        """(load, model, sim, rel_error) rows for reporting."""
        return [(p.load, p.model_latency, p.sim_latency, p.relative_error) for p in self.points]

    @property
    def sim_events(self) -> int:
        """Total simulator events across all points of the curve."""
        return sum(r.events for r in self.sim_results)

    @property
    def sim_wall_seconds(self) -> float:
        """Critical-path simulator wall time: the slowest single point.

        Under parallel execution the points overlap, so the sum of
        per-point walls overstates elapsed time; the max is the lower
        bound any worker count must pay.
        """
        return max((r.wall_seconds for r in self.sim_results), default=0.0)


def run_validation(
    system: SystemConfig,
    message: MessageSpec,
    loads,
    *,
    label: str = "",
    seed: int = 0,
    window: MeasurementWindow | None = None,
    granularity: str = "message",
    options: ModelOptions | None = None,
    session: SimulationSession | None = None,
    pattern=None,
    jobs: "int | str | None" = None,
    engine: str = "reference",
) -> ValidationCurve:
    """Evaluate model and simulator at every load in *loads*.

    A non-uniform *pattern* (see :mod:`repro.workloads.patterns`) drives
    both sides of the comparison: the model's destination weighting and the
    simulator's destination sampling.

    ``jobs`` fans the per-point simulations across a process pool
    (``0``/``"auto"`` = one worker per CPU).  Point ``i`` keeps its
    historical seed ``seed + i`` — the points are *different operating
    conditions*, not replicas of one stream — so the curve is bit-identical
    for any worker count.  *engine* selects the message-level event engine
    (``"reference"``/``"array"``, see :mod:`repro.simulation.eventcore`);
    both produce the identical curve.
    """
    loads = np.asarray(loads, dtype=np.float64)
    require(loads.ndim == 1 and loads.size > 0, "loads must be a non-empty 1-D sequence")
    model = AnalyticalModel(system, message, options, pattern)
    session = session or SimulationSession(system, message, options=options)
    window = window or MeasurementWindow.scaled_paper(20_000)
    items = [
        SimWorkItem(
            system=session.system_config,
            message=session.message,
            options=session.options,
            generation_rate=float(lam),
            seed=seed + idx,
            window=window,
            granularity=granularity,
            pattern=pattern,
            engine=engine,
        )
        for idx, lam in enumerate(loads)
    ]
    sim_results = run_work_items(items, jobs=resolve_jobs(jobs), session=session)
    points = []
    for lam, sim in zip(loads, sim_results):
        model_result = model.evaluate(float(lam))
        points.append(
            ValidationPoint(
                load=float(lam),
                model_latency=model_result.latency,
                sim_latency=sim.mean_latency,
                sim_std=sim.stats.std,
                sim_completed=sim.completed,
            )
        )
    return ValidationCurve(label=label or f"{system.name}", points=tuple(points), sim_results=tuple(sim_results))


def light_load_error(
    system: SystemConfig,
    message: MessageSpec,
    *,
    load_fraction: float = 0.2,
    seed: int = 0,
    window: MeasurementWindow | None = None,
    options: ModelOptions | None = None,
    session: SimulationSession | None = None,
) -> ValidationPoint:
    """Model-vs-sim error at a light load (*fraction* of saturation).

    The paper's headline accuracy claim is stated in this regime.
    """
    require(0.0 < load_fraction < 1.0, "load_fraction must be in (0, 1)")
    model = AnalyticalModel(system, message, options)
    lam = load_fraction * find_saturation_load(model)
    curve = run_validation(
        system,
        message,
        [lam],
        label="light-load",
        seed=seed,
        window=window,
        options=options,
        session=session,
    )
    return curve.points[0]
