"""The paper's validation studies: scenarios and model-vs-sim comparison."""

from repro.validation.report import ReproductionReport, reproduction_report
from repro.validation.compare import (
    ValidationCurve,
    ValidationPoint,
    light_load_error,
    run_validation,
)
from repro.validation.scenarios import (
    FigureScenario,
    all_latency_figures,
    default_load_grid,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7_systems,
)

__all__ = [
    "ReproductionReport",
    "reproduction_report",
    "ValidationCurve",
    "ValidationPoint",
    "run_validation",
    "light_load_error",
    "FigureScenario",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7_systems",
    "all_latency_figures",
    "default_load_grid",
]
