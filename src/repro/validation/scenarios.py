"""Scenario definitions for the paper's validation figures (Figs. 3–7).

Each scenario bundles the system organisation (Table 1), the network
characteristics (Table 2), a message geometry and a load grid shaped like
the figure's x-axis.  The benches and EXPERIMENTS.md are generated from
these definitions, so the mapping figure → code lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.model import AnalyticalModel
from repro.core.parameters import MessageSpec, SystemConfig, paper_system_544, paper_system_1120
from repro.core.sweep import find_saturation_load

__all__ = [
    "FigureScenario",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7_systems",
    "all_latency_figures",
    "default_load_grid",
]


@dataclass(frozen=True)
class FigureScenario:
    """One latency-vs-load validation figure."""

    figure: str  # e.g. "Fig.3"
    title: str
    system: SystemConfig
    messages: tuple[MessageSpec, ...]  # one curve pair (model+sim) per spec
    paper_x_max: float  # the figure's x-axis upper bound in the paper

    def load_grid(self, message: MessageSpec, *, points: int = 10, fraction: float = 0.92) -> np.ndarray:
        """Loads from light traffic up to just below model saturation."""
        return default_load_grid(self.system, message, points=points, fraction=fraction)


def default_load_grid(
    system: SystemConfig,
    message: MessageSpec,
    *,
    points: int = 10,
    fraction: float = 0.92,
) -> np.ndarray:
    """Evenly spaced grid in ``(0, fraction·λ*]`` like the paper's figures."""
    require(points >= 2, "points must be >= 2")
    model = AnalyticalModel(system, message)
    lam_star = find_saturation_load(model)
    top = fraction * lam_star
    return np.linspace(top / points, top, points)


def figure3() -> FigureScenario:
    """Fig. 3: N=1120, m=8, M=32 flits, d_m ∈ {256, 512} bytes."""
    return FigureScenario(
        figure="Fig.3",
        title="Mean message latency, N=1120, M=32",
        system=paper_system_1120(),
        messages=(MessageSpec(32, 256.0), MessageSpec(32, 512.0)),
        paper_x_max=5e-4,
    )


def figure4() -> FigureScenario:
    """Fig. 4: N=1120, m=8, M=64 flits, d_m ∈ {256, 512} bytes."""
    return FigureScenario(
        figure="Fig.4",
        title="Mean message latency, N=1120, M=64",
        system=paper_system_1120(),
        messages=(MessageSpec(64, 256.0), MessageSpec(64, 512.0)),
        paper_x_max=2.5e-4,
    )


def figure5() -> FigureScenario:
    """Fig. 5: N=544, m=4, M=32 flits, d_m ∈ {256, 512} bytes."""
    return FigureScenario(
        figure="Fig.5",
        title="Mean message latency, N=544, M=32",
        system=paper_system_544(),
        messages=(MessageSpec(32, 256.0), MessageSpec(32, 512.0)),
        paper_x_max=1e-3,
    )


def figure6() -> FigureScenario:
    """Fig. 6: N=544, m=4, M=64 flits, d_m ∈ {256, 512} bytes."""
    return FigureScenario(
        figure="Fig.6",
        title="Mean message latency, N=544, M=64",
        system=paper_system_544(),
        messages=(MessageSpec(64, 256.0), MessageSpec(64, 512.0)),
        paper_x_max=5e-4,
    )


def all_latency_figures() -> tuple[FigureScenario, ...]:
    """Figs. 3–6 in paper order."""
    return (figure3(), figure4(), figure5(), figure6())


def figure7_systems() -> tuple[SystemConfig, SystemConfig]:
    """Fig. 7 operates on both Table 1 systems with M=128, d_m=256."""
    return (paper_system_544(), paper_system_1120())
