"""One-call reproduction report.

:func:`reproduction_report` regenerates the paper's entire evaluation —
Tables 1–2, the four latency figures (model + simulation), the Fig. 7
what-if study, the light-load accuracy table and the bottleneck audit —
and returns it as a single text document plus a structured payload.  The
CLI exposes it as ``python -m repro report``; the benchmark harness
produces the same artifacts piecewise (one bench per figure) for timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require_int
from repro.analysis import icn2_bandwidth_study, model_bottlenecks, render_table
from repro.cluster import paper_organizations, table1_rows
from repro.core import NET1, NET2, AnalyticalModel, MessageSpec
from repro.core.sweep import find_saturation_load
from repro.io.reporting import (
    format_table1,
    format_table2,
    format_validation_curve,
    format_whatif_study,
)
from repro.simulation import MeasurementWindow, SimulationSession
from repro.validation.compare import run_validation
from repro.validation.scenarios import all_latency_figures

__all__ = ["ReproductionReport", "reproduction_report"]


@dataclass(frozen=True)
class ReproductionReport:
    """The regenerated evaluation section."""

    text: str
    payload: dict
    light_load_mean_abs_error: float
    light_load_max_abs_error: float

    def within_paper_band(self, band: float = 0.12) -> bool:
        """True if the worst light-load error is inside the accepted band."""
        return self.light_load_max_abs_error < band


def reproduction_report(
    *,
    messages_per_point: int = 10_000,
    points_per_curve: int = 6,
    seed: int = 0,
    include_simulation: bool = True,
    jobs: "int | str | None" = None,
) -> ReproductionReport:
    """Regenerate every table and figure of the paper's §4.

    ``messages_per_point`` scales the simulation protocol (paper: 100 000);
    ``include_simulation=False`` produces a model-only report in seconds;
    ``jobs`` fans each validation curve's simulations across a process pool
    (``0``/``"auto"`` = one worker per CPU) without changing any number.
    """
    require_int(messages_per_point, "messages_per_point", minimum=100)
    require_int(points_per_curve, "points_per_curve", minimum=2)
    window = MeasurementWindow.scaled_paper(messages_per_point)
    sections: list[str] = []
    payload: dict = {}
    light_errors: list[float] = []

    sections.append(format_table1(table1_rows()))
    sections.append(format_table2([NET1, NET2]))
    payload["table1"] = table1_rows()

    sessions: dict = {}
    for figure in all_latency_figures():
        blocks = [f"{figure.title} (paper x-axis to {figure.paper_x_max:g})"]
        for message in figure.messages:
            grid = figure.load_grid(message, points=points_per_curve)
            label = f"{figure.system.name}, M={message.length_flits}, Lm={message.flit_bytes:g}"
            if include_simulation:
                key = (figure.system, message)
                if key not in sessions:
                    sessions[key] = SimulationSession(figure.system, message)
                curve = run_validation(
                    figure.system,
                    message,
                    grid,
                    label=label,
                    seed=seed,
                    window=window,
                    session=sessions[key],
                    jobs=jobs,
                )
                blocks.append(format_validation_curve(curve, figure=figure.figure))
                light_errors.append(abs(curve.points[0].relative_error))
                payload[f"{figure.figure}:{label}"] = curve.as_rows()
            else:
                model = AnalyticalModel(figure.system, message)
                rows = [(float(lam), model.evaluate(float(lam)).latency) for lam in grid]
                blocks.append(
                    render_table(
                        ["lambda_g", "model"],
                        rows,
                        title=f"{figure.figure} {label} (model only)",
                    )
                )
                payload[f"{figure.figure}:{label}"] = rows
        sections.append("\n\n".join(blocks))

    fig7 = icn2_bandwidth_study(paper_organizations()[::-1], MessageSpec(128, 256.0), points=8)
    sections.append(format_whatif_study(fig7))
    payload["fig7"] = {c.label: list(c.latencies) for c in fig7.curves}

    audit_rows = []
    for system in paper_organizations():
        message = MessageSpec(32, 256.0)
        lam_star = find_saturation_load(AnalyticalModel(system, message))
        report = model_bottlenecks(system, message, 0.5 * lam_star)
        audit_rows.append([system.name, f"{lam_star:.3e}", report.binding.resource, report.binding.kind])
    sections.append(
        render_table(
            ["system", "λ*", "binding resource", "kind"],
            audit_rows,
            title="Bottleneck audit (paper §4: the ICN2 path binds)",
        )
    )
    payload["bottlenecks"] = audit_rows

    mean_err = float(np.mean(light_errors)) if light_errors else float("nan")
    max_err = float(np.max(light_errors)) if light_errors else float("nan")
    if light_errors:
        sections.append(
            f"Light-load accuracy: mean |error| = {mean_err:.1%}, max = {max_err:.1%} "
            f"(paper claims ~4-8%)"
        )
    text = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    return ReproductionReport(
        text=text,
        payload=payload,
        light_load_mean_abs_error=mean_err,
        light_load_max_abs_error=max_err,
    )
