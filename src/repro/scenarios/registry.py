"""Named scenario registry: paper presets plus generated families.

The paper evaluates exactly two organisations (Table 1); the registry keeps
those under their historical names ``"1120"`` and ``"544"`` and surrounds
them with generated families so a configuration-space study starts from
dozens of ready-made points:

* **scale-outs** — the Table 1 organisations replicated to the next valid
  ICN2 populations (``C = 2·(m/2)**n_c``), up to N=4480 nodes;
* **heterogeneity ladder** — fixed ``m=8, C=8`` systems stepping from a
  homogeneous node organisation to an extreme small/large cluster split;
* **ICN2 bandwidth skews** — the presets with the global network halved or
  doubled (the paper's Fig. 7 axis, frozen into named scenarios);
* **message / traffic variants** — a long-message preset and non-uniform
  (hotspot, locality) traffic on the N=544 system.

Scenarios are registered as *factories* (specs are built on first access)
so importing this module stays cheap.  :func:`register_scenario` accepts
user factories; names are unique.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro._util import require
from repro.analysis.whatif import scale_network
from repro.core.parameters import (
    ClusterSpec,
    MessageSpec,
    SystemConfig,
    paper_system_544,
    paper_system_1120,
)
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.patterns import HotspotTraffic, LocalityTraffic

__all__ = [
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "iter_scenarios",
    "PAPER_PRESETS",
]

#: The two Table 1 organisations (kept addressable by their node counts).
PAPER_PRESETS = ("1120", "544")

_REGISTRY: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(name: str, factory: Callable[[], ScenarioSpec]) -> None:
    """Register *factory* (returning a :class:`ScenarioSpec`) under *name*."""
    require(isinstance(name, str) and name != "", "scenario name must be a non-empty string")
    require(name not in _REGISTRY, f"scenario {name!r} already registered")
    _REGISTRY[name] = factory


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names (presets first, then sorted)."""
    rest = sorted(n for n in _REGISTRY if n not in PAPER_PRESETS)
    return tuple(n for n in PAPER_PRESETS if n in _REGISTRY) + tuple(rest)


def get_scenario(name: str) -> ScenarioSpec:
    """The spec registered under *name*.

    Raises ``KeyError`` with the available names when *name* is unknown —
    the CLI surfaces that message verbatim.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    spec = _REGISTRY[name]()
    require(isinstance(spec, ScenarioSpec), f"factory for {name!r} did not return a ScenarioSpec")
    return spec


def iter_scenarios():
    """Yield ``(name, spec)`` for every registered scenario."""
    for name in scenario_names():
        yield name, get_scenario(name)


# ---------------------------------------------------------------------------
# built-in scenario families
# ---------------------------------------------------------------------------


def _spec(name: str, system: SystemConfig, description: str, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(name=name, system=system, description=description, **kwargs)


def _scaled_out(base: SystemConfig, factor: int) -> SystemConfig:
    """Replicate *base*'s cluster list *factor* times (C stays a valid
    ICN2 population because factor is a power of m/2 times the original).

    The name is rebuilt from the scaled system's real totals — reusing the
    base name would embed a stale N/C in every report and exported spec.
    """
    scaled = replace(base, clusters=base.clusters * factor, name="scaled")
    return replace(
        scaled,
        name=f"N{scaled.total_nodes}-m{scaled.switch_ports}-C{scaled.num_clusters}",
    )


def _ladder_system(depths: "list[int]", rung: str) -> SystemConfig:
    clusters = tuple(
        ClusterSpec(tree_depth=n, name=f"c{idx}") for idx, n in enumerate(depths)
    )
    return SystemConfig(switch_ports=8, clusters=clusters, name=f"het8-{rung}")


def _register_builtins() -> None:
    # -- paper presets ------------------------------------------------------
    register_scenario(
        "1120",
        lambda: _spec("1120", paper_system_1120(), "paper Table 1 row 1: N=1120, C=32, m=8"),
    )
    register_scenario(
        "544",
        lambda: _spec("544", paper_system_544(), "paper Table 1 row 2: N=544, C=16, m=4"),
    )

    # -- scale-outs ---------------------------------------------------------
    register_scenario(
        "1120-x4",
        lambda: _spec(
            "1120-x4",
            _scaled_out(paper_system_1120(), 4),
            "Table 1 row 1 replicated 4x: N=4480, C=128, m=8",
        ),
    )
    register_scenario(
        "544-x2",
        lambda: _spec(
            "544-x2",
            _scaled_out(paper_system_544(), 2),
            "Table 1 row 2 replicated 2x: N=1088, C=32, m=4",
        ),
    )
    register_scenario(
        "544-x4",
        lambda: _spec(
            "544-x4",
            _scaled_out(paper_system_544(), 4),
            "Table 1 row 2 replicated 4x: N=2176, C=64, m=4",
        ),
    )

    # -- heterogeneity ladder (m=8, C=8; increasing size skew) --------------
    ladder = (
        ("uniform", [2] * 8, "homogeneous rung: 8 clusters of 32 nodes (N=256)"),
        ("mild", [1] * 2 + [2] * 4 + [3] * 2, "mildly skewed rung: 8/32/128-node mix (N=400)"),
        ("split", [1] * 4 + [3] * 4, "bimodal rung: four 8-node + four 128-node clusters (N=544)"),
        ("extreme", [1] * 6 + [2] + [3], "extreme rung: six 8-node clusters + one 32 + one 128 (N=208)"),
    )
    for rung, depths, desc in ladder:
        register_scenario(
            f"het8-{rung}",
            lambda depths=depths, rung=rung, desc=desc: _spec(
                f"het8-{rung}", _ladder_system(depths, rung), f"heterogeneity ladder, {desc}"
            ),
        )

    # -- ICN2 bandwidth skews ----------------------------------------------
    for preset, factory in (("1120", paper_system_1120), ("544", paper_system_544)):
        for tag, factor in (("x0.5", 0.5), ("x2", 2.0)):
            register_scenario(
                f"{preset}-icn2-{tag}",
                lambda factory=factory, factor=factor, preset=preset, tag=tag: _spec(
                    f"{preset}-icn2-{tag}",
                    scale_network(factory(), "icn2", factor),
                    f"N={preset} with ICN2 bandwidth scaled {tag} (Fig. 7 axis)",
                ),
            )

    # -- message / traffic variants ----------------------------------------
    register_scenario(
        "1120-bigmsg",
        lambda: _spec(
            "1120-bigmsg",
            paper_system_1120(),
            "N=1120 with long messages (M=128 flits of 512 B)",
            message=MessageSpec(128, 512.0),
        ),
    )
    register_scenario(
        "544-hotspot",
        lambda: _spec(
            "544-hotspot",
            paper_system_544(),
            "N=544 with 30% of traffic targeting the last 64-node cluster",
            pattern=HotspotTraffic(hot_cluster=15, hot_fraction=0.3),
        ),
    )
    register_scenario(
        "544-local",
        lambda: _spec(
            "544-local",
            paper_system_544(),
            "N=544 with 60% intra-cluster locality",
            pattern=LocalityTraffic(0.6),
        ),
    )


_register_builtins()
