"""Declarative, JSON-round-trippable scenario specifications.

A :class:`ScenarioSpec` bundles everything one model/simulation study needs
— system organisation, message geometry, equation-interpretation options,
traffic pattern and a load-grid policy — into a single value object that
serialises to a plain dict (and therefore to JSON) and back *exactly*:

    spec == ScenarioSpec.from_dict(spec.to_dict())

holds for every spec whose pattern is registered (see
:mod:`repro.workloads.patterns`).  Non-finite floats (the default
``latency_budget`` is ``inf``) survive a file round-trip through
:func:`repro.io.results.save_json`/:func:`~repro.io.results.load_json`,
which tag them.

The spec is the *only* currency of the public workflow surface: the
scenario registry (:mod:`repro.scenarios.registry`) stores named specs, the
:class:`repro.experiments.Experiment` facade consumes one, and the CLI's
``--scenario``/``--config`` flags resolve to one.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro._util import reject_unknown_keys, require, require_int
from repro.core.parameters import MessageSpec, ModelOptions, SystemConfig
from repro.io.results import from_jsonable, load_json, save_json, to_jsonable
from repro.io.schemas import SCENARIO_SCHEMA
from repro.workloads.patterns import pattern_from_dict, pattern_to_dict

__all__ = ["LoadGridPolicy", "ScenarioSpec", "SCENARIO_SCHEMA"]


@dataclass(frozen=True)
class LoadGridPolicy:
    """How a scenario turns its saturation load into a figure-ready grid.

    Mirrors :func:`repro.core.sweep.auto_load_grid`: *points* evenly spaced
    loads covering ``(0, fraction_of_saturation · λ*]`` (from 0 when
    *include_zero* is set).  The defaults match ``auto_load_grid``'s, so a
    default-policy sweep is identical to the pre-spec workflow.
    """

    points: int = 12
    fraction_of_saturation: float = 0.95
    include_zero: bool = False

    def __post_init__(self) -> None:
        require_int(self.points, "points", minimum=2)
        require(
            isinstance(self.fraction_of_saturation, (int, float))
            and 0.0 < self.fraction_of_saturation < 1.0,
            f"fraction_of_saturation must be in (0, 1), got {self.fraction_of_saturation!r}",
        )
        require(isinstance(self.include_zero, bool), "include_zero must be a bool")

    def grid(self, model) -> np.ndarray:
        """Materialise the grid for *model* (scalar or batched engine)."""
        from repro.core.sweep import auto_load_grid

        return auto_load_grid(
            model,
            points=self.points,
            fraction_of_saturation=self.fraction_of_saturation,
            include_zero=self.include_zero,
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {
            "points": self.points,
            "fraction_of_saturation": self.fraction_of_saturation,
            "include_zero": self.include_zero,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadGridPolicy":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(data, ("points", "fraction_of_saturation", "include_zero"), "load_grid")
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described study: system + message + options + traffic + grid.

    name:
        identifier of the scenario (the registry key when registered).
    system:
        the cluster-of-clusters organisation under study.
    message:
        fixed message geometry (defaults to the paper's M=32, d_m=256).
    options:
        equation-interpretation switches (defaults follow DESIGN.md §3).
    pattern:
        optional non-uniform traffic pattern; must be registry-backed
        (:mod:`repro.workloads.patterns`) for the spec to serialise.
    load_grid:
        policy producing the scenario's load grid for sweeps/validation.
    latency_budget:
        default mean-latency budget for capacity planning; ``inf`` means
        "no budget configured" (callers must then pass one explicitly).
    description:
        free-form one-liner shown by ``python -m repro scenarios``.
    """

    name: str
    system: SystemConfig
    message: MessageSpec = MessageSpec(32, 256.0)
    options: ModelOptions = ModelOptions()
    pattern: object | None = None
    load_grid: LoadGridPolicy = LoadGridPolicy()
    latency_budget: float = math.inf
    description: str = ""

    def __post_init__(self) -> None:
        require(isinstance(self.name, str) and self.name != "", "scenario name must be a non-empty string")
        require(isinstance(self.system, SystemConfig), "system must be a SystemConfig")
        require(isinstance(self.message, MessageSpec), "message must be a MessageSpec")
        require(isinstance(self.options, ModelOptions), "options must be a ModelOptions")
        require(isinstance(self.load_grid, LoadGridPolicy), "load_grid must be a LoadGridPolicy")
        require(
            isinstance(self.latency_budget, (int, float))
            and not math.isnan(self.latency_budget)
            and self.latency_budget > 0,
            f"latency_budget must be positive (inf allowed), got {self.latency_budget!r}",
        )
        require(isinstance(self.description, str), "description must be a string")

    # -- derived ---------------------------------------------------------------

    def with_overrides(
        self,
        *,
        message: MessageSpec | None = None,
        options: ModelOptions | None = None,
        pattern: object | None = None,
        clear_pattern: bool = False,
        load_grid: LoadGridPolicy | None = None,
        latency_budget: float | None = None,
    ) -> "ScenarioSpec":
        """Copy with selected components replaced (CLI flag plumbing)."""
        return replace(
            self,
            message=message or self.message,
            options=options or self.options,
            pattern=None if clear_pattern else (pattern if pattern is not None else self.pattern),
            load_grid=load_grid or self.load_grid,
            latency_budget=self.latency_budget if latency_budget is None else latency_budget,
        )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly.

        Raises ``ValueError`` when the pattern is not registry-backed —
        an unserialisable spec should fail at export time, not at load time.
        """
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "system": self.system.to_dict(),
            "message": self.message.to_dict(),
            "options": self.options.to_dict(),
            "pattern": None if self.pattern is None else pattern_to_dict(self.pattern),
            "load_grid": self.load_grid.to_dict(),
            "latency_budget": self.latency_budget,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(
            data,
            (
                "schema",
                "name",
                "description",
                "system",
                "message",
                "options",
                "pattern",
                "load_grid",
                "latency_budget",
            ),
            "scenario",
            required=("system",),
        )
        schema = data.get("schema", SCENARIO_SCHEMA)
        require(
            schema == SCENARIO_SCHEMA,
            f"unsupported scenario schema {schema!r} (this build reads {SCENARIO_SCHEMA!r})",
        )
        pattern_data = data.get("pattern")
        return cls(
            name=data.get("name", "scenario"),
            description=data.get("description", ""),
            system=SystemConfig.from_dict(data["system"]),
            message=MessageSpec.from_dict(data["message"]) if "message" in data else MessageSpec(32, 256.0),
            options=ModelOptions.from_dict(data["options"]) if "options" in data else ModelOptions(),
            pattern=None if pattern_data is None else pattern_from_dict(pattern_data),
            load_grid=LoadGridPolicy.from_dict(data["load_grid"]) if "load_grid" in data else LoadGridPolicy(),
            latency_budget=data.get("latency_budget", math.inf),
        )

    def to_json(self) -> str:
        """Pretty JSON text of the spec (non-finite floats tagged)."""
        return json.dumps(to_jsonable(self.to_dict()), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json` (restores tagged non-finite floats)."""
        return cls.from_dict(from_jsonable(json.loads(text)))

    def save(self, path: "str | Path") -> Path:
        """Write the spec as a JSON config file."""
        return save_json(path, self.to_dict())

    @classmethod
    def load(cls, path: "str | Path") -> "ScenarioSpec":
        """Read a spec from a JSON config file written by :meth:`save`."""
        return cls.from_dict(load_json(path))
