"""Multi-axis design grids over scenario specs.

The paper's purpose is *design-space exploration*: trading ICN1/ICN2
bandwidth, cluster organisation and message geometry against saturation
load.  This module provides the declarative layer for such studies:

* :class:`AxisSpec` — one swept parameter, addressed by a dotted path into
  the serialised :class:`~repro.scenarios.ScenarioSpec` tree (e.g.
  ``"system.icn2.bandwidth"``, ``"message.length_flits"``,
  ``"system.clusters.3.tree_depth"`` — integer segments index lists);
* :class:`DesignGrid` — a base spec plus N axes, expanded to the Cartesian
  product of derived scenario variants.

Expansion is **deterministic**: cells are enumerated row-major (the last
axis varies fastest) and each variant is named
``<base>/<path>=<value>/...`` with one ``path=value`` segment per axis in
axis order, so a cell's name is a pure function of the base name and its
coordinates.  Every variant is rebuilt through
:meth:`ScenarioSpec.from_dict`, so an axis value that produces an invalid
system (e.g. a cluster count that is not an ICN2 tree population) fails at
expansion time with the offending cell named.

Grids serialise like specs (``grid == DesignGrid.from_dict(grid.to_dict())``)
so a whole study is one JSON file (the CLI's ``explore --grid``).
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro._util import reject_unknown_keys, require
from repro.io.results import from_jsonable, load_json, save_json, to_jsonable
from repro.io.schemas import GRID_SCHEMA
from repro.scenarios.spec import ScenarioSpec

__all__ = ["AxisSpec", "DesignGrid", "GridCell", "GRID_SCHEMA", "as_axis", "format_axis_value"]

#: Spec sections an axis may traverse (naming/schema fields are derived).
_AXIS_ROOTS = ("system", "message", "options", "pattern", "load_grid", "latency_budget")


def format_axis_value(value) -> str:
    """Canonical text of one axis value (used in cell names and tables).

    Floats use ``repr`` so distinct values never collide in a name; integer
    -valued floats drop the trailing ``.0`` for readability (``600.0`` and
    ``600`` name the same cell only if they are the same axis value).
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isfinite(value) and value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _copy_tree(node):
    """Deep copy of a JSON-ready spec tree (dicts, lists, scalar leaves).

    ``ScenarioSpec.to_dict`` trees contain only containers that
    :func:`set_by_path` may mutate (dicts/lists) and immutable leaves, so
    this beats :func:`copy.deepcopy` — whose generic memo machinery
    dominated large-grid expansion — while copying exactly as deeply.
    """
    if isinstance(node, dict):
        return {key: _copy_tree(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_copy_tree(value) for value in node]
    return node


def _index(segment: str, path: str, length: int) -> int:
    require(
        segment.isdigit(),
        f"axis path {path!r}: segment {segment!r} must be a list index (0..{length - 1})",
    )
    idx = int(segment)
    require(idx < length, f"axis path {path!r}: index {idx} out of range (list has {length} items)")
    return idx


def _child(node, segment: str, path: str):
    if isinstance(node, list):
        return node[_index(segment, path, len(node))]
    require(isinstance(node, dict), f"axis path {path!r}: {segment!r} reached a non-container value")
    require(
        segment in node,
        f"axis path {path!r}: unknown key {segment!r}; available: {sorted(node)}",
    )
    return node[segment]


def set_by_path(tree: dict, path: str, value) -> None:
    """Set *value* at dotted *path* inside a ``ScenarioSpec.to_dict`` tree.

    The path must address an **existing** leaf — creating new keys is
    refused so a typo'd axis fails loudly here instead of (or in addition
    to) tripping the spec deserialiser's unknown-key check.
    """
    parts = path.split(".")
    require(all(parts), f"axis path {path!r} must be a dotted path of non-empty segments")
    require(
        parts[0] in _AXIS_ROOTS,
        f"axis path {path!r} must start with one of {list(_AXIS_ROOTS)} "
        "(name/description/schema are derived, not sweepable)",
    )
    node = tree
    for segment in parts[:-1]:
        node = _child(node, segment, path)
    leaf = parts[-1]
    if isinstance(node, list):
        node[_index(leaf, path, len(node))] = value
    else:
        require(isinstance(node, dict), f"axis path {path!r}: {leaf!r} reached a non-container value")
        require(
            leaf in node,
            f"axis path {path!r}: unknown key {leaf!r}; available: {sorted(node)}",
        )
        node[leaf] = value


@dataclass(frozen=True)
class AxisSpec:
    """One swept parameter: a dotted spec path and its candidate values."""

    path: str
    values: tuple

    def __post_init__(self) -> None:
        require(isinstance(self.path, str) and self.path != "", "axis path must be a non-empty string")
        require(isinstance(self.values, tuple), "axis values must be a tuple")
        require(len(self.values) >= 1, f"axis {self.path!r} needs at least one value")
        labels = [format_axis_value(v) for v in self.values]
        require(
            len(set(labels)) == len(labels),
            f"axis {self.path!r} has duplicate values {labels} (cell names must be unique)",
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {"path": self.path, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "AxisSpec":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(data, ("path", "values"), "axis", required=("path", "values"))
        values = data["values"]
        require(isinstance(values, (list, tuple)), f"axis {data['path']!r} values must be a list")
        return cls(path=data["path"], values=tuple(values))


def as_axis(axis) -> AxisSpec:
    """Coerce an :class:`AxisSpec` or a ``(path, values)`` pair to an axis."""
    if isinstance(axis, AxisSpec):
        return axis
    require(
        isinstance(axis, (tuple, list)) and len(axis) == 2,
        f"axes must be AxisSpec or (path, values) pairs, got {axis!r}",
    )
    path, values = axis
    require(isinstance(values, (list, tuple)), f"axis {path!r} values must be a sequence")
    return AxisSpec(path=path, values=tuple(values))


@dataclass(frozen=True)
class GridCell:
    """One expanded point of a design grid."""

    index: int
    name: str
    coords: dict  # axis path -> value, in axis order
    spec: ScenarioSpec


@dataclass(frozen=True)
class DesignGrid:
    """A base scenario plus N parameter axes (their Cartesian product)."""

    base: ScenarioSpec
    axes: tuple[AxisSpec, ...]

    def __post_init__(self) -> None:
        require(isinstance(self.base, ScenarioSpec), "base must be a ScenarioSpec")
        require(isinstance(self.axes, tuple), "axes must be a tuple of AxisSpec")
        require(len(self.axes) >= 1, "a design grid needs at least one axis")
        for axis in self.axes:
            require(isinstance(axis, AxisSpec), "axes must contain AxisSpec instances")
        paths = [axis.path for axis in self.axes]
        require(len(set(paths)) == len(paths), f"duplicate axis paths: {paths}")
        # Overlapping paths (one a segment-prefix of another, e.g.
        # "system.icn2" and "system.icn2.bandwidth") would let a later
        # axis silently clobber an earlier one's value, making the cell's
        # reported coordinates lie about the evaluated spec.
        for i, a in enumerate(paths):
            for b in paths[i + 1 :]:
                sa, sb = a.split("."), b.split(".")
                n = min(len(sa), len(sb))
                require(
                    sa[:n] != sb[:n],
                    f"overlapping axis paths {a!r} and {b!r}: one addresses "
                    "a value inside the other's subtree",
                )
        # Serialisability (registered pattern, valid schema) must fail at
        # grid construction, before any cell burns compute.
        self.base.to_dict()

    @property
    def size(self) -> int:
        """Number of cells (the product of the axis lengths)."""
        return math.prod(len(axis.values) for axis in self.axes)

    def cell_name(self, values: tuple) -> str:
        """Deterministic variant name for one coordinate tuple."""
        parts = [
            f"{axis.path}={format_axis_value(value)}"
            for axis, value in zip(self.axes, values)
        ]
        return "/".join([self.base.name] + parts)

    def cells(self) -> tuple[GridCell, ...]:
        """Expand the Cartesian product, row-major (last axis fastest)."""
        base_dict = self.base.to_dict()
        out = []
        for index, values in enumerate(itertools.product(*(a.values for a in self.axes))):
            name = self.cell_name(values)
            cell_dict = _copy_tree(base_dict)
            for axis, value in zip(self.axes, values):
                set_by_path(cell_dict, axis.path, value)
            cell_dict["name"] = name
            cell_dict["description"] = f"grid cell of {self.base.name!r}"
            try:
                spec = ScenarioSpec.from_dict(cell_dict)
            except ValueError as exc:
                raise ValueError(f"grid cell {name!r} is invalid: {exc}") from exc
            coords = {axis.path: value for axis, value in zip(self.axes, values)}
            out.append(GridCell(index=index, name=name, coords=coords, spec=spec))
        return tuple(out)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping; :meth:`from_dict` inverts it exactly."""
        return {
            "schema": GRID_SCHEMA,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignGrid":
        """Rebuild from a :meth:`to_dict` mapping (unknown keys rejected)."""
        reject_unknown_keys(data, ("schema", "base", "axes"), "grid", required=("base", "axes"))
        schema = data.get("schema", GRID_SCHEMA)
        require(
            schema == GRID_SCHEMA,
            f"unsupported grid schema {schema!r} (this build reads {GRID_SCHEMA!r})",
        )
        axes = data["axes"]
        require(isinstance(axes, (list, tuple)), "grid 'axes' must be a list")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=tuple(AxisSpec.from_dict(a) for a in axes),
        )

    def to_json(self) -> str:
        """Pretty JSON text of the grid (non-finite floats tagged)."""
        return json.dumps(to_jsonable(self.to_dict()), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "DesignGrid":
        """Inverse of :meth:`to_json` (restores tagged non-finite floats)."""
        return cls.from_dict(from_jsonable(json.loads(text)))

    def save(self, path: "str | Path") -> Path:
        """Write the grid as a JSON file."""
        return save_json(path, self.to_dict())

    @classmethod
    def load(cls, path: "str | Path") -> "DesignGrid":
        """Read a grid from a JSON file written by :meth:`save`."""
        return cls.from_dict(load_json(path))
