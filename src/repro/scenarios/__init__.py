"""Declarative scenarios: serialisable specs and a named registry.

* :class:`ScenarioSpec` — a JSON-round-trippable description of one study
  (system + message + options + traffic pattern + load-grid policy);
* the registry — paper presets (``"1120"``, ``"544"``) plus generated
  families (scale-outs, a heterogeneity ladder, ICN2 bandwidth skews,
  message/traffic variants), see :mod:`repro.scenarios.registry`;
* :func:`load_scenario` — resolve a name *or* a config-file path to a spec
  (the CLI's ``--scenario``/``--config`` semantics);
* :class:`AxisSpec`/:class:`DesignGrid` — multi-axis design grids over a
  base spec (dotted-path parameter axes expanded to deterministic named
  variants), see :mod:`repro.scenarios.grid`.
"""

from __future__ import annotations

from pathlib import Path

from repro.scenarios.grid import (
    GRID_SCHEMA,
    AxisSpec,
    DesignGrid,
    GridCell,
    as_axis,
    format_axis_value,
)
from repro.scenarios.registry import (
    PAPER_PRESETS,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import SCENARIO_SCHEMA, LoadGridPolicy, ScenarioSpec

__all__ = [
    "ScenarioSpec",
    "LoadGridPolicy",
    "SCENARIO_SCHEMA",
    "AxisSpec",
    "DesignGrid",
    "GridCell",
    "GRID_SCHEMA",
    "as_axis",
    "format_axis_value",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "iter_scenarios",
    "load_scenario",
    "PAPER_PRESETS",
]


def load_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve *name_or_path* to a spec: registry name first, then file.

    A registered name wins; otherwise the argument is treated as a JSON
    config-file path.  Unknown names that are not files raise ``KeyError``
    listing the registered scenarios.
    """
    from repro.scenarios.registry import _REGISTRY

    if name_or_path in _REGISTRY:
        return get_scenario(name_or_path)
    if Path(name_or_path).exists():
        return ScenarioSpec.load(name_or_path)
    return get_scenario(name_or_path)  # raises KeyError with the name list
