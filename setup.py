"""Packaging metadata for the ``repro`` distribution.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs cannot build an editable wheel; keeping all
metadata in ``setup.py`` (no pyproject build backend) lets pip fall back
to the legacy ``setup.py develop`` path (``pip install -e .
--no-build-isolation``) while still producing a fully-described, *typed*
package: ``src/repro/py.typed`` is shipped as package data (PEP 561), so
downstream consumers' type checkers read the inline annotations instead
of treating the library as ``Any``.

The version is sourced from ``repro.__version__`` (single source of
truth) by reading the attribute assignment out of ``src/repro/
__init__.py`` without importing it — importing would require numpy at
metadata time.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_ROOT = Path(__file__).resolve().parent


def _version() -> str:
    text = (_ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("repro.__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-cluster-model",
    version=_version(),
    description=(
        "Analytical network model of heterogeneous large-scale cluster "
        "systems (Javadi, Abawajy & Akbari, IEEE CLUSTER 2006) with "
        "validating wormhole simulators and experiment infrastructure"
    ),
    long_description=(_ROOT / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="repro maintainers",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "validation": ["scipy"],
        "dev": ["pytest", "scipy", "mypy"],
    },
    zip_safe=False,  # py.typed must stay a real file for type checkers
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering",
        "Typing :: Typed",
    ],
)
