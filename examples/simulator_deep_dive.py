#!/usr/bin/env python
"""Simulator deep dive — engines, confidence intervals and knee hunting.

Shows the simulation side of the toolkit beyond single runs:

1. message-level vs flit-accurate engines on identical seeds (the drain
   approximation certified live);
2. replicated runs with Student-t confidence intervals, and whether the
   analytical model's prediction falls inside them;
3. empirical knee estimation: where does the *simulated* system blow up,
   as a fraction of the model's analytic saturation load?;
4. a channel-group utilisation audit across the load range (watch the
   concentrate group race ahead — the paper's bottleneck claim, live).

Run:  python examples/simulator_deep_dive.py
(Set REPRO_EXAMPLE_MESSAGES to shrink every simulation — the test suite
smoke-runs this script with a tiny budget.)
"""

import os

from repro import AnalyticalModel, MessageSpec, find_saturation_load
from repro.analysis import estimate_sim_knee, render_series, render_table
from repro.cluster import homogeneous_system
from repro.simulation import MeasurementWindow, SimulationSession, replicate

SYSTEM = homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4)  # 32 nodes
MESSAGE = MessageSpec(16, 256.0)
# scaled_paper(3000) is the historical 300/3000/300 window.
WINDOW = MeasurementWindow.scaled_paper(int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "3000")))


def engines() -> None:
    session = SimulationSession(SYSTEM, MESSAGE)
    rows = []
    for lam in (5e-4, 2e-3, 5e-3):
        msg_run = session.run(lam, seed=0, window=WINDOW, granularity="message")
        flit_run = session.run(lam, seed=0, window=WINDOW, granularity="flit")
        rows.append(
            [lam, msg_run.mean_latency, flit_run.mean_latency,
             msg_run.mean_latency / flit_run.mean_latency, msg_run.events, flit_run.events]
        )
    print(
        render_table(
            ["lambda_g", "message-level", "flit-level", "ratio", "events(msg)", "events(flit)"],
            rows,
            title="Engine agreement (same seeds): the analytic drain is flit-exact here",
        )
    )
    print()


def confidence() -> None:
    session = SimulationSession(SYSTEM, MESSAGE)
    model = AnalyticalModel(SYSTEM, MESSAGE)
    lam = 0.25 * find_saturation_load(model)
    rep = replicate(session, lam, replicas=5, base_seed=100, window=WINDOW)
    predicted = model.evaluate(lam).latency
    print(
        render_table(
            ["lambda_g", "sim mean", "95% CI", "model", "model in CI?"],
            [[lam, rep.mean_latency,
              f"[{rep.ci_low:.2f}, {rep.ci_high:.2f}]", predicted, rep.contains(predicted)]],
            title="Replicated validation (5 seeds)",
        )
    )
    print()


def knee() -> None:
    session = SimulationSession(SYSTEM, MESSAGE)
    estimate = estimate_sim_knee(session, threshold_factor=4.0, window=WINDOW, seed=7)
    print(
        f"empirical knee: λ_knee = {estimate.sim_knee:.3e} "
        f"({estimate.knee_fraction:.0%} of the model's λ* = {estimate.model_saturation:.3e}); "
        f"{len(estimate.probes)} probe runs"
    )
    print()


def utilization_audit() -> None:
    session = SimulationSession(SYSTEM, MESSAGE)
    model = AnalyticalModel(SYSTEM, MESSAGE)
    lam_star = find_saturation_load(model)
    fractions = [0.2, 0.4, 0.6, 0.8]
    groups = ["cd-concentrate", "icn2", "cd-dispatch", "ecn1", "icn1"]
    columns = {g: [] for g in groups}
    for f in fractions:
        run = session.run(f * lam_star, seed=3, window=WINDOW)
        for g in groups:
            columns[g].append(run.network_utilization[g])
    print(
        render_series(
            "Channel-group utilisation vs load (fractions of model λ*)",
            "load fraction",
            fractions,
            columns,
        )
    )
    print("  -> the concentrate group races ahead: the paper's ICN2-path")
    print("     bottleneck, observed directly in the simulator.")


def main() -> None:
    engines()
    confidence()
    knee()
    utilization_audit()


if __name__ == "__main__":
    main()
