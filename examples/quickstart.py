#!/usr/bin/env python
"""Quickstart — evaluate the analytical model and validate it by simulation.

Builds the paper's N=544 system (Table 1), asks the analytical model for
the mean message latency across a load range (the Fig. 5 curve), runs the
discrete-event wormhole simulator at a few of those loads, and prints the
comparison — the whole workflow of the paper in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import AnalyticalModel, find_saturation_load, paper_message, paper_system_544
from repro.analysis import render_series
from repro.simulation import MeasurementWindow, SimulationSession


def main() -> None:
    system = paper_system_544()
    message = paper_message(length_flits=32, flit_bytes=256.0)

    # --- the paper's contribution: closed-form mean latency -------------
    model = AnalyticalModel(system, message)
    lam_star = find_saturation_load(model)
    print(f"system: {system.name}, N={system.total_nodes}, C={system.num_clusters}")
    print(f"zero-load latency : {model.zero_load_latency():.2f} time units")
    print(f"saturation load   : λ* = {lam_star:.3e} messages/node/time-unit")

    result = model.evaluate(0.4 * lam_star)
    print("\nper-cluster-class breakdown at 40% of saturation:")
    for cls in result.clusters:
        print(
            f"  {cls.count:2d}x {cls.nodes:3d}-node clusters: "
            f"L_in={cls.intra.total:7.2f}  L_out={cls.outward:7.2f}  "
            f"U={cls.outgoing_probability:.3f}  mean={cls.mean:7.2f}"
        )

    # --- validation: the discrete-event wormhole simulator --------------
    session = SimulationSession(system, message)
    window = MeasurementWindow.scaled_paper(10_000)
    loads = [f * lam_star for f in (0.2, 0.4, 0.6)]
    rows_model, rows_sim = [], []
    for lam in loads:
        rows_model.append(model.evaluate(lam).latency)
        rows_sim.append(session.run(lam, seed=0, window=window).mean_latency)

    print()
    print(
        render_series(
            "model vs simulation (paper §4 methodology)",
            "lambda_g",
            loads,
            {"model": rows_model, "simulation": rows_sim},
        )
    )
    light_err = abs(rows_model[0] - rows_sim[0]) / rows_sim[0]
    print(f"\nlight-load relative error: {light_err:.1%} (paper reports ~4-8%)")
    print(
        "note: toward saturation the simulator outruns the model — the paper's\n"
        "own §4 caveat; see EXPERIMENTS.md for the quantified divergence."
    )


if __name__ == "__main__":
    main()
