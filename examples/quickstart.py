#!/usr/bin/env python
"""Quickstart — the whole workflow of the paper through one `Experiment`.

Resolves the paper's N=544 scenario from the registry, asks the analytical
model for the saturation point and a latency breakdown, sweeps the curve
(the Fig. 5 column) and validates a few points against the discrete-event
wormhole simulator — all off a single declarative ScenarioSpec.

Run:  python examples/quickstart.py
(Set REPRO_EXAMPLE_MESSAGES to shrink the simulated validation — the test
suite smoke-runs this script with a tiny budget.)
"""

import os

from repro import Experiment, get_scenario

MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "10000"))


def main() -> None:
    # Any registered name works ("python -m repro scenarios" lists them);
    # a ScenarioSpec loaded from JSON drops in the same way.
    spec = get_scenario("544")
    exp = Experiment(spec)

    # --- the paper's contribution: closed-form mean latency -------------
    print(exp.describe().text)
    print()
    print(exp.saturation().text)

    lam_star = exp.engine.saturation_load()
    result = exp.evaluate(0.4 * lam_star)
    print("\nper-cluster-class breakdown at 40% of saturation:")
    print(result.text)

    # --- the model curve (a paper-figure column) ------------------------
    sweep = exp.sweep()
    print()
    print(sweep.text)

    # --- validation: the discrete-event wormhole simulator --------------
    validation = exp.validate(points=3, messages=MESSAGES)
    print()
    print(validation.text)
    print(
        "\nnote: toward saturation the simulator outruns the model — the paper's\n"
        "own §4 caveat; see EXPERIMENTS.md for the quantified divergence."
    )

    # Every result shares one serialisable schema:
    #   exp.sweep().to_dict()  ->  {"schema": "repro.experiment/1", ...}
    # and the spec itself round-trips through JSON:
    #   ScenarioSpec.from_json(spec.to_json()) == spec


if __name__ == "__main__":
    main()
