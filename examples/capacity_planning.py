#!/usr/bin/env python
"""Capacity planning — the paper's Fig. 7 study generalised.

A system designer asks: *which network should I upgrade, and by how much,
to support a target per-node message rate within a latency budget?*  The
analytical model answers in milliseconds per design point, which is the
paper's core argument for analytical modelling over simulation.

The script:

1. reproduces the Fig. 7 comparison (+20 % ICN2 bandwidth, M=128);
2. sweeps upgrade factors for each network role and charts the saturation
   load each buys;
3. finds the cheapest single-network upgrade meeting a target load.

Run:  python examples/capacity_planning.py
"""

from repro import AnalyticalModel, MessageSpec, find_saturation_load
from repro.analysis import curve_label, icn2_bandwidth_study, render_series, render_table, scale_network
from repro.io import format_whatif_study
from repro.validation import figure7_systems


def fig7_reproduction() -> None:
    message = MessageSpec(128, 256.0)
    study = icn2_bandwidth_study(figure7_systems(), message, factor=1.2, points=8)
    print(format_whatif_study(study))
    for system in figure7_systems():
        gain = study.saturation_gain(
            curve_label(system, "base"), curve_label(system, "icn2 x1.2")
        )
        print(f"  N={system.total_nodes}: +20% ICN2 bandwidth moves the knee right x{gain:.3f}")


def upgrade_sweep() -> None:
    message = MessageSpec(64, 256.0)
    base_system = figure7_systems()[1]  # N=1120
    factors = [1.0, 1.2, 1.5, 2.0]
    columns = {}
    for role in ("icn2", "ecn1", "icn1"):
        knees = []
        for factor in factors:
            cfg = base_system if factor == 1.0 else scale_network(base_system, role, factor)
            knees.append(find_saturation_load(AnalyticalModel(cfg, message)))
        columns[f"{role} upgrade"] = knees
    print()
    print(
        render_series(
            "Saturation load λ* vs single-network bandwidth upgrade (N=1120, M=64)",
            "factor",
            factors,
            columns,
        )
    )
    print(
        "  -> only the ICN2 upgrade moves λ*: the concentrator/ICN2 path is"
        " the binding resource (paper §4)."
    )


def cheapest_upgrade(target_load: float) -> None:
    message = MessageSpec(64, 256.0)
    base_system = figure7_systems()[1]
    rows = []
    for role in ("icn2", "ecn1", "icn1"):
        factor, step, found = 1.0, 0.1, None
        while factor <= 3.0:
            cfg = scale_network(base_system, role, factor)
            if find_saturation_load(AnalyticalModel(cfg, message)) >= target_load:
                found = factor
                break
            factor = round(factor + step, 10)
        rows.append([role, found if found is not None else "> 3.0x"])
    print()
    print(
        render_table(
            ["network role", f"factor needed for λ* ≥ {target_load:.1e}"],
            rows,
            title="Cheapest single-network upgrade meeting the target",
        )
    )


def main() -> None:
    fig7_reproduction()
    upgrade_sweep()
    base = find_saturation_load(AnalyticalModel(figure7_systems()[1], MessageSpec(64, 256.0)))
    cheapest_upgrade(target_load=1.3 * base)


if __name__ == "__main__":
    main()
