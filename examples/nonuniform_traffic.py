#!/usr/bin/env python
"""Non-uniform traffic — the paper's future-work item, implemented.

The paper's model assumes uniform destinations and names non-uniform
traffic as future work (§5).  This example exercises the implemented
extension: traffic patterns drive *both* the generalised analytical model
and the simulator, so the extension is validated the same way the paper
validates its baseline.

Scenarios:

1. **Locality** — messages stay in-cluster with probability p.  More
   locality avoids the concentrator/ICN2 path entirely: latency drops and
   the saturation load rises.
2. **Hotspot** — a fraction of all traffic targets one popular cluster
   (e.g. a storage cluster); its dispatcher becomes the new bottleneck.

Run:  python examples/nonuniform_traffic.py
(Set REPRO_EXAMPLE_MESSAGES to shrink the simulated validation — the test
suite smoke-runs this script with a tiny budget.)
"""

import os

from repro import AnalyticalModel, MessageSpec, find_saturation_load
from repro.analysis import render_series, render_table
from repro.cluster import homogeneous_system
from repro.simulation import MeasurementWindow, SimulationSession
from repro.workloads import HotspotTraffic, LocalityTraffic

SYSTEM = homogeneous_system(switch_ports=8, tree_depth=2, num_clusters=8)  # 256 nodes
MESSAGE = MessageSpec(32, 256.0)
MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "8000"))


def locality_study() -> None:
    localities = [0.1, 0.3, 0.5, 0.7, 0.9]
    lam = 4e-4
    model_lat, sat_loads = [], []
    for p in localities:
        model = AnalyticalModel(SYSTEM, MESSAGE, pattern=LocalityTraffic(p))
        model_lat.append(model.evaluate(lam).latency)
        sat_loads.append(find_saturation_load(model))
    print(
        render_series(
            f"Locality study (model), λ_g = {lam:g}",
            "P(stay local)",
            localities,
            {"latency": model_lat, "saturation load": sat_loads},
        )
    )
    print(
        "  -> locality bypasses the concentrators: latency falls and λ* rises\n"
        "     until, at high locality, the intra-cluster network becomes the\n"
        "     binding resource and λ* recedes again.\n"
    )


def locality_validation() -> None:
    pattern = LocalityTraffic(0.6)
    model = AnalyticalModel(SYSTEM, MESSAGE, pattern=pattern)
    session = SimulationSession(SYSTEM, MESSAGE)
    window = MeasurementWindow.scaled_paper(MESSAGES)
    lam = 0.25 * find_saturation_load(model)
    sim = session.run(lam, seed=0, window=window, pattern=pattern)
    predicted = model.evaluate(lam).latency
    print(
        render_table(
            ["lambda_g", "model", "simulation", "rel err", "sim intra share"],
            [[lam, predicted, sim.mean_latency, (predicted - sim.mean_latency) / sim.mean_latency,
              sim.stats.count_intra / sim.stats.count]],
            title="Locality pattern: generalised model vs simulator",
        )
    )
    print()


def hotspot_study() -> None:
    fractions = [0.0, 0.2, 0.4, 0.6]
    lam = 2e-4
    rows = []
    for h in fractions:
        pattern = HotspotTraffic(hot_cluster=0, hot_fraction=h) if h > 0 else None
        model = AnalyticalModel(SYSTEM, MESSAGE, pattern=pattern)
        result = model.evaluate(lam)
        hot_mean = result.clusters[0].mean
        cold_mean = result.clusters[-1].mean
        rows.append([h, result.latency, hot_mean, cold_mean, find_saturation_load(model)])
    print(
        render_table(
            ["hot fraction", "system latency", "hot-cluster mean", "cold-cluster mean", "λ*"],
            rows,
            title=f"Hotspot study (model), λ_g = {lam:g}, hot cluster = 0",
        )
    )
    print("  -> hotspot traffic floods the hot cluster's dispatcher; the")
    print("     system saturates earlier even though most clusters are idle.")


def main() -> None:
    locality_study()
    locality_validation()
    hotspot_study()


if __name__ == "__main__":
    main()
