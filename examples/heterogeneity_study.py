#!/usr/bin/env python
"""Heterogeneity study — how cluster-size mix shapes system latency.

The paper's motivation is that real cluster-of-clusters systems are
heterogeneous in cluster size and network speed.  This example holds the
total node count fixed (N=512, m=8, C=8) and compares organisations from
perfectly homogeneous to strongly skewed, then separately compares
network-heterogeneous variants (fast vs slow ECN1 per cluster).

Observations to expect:

* skewed organisations saturate earlier — the largest cluster's
  concentrator carries the most external traffic (λ* ∝ 1/max_i N_i U_i);
* slowing some clusters' ECN1s raises latency mostly for *their* traffic,
  visible in the per-class breakdown.

Run:  python examples/heterogeneity_study.py
"""

from dataclasses import replace

from repro import (
    AnalyticalModel,
    ClusterSpec,
    MessageSpec,
    NET1,
    NET2,
    SystemConfig,
    find_saturation_load,
)
from repro.analysis import render_table

MESSAGE = MessageSpec(32, 256.0)


def organisation(name: str, depths: list[int]) -> SystemConfig:
    clusters = tuple(ClusterSpec(tree_depth=d, name=f"c{i}") for i, d in enumerate(depths))
    return SystemConfig(switch_ports=8, clusters=clusters, name=name)


def size_heterogeneity() -> None:
    # C = 8 clusters, m = 8 (cluster sizes 8 / 32 / 128 by depth 1 / 2 / 3).
    organisations = [
        organisation("homogeneous (8 x 32)", [2] * 8),
        organisation("mixed (4x8 + 2x32 + 2x128)", [1, 1, 1, 1, 2, 2, 3, 3]),
        organisation("skewed (7x8 + 1x128)", [1] * 7 + [3]),
    ]
    rows = []
    for cfg in organisations:
        model = AnalyticalModel(cfg, MESSAGE)
        lam_star = find_saturation_load(model)
        zero = model.zero_load_latency()
        mid = model.evaluate(0.5 * lam_star).latency
        rows.append([cfg.name, cfg.total_nodes, max(cfg.cluster_sizes), lam_star, zero, mid])
    print(
        render_table(
            ["organisation", "N", "max N_i", "λ* (saturation)", "L(0)", "L(λ*/2)"],
            rows,
            title="Cluster-size heterogeneity at fixed C=8, m=8",
        )
    )
    print("  -> the largest cluster sets the saturation point: λ* ∝ 1/(max N_i U_i).")


def network_heterogeneity() -> None:
    base = organisation("net-study", [2] * 8)
    slow_ecn1 = NET2.scaled_bandwidth(0.5, name="Net.2/2")
    variants = {
        "all Net.2 ECN1": base,
        "half the clusters on slow ECN1": replace(
            base,
            clusters=tuple(
                replace(spec, ecn1=slow_ecn1 if i < 4 else NET2) for i, spec in enumerate(base.clusters)
            ),
        ),
        "all slow ECN1": replace(
            base, clusters=tuple(replace(spec, ecn1=slow_ecn1) for spec in base.clusters)
        ),
    }
    rows = []
    for name, cfg in variants.items():
        model = AnalyticalModel(cfg, MESSAGE)
        result = model.evaluate(2e-4)
        per_class = {c.name or str(i): c.mean for i, c in enumerate(result.clusters)}
        rows.append([name, result.latency, min(per_class.values()), max(per_class.values())])
    print()
    print(
        render_table(
            ["ECN1 provisioning", "system latency", "best class", "worst class"],
            rows,
            title="Network heterogeneity at λ_g = 2e-4 (N=256, C=8)",
        )
    )
    print("  -> ECN1 slowdowns hit the slow clusters' outward latency; the")
    print("     node-weighted system mean (Eq. 3) dilutes but reflects it.")


def main() -> None:
    size_heterogeneity()
    network_heterogeneity()


if __name__ == "__main__":
    main()
