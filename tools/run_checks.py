#!/usr/bin/env python
"""One entry point for every static gate: reprolint + docs + mypy.

Runs, in order, the same commands the CI lint/docs jobs run:

1. ``python -m tools.reprolint src/repro`` — AST invariant rules and the
   cache-version fingerprint manifest (see ``docs/static_analysis.md``).
2. ``python tools/check_docs.py`` — link integrity, index navigation,
   runnable quickstart blocks (``--links-only`` is forwarded).
3. ``mypy --config-file mypy.ini src/repro tools`` — the typed-package
   gate.  The local toolchain may not ship mypy; in that case this step
   is *skipped with a notice* (CI always installs and runs it).

All three tools share one convention: diagnostics as ``path:line[:col]:
CODE message`` on stdout, summaries on stderr, exit 0 clean / 1 on
diagnostics / 2 on usage errors.  This wrapper exits with the worst
status across the gates it ran.

Usage::

    python tools/run_checks.py               # everything
    python tools/run_checks.py --links-only  # docs: skip the bash blocks
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run(label: str, argv: list[str]) -> int:
    print(f"== {label}: {' '.join(argv)}", file=sys.stderr)
    return subprocess.run(argv, cwd=ROOT).returncode


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only",
        action="store_true",
        help="forwarded to check_docs.py: skip running the quickstart blocks",
    )
    args = parser.parse_args(argv)

    statuses = [
        _run("reprolint", [sys.executable, "-m", "tools.reprolint", "src/repro"]),
        _run(
            "docs",
            [sys.executable, "tools/check_docs.py"]
            + (["--links-only"] if args.links_only else []),
        ),
    ]

    if importlib.util.find_spec("mypy") is not None:
        statuses.append(
            _run(
                "mypy",
                [
                    sys.executable, "-m", "mypy",
                    "--config-file", "mypy.ini", "src/repro", "tools",
                ],
            )
        )
    else:
        print(
            "== mypy: not installed in this environment, skipping "
            "(CI runs it; `pip install mypy` to run locally)",
            file=sys.stderr,
        )

    worst = max(statuses)
    summary = "all gates clean" if worst == 0 else f"worst exit status {worst}"
    print(f"== run_checks: {summary}", file=sys.stderr)
    return worst


if __name__ == "__main__":
    raise SystemExit(main())
