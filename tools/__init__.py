"""Repository tooling: static-analysis gates and documentation checks.

``tools`` is a plain package so the gates are runnable as modules from the
repository root (``python -m tools.reprolint``, ``python -m tools.run_checks``)
without any installation step.
"""
