"""Committed baseline: known, accepted diagnostics that do not fail CI.

The baseline lets the gate land strict rules on an imperfect tree: every
pre-existing finding is recorded once (``--update-baseline``) and new
code is held to the full standard.  Entries are keyed on ``(code, path,
symbol)`` — never line numbers — so unrelated edits to a file do not
invalidate its suppressions.  The shipped baseline is empty (the tree is
clean); it exists so future rules can be introduced without blocking on
a flag-day fix of every violation.
"""

from __future__ import annotations

import json
from pathlib import Path

from tools.reprolint import Diagnostic

__all__ = ["BASELINE_SCHEMA", "DEFAULT_BASELINE", "filter_baseline", "load_baseline", "write_baseline"]

BASELINE_SCHEMA = "reprolint.baseline/1"

#: Default baseline location, next to this module and committed with it.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Path | None = None) -> set[str]:
    """The suppressed-diagnostic keys; a missing file is an empty baseline."""
    path = path or DEFAULT_BASELINE
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError:
        return set()
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a reprolint baseline (expected schema "
            f"{BASELINE_SCHEMA!r})"
        )
    entries = data.get("suppressions", [])
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ValueError(f"{path}: 'suppressions' must be a list of strings")
    return set(entries)


def filter_baseline(
    diags: list[Diagnostic], baseline: set[str]
) -> tuple[list[Diagnostic], int]:
    """Split *diags* into (reported, number suppressed by the baseline)."""
    kept = [d for d in diags if d.baseline_key() not in baseline]
    return kept, len(diags) - len(kept)


def write_baseline(diags: list[Diagnostic], path: Path | None = None) -> Path:
    """Record every current diagnostic as accepted (sorted, deduplicated)."""
    path = path or DEFAULT_BASELINE
    payload = {
        "schema": BASELINE_SCHEMA,
        "suppressions": sorted({d.baseline_key() for d in diags}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
