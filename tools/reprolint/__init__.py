"""``reprolint`` — AST-based invariant linter for the ``repro`` package.

The repository's correctness rests on invariants no unit test can fully
see: on-disk cache keys are only sound if the engine/trajectory version
tags are bumped whenever the numerics behind them change, replication is
only bit-identical because every RNG flows through
:mod:`repro.simulation.rng`, result schemas only round-trip because every
``from_dict`` rejects unknown keys, and the process-pool fan-out only
works because the callables and work items it ships are picklable.

``reprolint`` enforces those invariants mechanically, as four rule
families over normalized ASTs (docstrings and comments never count):

* **RF — cache-version fingerprints** (:mod:`tools.reprolint.fingerprint`):
  a committed manifest pins a normalized-AST hash of the cache-semantics
  surface per ``ENGINE_VERSION``/``TRAJECTORY_VERSION``; changing the
  surface without bumping the version fails the gate.
* **RD — determinism** (:mod:`tools.reprolint.rules`): no unseeded
  ``default_rng()``, no legacy ``np.random``/``random`` global state, no
  wall-clock reads in the hot paths, RNG construction only in ``rng.py``.
* **RS — serialization**: ``to_dict`` implies ``from_dict``, every
  ``from_dict`` routes through ``reject_unknown_keys``, and every
  ``repro.*/N`` schema tag is declared in the single registry module.
* **RP — parallel safety**: only module-level callables into
  ``map_jobs``, only picklable field types on work-item dataclasses,
  and no direct ``ProcessPoolExecutor`` use outside the supervised
  execution runtime (``repro/exec/``).

Run ``python -m tools.reprolint src/repro`` from the repository root;
see ``docs/static_analysis.md`` for the full catalogue and the
version-bump protocol.  Exit codes follow the repo's tooling convention:
0 clean, 1 diagnostics, 2 usage error.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic", "RULES"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, location, message, baseline key.

    ``symbol`` is the innermost enclosing function/class name (or
    ``"<module>"``) — baseline entries are keyed on ``(code, path,
    symbol)`` rather than line numbers so they survive unrelated edits.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"

    def render(self) -> str:
        """``path:line:col: CODE message`` (the CI-facing format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def baseline_key(self) -> str:
        """Line-independent identity used by the committed baseline."""
        return f"{self.code} {self.path} {self.symbol}"


#: The rule catalogue: code -> one-line description.  ``--list-rules``
#: prints it and ``docs/static_analysis.md`` must document every entry
#: (locked by ``tests/test_reprolint.py``).
RULES: dict[str, str] = {
    "RF001": "cache-semantics surface (closed forms) changed without an ENGINE_VERSION bump",
    "RF002": "trajectory surface (simulators) changed without a TRAJECTORY_VERSION bump",
    "RF003": "fingerprint manifest missing, stale, or inconsistent with the declared surfaces",
    "RD101": "np.random.default_rng() called without a seed or SeedSequence",
    "RD102": "module-level RNG state: 'random' module or legacy np.random.* global functions",
    "RD103": "wall-clock read (time.time, datetime.now, ...) inside core/ or simulation/",
    "RD104": "RNG construction outside simulation/rng.py (seeds must flow through rng.py)",
    "RS201": "class defines to_dict but no from_dict (schema cannot round-trip)",
    "RS202": "from_dict does not route through reject_unknown_keys",
    "RS203": "'repro.*/N' schema tag declared outside the schema registry module",
    "RP301": "lambda or nested function handed to parallel.map_jobs (not picklable)",
    "RP302": "work-item dataclass field with a non-picklable (or unknown) type",
    "RP303": "direct ProcessPoolExecutor use outside the supervised runtime (repro/exec/)",
}
