"""Command-line runner: ``python -m tools.reprolint [paths ...]``.

Lints the given files/directories (default ``src/repro``) with the AST
rule families and checks the cache-version fingerprint manifest.  Output
follows the repository's tooling convention (shared with
``tools/check_docs.py``): one ``path:line:col: CODE message`` line per
diagnostic on stdout, a summary on stderr, exit 0 when clean, 1 on
diagnostics, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint import RULES, Diagnostic
from tools.reprolint.baseline import (
    DEFAULT_BASELINE,
    filter_baseline,
    load_baseline,
    write_baseline,
)
from tools.reprolint.fingerprint import (
    DEFAULT_MANIFEST,
    check_fingerprints,
    write_manifest,
)
from tools.reprolint.rules import lint_source

__all__ = ["main"]


def _python_files(paths: list[Path]) -> list[Path]:
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: list[Path],
    root: Path,
    *,
    manifest: "Path | None" = None,
    select: "set[str] | None" = None,
    fingerprints: bool = True,
) -> list[Diagnostic]:
    """All diagnostics for *paths*, fingerprints included (library entry).

    *select* filters by code or family prefix (``{"RD"}``, ``{"RS203"}``).
    """
    diags: list[Diagnostic] = []
    for path in _python_files(paths):
        rel = _relative(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"reprolint: cannot read {path}: {exc}")
        try:
            diags.extend(lint_source(source, rel))
        except SyntaxError as exc:
            raise SystemExit(f"reprolint: cannot parse {rel}: {exc}")
    if fingerprints:
        diags.extend(check_fingerprints(root, manifest))
    if select:
        diags = [d for d in diags if any(d.code.startswith(s) for s in select)]
    return sorted(diags, key=lambda d: (d.path, d.line, d.col, d.code))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant linter for the repro package",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--manifest", type=Path, default=None,
        help=f"fingerprint manifest (default: {DEFAULT_MANIFEST.name} beside the package)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE.name} beside the package)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes or family prefixes to run (e.g. RD,RS203)",
    )
    parser.add_argument(
        "--no-fingerprints", action="store_true",
        help="skip the RF manifest check (AST rules only)",
    )
    parser.add_argument(
        "--write-fingerprints", action="store_true",
        help="regenerate the fingerprint manifest from the current tree and exit",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="record every current diagnostic as accepted and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in RULES.items():
            print(f"{code}  {description}")
        return 0

    root = (args.root or Path.cwd()).resolve()

    if args.write_fingerprints:
        try:
            path = write_manifest(root, args.manifest)
        except (OSError, ValueError) as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        return 0

    select = None
    if args.select:
        select = {s.strip() for s in args.select.split(",") if s.strip()}
        unknown = [s for s in select if not any(code.startswith(s) for code in RULES)]
        if unknown:
            print(f"reprolint: unknown rule selector(s) {sorted(unknown)}", file=sys.stderr)
            return 2

    paths = [Path(p) if Path(p).is_absolute() else root / p for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path(s): {[str(p) for p in missing]}",
            file=sys.stderr,
        )
        return 2

    diags = lint_paths(
        paths, root,
        manifest=args.manifest,
        select=select,
        fingerprints=not args.no_fingerprints,
    )

    if args.update_baseline:
        path = write_baseline(diags, args.baseline)
        print(f"wrote {path} ({len(diags)} suppression(s))")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    diags, suppressed = filter_baseline(diags, baseline)

    for diag in diags:
        print(diag.render())
    note = f", {suppressed} suppressed by baseline" if suppressed else ""
    if diags:
        print(f"reprolint: {len(diags)} problem(s){note}", file=sys.stderr)
        return 1
    print(f"reprolint OK{note}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
