"""Cache-version fingerprints: normalized-AST hashes pinned per version tag.

The on-disk caches (:mod:`repro.io.cache`) key results by
``repro.core.batch.ENGINE_VERSION`` (closed-form evaluation) and
``repro.simulation.runner.TRAJECTORY_VERSION`` (simulator trajectories).
Those keys are only sound if the tags are bumped whenever the numeric
semantics behind them change — a purely human discipline until now.

This module makes the discipline checkable: each *surface* (the set of
modules whose code determines the cached numbers) is hashed as a
normalized AST — parsed, docstrings stripped, then ``ast.dump`` — so
comments and documentation never matter, and the per-file hashes are
pinned in a committed manifest (``tools/reprolint/fingerprints.json``)
keyed by the version tag current at commit time.  The check then has
three outcomes:

* hashes and version both match the manifest — clean;
* a surface file's hash changed while the version tag did not —
  **RF001/RF002**, the stale-cache bug this gate exists to catch;
* the version tag changed (or the manifest is missing/var-mismatched) —
  **RF003**: bump and regenerate together, in the same commit, via
  ``python -m tools.reprolint --write-fingerprints``.

Hashes are computed from the AST of the checked-out source with the
running interpreter; ``ast.dump`` output is stable within a minor Python
version (CI and the committed manifest both use 3.11).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from tools.reprolint import Diagnostic
from tools.reprolint.rules import strip_docstrings

__all__ = [
    "MANIFEST_SCHEMA",
    "SURFACES",
    "Surface",
    "build_manifest",
    "check_fingerprints",
    "fingerprint_path",
    "fingerprint_source",
    "write_manifest",
]

MANIFEST_SCHEMA = "reprolint.fingerprints/1"

#: Default manifest location, next to this module and committed with it.
DEFAULT_MANIFEST = Path(__file__).resolve().parent / "fingerprints.json"


@dataclass(frozen=True)
class Surface:
    """One versioned cache-semantics surface."""

    code: str  # diagnostic code on an unbumped change
    version_name: str  # e.g. "ENGINE_VERSION"
    version_module: str  # repo-relative module declaring the tag
    files: tuple[str, ...]  # repo-relative modules the tag covers


#: The two surfaces the repository's caches depend on.  ``engine`` is the
#: closed-form evaluation path (everything a cached explore/calibrate
#: model number flows through); ``trajectory`` is everything that shapes
#: a simulator run's numbers for a fixed (spec, seed, window,
#: granularity).  Spec-level inputs (``core/parameters.py`` defaults,
#: scenario definitions) are deliberately excluded: they are serialised
#: *into* every cache key, so changing them changes the key itself.
SURFACES: dict[str, Surface] = {
    "engine": Surface(
        code="RF001",
        version_name="ENGINE_VERSION",
        version_module="src/repro/core/batch.py",
        files=(
            "src/repro/core/batch.py",
            "src/repro/core/concentrator.py",
            "src/repro/core/inter.py",
            "src/repro/core/intra.py",
            "src/repro/core/model.py",
            "src/repro/core/queueing.py",
            "src/repro/core/service_times.py",
            "src/repro/core/stacked.py",
            "src/repro/core/stages.py",
            "src/repro/core/topology_math.py",
        ),
    ),
    "trajectory": Surface(
        code="RF002",
        version_name="TRAJECTORY_VERSION",
        version_module="src/repro/simulation/runner.py",
        files=(
            "src/repro/simulation/_eventcore.c",
            "src/repro/simulation/eventcore.py",
            "src/repro/simulation/fabric.py",
            "src/repro/simulation/flitsim.py",
            "src/repro/simulation/metrics.py",
            "src/repro/simulation/rng.py",
            "src/repro/simulation/runner.py",
            "src/repro/simulation/traffic.py",
            "src/repro/simulation/wormhole.py",
        ),
    ),
}


def fingerprint_source(source: str) -> str:
    """SHA-256 of the normalized AST (docstrings/comments stripped)."""
    tree = strip_docstrings(ast.parse(source))
    dump = ast.dump(tree, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def fingerprint_path(path: Path) -> str:
    """Fingerprint one surface file by kind.

    ``.py`` files hash their normalized AST (comment/docstring changes
    never matter); anything else — the simulator's C kernel — hashes raw
    bytes, since there is no Python AST to normalize and any source change
    there can change compiled-run numbers.
    """
    if path.suffix == ".py":
        return fingerprint_source(path.read_text(encoding="utf-8"))
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _declared_version(root: Path, surface: Surface) -> str | None:
    """The version tag currently assigned in the surface's module, if any."""
    path = root / surface.version_module
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == surface.version_name
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                return node.value.value
    return None


def build_manifest(root: Path) -> dict:
    """Fingerprint every surface of the tree at *root* (the repo root)."""
    surfaces: dict[str, dict] = {}
    for name, surface in SURFACES.items():
        version = _declared_version(root, surface)
        if version is None:
            raise ValueError(
                f"{surface.version_module} does not declare "
                f"{surface.version_name} as a string constant"
            )
        files = {rel: fingerprint_path(root / rel) for rel in surface.files}
        surfaces[name] = {
            "version_name": surface.version_name,
            "version_module": surface.version_module,
            "version": version,
            "files": files,
        }
    return {"schema": MANIFEST_SCHEMA, "surfaces": surfaces}


def write_manifest(root: Path, manifest_path: Path | None = None) -> Path:
    """Regenerate the committed manifest from the current tree."""
    manifest_path = manifest_path or DEFAULT_MANIFEST
    manifest_path.write_text(
        json.dumps(build_manifest(root), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return manifest_path


def _surface_diags(
    name: str, surface: Surface, pinned: dict, root: Path
) -> list[Diagnostic]:
    bump_hint = (
        f"bump {surface.version_name} in {surface.version_module} and run "
        "'python -m tools.reprolint --write-fingerprints'"
    )
    version = _declared_version(root, surface)
    if version is None:
        return [
            Diagnostic(
                "RF003", surface.version_module, 1, 0,
                f"{surface.version_name} not found as a string constant",
                surface.version_name,
            )
        ]
    if pinned.get("version") != version:
        return [
            Diagnostic(
                "RF003", surface.version_module, 1, 0,
                f"manifest pins {surface.version_name}="
                f"{pinned.get('version')!r} but the code declares "
                f"{version!r}; regenerate the manifest with "
                "'python -m tools.reprolint --write-fingerprints'",
                surface.version_name,
            )
        ]
    pinned_files = pinned.get("files", {})
    if set(pinned_files) != set(surface.files):
        return [
            Diagnostic(
                "RF003", surface.version_module, 1, 0,
                f"manifest file set for surface {name!r} does not match the "
                f"declared surface; {bump_hint}",
                surface.version_name,
            )
        ]
    diags: list[Diagnostic] = []
    for rel in surface.files:
        path = root / rel
        try:
            current = fingerprint_path(path)
        except (OSError, SyntaxError) as exc:
            diags.append(
                Diagnostic(
                    "RF003", rel, 1, 0,
                    f"surface file unreadable/unparsable: {exc}",
                    surface.version_name,
                )
            )
            continue
        if current != pinned_files[rel]:
            diags.append(
                Diagnostic(
                    surface.code, rel, 1, 0,
                    f"{surface.version_name} surface changed without a "
                    f"version bump (still {version!r}): cached results keyed "
                    f"by it would go stale — {bump_hint}",
                    surface.version_name,
                )
            )
    return diags


def check_fingerprints(root: Path, manifest_path: Path | None = None) -> list[Diagnostic]:
    """RF diagnostics for the tree at *root* against the pinned manifest."""
    manifest_path = manifest_path or DEFAULT_MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return [
            Diagnostic(
                "RF003", str(manifest_path), 1, 0,
                "fingerprint manifest missing or unreadable; run "
                "'python -m tools.reprolint --write-fingerprints'",
            )
        ]
    if manifest.get("schema") != MANIFEST_SCHEMA:
        return [
            Diagnostic(
                "RF003", str(manifest_path), 1, 0,
                f"unsupported manifest schema {manifest.get('schema')!r} "
                f"(this build reads {MANIFEST_SCHEMA!r})",
            )
        ]
    diags: list[Diagnostic] = []
    pinned_surfaces = manifest.get("surfaces", {})
    for name, surface in SURFACES.items():
        pinned = pinned_surfaces.get(name)
        if not isinstance(pinned, dict):
            diags.append(
                Diagnostic(
                    "RF003", str(manifest_path), 1, 0,
                    f"manifest has no entry for surface {name!r}; run "
                    "'python -m tools.reprolint --write-fingerprints'",
                )
            )
            continue
        diags.extend(_surface_diags(name, surface, pinned, root))
    return diags
