"""AST rule implementations for the RD/RS/RP families.

Every rule works on a *normalized* tree — docstrings are stripped before
any rule runs (comments never reach the AST), so documentation edits can
never trip the linter.  Rules resolve imported names through a per-module
alias table (``import numpy as np`` makes ``np.random.default_rng``
resolve to ``numpy.random.default_rng``), so aliasing cannot hide a
violation.

The entry point is :func:`lint_source`; path-scoping (which rules apply
where) lives in the small predicate helpers so the fixture tests can
exercise it with temporary trees.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath

from tools.reprolint import Diagnostic

__all__ = ["lint_source", "strip_docstrings"]

# ---------------------------------------------------------------------------
# normalization and shared helpers
# ---------------------------------------------------------------------------


def strip_docstrings(tree: ast.AST) -> ast.AST:
    """Drop every docstring statement in place (module/class/function).

    Shared with the fingerprint hasher: both the rules and the
    cache-surface hashes must be blind to documentation-only edits.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body.pop(0)
            if not body:
                body.append(ast.Pass())
    return tree


def _alias_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _resolve(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted path of an attribute/name chain with import aliases applied."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class _Scopes:
    """Maps every node to its innermost enclosing def/class name."""

    def __init__(self, tree: ast.Module) -> None:
        self._symbol: dict[ast.AST, str] = {}
        self.nested_functions: set[str] = set()
        self._walk(tree, "<module>", 0)

    def _walk(self, node: ast.AST, symbol: str, func_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            child_depth = func_depth
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_symbol = child.name
                child_depth = func_depth + 1
                if func_depth > 0:
                    self.nested_functions.add(child.name)
            elif isinstance(child, ast.ClassDef):
                child_symbol = child.name
            self._symbol[child] = child_symbol
            self._walk(child, child_symbol, child_depth)

    def symbol(self, node: ast.AST) -> str:
        return self._symbol.get(node, "<module>")


def _parts(rel_path: str) -> tuple[str, ...]:
    return PurePosixPath(rel_path.replace("\\", "/")).parts


def _in_hot_path(rel_path: str) -> bool:
    """RD103/RD104 scope: the ``core``/``simulation`` packages."""
    return bool({"core", "simulation"} & set(_parts(rel_path)[:-1]))


def _is_rng_module(rel_path: str) -> bool:
    """The one module allowed to construct RNGs."""
    parts = _parts(rel_path)
    return parts[-1] == "rng.py" and "simulation" in parts[:-1]


#: The single module allowed to *declare* ``repro.*/N`` schema tags.
SCHEMA_REGISTRY_PATH = "src/repro/io/schemas.py"


def _is_schema_registry(rel_path: str) -> bool:
    parts = _parts(rel_path)
    return parts[-2:] == ("io", "schemas.py")


def _is_exec_runtime(rel_path: str) -> bool:
    """RP303 exemption: the supervised execution runtime package."""
    return "exec" in _parts(rel_path)[:-1]


# ---------------------------------------------------------------------------
# RD — determinism
# ---------------------------------------------------------------------------

#: Legacy global-state functions of ``numpy.random`` (RD102).  Calling any
#: of these consumes or mutates the hidden module-level generator, which
#: breaks replayability across import orders and worker processes.
_NP_RANDOM_GLOBAL = {
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "poisson", "standard_normal", "standard_exponential",
    "get_state", "set_state", "bytes", "binomial", "gamma", "beta",
}

#: RNG constructors that must live in ``simulation/rng.py`` (RD104).
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}

#: Wall-clock reads forbidden in the hot paths (RD103).  Duration probes
#: (``time.perf_counter``, ``time.monotonic``) are fine: they never leak
#: into results, only into ``wall_seconds`` instrumentation.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _check_determinism(
    tree: ast.Module, rel_path: str, aliases: dict[str, str], scopes: _Scopes
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    hot = _in_hot_path(rel_path)
    rng_module = _is_rng_module(rel_path)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.names[0].name if isinstance(node, ast.Import) else (node.module or "")
            root = module.split(".")[0]
            if root == "random":
                diags.append(
                    Diagnostic(
                        "RD102", rel_path, node.lineno, node.col_offset,
                        "the stdlib 'random' module is global-state RNG; "
                        "derive streams from repro.simulation.rng instead",
                        scopes.symbol(node),
                    )
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve(node.func, aliases)
        if resolved is None:
            continue
        if resolved == "numpy.random.default_rng" and not node.args and not node.keywords:
            diags.append(
                Diagnostic(
                    "RD101", rel_path, node.lineno, node.col_offset,
                    "unseeded default_rng() is irreproducible; pass a seed or "
                    "SeedSequence derived via repro.simulation.rng",
                    scopes.symbol(node),
                )
            )
        if (
            resolved.startswith("numpy.random.")
            and resolved.split(".")[-1] in _NP_RANDOM_GLOBAL
            and len(resolved.split(".")) == 3
        ):
            diags.append(
                Diagnostic(
                    "RD102", rel_path, node.lineno, node.col_offset,
                    f"legacy global-state call {resolved}(); use a Generator "
                    "from repro.simulation.rng",
                    scopes.symbol(node),
                )
            )
        if hot and resolved in _WALL_CLOCK:
            diags.append(
                Diagnostic(
                    "RD103", rel_path, node.lineno, node.col_offset,
                    f"wall-clock read {resolved}() in a hot path; results must "
                    "be functions of (spec, seed) only — use time.perf_counter "
                    "for duration instrumentation",
                    scopes.symbol(node),
                )
            )
        if hot and not rng_module and resolved in _RNG_CONSTRUCTORS:
            diags.append(
                Diagnostic(
                    "RD104", rel_path, node.lineno, node.col_offset,
                    f"{resolved} constructed outside simulation/rng.py; all "
                    "seed derivation flows through the rng module",
                    scopes.symbol(node),
                )
            )
    return diags


# ---------------------------------------------------------------------------
# RS — serialization
# ---------------------------------------------------------------------------

_SCHEMA_TAG = re.compile(r"^repro\.[a-z0-9_-]+/\d+$")


def _check_serialization(
    tree: ast.Module, rel_path: str, aliases: dict[str, str], scopes: _Scopes
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "to_dict" in methods and "from_dict" not in methods:
                diags.append(
                    Diagnostic(
                        "RS201", rel_path, node.lineno, node.col_offset,
                        f"class {node.name} defines to_dict but no from_dict; "
                        "serialised results must round-trip",
                        node.name,
                    )
                )
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == "from_dict"
                ):
                    calls_reject = any(
                        isinstance(inner, ast.Call)
                        and (
                            (_resolve(inner.func, aliases) or "").split(".")[-1].lstrip("_")
                            == "reject_unknown_keys"
                        )
                        for inner in ast.walk(stmt)
                    )
                    if not calls_reject:
                        diags.append(
                            Diagnostic(
                                "RS202", rel_path, stmt.lineno, stmt.col_offset,
                                f"{node.name}.from_dict does not call "
                                "reject_unknown_keys; typo'd config keys would "
                                "be silently dropped",
                                node.name,
                            )
                        )

    if not _is_schema_registry(rel_path):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _SCHEMA_TAG.match(node.value)
            ):
                diags.append(
                    Diagnostic(
                        "RS203", rel_path, node.lineno, node.col_offset,
                        f"schema tag {node.value!r} declared outside the "
                        f"registry ({SCHEMA_REGISTRY_PATH}); import the named "
                        "constant instead",
                        scopes.symbol(node),
                    )
                )
    return diags


# ---------------------------------------------------------------------------
# RP — parallel safety
# ---------------------------------------------------------------------------

#: Field types a work-item dataclass may carry: spec-level value objects
#: and immutable builtins, all picklable by construction.  Extend this
#: list (or the baseline) deliberately when a new spec type appears.
_PICKLABLE_TYPES = {
    "int", "float", "str", "bool", "bytes", "None", "NoneType",
    "tuple", "frozenset", "list", "dict", "set", "Tuple", "Optional",
    "Union", "Sequence", "Mapping", "Path",
    "SystemConfig", "MessageSpec", "ModelOptions", "MeasurementWindow",
    "SimTrafficPattern", "ScenarioSpec", "LoadGridPolicy", "AxisSpec",
    "DesignGrid",
}


def _annotation_ok(node: ast.expr) -> tuple[bool, str]:
    """Whether an annotation names only picklable types; returns offender."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True, ""
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return False, node.value
            return _annotation_ok(parsed)
        return False, repr(node.value)
    if isinstance(node, ast.Name):
        return (node.id in _PICKLABLE_TYPES), node.id
    if isinstance(node, ast.Attribute):
        return (node.attr in _PICKLABLE_TYPES), node.attr
    if isinstance(node, ast.Subscript):
        ok, offender = _annotation_ok(node.value)
        if not ok:
            return False, offender
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is Ellipsis:
                continue
            ok, offender = _annotation_ok(element)
            if not ok:
                return False, offender
        return True, ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        ok, offender = _annotation_ok(node.left)
        if not ok:
            return False, offender
        return _annotation_ok(node.right)
    return False, ast.dump(node)


def _is_dataclass(node: ast.ClassDef, aliases: dict[str, str]) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = _resolve(target, aliases) or ""
        if resolved.split(".")[-1] == "dataclass":
            return True
    return False


def _check_parallel_safety(
    tree: ast.Module, rel_path: str, aliases: dict[str, str], scopes: _Scopes
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    exec_runtime = _is_exec_runtime(rel_path)

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if (
                not exec_runtime
                and node.module == "concurrent.futures"
                and node.level == 0
                and any(alias.name == "ProcessPoolExecutor" for alias in node.names)
            ):
                diags.append(
                    Diagnostic(
                        "RP303", rel_path, node.lineno, node.col_offset,
                        "ProcessPoolExecutor imported outside repro/exec/; bare "
                        "pools have no retry/timeout/respawn supervision — use "
                        "repro.exec.run_supervised (or parallel.map_jobs)",
                        scopes.symbol(node),
                    )
                )
        elif isinstance(node, ast.Call):
            resolved = _resolve(node.func, aliases) or ""
            if (
                not exec_runtime
                and isinstance(node.func, ast.Attribute)
                and resolved == "concurrent.futures.ProcessPoolExecutor"
            ):
                diags.append(
                    Diagnostic(
                        "RP303", rel_path, node.lineno, node.col_offset,
                        "ProcessPoolExecutor constructed outside repro/exec/; "
                        "bare pools have no retry/timeout/respawn supervision — "
                        "use repro.exec.run_supervised (or parallel.map_jobs)",
                        scopes.symbol(node),
                    )
                )
            if resolved.split(".")[-1] == "map_jobs" and node.args:
                fn = node.args[0]
                if isinstance(fn, ast.Lambda):
                    diags.append(
                        Diagnostic(
                            "RP301", rel_path, fn.lineno, fn.col_offset,
                            "lambda handed to map_jobs cannot be pickled into "
                            "worker processes; use a module-level function",
                            scopes.symbol(node),
                        )
                    )
                elif isinstance(fn, ast.Name) and fn.id in scopes.nested_functions:
                    diags.append(
                        Diagnostic(
                            "RP301", rel_path, fn.lineno, fn.col_offset,
                            f"nested function {fn.id!r} handed to map_jobs "
                            "cannot be pickled; hoist it to module level",
                            scopes.symbol(node),
                        )
                    )
        elif isinstance(node, ast.ClassDef):
            if not node.name.endswith("WorkItem") or not _is_dataclass(node, aliases):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                ok, offender = _annotation_ok(stmt.annotation)
                if not ok:
                    diags.append(
                        Diagnostic(
                            "RP302", rel_path, stmt.lineno, stmt.col_offset,
                            f"work-item field {stmt.target.id!r} has "
                            f"non-picklable (or unrecognised) type "
                            f"{offender!r}; work items must cross process "
                            "boundaries",
                            node.name,
                        )
                    )
    return diags


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def lint_source(source: str, rel_path: str) -> list[Diagnostic]:
    """All RD/RS/RP diagnostics for one module's source text.

    *rel_path* is the repository-relative POSIX path — rule scoping
    (hot-path restriction, the rng.py and schema-registry exemptions)
    keys off it.  Raises ``SyntaxError`` for unparsable input; the CLI
    maps that to a usage-style failure rather than swallowing it.
    """
    tree = ast.parse(source)
    strip_docstrings(tree)
    aliases = _alias_table(tree)
    scopes = _Scopes(tree)
    diags: list[Diagnostic] = []
    diags += _check_determinism(tree, rel_path, aliases, scopes)
    diags += _check_serialization(tree, rel_path, aliases, scopes)
    diags += _check_parallel_safety(tree, rel_path, aliases, scopes)
    return sorted(diags, key=lambda d: (d.path, d.line, d.col, d.code))
