"""Regenerate the golden-trajectory digest corpus.

The corpus (``tests/goldens/trajectories.json``) pins one sha256 digest of
the canonical trajectory (:func:`repro.simulation.eventcore.trajectory_digest`)
per (scenario, seed, granularity) golden point.  CI replays every entry —
message-granularity points under **both** event engines — so either engine
drifting from its pinned trajectory fails by name.

Regen protocol (the RF003 discipline, applied to trajectories)
--------------------------------------------------------------
Digests embed ``TRAJECTORY_VERSION``, so they go stale exactly when that
tag is bumped — which is also the only legitimate moment to regenerate:

1. change the simulator, bump ``TRAJECTORY_VERSION`` in
   ``src/repro/simulation/runner.py``, and regenerate the reprolint
   fingerprints (``python -m tools.reprolint --write-fingerprints``);
2. regenerate this corpus in the same commit::

       PYTHONPATH=src python -m tools.regen_goldens

3. eyeball the diff: an intentional semantic change rewrites every
   digest; a version-only bump rewrites them too (the version is hashed),
   but an *unintentional* trajectory change without a bump is caught by
   the suite before you ever get here.

Never hand-edit digests, and never regenerate to silence a failure you
cannot explain — that failure is the corpus doing its job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

GOLDENS_PATH = ROOT / "tests" / "goldens" / "trajectories.json"
GOLDENS_SCHEMA = "repro.goldens.trajectories/1"

#: The corpus: (scenario, seed, granularity, load, (warmup, measured, drain)).
#: Message points span the registry's topology/traffic families; flit
#: points are smaller (the flit engine is ~50x slower per message).
GOLDEN_SPECS: tuple[tuple[str, int, str, float, tuple[int, int, int]], ...] = (
    ("544", 0, "message", 3e-4, (100, 600, 100)),
    ("544", 1, "message", 3e-4, (100, 600, 100)),
    ("544", 2024, "message", 3e-4, (100, 600, 100)),
    ("544-hotspot", 0, "message", 3e-4, (100, 600, 100)),
    ("544-hotspot", 1, "message", 3e-4, (100, 600, 100)),
    ("544-local", 0, "message", 3e-4, (100, 600, 100)),
    ("544-local", 2024, "message", 3e-4, (100, 600, 100)),
    ("het8-extreme", 0, "message", 3e-4, (100, 600, 100)),
    ("het8-extreme", 1, "message", 3e-4, (100, 600, 100)),
    ("het8-uniform", 0, "message", 3e-4, (100, 600, 100)),
    ("het8-uniform", 2024, "message", 3e-4, (100, 600, 100)),
    ("1120", 0, "message", 2e-4, (100, 400, 100)),
    ("544", 0, "flit", 3e-4, (20, 120, 20)),
    ("544", 1, "flit", 3e-4, (20, 120, 20)),
    ("het8-uniform", 0, "flit", 3e-4, (20, 120, 20)),
    ("het8-uniform", 1, "flit", 3e-4, (20, 120, 20)),
)


def golden_trajectory(scenario, seed, granularity, load, window, *, engine="reference"):
    """Run one golden point and return its trajectory."""
    from repro.cluster.system import HeterogeneousSystem
    from repro.core.parameters import ModelOptions
    from repro.scenarios.registry import get_scenario
    from repro.simulation.fabric import ResolvedFabric
    from repro.simulation.metrics import MeasurementWindow
    from repro.simulation.rng import make_streams

    spec = get_scenario(scenario)
    fabric = ResolvedFabric(HeterogeneousSystem(spec.system), spec.message, ModelOptions())
    mw = MeasurementWindow(*window)
    if granularity == "message":
        from repro.simulation.wormhole import MessageLevelWormholeSimulator

        sim = MessageLevelWormholeSimulator(
            fabric, mw, load, make_streams(seed), spec.pattern, engine=engine
        )
    else:
        from repro.simulation.flitsim import FlitLevelSimulator

        sim = FlitLevelSimulator(fabric, mw, load, make_streams(seed), spec.pattern)
    sim.run()
    return sim.trajectory()


def golden_digest(scenario, seed, granularity, load, window, *, engine="reference"):
    """Digest of one golden point (what the corpus pins)."""
    from repro.simulation.eventcore import trajectory_digest

    return trajectory_digest(
        golden_trajectory(scenario, seed, granularity, load, window, engine=engine)
    )


def build_corpus() -> dict:
    """Compute every golden entry with the reference engine."""
    from repro.simulation.runner import TRAJECTORY_VERSION

    entries = []
    for scenario, seed, granularity, load, window in GOLDEN_SPECS:
        entries.append(
            {
                "scenario": scenario,
                "seed": seed,
                "granularity": granularity,
                "load": load,
                "window": list(window),
                "digest": golden_digest(scenario, seed, granularity, load, window),
            }
        )
    return {
        "schema": GOLDENS_SCHEMA,
        "trajectory_version": TRAJECTORY_VERSION,
        "regen": "PYTHONPATH=src python -m tools.regen_goldens  (see the module docstring for the protocol)",
        "entries": entries,
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check_only = "--check" in argv
    corpus = build_corpus()
    text = json.dumps(corpus, indent=2) + "\n"
    if check_only:
        current = GOLDENS_PATH.read_text(encoding="utf-8") if GOLDENS_PATH.exists() else ""
        if current != text:
            print(f"{GOLDENS_PATH} is stale; rerun without --check", file=sys.stderr)
            return 1
        print(f"{GOLDENS_PATH} is up to date")
        return 0
    GOLDENS_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDENS_PATH.write_text(text, encoding="utf-8")
    print(f"wrote {GOLDENS_PATH} ({len(corpus['entries'])} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
