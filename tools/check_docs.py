#!/usr/bin/env python
"""Documentation checker: link integrity + runnable quickstart blocks.

Three checks, all enforced by the CI lint job and by
``tests/test_docs.py``:

1. **Links** — every markdown link with a relative target in
   ``docs/*.md`` and ``README.md`` resolves to an existing file
   (``#fragment`` suffixes stripped; ``http(s)://``/``mailto:`` skipped).
2. **Navigation** — ``docs/index.md`` links every other ``docs/*.md``
   page, and every page links back to ``index.md`` (the index stays the
   single entry point as pages are added).
3. **Quickstart** — every fenced ```` ```bash ```` block in
   ``docs/index.md`` runs to completion with exit 0 (``bash -euo
   pipefail``, repo root as cwd, ``src/`` prepended to ``PYTHONPATH`` so
   the check works both in-tree and against an installed package).

Output follows the repository's tooling convention (shared with
``python -m tools.reprolint`` and wrapped by ``tools/run_checks.py``):
one ``path:line: CODE message`` diagnostic per line on stdout, a summary
on stderr, exit 0 when clean, 1 on diagnostics, 2 on usage errors.

Codes: ``DOC001`` broken link, ``DOC002`` page missing from the index,
``DOC003`` page without a backlink to the index, ``DOC004`` quickstart
block failed, ``DOC005`` index missing.

Usage::

    python tools/check_docs.py               # everything
    python tools/check_docs.py --links-only  # skip running the bash blocks
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

# Inline markdown links [text](target); reference-style links are not used
# in this repository's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BASH_FENCE = re.compile(r"^```bash\n(.*?)^```", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")

#: (rel_path, line, code, message) — same shape reprolint renders.
Diag = tuple[str, int, str, str]


def _render(diag: Diag) -> str:
    path, line, code, message = diag
    return f"{path}:{line}: {code} {message}"


def _markdown_files() -> list[Path]:
    files = sorted(DOCS.glob("*.md"))
    readme = ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _targets(path: Path) -> list[str]:
    return _LINK.findall(path.read_text(encoding="utf-8"))


def _targets_with_lines(path: Path) -> list[tuple[int, str]]:
    out = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        out.extend((number, target) for target in _LINK.findall(line))
    return out


def check_links() -> list[Diag]:
    """Relative link targets must exist on disk (DOC001)."""
    diags: list[Diag] = []
    for path in _markdown_files():
        rel_path = path.relative_to(ROOT).as_posix()
        for line, target in _targets_with_lines(path):
            if target.startswith(_EXTERNAL):
                continue
            rel = target.split("#", 1)[0]
            if not rel:  # pure in-page anchor
                continue
            if not (path.parent / rel).exists():
                diags.append((rel_path, line, "DOC001", f"broken link -> {target}"))
    return diags


def check_navigation() -> list[Diag]:
    """index.md links every doc page (DOC002); pages link back (DOC003)."""
    index = DOCS / "index.md"
    if not index.exists():
        return [("docs/index.md", 1, "DOC005", "documentation index is missing")]
    index_targets = {t.split("#", 1)[0] for t in _targets(index)}
    diags: list[Diag] = []
    for page in sorted(DOCS.glob("*.md")):
        if page.name == "index.md":
            continue
        if page.name not in index_targets:
            diags.append(
                ("docs/index.md", 1, "DOC002", f"does not link {page.name}")
            )
        back = {t.split("#", 1)[0] for t in _targets(page)}
        if "index.md" not in back:
            diags.append(
                (f"docs/{page.name}", 1, "DOC003", "does not link back to index.md")
            )
    return diags


def run_quickstart_blocks() -> tuple[list[Diag], int]:
    """Every fenced bash block of index.md must exit 0 (DOC004)."""
    index = DOCS / "index.md"
    if not index.exists():
        # check_navigation already reports the missing index; there is
        # simply nothing to run.
        return [], 0
    text = index.read_text(encoding="utf-8")
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    diags: list[Diag] = []
    matches = list(_BASH_FENCE.finditer(text))
    for number, match in enumerate(matches, start=1):
        block = match.group(1)
        line = text.count("\n", 0, match.start()) + 1
        proc = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", block],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            diags.append(
                (
                    "docs/index.md", line, "DOC004",
                    f"bash block #{number} exited {proc.returncode}:\n"
                    f"{block.rstrip()}\n--- stderr ---\n{proc.stderr.rstrip()}",
                )
            )
    return diags, len(matches)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only",
        action="store_true",
        help="check links and navigation only; skip running the bash blocks",
    )
    args = parser.parse_args(argv)

    diags = check_links() + check_navigation()
    n_blocks = 0
    if not args.links_only:
        block_diags, n_blocks = run_quickstart_blocks()
        diags += block_diags

    n_files = len(_markdown_files())
    if diags:
        for diag in sorted(diags):
            print(_render(diag))
        print(f"check_docs: {len(diags)} problem(s)", file=sys.stderr)
        return 1
    ran = "" if args.links_only else f", {n_blocks} quickstart block(s) ran clean"
    print(
        f"check_docs OK: {n_files} markdown file(s) link-checked{ran}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
