#!/usr/bin/env python
"""Documentation checker: link integrity + runnable quickstart blocks.

Three checks, all enforced by the docs CI job and by
``tests/test_docs.py``:

1. **Links** — every markdown link with a relative target in
   ``docs/*.md`` and ``README.md`` resolves to an existing file
   (``#fragment`` suffixes stripped; ``http(s)://``/``mailto:`` skipped).
2. **Navigation** — ``docs/index.md`` links every other ``docs/*.md``
   page, and every page links back to ``index.md`` (the index stays the
   single entry point as pages are added).
3. **Quickstart** — every fenced ```` ```bash ```` block in
   ``docs/index.md`` runs to completion with exit 0 (``bash -euo
   pipefail``, repo root as cwd, ``src/`` prepended to ``PYTHONPATH`` so
   the check works both in-tree and against an installed package).

Usage::

    python tools/check_docs.py               # everything
    python tools/check_docs.py --links-only  # skip running the bash blocks

Exits 0 when every check passes, 1 otherwise (failures listed on stderr).
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

# Inline markdown links [text](target); reference-style links are not used
# in this repository's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BASH_FENCE = re.compile(r"^```bash\n(.*?)^```", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> list[Path]:
    files = sorted(DOCS.glob("*.md"))
    readme = ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _targets(path: Path) -> list[str]:
    return _LINK.findall(path.read_text(encoding="utf-8"))


def check_links() -> list[str]:
    """Relative link targets must exist on disk."""
    failures = []
    for path in _markdown_files():
        for target in _targets(path):
            if target.startswith(_EXTERNAL):
                continue
            rel = target.split("#", 1)[0]
            if not rel:  # pure in-page anchor
                continue
            if not (path.parent / rel).exists():
                failures.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return failures


def check_navigation() -> list[str]:
    """index.md links every doc page; every doc page links back."""
    index = DOCS / "index.md"
    if not index.exists():
        return ["docs/index.md is missing"]
    index_targets = {t.split("#", 1)[0] for t in _targets(index)}
    failures = []
    for page in sorted(DOCS.glob("*.md")):
        if page.name == "index.md":
            continue
        if page.name not in index_targets:
            failures.append(f"docs/index.md does not link {page.name}")
        back = {t.split("#", 1)[0] for t in _targets(page)}
        if "index.md" not in back:
            failures.append(f"docs/{page.name} does not link back to index.md")
    return failures


def run_quickstart_blocks() -> tuple[list[str], int]:
    """Every fenced bash block of index.md must exit 0."""
    index = DOCS / "index.md"
    if not index.exists():
        # check_navigation already reports the missing index; there is
        # simply nothing to run.
        return [], 0
    blocks = _BASH_FENCE.findall(index.read_text(encoding="utf-8"))
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    failures = []
    for number, block in enumerate(blocks, start=1):
        proc = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", block],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            failures.append(
                f"docs/index.md bash block #{number} exited {proc.returncode}:\n"
                f"{block.rstrip()}\n--- stderr ---\n{proc.stderr.rstrip()}"
            )
    return failures, len(blocks)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only",
        action="store_true",
        help="check links and navigation only; skip running the bash blocks",
    )
    args = parser.parse_args(argv)

    failures = check_links() + check_navigation()
    n_blocks = 0
    if not args.links_only:
        block_failures, n_blocks = run_quickstart_blocks()
        failures += block_failures

    n_files = len(_markdown_files())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"\n{len(failures)} docs check(s) failed", file=sys.stderr)
        return 1
    ran = "" if args.links_only else f", {n_blocks} quickstart block(s) ran clean"
    print(f"docs OK: {n_files} markdown file(s) link-checked{ran}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
