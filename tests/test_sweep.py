"""Load-sweep and saturation-search tests (core.sweep)."""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    MessageSpec,
    auto_load_grid,
    find_saturation_load,
    sweep_load,
)

MSG = MessageSpec(16, 256.0)


@pytest.fixture(scope="module")
def model(request):
    from repro.core import paper_system_544

    return AnalyticalModel(paper_system_544(), MSG)


class TestFindSaturation:
    def test_bracketing_consistency(self, model):
        lam_star = find_saturation_load(model)
        assert model.is_saturated(lam_star * 1.001)
        assert not model.is_saturated(lam_star * 0.999)

    def test_tight_tolerance(self, model):
        # rel_tol only drives the reference bisection; the exact path ignores it.
        loose = find_saturation_load(model, rel_tol=1e-2, method="bisection")
        tight = find_saturation_load(model, rel_tol=1e-6, method="bisection")
        assert tight == pytest.approx(loose, rel=2e-2)

    def test_upper_hint_is_irrelevant(self, model):
        a = find_saturation_load(model, upper_hint=1e-6, method="bisection")
        b = find_saturation_load(model, upper_hint=10.0, method="bisection")
        assert a == pytest.approx(b, rel=1e-3)


class TestSweep:
    def test_sweep_shapes(self, model):
        grid = np.linspace(1e-5, 1e-3, 6)
        sweep = sweep_load(model, grid)
        assert sweep.loads.shape == (6,)
        assert sweep.latencies.shape == (6,)
        assert len(sweep.results) == 6

    def test_finite_mask_marks_saturated_points(self, model):
        lam_star = find_saturation_load(model)
        sweep = sweep_load(model, [0.5 * lam_star, 2 * lam_star])
        assert list(sweep.finite_mask()) == [True, False]

    def test_rows_roundtrip(self, model):
        sweep = sweep_load(model, [1e-5, 2e-5])
        rows = sweep.as_rows()
        assert rows[0][0] == pytest.approx(1e-5)
        assert rows[1][1] == pytest.approx(sweep.latencies[1])

    def test_rejects_negative_loads(self, model):
        with pytest.raises(ValueError):
            sweep_load(model, [-1e-5])

    def test_rejects_empty(self, model):
        with pytest.raises(ValueError):
            sweep_load(model, [])


class TestAutoGrid:
    def test_grid_below_saturation(self, model):
        grid = auto_load_grid(model, points=8, fraction_of_saturation=0.9)
        lam_star = find_saturation_load(model)
        assert grid.max() <= 0.9 * lam_star * (1 + 1e-9)
        assert len(grid) == 8
        assert all(not model.is_saturated(x) for x in grid)

    def test_include_zero(self, model):
        grid = auto_load_grid(model, points=5, include_zero=True)
        assert grid[0] == 0.0

    def test_rejects_bad_fraction(self, model):
        with pytest.raises(ValueError):
            auto_load_grid(model, fraction_of_saturation=1.5)
