"""Concentrator/dispatcher semantics tests (DESIGN.md §3 item 11).

The reproduction's most consequential interpretation decision is how the
concentrators behave; these tests pin each element of the adopted
semantics so regressions are caught by name.
"""

import pytest

from repro.cluster.channels import Concentrator
from repro.simulation import MeasurementWindow, MessageLevelWormholeSimulator, make_streams
from repro.simulation.flitsim import FlitLevelSimulator


class TestReceptionFlags:
    def test_cd_reception_channels_flagged(self, small_fabric):
        flagged = {
            cid for cid in range(small_fabric.num_channels) if small_fabric.cd_reception[cid]
        }
        expected = {
            cid
            for cid, ch in enumerate(small_fabric.channels)
            if isinstance(ch.target, Concentrator)
        }
        assert flagged == expected
        # Every cluster has reception links on both the ECN1 and ICN2 side.
        nets = {small_fabric.channels[cid].network[0] for cid in flagged}
        assert nets == {"ecn1", "icn2"}

    def test_paper_mode_leaves_reception_uncontended(self, small_fabric, fast_window):
        sim = MessageLevelWormholeSimulator(small_fabric, fast_window, 1e-3, make_streams(0))
        for cid in range(small_fabric.num_channels):
            if small_fabric.cd_reception[cid]:
                assert sim._uncontended[cid]

    def test_store_and_forward_contends_reception(self, small_fabric, fast_window):
        sim = MessageLevelWormholeSimulator(
            small_fabric, fast_window, 1e-3, make_streams(0), cd_mode="store_and_forward"
        )
        assert not any(
            sim._uncontended[cid]
            for cid in range(small_fabric.num_channels)
            if small_fabric.cd_reception[cid]
        )

    def test_flit_engine_mirrors_flags(self, small_fabric, fast_window):
        paper = FlitLevelSimulator(small_fabric, fast_window, 1e-3, make_streams(0))
        snf = FlitLevelSimulator(
            small_fabric, fast_window, 1e-3, make_streams(0), cd_mode="store_and_forward"
        )
        for cid in range(small_fabric.num_channels):
            if small_fabric.cd_reception[cid]:
                assert paper._uncontended[cid]
                assert not snf._uncontended[cid]


class TestCutThroughBehaviour:
    def test_paper_mode_single_serialization(self, small_session, fast_window):
        """Cut-through: inter latency ≈ header hops + one (M-1)·τ_max drain,
        NOT three full drains."""
        run = small_session.run(1e-4, seed=1, window=fast_window)
        fabric = small_session.fabric
        m = fabric.message.length_flits
        # Bound: slowest possible journey under single serialization.
        worst_single = 0.0
        for src, dst in [(0, 9), (0, 17), (0, 25)]:
            segs = fabric.resolve(src, dst)
            total = sum(fabric.flit_time[c] for s in segs for c in s.channel_ids)
            total += (m - 1) * max(s.bottleneck_flit_time for s in segs)
            worst_single = max(worst_single, total)
        # At near-zero load the inter mean must sit below ~1.3x that bound
        # (queueing allowance), far below the 3x of store-and-forward.
        assert run.stats.mean_inter < 1.3 * worst_single

    def test_concentrate_utilization_matches_nominal_service(self, small_session, fast_window):
        """At light load the concentrate link's utilisation is ≈
        λ_out · M · τ(ICN2 segment) — Eq. 37's service, not the E1 rate."""
        lam = 5e-4
        run = small_session.run(lam, seed=2, window=fast_window)
        fabric = small_session.fabric
        system = fabric.system
        m = fabric.message.length_flits
        n_i = system.clusters[0].num_nodes
        u = system.config.outgoing_probability(0)
        seg = fabric.resolve(0, n_i + 1)[1]  # an ICN2 segment
        nominal = n_i * lam * u * m * seg.bottleneck_flit_time
        assert run.network_utilization["cd-concentrate"] == pytest.approx(nominal, rel=0.25)

    def test_store_and_forward_latency_decomposes(self, small_session, fast_window):
        """S&F at near-zero load = Σ per-segment (hops + drain)."""
        run = small_session.run(5e-5, seed=3, window=MeasurementWindow(20, 300, 20), cd_mode="store_and_forward")
        fabric = small_session.fabric
        m = fabric.message.length_flits
        samples = []
        for src, dst in [(0, 9), (3, 20), (7, 30)]:
            total = 0.0
            for seg in fabric.resolve(src, dst):
                total += sum(fabric.flit_time[c] for c in seg.channel_ids)
                total += (m - 1) * seg.bottleneck_flit_time
            samples.append(total)
        assert min(samples) * 0.95 < run.stats.mean_inter < max(samples) * 1.2


class TestDispatchSpreading:
    def test_dispatch_traffic_spreads_over_roots(self, small_session, fast_window):
        """Multi-root attach: both dispatch links of a cluster carry load."""
        run = small_session.run(2e-3, seed=4, window=fast_window)
        del run  # busy accounting is aggregated; check structurally instead
        fabric = small_session.fabric
        roots_used = set()
        cluster1 = fabric.system.clusters[1]
        for dst in range(cluster1.first_global_id, cluster1.first_global_id + cluster1.num_nodes):
            seg = fabric.resolve(0, dst)[2]
            first_channel = fabric.channels[seg.channel_ids[0]]
            roots_used.add(first_channel.target)
        assert len(roots_used) == len(cluster1.ecn1.root_switches)
