"""Integration: the analytical model against the discrete-event simulator.

These are the repository's core validation tests — small-system versions of
the paper's §4 methodology, kept fast enough for CI.
"""

import numpy as np
import pytest

from repro.core import AnalyticalModel, MessageSpec, find_saturation_load
from repro.simulation import MeasurementWindow, SimulationSession
from repro.workloads import LocalityTraffic


class TestLightLoadTracking:
    def test_homogeneous_light_load(self, small_system, small_message, small_session):
        """Model within 15 % of simulation at 20 % of saturation load."""
        model = AnalyticalModel(small_system, small_message)
        lam = 0.2 * find_saturation_load(model)
        sim = small_session.run(lam, seed=1, window=MeasurementWindow(300, 4000, 300))
        predicted = model.evaluate(lam).latency
        assert predicted == pytest.approx(sim.mean_latency, rel=0.15)

    def test_heterogeneous_light_load(self, tiny_hetero_system, small_message, hetero_session):
        model = AnalyticalModel(tiny_hetero_system, small_message)
        lam = 0.2 * find_saturation_load(model)
        sim = hetero_session.run(lam, seed=2, window=MeasurementWindow(300, 4000, 300))
        predicted = model.evaluate(lam).latency
        assert predicted == pytest.approx(sim.mean_latency, rel=0.15)

    def test_intra_component_tracks_closely(self, small_system, small_message, small_session):
        """Intra-cluster latency has no concentrator approximations: < 10 %."""
        model = AnalyticalModel(small_system, small_message)
        lam = 0.2 * find_saturation_load(model)
        sim = small_session.run(lam, seed=3, window=MeasurementWindow(300, 4000, 300))
        breakdown = model.evaluate(lam).clusters[0]
        assert breakdown.intra.total == pytest.approx(sim.stats.mean_intra, rel=0.10)


class TestShapeAgreement:
    def test_model_is_optimistic_near_saturation(self, paper_544, small_message):
        """Paper §4: discrepancies appear as load approaches saturation,
        with the model under-predicting (its independence approximations
        ignore coupled blocking).  Asserted at paper scale, where the claim
        is made."""
        message = MessageSpec(32, 256.0)
        model = AnalyticalModel(paper_544, message)
        lam_star = find_saturation_load(model)
        window = MeasurementWindow(300, 3000, 300)
        session = SimulationSession(paper_544, message)
        light = session.run(0.2 * lam_star, seed=4, window=window)
        heavy = session.run(0.75 * lam_star, seed=4, window=window)
        err_light = abs(model.evaluate(0.2 * lam_star).latency - light.mean_latency) / light.mean_latency
        err_heavy = (heavy.mean_latency - model.evaluate(0.75 * lam_star).latency) / heavy.mean_latency
        assert err_heavy > err_light
        assert err_heavy > 0  # optimistic, not just inaccurate

    def test_sim_latency_grows_toward_model_saturation(self, small_system, small_message, small_session):
        model = AnalyticalModel(small_system, small_message)
        lam_star = find_saturation_load(model)
        window = MeasurementWindow(200, 2500, 200)
        sims = [
            small_session.run(f * lam_star, seed=5, window=window).mean_latency
            for f in (0.2, 0.5, 0.8)
        ]
        assert sims[0] < sims[1] < sims[2]
        assert sims[2] > 1.5 * sims[0]


class TestPatternIntegration:
    def test_locality_pattern_model_vs_sim(self, small_system, small_message, small_session):
        """The non-uniform extension validates the same way the paper's
        uniform baseline does."""
        pattern = LocalityTraffic(0.6)
        model = AnalyticalModel(small_system, small_message, pattern=pattern)
        lam = 0.15 * find_saturation_load(model)
        sim = small_session.run(
            lam, seed=6, window=MeasurementWindow(300, 4000, 300), pattern=pattern
        )
        assert model.evaluate(lam).latency == pytest.approx(sim.mean_latency, rel=0.20)
        # Sanity: measured intra share reflects the pattern.
        intra_share = sim.stats.count_intra / sim.stats.count
        assert intra_share == pytest.approx(0.6, abs=0.05)
