"""Smoke-run every example script (examples/*.py).

The examples are living documentation; before this module nothing
executed them, so API drift silently rotted the walkthroughs.  Each runs
here as a subprocess with a tiny simulation budget
(``REPRO_EXAMPLE_MESSAGES``) — slow-safe: the sim-heavy scripts read the
knob, the model-only ones finish in seconds regardless.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_every_example_is_collected():
    """Glob sanity: the walkthroughs this suite promises to cover exist."""
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "capacity_planning.py",
        "heterogeneity_study.py",
        "nonuniform_traffic.py",
        "simulator_deep_dive.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLE_MESSAGES"] = "300"  # tiny load grids for the smoke run
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    # Every walkthrough narrates its findings; silence means breakage.
    assert len(proc.stdout.strip()) > 0, f"{script.name} printed nothing"
