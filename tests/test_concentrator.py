"""Concentrator/dispatcher queue tests (core.concentrator vs Eqs. 36-38)."""

import pytest

from repro.core import (
    NET1,
    NET2,
    MessageSpec,
    ModelOptions,
    concentrator_pair_wait,
    mg1_wait,
    switch_channel_time,
)
from repro.core.parameters import ClusterClass

MSG = MessageSpec(32, 256.0)


def make_class(nodes, u, tree_depth=2):
    return ClusterClass(tree_depth=tree_depth, nodes=nodes, count=1, u=u, icn1=NET1, ecn1=NET2, name="k")


class TestEq37:
    def test_matches_manual_mg1(self):
        src, dst = make_class(128, 0.886), make_class(32, 0.972)
        lam_g = 1e-4
        result = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=lam_g, message=MSG)
        lam_i2 = 0.5 * lam_g * (128 * 0.886 + 32 * 0.972)
        service = 32 * switch_channel_time(NET1, 256.0)
        variance = (service - 32 * switch_channel_time(NET2, 256.0)) ** 2  # Eq. 36
        expected = mg1_wait(lam_i2, service, variance)
        assert result.single_buffer_wait == pytest.approx(expected.wait)
        assert result.pair_wait == pytest.approx(2 * expected.wait)
        assert result.utilization == pytest.approx(expected.utilization)

    def test_saturation_load_closed_form(self):
        """λ* = 2 / ((N_i U_i + N_j U_j) M t_cs^{I2}) — the Figs. 3-6 knees."""
        src = dst = make_class(128, 0.886)
        service = 32 * switch_channel_time(NET1, 256.0)
        lam_star = 2.0 / ((128 * 0.886 * 2) * service) * 2  # pair sum = 2 N U
        # simplify: lam_star = 1 / (N U * service)
        lam_star = 1.0 / (128 * 0.886 * service)
        below = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=0.99 * lam_star, message=MSG)
        above = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=1.01 * lam_star, message=MSG)
        assert not below.saturated
        assert above.saturated

    def test_variance_vanishes_for_matched_networks(self):
        src = ClusterClass(tree_depth=2, nodes=32, count=1, u=0.9, icn1=NET1, ecn1=NET1, name="m")
        result = concentrator_pair_wait(src, src, icn2=NET1, generation_rate=1e-4, message=MSG)
        lam_i2 = 0.5 * 1e-4 * (2 * 32 * 0.9)
        service = 32 * switch_channel_time(NET1, 256.0)
        assert result.single_buffer_wait == pytest.approx(mg1_wait(lam_i2, service, 0.0).wait)


class TestOptions:
    def test_source_outgoing_rate_option(self):
        src, dst = make_class(128, 0.886), make_class(8, 0.993)
        opts = ModelOptions(concentrator_rate="source_outgoing")
        result = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=1e-4, message=MSG, options=opts)
        service = 32 * switch_channel_time(NET1, 256.0)
        assert result.arrival_rate == pytest.approx(1e-4 * 128 * 0.886)
        assert result.utilization == pytest.approx(1e-4 * 128 * 0.886 * service)

    def test_source_outgoing_hotter_than_pair_mean_for_big_source(self):
        src, dst = make_class(128, 0.886), make_class(8, 0.993)
        paper = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=2e-4, message=MSG)
        phys = concentrator_pair_wait(
            src, dst, icn2=NET1, generation_rate=2e-4, message=MSG, options=ModelOptions(concentrator_rate="source_outgoing")
        )
        assert phys.utilization > paper.utilization

    def test_exponential_variance_option(self):
        src, dst = make_class(32, 0.97), make_class(32, 0.97)
        paper = concentrator_pair_wait(src, dst, icn2=NET1, generation_rate=2e-4, message=MSG)
        expo = concentrator_pair_wait(
            src, dst, icn2=NET1, generation_rate=2e-4, message=MSG, options=ModelOptions(variance_approximation="exponential")
        )
        assert expo.single_buffer_wait != pytest.approx(paper.single_buffer_wait)
