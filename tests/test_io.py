"""Persistence and reporting tests (io.results, io.reporting)."""

import numpy as np
import pytest

from repro.cluster import table1_rows
from repro.core import NET1, NET2, MessageSpec, paper_system_544
from repro.io import (
    format_table1,
    format_table2,
    format_validation_curve,
    format_whatif_study,
    load_curve_csv,
    load_json,
    save_curve_csv,
    save_json,
    to_jsonable,
)


class TestToJsonable:
    def test_dataclass_tree(self):
        payload = to_jsonable(MessageSpec(32, 256.0))
        assert payload == {"length_flits": 32, "flit_bytes": 256.0}

    def test_numpy_values(self):
        payload = to_jsonable({"a": np.float64(1.5), "b": np.arange(3)})
        assert payload == {"a": 1.5, "b": [0, 1, 2]}

    def test_numpy_bool_round_trips_as_bool(self):
        """Regression: np.bool_ used to fall through to str() and come back
        as the always-truthy string "True"/"False"."""
        payload = to_jsonable({"t": np.bool_(True), "f": np.bool_(False)})
        assert payload == {"t": True, "f": False}
        assert isinstance(payload["t"], bool)
        assert isinstance(payload["f"], bool)
        assert not payload["f"]  # the old str(value) form was truthy

    def test_numpy_non_finite_scalars_tagged(self):
        payload = to_jsonable({"x": np.float64("inf"), "y": np.float64("nan")})
        assert payload["x"] == {"__float__": "inf"}
        assert payload["y"] == {"__float__": "nan"}

    def test_non_finite_floats_tagged(self):
        payload = to_jsonable({"x": float("inf"), "y": float("nan")})
        assert payload["x"] == {"__float__": "inf"}
        assert payload["y"] == {"__float__": "nan"}

    def test_fallback_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"

        assert to_jsonable(Odd()) == "odd!"


class TestJsonRoundtrip:
    def test_roundtrip(self, tmp_path):
        data = {"curve": [1.0, float("inf")], "meta": {"n": 5}}
        path = save_json(tmp_path / "out.json", data)
        loaded = load_json(path)
        assert loaded["meta"]["n"] == 5
        assert loaded["curve"][1] == float("inf")

    def test_nan_roundtrip(self, tmp_path):
        loaded = load_json(save_json(tmp_path / "x.json", {"v": float("nan")}))
        assert np.isnan(loaded["v"])

    def test_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "dir" / "x.json", {"a": 1})
        assert path.exists()


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        cols = {"load": [1e-4, 2e-4], "latency": [10.5, 20.25]}
        path = save_curve_csv(tmp_path / "c.csv", cols)
        loaded = load_curve_csv(path)
        assert loaded["load"] == [1e-4, 2e-4]
        assert loaded["latency"] == [10.5, 20.25]

    def test_bool_column_round_trips(self, tmp_path):
        """Regression: repr(float(v)) used to turn a saturated-flags column
        into 1.0/0.0 (and choke on strings)."""
        cols = {"load": [1e-4, 2e-4], "saturated": [False, True]}
        loaded = load_curve_csv(save_curve_csv(tmp_path / "b.csv", cols))
        assert loaded["saturated"] == [False, True]
        assert isinstance(loaded["saturated"][0], bool)

    def test_numpy_bool_column_round_trips(self, tmp_path):
        cols = {"saturated": list(np.array([True, False]))}
        loaded = load_curve_csv(save_curve_csv(tmp_path / "nb.csv", cols))
        assert loaded["saturated"] == [True, False]

    def test_string_column_round_trips(self, tmp_path):
        cols = {"label": ["c0", "c8->c11:concentrator"], "rho": [0.5, 0.9]}
        loaded = load_curve_csv(save_curve_csv(tmp_path / "s.csv", cols))
        assert loaded["label"] == ["c0", "c8->c11:concentrator"]
        assert loaded["rho"] == [0.5, 0.9]

    def test_mixed_types_in_one_file(self, tmp_path):
        cols = {"name": ["a", "b"], "ok": [True, False], "x": [1.5, float("inf")]}
        loaded = load_curve_csv(save_curve_csv(tmp_path / "m.csv", cols))
        assert loaded == cols

    def test_rejects_ragged_columns(self, tmp_path):
        with pytest.raises(ValueError):
            save_curve_csv(tmp_path / "c.csv", {"a": [1], "b": [1, 2]})

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            save_curve_csv(tmp_path / "c.csv", {})


class TestReporting:
    def test_format_table1_contains_paper_rows(self):
        text = format_table1(table1_rows())
        assert "1120" in text and "544" in text
        assert "n=1 x12" in text

    def test_format_table2(self):
        text = format_table2([NET1, NET2])
        assert "Net.1" in text and "Net.2" in text
        assert "500" in text and "250" in text

    def test_format_validation_curve(self, small_system, small_message, small_session):
        from repro.simulation import MeasurementWindow
        from repro.validation import run_validation

        curve = run_validation(
            small_system,
            small_message,
            [1e-4],
            window=MeasurementWindow(20, 200, 20),
            session=small_session,
        )
        text = format_validation_curve(curve, figure="Fig.X")
        assert "Fig.X" in text
        assert "model" in text and "simulation" in text

    def test_format_whatif_study(self):
        from repro.analysis import icn2_bandwidth_study

        study = icn2_bandwidth_study((paper_system_544(),), MessageSpec(32, 256.0), points=3)
        text = format_whatif_study(study)
        assert "N=544, base" in text
        assert "lambda_g" in text
