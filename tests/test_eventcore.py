"""Differential harness for the array event core (simulation.eventcore).

Three layers of defence, per the bit-identical-trajectory contract:

* property tests pin :class:`ArrayHeap` (the executable spec of the
  kernel's heap) against a :mod:`heapq` oracle, and the pure-Python
  :func:`generation_schedule` against the compiled prepass;
* the differential suite runs reference and array engines over registry
  scenarios × seeds × run modes and asserts *exact* equality — full event
  trace, trajectory, and raw-result fields — never ``allclose``;
* the fallback path (no compiler) is proven equal too, so the engine
  switch can never change numbers regardless of toolchain.

Randomness is seeded through :mod:`repro.simulation.rng` (RD101: no
unseeded draws anywhere in the suite).
"""

import heapq
from dataclasses import replace
from functools import lru_cache

import pytest

from repro.cluster.system import HeterogeneousSystem
from repro.core.parameters import ModelOptions
from repro.scenarios.registry import get_scenario
from repro.simulation import eventcore
from repro.simulation.eventcore import (
    ArrayHeap,
    canonical_trajectory,
    generation_schedule,
    kernel_available,
    kernel_prepass,
    trajectory_digest,
)
from repro.simulation.fabric import ResolvedFabric
from repro.simulation.metrics import MeasurementWindow
from repro.simulation.rng import make_streams
from repro.simulation.runner import ENGINES, SimulationConfig, SimulationSession
from repro.simulation.wormhole import MessageLevelWormholeSimulator

needs_kernel = pytest.mark.skipif(
    not kernel_available(), reason="no C compiler/kernel on this host"
)

SCENARIOS = ("544", "544-hotspot", "544-local", "het8-extreme", "het8-uniform")
SEEDS = (0, 1, 2024)
WINDOW = MeasurementWindow(100, 600, 100)
LOAD = 3e-4


@lru_cache(maxsize=None)
def scenario_fabric(name):
    spec = get_scenario(name)
    system = HeterogeneousSystem(spec.system)
    return spec, ResolvedFabric(system, spec.message, ModelOptions())


def run_engine(name, seed, engine, *, window=WINDOW, max_events=500_000_000, **kw):
    """One traced run; returns (simulator, raw result, trace)."""
    spec, fabric = scenario_fabric(name)
    trace = []
    sim = MessageLevelWormholeSimulator(
        fabric, window, LOAD, make_streams(seed), spec.pattern, engine=engine, **kw
    )
    raw = sim.run(max_events=max_events, trace=trace)
    return sim, raw, trace


def assert_identical(name, seed, **kw):
    """Reference vs array: exact equality of trace, trajectory and raw."""
    ref_sim, ref_raw, ref_trace = run_engine(name, seed, "reference", **kw)
    arr_sim, arr_raw, arr_trace = run_engine(name, seed, "array", **kw)
    assert ref_trace == arr_trace, f"{name} seed={seed}: event traces diverge"
    assert ref_sim.trajectory() == arr_sim.trajectory(), (
        f"{name} seed={seed}: trajectories diverge"
    )
    assert canonical_trajectory(ref_sim.trajectory()) == canonical_trajectory(
        arr_sim.trajectory()
    )
    assert ref_raw.events == arr_raw.events
    assert ref_raw.generated == arr_raw.generated
    assert ref_raw.duration == arr_raw.duration
    assert ref_raw.completed == arr_raw.completed
    # repr round-trips floats exactly and renders NaN as "nan", so this is
    # still bit-exact for truncated runs whose stats hold NaN fields.
    assert repr(ref_raw.stats) == repr(arr_raw.stats)
    assert repr(ref_raw.per_cluster_means) == repr(arr_raw.per_cluster_means)
    assert ref_raw.busy_time_by_group == arr_raw.busy_time_by_group


# ---------------------------------------------------------------------------
# ArrayHeap property tests (heapq oracle, seeded via rng.py)
# ---------------------------------------------------------------------------


class TestArrayHeapProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_push_pop_stream_matches_heapq(self, seed):
        rng = make_streams(seed).arrivals
        heap, oracle = ArrayHeap(capacity=4), []
        # Coarse times force many exact ties; the unique tag breaks them.
        times = (rng.integers(0, 12, size=300) * 0.5).tolist()
        for tag, t in enumerate(times):
            heap.push(t, tag, payload=tag % 7)
            heapq.heappush(oracle, (t, tag, tag % 7))
        popped = [heap.pop() for _ in range(len(times))]
        expected = [heapq.heappop(oracle) for _ in range(len(oracle))]
        assert popped == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_ops_match_heapq(self, seed):
        rng = make_streams(seed).destinations
        heap, oracle = ArrayHeap(capacity=1), []
        tag = 0
        for op in rng.integers(0, 3, size=500).tolist():
            if op < 2 or not oracle:  # bias towards pushes, never pop empty
                t = float(rng.integers(0, 20)) * 0.25
                heap.push(t, tag, payload=tag)
                heapq.heappush(oracle, (t, tag, tag))
                tag += 1
            else:
                assert heap.pop() == heapq.heappop(oracle)
        while oracle:
            assert heap.pop() == heapq.heappop(oracle)
        assert len(heap) == 0

    @pytest.mark.parametrize("seed", (3, 11))
    def test_pop_times_monotone_nondecreasing(self, seed):
        rng = make_streams(seed).arrivals
        heap = ArrayHeap()
        for tag, t in enumerate(rng.standard_exponential(200).tolist()):
            heap.push(t, tag)
        times = [heap.pop()[0] for _ in range(200)]
        assert times == sorted(times)

    def test_equal_times_pop_in_tag_order(self):
        # Total order under ties: tags are the tie-break, inserted shuffled.
        rng = make_streams(5).arrivals
        heap = ArrayHeap()
        tags = rng.permutation(64).tolist()
        for tag in tags:
            heap.push(1.5, tag, payload=tag)
        assert [heap.pop()[1] for _ in range(64)] == sorted(tags)

    def test_replace_equals_pop_then_push(self):
        rng = make_streams(9).arrivals
        a, b = ArrayHeap(), ArrayHeap()
        for tag, t in enumerate(rng.standard_exponential(50).tolist()):
            a.push(t, tag)
            b.push(t, tag)
        root = a.replace(0.25, 1000)
        assert root == b.pop()
        b.push(0.25, 1000)
        pops_a = [a.pop() for _ in range(len(a))]
        pops_b = [b.pop() for _ in range(len(b))]
        assert pops_a == pops_b

    def test_kind_unpacks_low_bits(self):
        assert ArrayHeap.kind(4 | 3) == 3
        assert ArrayHeap.kind(8) == 0

    def test_empty_pop_rejected(self):
        with pytest.raises(ValueError):
            ArrayHeap().pop()
        with pytest.raises(ValueError):
            ArrayHeap().peek()


# ---------------------------------------------------------------------------
# generation schedule: Python spec vs compiled prepass
# ---------------------------------------------------------------------------


class TestGenerationSchedule:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_nodes,total", [(4, 50), (32, 400), (544, 800)])
    def test_python_schedule_is_deterministic(self, seed, n_nodes, total):
        gaps = make_streams(seed).arrivals.standard_exponential(n_nodes + total)
        a = generation_schedule(gaps, n_nodes, total)
        b = generation_schedule(gaps, n_nodes, total)
        for x, y in zip(a, b):
            assert x.tolist() == y.tolist()

    @needs_kernel
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_nodes,total", [(4, 50), (32, 400), (544, 800)])
    def test_kernel_prepass_matches_python(self, seed, n_nodes, total):
        gaps = make_streams(seed).arrivals.standard_exponential(n_nodes + total)
        py = generation_schedule(gaps, n_nodes, total)
        c = kernel_prepass(gaps, n_nodes, total)
        for spec_col, kernel_col in zip(py, c):
            assert spec_col.tolist() == kernel_col.tolist()

    def test_schedule_times_monotone(self):
        gaps = make_streams(1).arrivals.standard_exponential(8 + 100)
        g_time, g_node, dead_time, _ = generation_schedule(gaps, 8, 100)
        assert g_time.tolist() == sorted(g_time.tolist())
        assert all(int(n) < 8 for n in g_node)
        # Dead arrivals drain strictly after scheduling, at/after the last
        # generation's time.
        assert min(dead_time) >= g_time[-1] or len(dead_time) == 8

    def test_short_gaps_rejected(self):
        with pytest.raises(ValueError):
            generation_schedule([0.1, 0.2], 2, 5)


# ---------------------------------------------------------------------------
# the differential suite: reference vs array, exact equality
# ---------------------------------------------------------------------------


@needs_kernel
class TestDifferentialTrajectories:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_bit_identical_across_scenarios_and_seeds(self, scenario, seed):
        assert_identical(scenario, seed)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_store_and_forward_mode(self, seed):
        assert_identical("544", seed, cd_mode="store_and_forward")

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_ideal_sinks_mode(self, seed):
        assert_identical("544", seed, ideal_sinks=True)

    @pytest.mark.parametrize("max_events", (500, 5001))
    def test_event_budget_truncation_identical(self, max_events):
        # Truncated runs stop mid-flight (possibly before any measured
        # delivery, leaving NaN wait means) and must still agree exactly.
        assert_identical("544", 0, max_events=max_events)

    def test_empty_measurement_tail(self):
        assert_identical("het8-uniform", 1, window=MeasurementWindow(0, 200, 0))

    def test_digest_matches_between_engines(self):
        ref_sim, _, _ = run_engine("544", 2024, "reference")
        arr_sim, _, _ = run_engine("544", 2024, "array")
        assert trajectory_digest(ref_sim.trajectory()) == trajectory_digest(
            arr_sim.trajectory()
        )


@needs_kernel
class TestSessionAndConfigPlumbing:
    def test_session_results_identical_modulo_wall(self, small_system, small_message):
        session = SimulationSession(small_system, small_message)
        ref = session.run(1e-3, seed=3, window=WINDOW)
        arr = session.run(1e-3, seed=3, window=WINDOW, engine="array")
        assert replace(ref, wall_seconds=0.0) == replace(arr, wall_seconds=0.0)

    def test_replayable_draws_path_identical(self, small_system, small_message):
        # Session runs replay cached draw arrays; a fresh session re-draws.
        # Both routes, under both engines, must agree draw for draw.
        results = []
        for engine in ENGINES:
            session = SimulationSession(small_system, small_message)
            first = session.run(1e-3, seed=5, window=WINDOW, engine=engine)
            second = session.run(1e-3, seed=5, window=WINDOW, engine=engine)
            results.append((first, second))
        (ref1, ref2), (arr1, arr2) = results
        assert replace(ref1, wall_seconds=0.0) == replace(ref2, wall_seconds=0.0)
        assert replace(ref1, wall_seconds=0.0) == replace(arr1, wall_seconds=0.0)
        assert replace(arr1, wall_seconds=0.0) == replace(arr2, wall_seconds=0.0)

    def test_flit_granularity_rejects_array_engine(self, small_system, small_message):
        session = SimulationSession(small_system, small_message)
        with pytest.raises(ValueError, match="message-granularity only"):
            session.run(1e-3, window=WINDOW, granularity="flit", engine="array")
        with pytest.raises(ValueError, match="message-granularity only"):
            SimulationConfig(
                system=small_system,
                message=small_message,
                generation_rate=1e-3,
                granularity="flit",
                engine="array",
            )

    def test_unknown_engine_rejected(self, small_fabric):
        with pytest.raises(ValueError, match="unknown engine"):
            MessageLevelWormholeSimulator(
                small_fabric, WINDOW, 1e-3, make_streams(0), engine="vectorised"
            )


class TestFallbackPath:
    def test_array_engine_falls_back_to_reference(self, monkeypatch, small_fabric):
        # Simulate a host with no compiler: the kernel never loads and the
        # array engine must silently produce the reference trajectory.
        monkeypatch.setattr(eventcore, "_KERNEL", None)
        assert not kernel_available()
        trace_fb, trace_ref = [], []
        fb = MessageLevelWormholeSimulator(
            small_fabric, WINDOW, 1e-3, make_streams(7), engine="array"
        )
        fb_raw = fb.run(trace=trace_fb)
        ref = MessageLevelWormholeSimulator(
            small_fabric, WINDOW, 1e-3, make_streams(7), engine="reference"
        )
        ref_raw = ref.run(trace=trace_ref)
        assert trace_fb == trace_ref
        assert fb.trajectory() == ref.trajectory()
        assert fb_raw.events == ref_raw.events

    def test_kernel_unavailable_raises_in_array_run(self, monkeypatch, small_fabric):
        monkeypatch.setattr(eventcore, "_KERNEL", None)
        sim = MessageLevelWormholeSimulator(
            small_fabric, WINDOW, 1e-3, make_streams(0), engine="array"
        )
        with pytest.raises(ValueError, match="kernel unavailable"):
            eventcore.array_run(sim)


# ---------------------------------------------------------------------------
# trajectory canonicalisation and digests
# ---------------------------------------------------------------------------


class TestTrajectorySurface:
    def test_trajectory_requires_completed_run(self, small_fabric):
        sim = MessageLevelWormholeSimulator(small_fabric, WINDOW, 1e-3, make_streams(0))
        with pytest.raises(ValueError, match="run"):
            sim.trajectory()

    def test_digest_is_stable_and_version_bound(self, small_fabric):
        sim = MessageLevelWormholeSimulator(small_fabric, WINDOW, 1e-3, make_streams(4))
        sim.run()
        traj = sim.trajectory()
        assert trajectory_digest(traj) == trajectory_digest(traj)
        canon = canonical_trajectory(traj)
        from repro.simulation.runner import TRAJECTORY_VERSION

        assert canon["version"] == TRAJECTORY_VERSION
        bumped = replace(traj, version=traj.version + "-next")
        assert trajectory_digest(bumped) != trajectory_digest(traj)

    def test_nan_wait_means_compare_equal(self, small_fabric):
        # A run truncated before any measured delivery leaves NaN wait
        # means; trajectory equality is canonical, so NaN == NaN here.
        sims = []
        for _ in range(2):
            sim = MessageLevelWormholeSimulator(
                small_fabric, WINDOW, 1e-3, make_streams(2)
            )
            sim.run(max_events=40)
            sims.append(sim)
        a, b = (s.trajectory() for s in sims)
        assert a.source_wait_mean != a.source_wait_mean  # NaN
        assert a == b

    def test_flit_engine_exposes_same_surface(self, small_session):
        from repro.simulation.flitsim import FlitLevelSimulator

        sim = FlitLevelSimulator(
            small_session.fabric, MeasurementWindow(20, 100, 20), 1e-3, make_streams(0)
        )
        sim.run()
        traj = sim.trajectory()
        assert traj.events > 0
        assert trajectory_digest(traj) == trajectory_digest(traj)
