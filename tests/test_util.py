"""Unit tests for repro._util helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    cumulative_suffix_sums,
    format_float,
    integer_log,
    is_power_of,
    require,
    require_int,
    require_nonnegative,
    require_positive,
    weighted_mean,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.5, "x")
        require_positive(3, "x")

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf"), "1"])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            require_positive(bad, "x")


class TestRequireInt:
    def test_accepts_python_int(self):
        require_int(3, "x")
        require_int(0, "x", minimum=0)

    def test_accepts_numpy_integers(self):
        """Regression: np.int64 grid indices used to be rejected."""
        import numpy as np

        require_int(np.int64(5), "x")
        require_int(np.int32(2), "x", minimum=1)
        require_int(np.arange(4)[2], "x")

    @pytest.mark.parametrize("bad", [True, False, 1.0, "3", None])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(ValueError):
            require_int(bad, "x")

    def test_rejects_numpy_bool(self):
        import numpy as np

        with pytest.raises(ValueError):
            require_int(np.bool_(True), "x")

    def test_minimum_enforced_for_numpy_values(self):
        import numpy as np

        with pytest.raises(ValueError, match=">= 2"):
            require_int(np.int64(1), "x", minimum=2)


class TestRequireNonnegative:
    def test_accepts_zero(self):
        require_nonnegative(0.0, "x")

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("-inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            require_nonnegative(bad, "x")


class TestRequireInt:
    def test_accepts_int(self):
        require_int(4, "x", minimum=4)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            require_int(True, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match=">= 2"):
            require_int(1, "x", minimum=2)

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            require_int(2.0, "x")


class TestPowers:
    @pytest.mark.parametrize("value,base,expected", [(1, 2, True), (8, 2, True), (6, 2, False), (27, 3, True), (0, 2, False)])
    def test_is_power_of(self, value, base, expected):
        assert is_power_of(value, base) is expected

    @given(st.integers(2, 6), st.integers(0, 10))
    def test_integer_log_roundtrip(self, base, exponent):
        assert integer_log(base**exponent, base) == exponent

    def test_integer_log_rejects_non_power(self):
        with pytest.raises(ValueError):
            integer_log(12, 5)


class TestWeightedMean:
    def test_simple(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weights_matter(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=8))
    def test_uniform_weights_match_mean(self, values):
        got = weighted_mean(values, [1.0] * len(values))
        assert got == pytest.approx(sum(values) / len(values))


class TestSuffixSums:
    def test_known(self):
        assert cumulative_suffix_sums([1.0, 2.0, 3.0]) == [6.0, 5.0, 3.0, 0.0]

    def test_empty(self):
        assert cumulative_suffix_sums([]) == [0.0]

    @given(st.lists(st.floats(-5, 5), max_size=10))
    def test_first_entry_is_total(self, values):
        sums = cumulative_suffix_sums(values)
        assert sums[0] == pytest.approx(math.fsum(values), abs=1e-9)


class TestFormatFloat:
    @pytest.mark.parametrize(
        "value,expected",
        [(float("nan"), "nan"), (float("inf"), "inf"), (float("-inf"), "-inf"), (0.0, "0")],
    )
    def test_specials(self, value, expected):
        assert format_float(value) == expected

    def test_scientific_for_small(self):
        assert "e" in format_float(3.2e-7)

    def test_plain_for_moderate(self):
        assert format_float(12.5) == "12.5"
