"""Analysis tests (analysis.bottleneck, analysis.whatif, analysis.tables)."""

import numpy as np
import pytest

from repro.analysis import (
    WhatIfCurve,
    WhatIfStudy,
    icn2_bandwidth_study,
    model_bottlenecks,
    render_series,
    render_table,
    scale_network,
    sim_bottlenecks,
)
from repro.core import MessageSpec, paper_system_544, paper_system_1120
from repro.simulation import MeasurementWindow

MSG = MessageSpec(32, 256.0)


class TestModelBottlenecks:
    def test_concentrator_binds_paper_systems(self):
        """Paper §4: the ICN2 path (concentrator) is the bottleneck."""
        for system in (paper_system_1120(), paper_system_544()):
            report = model_bottlenecks(system, MSG, 3e-4)
            assert report.binding.kind == "concentrator"

    def test_biggest_cluster_binds(self):
        report = model_bottlenecks(paper_system_1120(), MSG, 3e-4)
        assert "c28" in report.binding.resource  # the 128-node class

    def test_utilizations_scale_linearly(self):
        low = model_bottlenecks(paper_system_544(), MSG, 1e-4)
        high = model_bottlenecks(paper_system_544(), MSG, 2e-4)
        assert high.binding.utilization == pytest.approx(2 * low.binding.utilization, rel=1e-6)

    def test_top_is_sorted(self):
        report = model_bottlenecks(paper_system_544(), MSG, 2e-4)
        tops = report.top(8)
        assert all(a.utilization >= b.utilization for a, b in zip(tops, tops[1:]))

    def test_saturation_load_attached(self):
        report = model_bottlenecks(paper_system_544(), MSG, 2e-4)
        assert report.saturation_load == pytest.approx(1.04e-3, rel=0.05)


class TestSimBottlenecks:
    def test_ranked_from_simulation(self, small_session, fast_window):
        result = small_session.run(2e-3, seed=3, window=fast_window)
        ranked = sim_bottlenecks(result)
        assert all(a.utilization >= b.utilization for a, b in zip(ranked, ranked[1:]))
        assert {r.resource for r in ranked} == set(result.network_utilization)


class TestScaleNetwork:
    def test_icn2_scaling(self):
        scaled = scale_network(paper_system_544(), "icn2", 1.2)
        assert scaled.icn2.bandwidth == pytest.approx(600.0)

    def test_ecn1_scaling_touches_all_clusters(self):
        scaled = scale_network(paper_system_544(), "ecn1", 2.0)
        assert all(s.ecn1.bandwidth == pytest.approx(500.0) for s in scaled.clusters)
        assert all(s.icn1.bandwidth == pytest.approx(500.0) for s in scaled.clusters)

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            scale_network(paper_system_544(), "wan", 1.2)


class TestIcn2Study:
    def test_fig7_structure_and_claims(self):
        study = icn2_bandwidth_study(
            (paper_system_544(), paper_system_1120()),
            MessageSpec(128, 256.0),
            points=6,
        )
        labels = [c.label for c in study.curves]
        # Labels carry the system name so equal node counts cannot collide.
        assert labels == [
            "N544-m4-C16: N=544, base",
            "N544-m4-C16: N=544, icn2 x1.2",
            "N1120-m8-C32: N=1120, base",
            "N1120-m8-C32: N=1120, icn2 x1.2",
        ]
        by_label = {c.label: c for c in study.curves}
        # +20% ICN2 bandwidth shifts the knee right by ~19% (service time
        # is alpha_s + d_m/bw, so slightly less than 20%).
        gain_544 = study.saturation_gain("N544-m4-C16: N=544, base", "N544-m4-C16: N=544, icn2 x1.2")
        gain_1120 = study.saturation_gain(
            "N1120-m8-C32: N=1120, base", "N1120-m8-C32: N=1120, icn2 x1.2"
        )
        assert 1.1 < gain_544 < 1.25
        assert 1.1 < gain_1120 < 1.25
        # Improvement is largest at the high-traffic end (paper Fig. 7).
        base = by_label["N1120-m8-C32: N=1120, base"].latencies
        fast = by_label["N1120-m8-C32: N=1120, icn2 x1.2"].latencies
        improvement = (base - fast) / base
        assert improvement[-1] > improvement[0]
        # The N=544 system stays flat deeper into the shared grid.
        assert (
            by_label["N544-m4-C16: N=544, base"].latencies[-1]
            < by_label["N1120-m8-C32: N=1120, base"].latencies[-1]
        )


class TestWhatIfLabels:
    """Regression: labels must stay unique for systems with equal node counts."""

    def test_equal_node_counts_get_distinct_labels(self):
        from dataclasses import replace

        base = paper_system_544()
        clone = replace(base, name="N544-variant")  # same N, different system
        study = icn2_bandwidth_study((base, clone), MSG, points=3)
        labels = [c.label for c in study.curves]
        assert len(set(labels)) == 4  # no silent collisions
        assert any("N544-variant" in label for label in labels)
        # saturation_gain resolves each system's own pair of curves.
        gain = study.saturation_gain(
            "N544-variant: N=544, base", "N544-variant: N=544, icn2 x1.2"
        )
        assert 1.1 < gain < 1.25

    def test_saturation_gain_rejects_ambiguous_labels(self):
        dup = WhatIfCurve("dup", np.array([1.0]), np.array([2.0]), saturation_load=1.0)
        other = WhatIfCurve("other", np.array([1.0]), np.array([2.0]), saturation_load=2.0)
        study = WhatIfStudy("t", (dup, dup, other))
        with pytest.raises(ValueError, match="ambiguous"):
            study.saturation_gain("dup", "other")

    def test_saturation_gain_rejects_unknown_label(self):
        other = WhatIfCurve("other", np.array([1.0]), np.array([2.0]), saturation_load=2.0)
        study = WhatIfStudy("t", (other,))
        with pytest.raises(KeyError):
            study.saturation_gain("missing", "other")


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2] or "-" in lines[2]
        assert len(lines) == 5

    def test_render_series(self):
        text = render_series("S", "x", [1.0, 2.0], {"y": [3.0, 4.0]})
        assert "x" in text and "y" in text
        assert "3" in text and "4" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
