"""Top-level model tests (core.model vs paper Eqs. 1-3, 35, 38-39)."""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    ClusterSpec,
    MessageSpec,
    ModelOptions,
    SystemConfig,
    paper_message,
    paper_system_544,
    paper_system_1120,
    switch_channel_time,
)
from repro.core.sweep import find_saturation_load
from repro.workloads import UniformTraffic

MSG = MessageSpec(32, 256.0)


class TestComposition:
    def test_eq3_is_node_weighted_mean(self, paper_1120):
        model = AnalyticalModel(paper_1120, MSG)
        result = model.evaluate(1e-4)
        manual = sum(b.mean * b.nodes * b.count for b in result.clusters) / 1120
        assert result.latency == pytest.approx(manual)

    def test_eq1_mixture(self, paper_544):
        model = AnalyticalModel(paper_544, MSG)
        result = model.evaluate(1e-4)
        for b in result.clusters:
            expected = (1 - b.outgoing_probability) * b.intra.total + b.outgoing_probability * b.outward
            assert b.mean == pytest.approx(expected)

    def test_eq39_outward_is_network_plus_concentrator(self, paper_544):
        result = AnalyticalModel(paper_544, MSG).evaluate(1e-4)
        for b in result.clusters:
            assert b.outward == pytest.approx(b.inter_network + b.concentrator_wait)

    def test_classes_cover_all_clusters(self, paper_1120):
        model = AnalyticalModel(paper_1120, MSG)
        assert sum(c.count for c in model.cluster_classes) == 32


class TestAggregationExactness:
    def test_class_aggregation_matches_singleton_classes(self, paper_544):
        """Grouping clusters into classes is an exact rewrite of Eq. 35/38.

        Perturbing every cluster's ICN1 bandwidth by a relatively negligible
        (1e-9) distinct amount forces one singleton class per cluster while
        leaving the numbers effectively unchanged.
        """
        from dataclasses import replace

        aggregated = AnalyticalModel(paper_544, MSG).evaluate(2e-4)
        clusters = tuple(
            replace(spec, icn1=replace(spec.icn1, bandwidth=spec.icn1.bandwidth + 1e-9 * (i + 1)))
            for i, spec in enumerate(paper_544.clusters)
        )
        exploded_cfg = replace(paper_544, clusters=clusters)
        exploded = AnalyticalModel(exploded_cfg, MSG)
        assert len(exploded.cluster_classes) == paper_544.num_clusters
        assert exploded.evaluate(2e-4).latency == pytest.approx(aggregated.latency, rel=1e-6)

    def test_uniform_pattern_matches_traffic_weighted_average(self, paper_544):
        """Pattern mode weights destinations by traffic; UniformTraffic must
        reproduce the closed-form model under the traffic_weighted option."""
        pattern_result = AnalyticalModel(paper_544, MSG, pattern=UniformTraffic()).evaluate(2e-4)
        weighted = AnalyticalModel(
            paper_544, MSG, ModelOptions(inter_average="traffic_weighted")
        ).evaluate(2e-4)
        assert pattern_result.latency == pytest.approx(weighted.latency, rel=1e-9)


class TestSaturation:
    @pytest.mark.parametrize(
        "system_fixture,m_flits,d_m",
        [
            ("paper_1120", 32, 256.0),
            ("paper_1120", 64, 256.0),
            ("paper_544", 32, 256.0),
            ("paper_544", 64, 512.0),
        ],
    )
    def test_saturation_matches_concentrator_closed_form(self, request, system_fixture, m_flits, d_m):
        """λ* = 1 / (max_i N_i U_i · M · t_cs^{I2}) — DESIGN.md §3 item 7."""
        system = request.getfixturevalue(system_fixture)
        message = MessageSpec(m_flits, d_m)
        model = AnalyticalModel(system, message)
        lam_star = find_saturation_load(model)
        sizes = system.cluster_sizes
        max_nu = max(n * system.outgoing_probability(i) for i, n in enumerate(sizes))
        predicted = 1.0 / (max_nu * m_flits * switch_channel_time(system.icn2, d_m))
        assert lam_star == pytest.approx(predicted, rel=1e-3)

    def test_paper_figure_ranges(self):
        """The model's knees land on the paper's figure x-ranges."""
        expectations = [
            (paper_system_1120(), 32, 5e-4),  # Fig. 3 axis
            (paper_system_1120(), 64, 2.5e-4),  # Fig. 4 axis
            (paper_system_544(), 32, 1e-3),  # Fig. 5 axis
            (paper_system_544(), 64, 5e-4),  # Fig. 6 axis
        ]
        for system, m_flits, x_max in expectations:
            lam_star = find_saturation_load(AnalyticalModel(system, MessageSpec(m_flits, 256.0)))
            assert 0.85 * x_max <= lam_star <= 1.15 * x_max

    def test_saturated_result_reports_resources(self, paper_1120):
        model = AnalyticalModel(paper_1120, MSG)
        result = model.evaluate(1e-3)
        assert result.saturated
        assert result.latency == float("inf")
        assert any("concentrator" in r for r in result.saturated_resources)


class TestBehaviour:
    def test_monotone_in_load(self, paper_544):
        model = AnalyticalModel(paper_544, MSG)
        grid = np.linspace(1e-5, 9e-4, 8)
        lat = [model.evaluate(x).latency for x in grid]
        assert all(a < b for a, b in zip(lat, lat[1:]))

    def test_larger_flits_increase_latency(self, paper_544):
        small = AnalyticalModel(paper_544, MessageSpec(32, 256.0)).evaluate(1e-4).latency
        large = AnalyticalModel(paper_544, MessageSpec(32, 512.0)).evaluate(1e-4).latency
        assert large > 1.5 * small

    def test_single_cluster_has_no_inter_component(self):
        cfg = SystemConfig(switch_ports=4, clusters=(ClusterSpec(2),))
        result = AnalyticalModel(cfg, MSG).evaluate(1e-4)
        (breakdown,) = result.clusters
        assert breakdown.outgoing_probability == 0.0
        assert breakdown.outward == 0.0
        assert breakdown.mean == pytest.approx(breakdown.intra.total)

    def test_zero_load_latency_positive(self, paper_1120):
        assert AnalyticalModel(paper_1120, MSG).zero_load_latency() > 0

    def test_breakdown_lookup(self, paper_1120):
        result = AnalyticalModel(paper_1120, MSG).evaluate(1e-4)
        assert result.breakdown_for(result.clusters[0].name) is result.clusters[0]
        with pytest.raises(KeyError):
            result.breakdown_for("nope")

    def test_traffic_weighted_average_differs(self, paper_1120):
        paper = AnalyticalModel(paper_1120, MSG).evaluate(3e-4).latency
        weighted = AnalyticalModel(
            paper_1120, MSG, ModelOptions(inter_average="traffic_weighted")
        ).evaluate(3e-4).latency
        assert weighted != pytest.approx(paper)

    def test_rejects_bad_inputs(self, paper_544):
        with pytest.raises(ValueError):
            AnalyticalModel("nope", MSG)
        with pytest.raises(ValueError):
            AnalyticalModel(paper_544, "nope")
        model = AnalyticalModel(paper_544, MSG)
        with pytest.raises(ValueError):
            model.evaluate(-1.0)
