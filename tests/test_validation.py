"""Validation harness tests (validation.compare, validation.scenarios)."""

import numpy as np
import pytest

from repro.core import AnalyticalModel, MessageSpec, find_saturation_load
from repro.simulation import MeasurementWindow, SimulationSession
from repro.validation import (
    all_latency_figures,
    default_load_grid,
    figure3,
    figure5,
    figure7_systems,
    light_load_error,
    run_validation,
)


class TestScenarios:
    def test_four_latency_figures(self):
        figures = all_latency_figures()
        assert [f.figure for f in figures] == ["Fig.3", "Fig.4", "Fig.5", "Fig.6"]

    def test_figure3_definition(self):
        fig = figure3()
        assert fig.system.total_nodes == 1120
        assert [m.length_flits for m in fig.messages] == [32, 32]
        assert [m.flit_bytes for m in fig.messages] == [256.0, 512.0]

    def test_paper_axis_matches_model_saturation(self):
        """Each figure's x-axis upper bound sits at the d_m=256 model knee."""
        for fig in all_latency_figures():
            model = AnalyticalModel(fig.system, fig.messages[0])
            lam_star = find_saturation_load(model)
            assert lam_star == pytest.approx(fig.paper_x_max, rel=0.15)

    def test_load_grid_below_saturation(self):
        fig = figure5()
        grid = fig.load_grid(fig.messages[0], points=6)
        model = AnalyticalModel(fig.system, fig.messages[0])
        assert len(grid) == 6
        assert all(not model.is_saturated(x) for x in grid)

    def test_figure7_systems(self):
        small, big = figure7_systems()
        assert small.total_nodes == 544
        assert big.total_nodes == 1120

    def test_default_load_grid_monotone(self, small_system, small_message):
        grid = default_load_grid(small_system, small_message, points=5)
        assert np.all(np.diff(grid) > 0)


class TestRunValidation:
    def test_curve_structure(self, small_system, small_message, small_session):
        grid = default_load_grid(small_system, small_message, points=3, fraction=0.5)
        curve = run_validation(
            small_system,
            small_message,
            grid,
            window=MeasurementWindow(100, 1000, 100),
            session=small_session,
        )
        assert len(curve.points) == 3
        for point in curve.points:
            assert point.sim_completed
            assert np.isfinite(point.relative_error)

    def test_rows_shape(self, small_system, small_message, small_session):
        curve = run_validation(
            small_system,
            small_message,
            [1e-4],
            window=MeasurementWindow(50, 500, 50),
            session=small_session,
        )
        ((load, model, sim, err),) = curve.as_rows()
        assert load == pytest.approx(1e-4)
        assert err == pytest.approx((model - sim) / sim)

    def test_max_abs_error(self, small_system, small_message, small_session):
        curve = run_validation(
            small_system,
            small_message,
            [1e-4, 5e-4],
            window=MeasurementWindow(50, 500, 50),
            session=small_session,
        )
        assert curve.max_abs_error() >= abs(curve.points[0].relative_error)

    def test_rejects_empty_loads(self, small_system, small_message):
        with pytest.raises(ValueError):
            run_validation(small_system, small_message, [])


class TestLightLoadError:
    def test_small_system_error_reasonable(self, small_system, small_message, small_session):
        """Model tracks the simulator at light load (paper: 4-8 % at scale)."""
        point = light_load_error(
            small_system,
            small_message,
            window=MeasurementWindow(200, 2000, 200),
            session=small_session,
        )
        assert point.sim_completed
        assert abs(point.relative_error) < 0.20

    def test_rejects_bad_fraction(self, small_system, small_message):
        with pytest.raises(ValueError):
            light_load_error(small_system, small_message, load_fraction=1.2)
