"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.cluster import HeterogeneousSystem, homogeneous_system
from repro.core import (
    NET1,
    NET2,
    ClusterSpec,
    MessageSpec,
    SystemConfig,
    paper_system_544,
    paper_system_1120,
)
from repro.simulation import MeasurementWindow, SimulationSession

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_system() -> SystemConfig:
    """4 clusters × 8 nodes (m=4, n=2): the workhorse for simulator tests."""
    return homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4)


@pytest.fixture(scope="session")
def tiny_hetero_system() -> SystemConfig:
    """Heterogeneous mix (m=4): depths 1/1/2/3 — 4+4+8+16 = 32 nodes."""
    return SystemConfig(
        switch_ports=4,
        clusters=(
            ClusterSpec(tree_depth=1, name="a0"),
            ClusterSpec(tree_depth=1, name="a1"),
            ClusterSpec(tree_depth=2, name="b"),
            ClusterSpec(tree_depth=3, name="c"),
        ),
        icn2=NET1,
        name="tiny-hetero",
    )


@pytest.fixture(scope="session")
def small_message() -> MessageSpec:
    return MessageSpec(length_flits=16, flit_bytes=256.0)


@pytest.fixture(scope="session")
def paper_1120() -> SystemConfig:
    return paper_system_1120()


@pytest.fixture(scope="session")
def paper_544() -> SystemConfig:
    return paper_system_544()


@pytest.fixture(scope="session")
def small_session(small_system, small_message) -> SimulationSession:
    """Session reused across simulator tests (fabric construction is paid once)."""
    return SimulationSession(small_system, small_message)


@pytest.fixture(scope="session")
def hetero_session(tiny_hetero_system, small_message) -> SimulationSession:
    return SimulationSession(tiny_hetero_system, small_message)


@pytest.fixture(scope="session")
def small_fabric(small_session):
    return small_session.fabric


@pytest.fixture()
def fast_window() -> MeasurementWindow:
    """Small measurement window for quick simulator tests."""
    return MeasurementWindow(warmup=300, measured=3_000, drain=300)


@pytest.fixture(scope="session")
def built_small_system(small_system) -> HeterogeneousSystem:
    return HeterogeneousSystem(small_system)


NETWORKS = {"net1": NET1, "net2": NET2}
