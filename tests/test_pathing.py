"""End-to-end path construction tests (cluster.pathing)."""

import pytest

from repro.cluster import Concentrator, HeterogeneousSystem, build_path, inter_path, intra_path
from repro.topology import ChannelKind


class TestIntraPath:
    def test_single_segment(self, built_small_system):
        path = intra_path(built_small_system, 0, 3)
        assert len(path.segments) == 1
        assert path.segments[0].label == "icn1"
        assert not path.is_inter_cluster

    def test_uses_only_own_icn1(self, built_small_system):
        path = intra_path(built_small_system, 9, 12)  # cluster 1 (ids 8..15)
        assert {ch.network for seg in path.segments for ch in seg.channels} == {("icn1", 1)}

    def test_rejects_cross_cluster(self, built_small_system):
        with pytest.raises(ValueError):
            intra_path(built_small_system, 0, 9)

    def test_rejects_self(self, built_small_system):
        with pytest.raises(ValueError):
            intra_path(built_small_system, 0, 0)


class TestInterPath:
    def test_three_segments(self, built_small_system):
        path = inter_path(built_small_system, 0, 9)
        assert [s.label for s in path.segments] == ["ecn1-up", "icn2", "ecn1-down"]
        assert path.is_inter_cluster

    def test_segment_networks(self, built_small_system):
        path = inter_path(built_small_system, 0, 9)
        up, mid, down = path.segments
        assert {ch.network for ch in up.channels} == {("ecn1", 0)}
        assert {ch.network for ch in mid.channels} == {("icn2",)}
        assert {ch.network for ch in down.channels} == {("ecn1", 1)}

    def test_up_leg_ends_at_concentrator(self, built_small_system):
        path = inter_path(built_small_system, 0, 9)
        last = path.segments[0].channels[-1]
        assert isinstance(last.target, Concentrator)
        assert last.target.cluster_index == 0
        assert last.kind is ChannelKind.SWITCH_TO_NODE

    def test_down_leg_starts_at_concentrator(self, built_small_system):
        path = inter_path(built_small_system, 0, 9)
        first = path.segments[2].channels[-0]
        assert isinstance(first.source, Concentrator)
        assert first.source.cluster_index == 1
        assert first.kind is ChannelKind.NODE_TO_SWITCH

    def test_icn2_leg_connects_the_right_concentrators(self, built_small_system):
        path = inter_path(built_small_system, 0, 25)  # cluster 0 -> cluster 3
        mid = path.segments[1].channels
        assert isinstance(mid[0].source, Concentrator) and mid[0].source.cluster_index == 0
        assert isinstance(mid[-1].target, Concentrator) and mid[-1].target.cluster_index == 3

    def test_leg_lengths(self, built_small_system):
        # m=4, n=2 clusters: up = n+1 = 3 channels; down = n+1 = 3.
        path = inter_path(built_small_system, 0, 9)
        assert path.segments[0].num_links == 3
        assert path.segments[2].num_links == 3

    def test_rejects_same_cluster(self, built_small_system):
        with pytest.raises(ValueError):
            inter_path(built_small_system, 0, 3)


class TestBuildPath:
    def test_dispatches_correctly(self, built_small_system):
        assert not build_path(built_small_system, 0, 3).is_inter_cluster
        assert build_path(built_small_system, 0, 9).is_inter_cluster

    def test_total_links_consistency(self, built_small_system):
        for src, dst in [(0, 5), (0, 9), (3, 30)]:
            path = build_path(built_small_system, src, dst)
            assert path.total_links == sum(s.num_links for s in path.segments)

    def test_hetero_system_paths(self, tiny_hetero_system):
        system = HeterogeneousSystem(tiny_hetero_system)
        # cluster c (depth 3, 16 nodes) is the last: ids 16..31
        path = build_path(system, 0, 31)
        up, mid, down = path.segments
        assert up.num_links == 1 + 1  # n=1: node->root(+CD)
        assert down.num_links == 3 + 1  # n=3: CD->root->...->node
