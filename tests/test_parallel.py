"""Parallel execution subsystem tests (simulation.parallel + fan-out paths).

The contract under test: every fan-out level — replicas, load points,
scenarios — produces results bit-identical to the serial path for any
worker count, worker exceptions propagate, and the aggregate accounting
(sum events / max wall) holds.  Pools here are small and the windows tiny,
so the whole module stays test-suite-speed.
"""

import pytest

from repro.simulation import (
    MeasurementWindow,
    SimWorkItem,
    replicate,
    resolve_jobs,
    run_work_items,
)
from repro.validation.compare import run_validation

WINDOW = MeasurementWindow(50, 400, 50)


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs("auto") == resolve_jobs(0)

    def test_rejects_negative_and_bool(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            resolve_jobs(True)
        with pytest.raises(ValueError):
            resolve_jobs(False)  # must not alias the 0 = "auto" spelling


class TestRunWorkItems:
    def _items(self, system, message, n=3):
        return [
            SimWorkItem(
                system=system,
                message=message,
                generation_rate=1e-3,
                seed=100 + i,
                window=WINDOW,
            )
            for i in range(n)
        ]

    def test_serial_matches_session_runs(self, small_system, small_message, small_session):
        items = self._items(small_system, small_message)
        results = run_work_items(items, session=small_session)
        for item, result in zip(items, results):
            direct = small_session.run(item.generation_rate, seed=item.seed, window=item.window)
            assert result.mean_latency == direct.mean_latency
            assert result.events == direct.events

    def test_pool_is_bit_identical_and_order_preserving(self, small_system, small_message):
        items = self._items(small_system, small_message, n=4)
        serial = run_work_items(items, jobs=1)
        pooled = run_work_items(items, jobs=2)
        assert [r.seed for r in pooled] == [item.seed for item in items]
        assert [r.mean_latency for r in pooled] == [r.mean_latency for r in serial]
        assert [r.events for r in pooled] == [r.events for r in serial]

    def test_worker_count_invariance(self, small_system, small_message):
        items = self._items(small_system, small_message, n=4)
        by_jobs = {
            jobs: [r.mean_latency for r in run_work_items(items, jobs=jobs)]
            for jobs in (1, 2, 3)
        }
        assert by_jobs[1] == by_jobs[2] == by_jobs[3]

    def test_worker_exception_propagates(self, small_system, small_message):
        bad = SimWorkItem(
            system=small_system,
            message=small_message,
            generation_rate=1e-3,
            seed=0,
            window=WINDOW,
            cd_mode="not-a-mode",
        )
        good = self._items(small_system, small_message, n=1)[0]
        with pytest.raises(ValueError, match="cd_mode"):
            run_work_items([good, bad], jobs=2)
        with pytest.raises(ValueError, match="cd_mode"):
            run_work_items([good, bad], jobs=1)

    def test_rejects_non_items(self):
        with pytest.raises(ValueError):
            run_work_items(["nope"])


class TestParallelReplication:
    def test_parallel_matches_serial_bit_for_bit(self, small_session):
        serial = replicate(small_session, 1e-3, replicas=4, base_seed=0, window=WINDOW)
        pooled = replicate(small_session, 1e-3, replicas=4, base_seed=0, window=WINDOW, jobs=2)
        assert pooled.seeds == serial.seeds
        assert [r.mean_latency for r in pooled.replicas] == [
            r.mean_latency for r in serial.replicas
        ]
        assert pooled.mean_latency == serial.mean_latency
        assert pooled.ci_half_width == serial.ci_half_width
        assert pooled.events == serial.events
        assert pooled.jobs == 2

    def test_worker_count_invariance(self, small_session):
        means = {
            jobs: replicate(
                small_session, 1e-3, replicas=4, base_seed=9, window=WINDOW, jobs=jobs
            ).mean_latency
            for jobs in (1, 2, 3)
        }
        assert len(set(means.values())) == 1

    def test_jobs_recorded_capped_at_replicas(self, small_session):
        rep = replicate(small_session, 1e-3, replicas=2, base_seed=0, window=WINDOW, jobs=8)
        assert rep.jobs == 2

    def test_run_kwargs_forwarded_to_workers(self, small_session):
        serial = replicate(
            small_session,
            1e-3,
            replicas=2,
            base_seed=1,
            window=WINDOW,
            cd_mode="store_and_forward",
        )
        pooled = replicate(
            small_session,
            1e-3,
            replicas=2,
            base_seed=1,
            window=WINDOW,
            cd_mode="store_and_forward",
            jobs=2,
        )
        assert [r.mean_latency for r in pooled.replicas] == [
            r.mean_latency for r in serial.replicas
        ]


class TestParallelValidation:
    def test_jobs_do_not_change_the_curve(self, small_system, small_message, small_session):
        loads = [5e-4, 1e-3, 2e-3]
        serial = run_validation(
            small_system, small_message, loads, window=WINDOW, session=small_session
        )
        pooled = run_validation(small_system, small_message, loads, window=WINDOW, jobs=2)
        assert [p.sim_latency for p in pooled.points] == [p.sim_latency for p in serial.points]
        assert [p.model_latency for p in pooled.points] == [
            p.model_latency for p in serial.points
        ]

    def test_throughput_aggregates(self, small_system, small_message, small_session):
        curve = run_validation(
            small_system, small_message, [5e-4, 1e-3], window=WINDOW, session=small_session
        )
        assert curve.sim_events == sum(r.events for r in curve.sim_results)
        assert curve.sim_wall_seconds == max(r.wall_seconds for r in curve.sim_results)


class TestSweepMany:
    def _result(self, **kwargs):
        from repro.experiments import Experiment

        return Experiment.sweep_many(["544", "1120"], points=4, **kwargs)

    def test_schema_is_stable(self):
        result = self._result()
        assert result.kind == "sweep_many"
        assert result.scenario == "544,1120"
        assert set(result.data.keys()) == {"scenarios", "jobs", "columns"}
        assert set(result.data["columns"].keys()) == {"scenario", "load", "latency"}
        lengths = {len(col) for col in result.data["columns"].values()}
        assert lengths == {8}  # 2 scenarios x 4 points, long format
        for row in result.data["scenarios"]:
            assert set(row.keys()) == {
                "scenario",
                "total_nodes",
                "loads",
                "latencies",
                "saturation_load",
            }
        assert {s["name"] for s in result.spec["scenarios"]} == {"544", "1120"}
        assert result.to_dict()["schema"] == "repro.experiment/1"

    def test_matches_single_scenario_sweep(self):
        from repro.experiments import Experiment

        result = self._result()
        by_name = {row["scenario"]: row for row in result.data["scenarios"]}
        for name in ("544", "1120"):
            import dataclasses

            spec = Experiment(name).spec
            spec = dataclasses.replace(
                spec, load_grid=dataclasses.replace(spec.load_grid, points=4)
            )
            single = Experiment(spec).sweep()
            assert by_name[name]["loads"] == single.data["columns"]["load"]
            assert by_name[name]["latencies"] == single.data["columns"]["latency"]

    def test_jobs_do_not_change_results(self):
        assert self._result(jobs=2).data["columns"] == self._result().data["columns"]

    def test_rejects_duplicates_and_empty(self):
        from repro.experiments import Experiment

        with pytest.raises(ValueError, match="duplicate"):
            Experiment.sweep_many(["544", "544"])
        with pytest.raises(ValueError, match="at least one"):
            Experiment.sweep_many([])


class TestWorkerSessionCacheLRU:
    @staticmethod
    def _item(system, message, flits):
        from dataclasses import replace

        return SimWorkItem(
            system=system,
            message=replace(message, length_flits=flits),
            generation_rate=1e-3,
            seed=0,
            window=WINDOW,
        )

    def test_hit_refreshes_recency(self, small_system, small_message, monkeypatch):
        """A cache hit must move the session to most-recent, not leave it
        at insertion order — under FIFO the steady reuse pattern
        (A B A C A D ...) would evict A every time the cache fills."""
        from repro.simulation import parallel

        monkeypatch.setattr(parallel, "_SESSION_CACHE", {})
        monkeypatch.setattr(parallel, "_SESSION_CACHE_MAX", 2)
        a, b, c = (self._item(small_system, small_message, n) for n in (4, 8, 16))
        session_a = parallel._session_for(a)
        parallel._session_for(b)
        assert parallel._session_for(a) is session_a  # hit refreshes a
        parallel._session_for(c)  # fills the cache: must evict b, not a
        assert parallel._session_for(a) is session_a
        assert len(parallel._SESSION_CACHE) == 2

    def test_eviction_drops_least_recently_used(
        self, small_system, small_message, monkeypatch
    ):
        from repro.simulation import parallel

        monkeypatch.setattr(parallel, "_SESSION_CACHE", {})
        monkeypatch.setattr(parallel, "_SESSION_CACHE_MAX", 2)
        a, b, c = (self._item(small_system, small_message, n) for n in (4, 8, 16))
        parallel._session_for(a)
        session_b = parallel._session_for(b)
        parallel._session_for(c)  # evicts a (least recently used)
        assert parallel._session_for(b) is session_b
        assert (a.system, a.message, a.options) not in parallel._SESSION_CACHE


class TestSessionDrawCacheReuse:
    def test_repeated_load_points_replay_identically(self, small_session):
        """The per-seed draw cache must not drift across runs of a session."""
        first = small_session.run(1e-3, seed=41, window=WINDOW)
        again = small_session.run(1e-3, seed=41, window=WINDOW)
        other_load = small_session.run(2e-3, seed=41, window=WINDOW)
        assert again.mean_latency == first.mean_latency
        assert again.events == first.events
        assert other_load.mean_latency != first.mean_latency

    def test_cache_is_bounded_and_eviction_is_harmless(self, small_system, small_message):
        from repro.simulation import SimulationSession

        session = SimulationSession(small_system, small_message)
        tiny = MeasurementWindow(10, 50, 10)
        reference = session.run(1e-3, seed=0, window=tiny).mean_latency
        for seed in range(1, 12):
            session.run(1e-3, seed=seed, window=tiny)
        assert len(session._draws) <= session._draws_max
        # Seed 0's cache was evicted; a rebuild must reproduce the result.
        assert session.run(1e-3, seed=0, window=tiny).mean_latency == reference

    def test_cache_extension_matches_fresh_session(self, small_system, small_message):
        """A short run then a longer run (cache growth) must equal a cold run."""
        from repro.simulation import SimulationSession

        warm = SimulationSession(small_system, small_message)
        warm.run(1e-3, seed=5, window=MeasurementWindow(10, 50, 10))
        grown = warm.run(1e-3, seed=5, window=WINDOW)
        cold = SimulationSession(small_system, small_message).run(1e-3, seed=5, window=WINDOW)
        assert grown.mean_latency == cold.mean_latency
        assert grown.events == cold.events
