"""Design-space exploration tests (scenarios.grid + experiments.explore).

Locks the subsystem's three contracts: deterministic grid expansion, one-
axis slices bit-identical to the pre-existing what-if study, and an
on-disk cache whose hits are indistinguishable from fresh evaluations.
"""

import json

import pytest

from repro.analysis import curve_label, icn2_bandwidth_study
from repro.core import NET1, MessageSpec, paper_system_544
from repro.experiments import Experiment, cell_cache_key, explore_grid
from repro.io import ResultCache, to_jsonable
from repro.io.cache import content_key
from repro.scenarios import AxisSpec, DesignGrid, ScenarioSpec, get_scenario
from repro.scenarios.grid import set_by_path

MSG = MessageSpec(32, 256.0)


@pytest.fixture(scope="module")
def base_544():
    return get_scenario("544")


def small_grid(base, *, bandwidths=(500.0, 600.0), flits=(32, 64)):
    return DesignGrid(
        base=base,
        axes=(
            AxisSpec("system.icn2.bandwidth", tuple(bandwidths)),
            AxisSpec("message.length_flits", tuple(flits)),
        ),
    )


def canonical(payload) -> str:
    """Bit-stable text form (NaN-safe) for table-equality assertions."""
    return json.dumps(to_jsonable(payload), sort_keys=True)


class TestAxisSpec:
    def test_rejects_empty_values(self):
        with pytest.raises(ValueError, match="at least one value"):
            AxisSpec("message.length_flits", ())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="duplicate values"):
            AxisSpec("message.length_flits", (32, 32))

    def test_round_trip(self):
        axis = AxisSpec("system.icn2.bandwidth", (250.0, 500.0))
        assert AxisSpec.from_dict(axis.to_dict()) == axis


class TestSetByPath:
    def test_unknown_key_lists_alternatives(self, base_544):
        tree = base_544.to_dict()
        with pytest.raises(ValueError, match="unknown key 'bandwdith'"):
            set_by_path(tree, "system.icn2.bandwdith", 1.0)

    def test_derived_fields_not_sweepable(self, base_544):
        tree = base_544.to_dict()
        with pytest.raises(ValueError, match="must start with one of"):
            set_by_path(tree, "name", "evil")

    def test_list_index_path(self, base_544):
        tree = base_544.to_dict()
        set_by_path(tree, "system.clusters.0.tree_depth", 4)
        assert tree["system"]["clusters"][0]["tree_depth"] == 4

    def test_list_index_out_of_range(self, base_544):
        tree = base_544.to_dict()
        with pytest.raises(ValueError, match="out of range"):
            set_by_path(tree, "system.clusters.99.tree_depth", 4)

    def test_scalar_top_level_leaf(self, base_544):
        tree = base_544.to_dict()
        set_by_path(tree, "latency_budget", 60.0)
        assert tree["latency_budget"] == 60.0


class TestDesignGrid:
    def test_size_and_row_major_order(self, base_544):
        grid = small_grid(base_544)
        cells = grid.cells()
        assert grid.size == len(cells) == 4
        # Last axis varies fastest.
        assert [c.coords["message.length_flits"] for c in cells] == [32, 64, 32, 64]
        assert [c.coords["system.icn2.bandwidth"] for c in cells] == [500.0, 500.0, 600.0, 600.0]

    def test_deterministic_names(self, base_544):
        cells = small_grid(base_544).cells()
        assert cells[0].name == "544/system.icn2.bandwidth=500/message.length_flits=32"
        assert cells[3].name == "544/system.icn2.bandwidth=600/message.length_flits=64"
        assert len({c.name for c in cells}) == len(cells)

    def test_cells_apply_values(self, base_544):
        cells = small_grid(base_544).cells()
        assert cells[3].spec.system.icn2.bandwidth == 600.0
        assert cells[3].spec.message.length_flits == 64
        # The base spec is untouched.
        assert base_544.system.icn2.bandwidth == 500.0

    def test_invalid_cell_names_itself(self, base_544):
        grid = DesignGrid(base=base_544, axes=(AxisSpec("message.length_flits", (0,)),))
        with pytest.raises(ValueError, match="grid cell '544/message.length_flits=0'"):
            grid.cells()

    def test_duplicate_axis_paths_rejected(self, base_544):
        with pytest.raises(ValueError, match="duplicate axis paths"):
            DesignGrid(
                base=base_544,
                axes=(
                    AxisSpec("message.length_flits", (32,)),
                    AxisSpec("message.length_flits", (64,)),
                ),
            )

    def test_overlapping_axis_paths_rejected(self, base_544):
        """A whole-subtree axis would silently clobber a leaf axis inside
        it, making cell coordinates lie about the evaluated spec."""
        icn2 = base_544.system.icn2.to_dict()
        for axes in (
            (AxisSpec("system.icn2.bandwidth", (500.0, 600.0)), AxisSpec("system.icn2", (icn2,))),
            (AxisSpec("system.icn2", (icn2,)), AxisSpec("system.icn2.bandwidth", (500.0, 600.0))),
        ):
            with pytest.raises(ValueError, match="overlapping axis paths"):
                DesignGrid(base=base_544, axes=axes)
        # Sibling leaves under one parent remain a valid grid.
        DesignGrid(
            base=base_544,
            axes=(
                AxisSpec("system.icn2.bandwidth", (500.0,)),
                AxisSpec("system.icn2.network_latency", (0.01,)),
            ),
        ).cells()

    def test_json_round_trip(self, base_544):
        grid = small_grid(base_544)
        assert DesignGrid.from_dict(grid.to_dict()) == grid
        assert DesignGrid.from_json(grid.to_json()) == grid

    def test_save_load(self, base_544, tmp_path):
        grid = small_grid(base_544)
        path = grid.save(tmp_path / "grid.json")
        assert DesignGrid.load(path) == grid


class TestExploreGrid:
    def test_one_axis_slice_matches_icn2_bandwidth_study(self, base_544):
        """Acceptance: the ICN2-bandwidth axis reproduces the Fig. 7 study's
        saturation loads bit-for-bit."""
        factor = 1.2
        study = icn2_bandwidth_study((paper_system_544(),), MSG, factor=factor)
        result = Experiment(base_544).explore(
            [("system.icn2.bandwidth", [NET1.bandwidth, NET1.bandwidth * factor])]
        )
        sat = result.data["columns"]["saturation_load"]
        assert sat[0] == study.curve(curve_label(paper_system_544(), "base")).saturation_load
        assert sat[1] == study.curve(
            curve_label(paper_system_544(), f"icn2 x{factor:g}")
        ).saturation_load

    def test_parallel_matches_serial(self, base_544):
        grid = small_grid(base_544)
        serial = explore_grid(grid)
        pooled = explore_grid(grid, jobs=2)
        assert canonical(serial.data["columns"]) == canonical(pooled.data["columns"])
        assert canonical(serial.data["cells"]) == canonical(pooled.data["cells"])
        assert pooled.data["jobs"] == 2

    def test_cache_round_trip_identical_table(self, base_544, tmp_path):
        grid = small_grid(base_544)
        first = explore_grid(grid, cache=tmp_path / "cache")
        second = explore_grid(grid, cache=tmp_path / "cache", jobs=2)
        assert first.data["evaluated"] == 4 and first.data["cached"] == 0
        assert second.data["evaluated"] == 0 and second.data["cached"] == 4
        assert canonical(first.data["columns"]) == canonical(second.data["columns"])
        assert canonical(first.data["cells"]) == canonical(second.data["cells"])

    def test_enlarged_grid_only_evaluates_new_cells(self, base_544, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        explore_grid(small_grid(base_544), cache=cache)
        bigger = explore_grid(
            small_grid(base_544, bandwidths=(500.0, 600.0, 700.0)), cache=cache
        )
        assert bigger.data["cached"] == 4
        assert bigger.data["evaluated"] == 2  # only the 700.0 column
        assert len(cache) == 6

    def test_cache_key_ignores_derived_name(self, base_544):
        cells = small_grid(base_544).cells()
        renamed = ScenarioSpec.from_dict(
            {**cells[0].spec.to_dict(), "name": "other", "description": "x"}
        )
        assert cell_cache_key(cells[0].spec, 4.0) == cell_cache_key(renamed, 4.0)
        assert cell_cache_key(cells[0].spec, 4.0) != cell_cache_key(cells[1].spec, 4.0)
        assert cell_cache_key(cells[0].spec, 4.0) != cell_cache_key(cells[0].spec, 3.0)

    def test_cache_key_ignores_metric_irrelevant_load_grid(self, base_544):
        """No explore metric reads the load-grid policy, so two specs
        differing only there must share a cache entry."""
        from dataclasses import replace

        from repro.scenarios import LoadGridPolicy

        spec = small_grid(base_544).cells()[0].spec
        repointed = replace(spec, load_grid=LoadGridPolicy(points=3))
        assert cell_cache_key(spec, 4.0) == cell_cache_key(repointed, 4.0)

    def test_cache_key_canonicalises_int_vs_float_values(self, base_544):
        """CLI coercion yields int 500 where the API writes 500.0; both
        build the identical model and must share one cache entry."""
        def first_spec(value):
            return DesignGrid(
                base=base_544, axes=(AxisSpec("system.icn2.bandwidth", (value,)),)
            ).cells()[0].spec

        assert cell_cache_key(first_spec(500), 4.0) == cell_cache_key(first_spec(500.0), 4.0)
        assert cell_cache_key(first_spec(500), 4) == cell_cache_key(first_spec(500.0), 4.0)

    def test_metrics_are_consistent(self, base_544):
        result = Experiment(base_544).explore(
            [("system.icn2.bandwidth", [500.0, 600.0])]
        )
        for cell in result.data["cells"]:
            m = cell["metrics"]
            assert 0.0 < m["knee_load"] < m["saturation_load"]
            assert m["zero_load_latency"] > 0
            assert m["binding_kind"] in ("source-queue", "concentrator")
            assert m["total_nodes"] == 544
            assert m["lambda_at_budget"] != m["lambda_at_budget"]  # NaN: no budget

    def test_budget_metric_with_finite_budget(self, base_544):
        from dataclasses import replace

        spec = replace(base_544, latency_budget=60.0)
        result = Experiment(spec).explore([("system.icn2.bandwidth", [500.0, 600.0])])
        for cell in result.data["cells"]:
            m = cell["metrics"]
            assert 0.0 < m["lambda_at_budget"] < m["saturation_load"]

    def test_pattern_base_explores(self):
        result = Experiment("544-hotspot").explore(
            [("message.length_flits", [32, 64])]
        )
        sat = result.data["columns"]["saturation_load"]
        assert sat[1] < sat[0]

    def test_frontier_and_sensitivity_attached(self, base_544):
        result = explore_grid(small_grid(base_544), frontier=True)
        frontier = result.data["frontier"]
        assert frontier["x"] == "cost_proxy" and frontier["y"] == "saturation_load"
        assert len(frontier["indices"]) >= 1
        paths = [s["path"] for s in result.data["sensitivity"]]
        assert sorted(paths) == ["message.length_flits", "system.icn2.bandwidth"]
        assert "Pareto frontier" in result.text

    def test_three_axis_grid_with_jobs(self, base_544):
        """Acceptance: a >= 3-axis, >= 48-cell grid completes through the
        closed forms under --jobs parallelism."""
        result = Experiment(base_544).explore(
            [
                ("system.icn2.bandwidth", [250.0, 375.0, 500.0, 625.0]),
                ("message.length_flits", [16, 32, 48, 64]),
                ("message.flit_bytes", [128.0, 256.0, 512.0]),
            ],
            jobs=2,
        )
        cols = result.data["columns"]
        assert len(cols["cell"]) == 48
        assert result.data["evaluated"] == 48
        # λ* falls monotonically with message length at fixed other axes
        # (cells 0..11 share bandwidth=250, flit_bytes varies fastest).
        sat = cols["saturation_load"]
        assert sat[0] > sat[3] > sat[6] > sat[9]

    def test_result_is_jsonable_with_stable_schema(self, base_544):
        result = explore_grid(small_grid(base_544))
        payload = result.to_dict()
        assert payload["kind"] == "explore"
        assert payload["schema"] == "repro.experiment/1"
        assert payload["spec"]["schema"] == "repro.grid/1"
        json.dumps(payload)  # fully serialisable (NaN tagged)

    def test_rejects_bad_knee_factor(self, base_544):
        with pytest.raises(ValueError, match="knee_threshold_factor"):
            explore_grid(small_grid(base_544), knee_threshold_factor=1.0)


class TestStackedFastPath:
    """Serial explore prices pending cells in one StackedModel evaluation."""

    def test_serial_run_uses_stack_and_reports_it(self, base_544):
        result = explore_grid(small_grid(base_544))
        assert result.data["stacked"] is True
        assert result.data["cache_hits"] == 0
        assert result.data["evaluated"] == 4

    def test_jobs_and_policy_fall_back_to_per_cell(self, base_544):
        from repro.exec import RunPolicy

        grid = small_grid(base_544)
        serial = explore_grid(grid)
        pooled = explore_grid(grid, jobs=2)
        with_policy = explore_grid(grid, policy=RunPolicy(max_retries=0))
        assert serial.data["stacked"] is True
        assert pooled.data["stacked"] is False
        assert with_policy.data["stacked"] is False
        # Fallback paths are byte-identical to the stacked one.
        for other in (pooled, with_policy):
            assert canonical(serial.data["columns"]) == canonical(other.data["columns"])
            assert canonical(serial.data["cells"]) == canonical(other.data["cells"])

    def test_replay_reports_cache_hits_and_does_no_work(self, base_544, tmp_path):
        grid = small_grid(base_544)
        first = explore_grid(grid, cache=tmp_path / "c")
        assert first.data["stacked"] is True and first.data["evaluated"] == 4
        second = explore_grid(grid, cache=tmp_path / "c")
        assert second.data["evaluated"] == 0
        assert second.data["cache_hits"] == second.data["cached"] == 4
        assert second.data["stacked"] is False  # nothing left to stack
        assert canonical(first.data["columns"]) == canonical(second.data["columns"])

    def test_corrupt_entry_heals_through_stacked_path(self, base_544, tmp_path):
        grid = small_grid(base_544)
        cache = ResultCache(tmp_path / "c")
        first = explore_grid(grid, cache=cache)
        key = cell_cache_key(grid.cells()[1].spec, 4.0)
        cache.put(key, {"x": 1}).write_text("{not json")
        second = explore_grid(grid, cache=cache)
        # get_many treats the corrupt entry as a miss; the stacked path
        # re-evaluates exactly that cell and rewrites a valid entry.
        assert second.data["evaluated"] == 1 and second.data["cache_hits"] == 3
        assert second.data["stacked"] is True
        assert canonical(first.data["columns"]) == canonical(second.data["columns"])
        healed = cache.get(key)
        assert healed is not None
        assert canonical(healed["metrics"]) == canonical(first.data["cells"][1]["metrics"])


class TestResultCache:
    def test_get_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get("ab" * 32) is None

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = content_key({"x": 1})
        cache.put(key, {"metrics": {"a": float("nan"), "b": 2}})
        loaded = cache.get(key)
        assert loaded["metrics"]["b"] == 2
        assert loaded["metrics"]["a"] != loaded["metrics"]["a"]  # NaN restored
        assert key in cache and len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = content_key({"x": 2})
        path = cache.put(key, {"ok": True})
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_malformed_float_tag_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = content_key({"x": 3})
        cache.put(key, {"ok": True}).write_text('{"__float__": "Infinity"}')
        assert cache.get(key) is None

    def test_non_utf8_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = content_key({"x": 4})
        cache.put(key, {"ok": True}).write_bytes(b"\xff\xfe{}")
        assert cache.get(key) is None

    def test_get_many_matches_get(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = [content_key({"x": i}) for i in range(5)]
        for key in keys[:3]:
            cache.put(key, {"k": key})
        cache.put(keys[3], {"ok": True}).write_text("{not json")  # corrupt
        # keys[4] is never written: a cold miss.
        many = cache.get_many(keys)
        assert many == [cache.get(key) for key in keys]
        assert [entry is None for entry in many] == [False, False, False, True, True]

    def test_get_many_on_cold_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get_many([]) == []
        assert cache.get_many([content_key({"x": 1})]) == [None]

    def test_get_many_rejects_non_hex_key(self, tmp_path):
        with pytest.raises(ValueError, match="hex digest"):
            ResultCache(tmp_path).get_many(["../../etc/passwd"])

    def test_rejects_non_hex_key(self, tmp_path):
        with pytest.raises(ValueError, match="hex digest"):
            ResultCache(tmp_path).get("../../etc/passwd")

    def test_content_key_is_order_insensitive(self):
        assert content_key({"a": 1, "b": 2.5}) == content_key({"b": 2.5, "a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_schema_mismatch_forces_reevaluation(self, base_544, tmp_path):
        grid = small_grid(base_544)
        cache = ResultCache(tmp_path / "c")
        explore_grid(grid, cache=cache)
        # Poison one entry with a foreign schema: it must not be served.
        key = cell_cache_key(grid.cells()[0].spec, 4.0)
        cache.put(key, {"schema": "something/else", "metrics": {}})
        again = explore_grid(grid, cache=cache)
        assert again.data["evaluated"] == 1
        assert again.data["cached"] == 3
        assert again.data["columns"]["saturation_load"][0] > 0

    def test_entry_without_metrics_forces_reevaluation(self, base_544, tmp_path):
        from repro.experiments import EXPLORE_CELL_SCHEMA

        grid = small_grid(base_544)
        cache = ResultCache(tmp_path / "c")
        explore_grid(grid, cache=cache)
        key = cell_cache_key(grid.cells()[1].spec, 4.0)
        cache.put(key, {"schema": EXPLORE_CELL_SCHEMA})  # metrics stripped
        again = explore_grid(grid, cache=cache)
        assert again.data["evaluated"] == 1
        assert again.data["cached"] == 3

    def test_incomplete_metrics_entry_forces_reevaluation(self, base_544, tmp_path):
        """A schema-tagged entry missing metric keys (e.g. from a build
        that changed the metric set without a schema bump) is a miss and
        gets overwritten, not a crash on column assembly."""
        from repro.experiments import EXPLORE_CELL_SCHEMA

        grid = small_grid(base_544)
        cache = ResultCache(tmp_path / "c")
        explore_grid(grid, cache=cache)
        key = cell_cache_key(grid.cells()[2].spec, 4.0)
        cache.put(key, {"schema": EXPLORE_CELL_SCHEMA, "metrics": {"saturation_load": 1.0}})
        again = explore_grid(grid, cache=cache)
        assert again.data["evaluated"] == 1
        assert again.data["cached"] == 3
        # The poisoned entry was healed on disk.
        healed = explore_grid(grid, cache=cache)
        assert healed.data["evaluated"] == 0 and healed.data["cached"] == 4
