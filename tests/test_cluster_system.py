"""Cluster-of-clusters fabric tests (cluster.system, cluster.channels)."""

import pytest

from repro.cluster import Concentrator, HeterogeneousSystem, SystemChannel
from repro.core import ClusterSpec, SystemConfig, paper_system_544, paper_system_1120
from repro.topology import ChannelKind


class TestAssembly:
    def test_paper_1120(self):
        system = HeterogeneousSystem(paper_system_1120())
        assert system.total_nodes == 1120
        assert len(system.clusters) == 32
        assert system.icn2.num_nodes == 32

    def test_paper_544(self):
        system = HeterogeneousSystem(paper_system_544())
        assert system.total_nodes == 544
        assert system.icn2.num_nodes == 16

    def test_cluster_offsets_are_contiguous(self, built_small_system):
        offsets = [c.first_global_id for c in built_small_system.clusters]
        sizes = [c.num_nodes for c in built_small_system.clusters]
        for i in range(1, len(offsets)):
            assert offsets[i] == offsets[i - 1] + sizes[i - 1]

    def test_single_cluster_system_has_no_icn2_channels(self):
        cfg = SystemConfig(switch_ports=4, clusters=(ClusterSpec(2),))
        system = HeterogeneousSystem(cfg)
        tags = {ch.network[0] for ch in system.channels()}
        assert tags == {"icn1", "ecn1"}


class TestNodeLookup:
    def test_locate_roundtrip(self, built_small_system):
        for gid in built_small_system.global_ids():
            cluster, addr = built_small_system.locate(gid)
            assert cluster.local_to_global(cluster.icn1.node_index(addr)) == gid

    def test_cluster_of_boundaries(self, built_small_system):
        first = built_small_system.clusters[1].first_global_id
        assert built_small_system.cluster_of(first).index == 1
        assert built_small_system.cluster_of(first - 1).index == 0

    def test_out_of_range_rejected(self, built_small_system):
        with pytest.raises(ValueError):
            built_small_system.cluster_of(built_small_system.total_nodes)
        with pytest.raises(ValueError):
            built_small_system.cluster_of(-1)


class TestChannels:
    def test_channel_count(self, built_small_system):
        # Per cluster: ICN1 (2nN) + ECN1 (2nN) + 2 links per ECN1 root;
        # plus ICN2 (2 n_c C).
        expected = 0
        for cluster in built_small_system.clusters:
            n, n_nodes = cluster.spec.tree_depth, cluster.num_nodes
            roots = (built_small_system.config.switch_ports // 2) ** (n - 1)
            expected += 2 * (2 * n * n_nodes) + 2 * roots
        icn2 = built_small_system.icn2
        expected += 2 * icn2.tree_depth * icn2.num_nodes
        assert built_small_system.num_channels == expected

    def test_no_duplicate_channels(self, built_small_system):
        channels = list(built_small_system.channels())
        assert len(channels) == len(set(channels))

    def test_concentrator_links_per_root(self, built_small_system):
        cds = [ch for ch in built_small_system.channels() if isinstance(ch.target, Concentrator) and ch.network[0] == "ecn1"]
        roots = (built_small_system.config.switch_ports // 2) ** (built_small_system.clusters[0].spec.tree_depth - 1)
        per_cluster = {}
        for ch in cds:
            per_cluster.setdefault(ch.target.cluster_index, 0)
            per_cluster[ch.target.cluster_index] += 1
        assert all(count == roots for count in per_cluster.values())

    def test_icn2_endpoints_are_concentrators(self, built_small_system):
        for ch in built_small_system.channels():
            if ch.network[0] != "icn2":
                continue
            if ch.kind is ChannelKind.NODE_TO_SWITCH:
                assert isinstance(ch.source, Concentrator)
            if ch.kind is ChannelKind.SWITCH_TO_NODE:
                assert isinstance(ch.target, Concentrator)

    def test_channel_from_link_tags(self):
        from repro.topology import Link, MPortNTree

        tree = MPortNTree(4, 1)
        link = next(iter(tree.links()))
        ch = SystemChannel.from_link(("icn1", 3), link)
        assert ch.network == ("icn1", 3)
        assert ch.kind is link.kind


class TestDescribe:
    def test_describe_content(self, built_small_system):
        d = built_small_system.describe()
        assert d["total_nodes"] == 32
        assert d["clusters"] == 4
        assert d["cluster_sizes"] == [8, 8, 8, 8]
        assert d["channels"] == built_small_system.num_channels
