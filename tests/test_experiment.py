"""Experiment facade tests (repro.experiments).

The key invariant: every Experiment workflow returns *exactly* the numbers
the corresponding direct call produces — the facade is plumbing, not a new
model path.
"""

import numpy as np
import pytest

from repro.analysis import max_load_for_latency, model_bottlenecks
from repro.core import BatchedModel, MessageSpec, paper_system_1120
from repro.core.sweep import auto_load_grid, sweep_load
from repro.experiments import EXPERIMENT_SCHEMA, Experiment
from repro.io import to_jsonable
from repro.scenarios import ScenarioSpec, get_scenario


@pytest.fixture(scope="module")
def exp_1120():
    return Experiment("1120")


class TestConstruction:
    def test_accepts_name_or_spec(self):
        by_name = Experiment("544")
        by_spec = Experiment(get_scenario("544"))
        assert by_name.spec == by_spec.spec

    def test_rejects_non_spec(self):
        with pytest.raises(ValueError):
            Experiment(42)

    def test_engine_is_cached(self, exp_1120):
        assert exp_1120.engine is exp_1120.engine

    def test_engine_reflects_spec(self):
        exp = Experiment("544-hotspot")
        assert exp.engine.pattern is exp.spec.pattern
        assert exp.engine.pattern is not None

    def test_unserialisable_pattern_fails_at_construction(self):
        """Regression: an unregistered pattern used to fail only after the
        first workflow finished its computation."""
        from repro.core import paper_system_544
        from repro.workloads import LocalityTraffic

        class Custom(LocalityTraffic):
            pass

        spec = ScenarioSpec(name="custom", system=paper_system_544(), pattern=Custom(0.5))
        with pytest.raises(ValueError, match="not registered"):
            Experiment(spec)


class TestMatchesDirectCalls:
    """Acceptance: 1120 Experiment results == direct entry-point results."""

    def test_sweep_matches_sweep_load(self, exp_1120):
        engine = BatchedModel(paper_system_1120(), MessageSpec(32, 256.0))
        grid = auto_load_grid(engine, points=12, fraction_of_saturation=0.95)
        direct = sweep_load(engine, grid, with_results=False)
        facade = exp_1120.sweep()
        assert facade.data["columns"]["load"] == [float(v) for v in direct.loads]
        assert facade.data["columns"]["latency"] == [float(v) for v in direct.latencies]

    def test_capacity_matches_max_load_for_latency(self, exp_1120):
        direct = max_load_for_latency(paper_system_1120(), MessageSpec(32, 256.0), 80.0)
        facade = exp_1120.capacity(80.0)
        assert facade.data["achieved"] == direct.achieved
        assert facade.data["feasible"] == direct.feasible
        assert facade.data["target"] == direct.target

    def test_bottlenecks_matches_model_bottlenecks(self, exp_1120):
        lam = 0.9 * exp_1120.engine.saturation_load()
        direct = model_bottlenecks(paper_system_1120(), MessageSpec(32, 256.0), lam)
        facade = exp_1120.bottlenecks()
        assert facade.data["binding"]["resource"] == direct.binding.resource
        assert facade.data["binding"]["utilization"] == direct.binding.utilization
        assert [r["resource"] for r in facade.data["resources"]] == [
            r.resource for r in direct.resources
        ]
        assert facade.data["saturation_load"] == direct.saturation_load
        # The CSV-ready columns mirror the per-resource records exactly.
        cols = facade.data["columns"]
        assert cols["resource"] == [r.resource for r in direct.resources]
        assert cols["kind"] == [r.kind for r in direct.resources]
        assert cols["utilization"] == [r.utilization for r in direct.resources]

    def test_saturation_matches_engine(self, exp_1120):
        engine = BatchedModel(paper_system_1120(), MessageSpec(32, 256.0))
        facade = exp_1120.saturation()
        assert facade.data["saturation_load"] == engine.saturation_load()
        assert facade.data["binding_resource"] == engine.binding_resource()
        assert facade.data["per_resource"] == engine.saturation_loads()

    def test_evaluate_matches_model(self, exp_1120):
        lam = 0.4 * exp_1120.engine.saturation_load()
        direct = exp_1120.engine.evaluate(lam)
        facade = exp_1120.evaluate(lam)
        assert facade.data["latency"] == direct.latency
        assert facade.data["saturated"] == direct.saturated


class TestResultSchema:
    def test_uniform_fields(self, exp_1120):
        result = exp_1120.saturation()
        assert result.schema == EXPERIMENT_SCHEMA
        assert result.kind == "saturation"
        assert result.scenario == "1120"
        assert ScenarioSpec.from_dict(result.spec) == exp_1120.spec
        assert isinstance(result.text, str) and result.text

    def test_to_dict_is_jsonable(self, exp_1120):
        import json

        payload = exp_1120.sweep().to_dict()
        json.dumps(payload)  # must not raise
        assert payload["schema"] == EXPERIMENT_SCHEMA
        assert payload == to_jsonable(payload)

    def test_columns_on_curve_kinds(self, exp_1120):
        assert set(exp_1120.sweep().columns()) == {"load", "latency"}
        assert set(exp_1120.capacity(80.0).columns()) == {"target", "achieved", "feasible"}
        assert set(exp_1120.bottlenecks().columns()) == {
            "resource", "kind", "utilization"
        }

    def test_columns_raises_on_scalar_kinds(self, exp_1120):
        with pytest.raises(ValueError, match="no tabular columns"):
            exp_1120.describe().columns()

    def test_from_dict_round_trip(self, exp_1120):
        """Regression: ExperimentResult gained from_dict (RS201) — the
        serialised form is the fixed point since to_dict flattens arrays."""
        from repro.experiments import ExperimentResult

        result = exp_1120.saturation()
        payload = result.to_dict()
        restored = ExperimentResult.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.kind == result.kind
        assert restored.scenario == result.scenario
        assert restored.schema == EXPERIMENT_SCHEMA

    def test_from_dict_defaults_schema_and_text(self):
        from repro.experiments import ExperimentResult

        restored = ExperimentResult.from_dict(
            {"kind": "k", "scenario": "s", "spec": {}, "data": {"x": 1}}
        )
        assert restored.schema == EXPERIMENT_SCHEMA
        assert restored.text == ""

    def test_from_dict_rejects_unknown_keys(self):
        from repro.experiments import ExperimentResult

        with pytest.raises(ValueError, match="unknown"):
            ExperimentResult.from_dict(
                {"kind": "k", "scenario": "s", "spec": {}, "data": {}, "bogus": 1}
            )

    def test_from_dict_rejects_foreign_schema(self):
        from repro.experiments import ExperimentResult

        with pytest.raises(ValueError, match="schema"):
            ExperimentResult.from_dict(
                {
                    "kind": "k", "scenario": "s", "spec": {}, "data": {},
                    "schema": "repro.experiment/999",
                }
            )


class TestWorkflows:
    def test_describe(self, exp_1120):
        result = exp_1120.describe()
        assert result.data["total_nodes"] == 1120
        assert result.data["num_clusters"] == 32
        assert len(result.data["classes"]) == 3

    def test_whatif_gain_positive(self, exp_1120):
        result = exp_1120.whatif(role="icn2", factor=1.2)
        assert result.data["saturation_gain"] > 1.0
        assert len(result.data["curves"]) == 2
        base, variant = result.data["curves"]
        assert base["loads"] == variant["loads"]

    def test_saturated_evaluate_text(self, exp_1120):
        lam_star = exp_1120.engine.saturation_load()
        result = exp_1120.evaluate(2.0 * lam_star)
        assert "SATURATED" in result.text
        assert result.data["saturated"] is True

    def test_capacity_requires_budget_without_spec_default(self, exp_1120):
        with pytest.raises(ValueError, match="latency_budget"):
            exp_1120.capacity()

    def test_capacity_uses_spec_budget(self):
        from dataclasses import replace

        spec = replace(get_scenario("544"), latency_budget=60.0)
        result = Experiment(spec).capacity()
        assert result.data["target"] == 60.0
        assert result.data["feasible"] is True

    def test_simulate_and_validate_small(self):
        exp = Experiment("544")
        sim = exp.simulate(2e-4, messages=300, seed=1)
        assert sim.data["completed"] is True
        assert sim.data["mean_latency"] > 0
        val = exp.validate(points=2, messages=300, seed=1)
        cols = val.data["columns"]
        assert len(cols["load"]) == 2
        assert all(np.isfinite(cols["model"]))

    def test_pattern_scenario_runs_model_and_sim(self):
        exp = Experiment("544-local")
        sweep = exp.sweep()
        assert all(np.isfinite(sweep.data["columns"]["latency"][:-1]))
        sim = exp.simulate(1e-4, messages=200, seed=0)
        assert sim.data["completed"] is True

    def test_flit_granularity_through_facade(self):
        """Regression: the flit-level reference engine is reachable from
        Experiment.simulate/validate (small N keeps the run cheap)."""
        from repro.cluster import homogeneous_system

        spec = ScenarioSpec(
            name="flit-smoke",
            system=homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4),
        )
        exp = Experiment(spec)
        sim = exp.simulate(1e-3, messages=150, seed=3, granularity="flit")
        assert sim.data["completed"] is True
        assert sim.data["mean_latency"] > 0
        val = exp.validate(points=2, messages=150, seed=3, granularity="flit")
        cols = val.data["columns"]
        assert len(cols["load"]) == 2
        assert all(np.isfinite(cols["simulation"]))
