"""Scenario spec serialisation and registry tests (repro.scenarios)."""

import json
import math

import pytest

from repro.core import MessageSpec, ModelOptions, NetworkCharacteristics, paper_system_544, paper_system_1120
from repro.core.parameters import ClusterSpec, SystemConfig
from repro.io import load_json, save_json
from repro.scenarios import (
    PAPER_PRESETS,
    LoadGridPolicy,
    ScenarioSpec,
    get_scenario,
    load_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads import HotspotTraffic, LocalityTraffic, UniformTraffic, make_pattern, pattern_from_dict, pattern_names, pattern_to_dict


ALL_SCENARIOS = scenario_names()


class TestParameterRoundTrips:
    @pytest.mark.parametrize("net", [NetworkCharacteristics(500.0, 0.01, 0.02, "Net.1"), NetworkCharacteristics(1.0, 0.0, 0.0)])
    def test_network(self, net):
        assert NetworkCharacteristics.from_dict(net.to_dict()) == net

    def test_cluster(self):
        spec = ClusterSpec(tree_depth=3, compute_power=2.5, name="c7")
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("factory", [paper_system_544, paper_system_1120])
    def test_system(self, factory):
        system = factory()
        assert SystemConfig.from_dict(system.to_dict()) == system

    def test_message(self):
        assert MessageSpec.from_dict(MessageSpec(64, 512.0).to_dict()) == MessageSpec(64, 512.0)

    def test_options_full_and_partial(self):
        options = ModelOptions(concentrator_rate="source_outgoing", relaxing_factor=False)
        assert ModelOptions.from_dict(options.to_dict()) == options
        assert ModelOptions.from_dict({}) == ModelOptions()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MessageSpec.from_dict({"length_flits": 32, "flit_bytes": 256.0, "oops": 1})
        with pytest.raises(ValueError, match="unknown"):
            ModelOptions.from_dict({"tcn": "x"})


class TestPatternRegistry:
    def test_builtin_names(self):
        assert {"uniform", "locality", "hotspot"} <= set(pattern_names())

    @pytest.mark.parametrize(
        "pattern",
        [UniformTraffic(), LocalityTraffic(0.25), HotspotTraffic(hot_cluster=3, hot_fraction=0.4)],
    )
    def test_round_trip(self, pattern):
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown traffic pattern"):
            make_pattern("zipf")

    def test_bad_params_raise_valueerror_not_typeerror(self):
        """Regression: a missing/typo'd constructor param used to escape as
        TypeError, bypassing the CLI's clean-error handling."""
        with pytest.raises(ValueError, match="invalid parameters"):
            make_pattern("hotspot")  # required params omitted
        with pytest.raises(ValueError, match="invalid parameters"):
            make_pattern("locality", locolity=0.5)

    def test_unregistered_pattern_not_serialisable(self):
        class Custom:
            pass

        with pytest.raises(ValueError, match="not registered"):
            pattern_to_dict(Custom())

    def test_subclass_of_registered_pattern_not_serialisable(self):
        """Regression: a subclass inheriting the base's pattern_name used to
        serialise under the base name and silently come back as the base
        class — different traffic behaviour with no error."""

        class Skewed(LocalityTraffic):
            pass

        with pytest.raises(ValueError, match="not registered"):
            pattern_to_dict(Skewed(0.5))

    def test_value_equality(self):
        assert LocalityTraffic(0.5) == LocalityTraffic(0.5)
        assert LocalityTraffic(0.5) != LocalityTraffic(0.6)
        assert UniformTraffic() != LocalityTraffic(0.0)

    def test_numpy_integer_hot_cluster_accepted(self):
        """Regression: np.argmax-style indices must work (require_int
        convention: any numbers.Integral, still rejecting bool)."""
        import numpy as np

        pattern = HotspotTraffic(hot_cluster=np.int64(3), hot_fraction=0.3)
        assert pattern == HotspotTraffic(hot_cluster=3, hot_fraction=0.3)
        assert isinstance(pattern.pattern_params()["hot_cluster"], int)
        with pytest.raises(ValueError):
            HotspotTraffic(hot_cluster=True, hot_fraction=0.3)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("preset", PAPER_PRESETS)
    def test_paper_presets_identity(self, preset):
        spec = get_scenario(preset)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_registered_scenario_through_json_text(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_nonuniform_pattern_spec_identity(self):
        spec = ScenarioSpec(
            name="custom-hotspot",
            system=paper_system_544(),
            message=MessageSpec(64, 512.0),
            options=ModelOptions(variance_approximation="exponential"),
            pattern=HotspotTraffic(hot_cluster=2, hot_fraction=0.15),
            load_grid=LoadGridPolicy(points=6, fraction_of_saturation=0.8, include_zero=True),
            latency_budget=120.0,
            description="test spec",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_nonfinite_budget_through_json_file(self, tmp_path):
        """The default latency_budget is inf; it must survive a file trip."""
        spec = get_scenario("1120")
        assert math.isinf(spec.latency_budget)
        path = spec.save(tmp_path / "spec.json")
        loaded = ScenarioSpec.load(path)
        assert loaded == spec
        assert math.isinf(loaded.latency_budget)

    def test_nonfinite_floats_via_save_load_json(self, tmp_path):
        """to_dict trees with inf pass through save_json/load_json tagging."""
        spec = get_scenario("544-hotspot")
        path = save_json(tmp_path / "x.json", spec.to_dict())
        assert ScenarioSpec.from_dict(load_json(path)) == spec
        raw = json.loads(path.read_text())
        assert raw["latency_budget"] == {"__float__": "inf"}

    def test_numpy_integer_grid_points_accepted(self):
        import numpy as np

        assert LoadGridPolicy(points=np.int64(6)).points == 6
        with pytest.raises(ValueError):
            LoadGridPolicy(points=1)

    def test_unknown_scenario_key_rejected(self):
        data = get_scenario("544").to_dict()
        data["turbo"] = True
        with pytest.raises(ValueError, match="unknown scenario key"):
            ScenarioSpec.from_dict(data)

    def test_missing_required_keys_report_the_section(self):
        """Regression: a config missing a required field used to escape as a
        bare KeyError ('error: bandwidth' at the CLI)."""
        data = get_scenario("544").to_dict()
        del data["system"]["clusters"][0]["icn1"]["bandwidth"]
        with pytest.raises(ValueError, match="network missing required key"):
            ScenarioSpec.from_dict(data)
        data = get_scenario("544").to_dict()
        del data["system"]["switch_ports"]
        with pytest.raises(ValueError, match="system missing required key"):
            ScenarioSpec.from_dict(data)
        with pytest.raises(ValueError, match="scenario missing required key"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_wrong_schema_rejected(self):
        data = get_scenario("544").to_dict()
        data["schema"] = "repro.scenario/99"
        with pytest.raises(ValueError, match="unsupported scenario schema"):
            ScenarioSpec.from_dict(data)


class TestRegistry:
    def test_at_least_twelve_beyond_presets(self):
        extra = [n for n in ALL_SCENARIOS if n not in PAPER_PRESETS]
        assert len(extra) >= 12

    def test_names_unique_and_specs_named_consistently(self):
        assert len(set(ALL_SCENARIOS)) == len(ALL_SCENARIOS)
        for name in ALL_SCENARIOS:
            assert get_scenario(name).name == name

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("544", lambda: get_scenario("544"))

    @pytest.mark.parametrize(
        "name,nodes,clusters", [("1120-x4", 4480, 128), ("544-x2", 1088, 32), ("544-x4", 2176, 64)]
    )
    def test_scaled_out_names_match_real_totals(self, name, nodes, clusters):
        """Regression: scale-outs used to keep the base preset's N/C in
        their system name, contradicting the actual organisation."""
        system = get_scenario(name).system
        assert system.total_nodes == nodes and system.num_clusters == clusters
        assert f"N{nodes}" in system.name and f"C{clusters}" in system.name

    def test_load_scenario_accepts_name_and_path(self, tmp_path):
        by_name = load_scenario("544")
        path = by_name.save(tmp_path / "s.json")
        assert load_scenario(str(path)) == by_name

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_scenario_evaluable_to_saturation(self, name):
        """Each registered scenario must build an engine, expose a finite
        saturation load and evaluate to a finite latency just below it."""
        from repro.experiments import Experiment

        exp = Experiment(name)
        lam_star = exp.engine.saturation_load()
        assert math.isfinite(lam_star) and lam_star > 0
        result = exp.engine.evaluate(0.5 * lam_star)
        assert math.isfinite(result.latency)
        assert not result.saturated
