"""Simulated-knee estimation tests (analysis.knee)."""

import pytest

from repro.analysis import estimate_sim_knee
from repro.simulation import MeasurementWindow


class TestEstimateSimKnee:
    @pytest.fixture(scope="class")
    def estimate(self, small_session):
        return estimate_sim_knee(
            small_session,
            threshold_factor=3.0,
            window=MeasurementWindow(100, 1200, 100),
            seed=2,
            iterations=5,
        )

    def test_knee_below_or_near_model_saturation(self, estimate):
        assert 0.1 < estimate.knee_fraction <= 1.2

    def test_probes_recorded(self, estimate):
        assert len(estimate.probes) >= 5
        loads = [p[0] for p in estimate.probes]
        assert all(l > 0 for l in loads)

    def test_threshold_semantics(self, small_session, estimate):
        """Latency just below the knee stays under the threshold."""
        from repro.core import AnalyticalModel

        model = AnalyticalModel(small_session.system_config, small_session.message)
        threshold = 3.0 * model.zero_load_latency()
        below = small_session.run(
            0.8 * estimate.sim_knee, seed=2, window=MeasurementWindow(100, 1200, 100)
        )
        assert below.mean_latency < threshold * 1.5

    def test_higher_threshold_moves_knee_right(self, small_session, estimate):
        relaxed = estimate_sim_knee(
            small_session,
            threshold_factor=8.0,
            window=MeasurementWindow(100, 1200, 100),
            seed=2,
            iterations=5,
        )
        assert relaxed.sim_knee >= estimate.sim_knee * 0.99

    def test_rejects_bad_threshold(self, small_session):
        with pytest.raises(ValueError):
            estimate_sim_knee(small_session, threshold_factor=0.5)
