"""Capacity-planning tests (analysis.capacity)."""

import pytest

from repro.analysis import (
    headroom_report,
    max_load_for_latency,
    model_bottlenecks,
    required_upgrade_factor,
)
from repro.core import (
    AnalyticalModel,
    BatchedModel,
    MessageSpec,
    find_saturation_load,
    paper_system_544,
)
from repro.workloads import HotspotTraffic

MSG = MessageSpec(32, 256.0)


class TestMaxLoadForLatency:
    def test_budget_is_met_and_tight(self, paper_544):
        model = AnalyticalModel(paper_544, MSG)
        budget = 1.5 * model.zero_load_latency()
        plan = max_load_for_latency(paper_544, MSG, budget)
        assert plan.feasible
        achieved_latency = model.evaluate(plan.achieved).latency
        assert achieved_latency <= budget
        # Tight: 1% more load must bust the budget (or saturate).
        over = model.evaluate(plan.achieved * 1.02)
        assert over.saturated or over.latency > budget

    def test_infeasible_budget(self, paper_544):
        model = AnalyticalModel(paper_544, MSG)
        plan = max_load_for_latency(paper_544, MSG, 0.5 * model.zero_load_latency())
        assert not plan.feasible
        assert plan.achieved == 0.0

    def test_generous_budget_approaches_saturation(self, paper_544):
        plan = max_load_for_latency(paper_544, MSG, 1e9)
        lam_star = find_saturation_load(AnalyticalModel(paper_544, MSG))
        assert plan.feasible
        assert plan.achieved == pytest.approx(lam_star, rel=1e-3)

    def test_monotone_in_budget(self, paper_544):
        model = AnalyticalModel(paper_544, MSG)
        zero = model.zero_load_latency()
        small = max_load_for_latency(paper_544, MSG, 1.2 * zero).achieved
        large = max_load_for_latency(paper_544, MSG, 2.0 * zero).achieved
        assert large > small

    def test_rejects_nonpositive_budget(self, paper_544):
        with pytest.raises(ValueError):
            max_load_for_latency(paper_544, MSG, 0.0)


class TestRequiredUpgrade:
    def test_icn2_upgrade_reaches_target(self, paper_544):
        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        plan = required_upgrade_factor(paper_544, MSG, "icn2", 1.3 * base)
        assert plan.feasible
        assert 1.0 < plan.achieved < 2.0

    def test_non_binding_roles_infeasible(self, paper_544):
        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        for role in ("ecn1", "icn1"):
            plan = required_upgrade_factor(paper_544, MSG, role, 1.3 * base, max_factor=4.0)
            assert not plan.feasible

    def test_no_upgrade_needed(self, paper_544):
        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        plan = required_upgrade_factor(paper_544, MSG, "icn2", 0.5 * base)
        assert plan.feasible
        assert plan.achieved == 1.0

    def test_factor_is_minimal(self, paper_544):
        from repro.analysis import scale_network

        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        target = 1.25 * base
        plan = required_upgrade_factor(paper_544, MSG, "icn2", target)
        at = find_saturation_load(AnalyticalModel(scale_network(paper_544, "icn2", plan.achieved), MSG))
        below = find_saturation_load(
            AnalyticalModel(scale_network(paper_544, "icn2", plan.achieved * 0.98), MSG)
        )
        assert at >= target
        assert below < target


class TestUpgradeKneeCaching:
    """Regression: the detail f-strings used to re-run full saturation
    searches (knee(hi), knee(max_factor)) for values already computed."""

    @staticmethod
    def _record_built_systems(monkeypatch):
        import repro.analysis.capacity as capacity_mod

        built: list[str] = []
        real = capacity_mod.BatchedModel

        class Recording(real):
            def __init__(self, system, *args, **kwargs):
                built.append(system.name)
                super().__init__(system, *args, **kwargs)

        monkeypatch.setattr(capacity_mod, "BatchedModel", Recording)
        return built

    def test_infeasible_path_builds_each_factor_once(self, paper_544, monkeypatch):
        built = self._record_built_systems(monkeypatch)
        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        plan = required_upgrade_factor(paper_544, MSG, "icn1", 1.3 * base, max_factor=4.0)
        assert not plan.feasible
        # knee(1.0) and knee(max_factor) exactly once each; the detail string
        # must reuse the cached max_factor knee instead of recomputing it.
        assert len(built) == 2
        assert len(built) == len(set(built))
        assert "not the binding resource" in plan.detail

    def test_feasible_path_reuses_cached_knee_in_detail(self, paper_544, monkeypatch):
        built = self._record_built_systems(monkeypatch)
        base = find_saturation_load(AnalyticalModel(paper_544, MSG))
        plan = required_upgrade_factor(paper_544, MSG, "icn2", 1.3 * base)
        assert plan.feasible
        # The final detail reuses the cached knee(hi): no system variant is
        # ever constructed twice across the bisection + report.
        assert len(built) == len(set(built))
        assert f"x{plan.achieved:.3f}" in plan.detail


class TestHeadroom:
    def test_headroom_is_bottleneck_report(self, paper_544):
        report = headroom_report(paper_544, MSG, 2e-4)
        assert report.binding.kind == "concentrator"
        assert report.load == 2e-4

    def test_headroom_forwards_pattern(self, paper_544):
        """Regression: a hotspot operating point must not rank as uniform."""
        pattern = HotspotTraffic(hot_cluster=15, hot_fraction=0.3)
        hotspot = headroom_report(paper_544, MSG, 2e-4, pattern=pattern)
        direct = model_bottlenecks(
            paper_544, MSG, 2e-4, engine=BatchedModel(paper_544, MSG, None, pattern)
        )
        assert hotspot.binding == direct.binding
        assert hotspot.resources == direct.resources
        uniform = headroom_report(paper_544, MSG, 2e-4)
        assert hotspot.resources != uniform.resources

    def test_headroom_forwards_engine(self, paper_544):
        pattern = HotspotTraffic(hot_cluster=15, hot_fraction=0.3)
        engine = BatchedModel(paper_544, MSG, None, pattern)
        via_engine = headroom_report(paper_544, MSG, 2e-4, engine=engine)
        via_pattern = headroom_report(paper_544, MSG, 2e-4, pattern=pattern)
        assert via_engine.resources == via_pattern.resources

    def test_headroom_rejects_mismatched_engine_pattern(self, paper_544):
        engine = BatchedModel(paper_544, MSG)  # uniform traffic
        with pytest.raises(ValueError, match="different traffic pattern"):
            headroom_report(
                paper_544, MSG, 2e-4,
                pattern=HotspotTraffic(hot_cluster=15, hot_fraction=0.3),
                engine=engine,
            )
