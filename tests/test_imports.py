"""Import-isolation tests: every subpackage imports cleanly on its own.

Circular imports can hide behind favourable import orders in a shared test
process; these tests import each public module in a *fresh* interpreter so
any cycle fails loudly regardless of ordering.
"""

import subprocess
import sys

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.topology",
    "repro.cluster",
    "repro.simulation",
    "repro.validation",
    "repro.validation.report",
    "repro.workloads",
    "repro.analysis",
    "repro.scenarios",
    "repro.experiments",
    "repro.io",
    "repro.io.reporting",
    "repro.cli",
]


@pytest.mark.parametrize("module", MODULES)
def test_module_imports_in_isolation(module):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"importing {module} failed:\n{proc.stderr}"


def test_cli_entrypoint_runs_in_isolation():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "describe", "--system", "544"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "N=544" in proc.stdout
