"""Integration: the paper's headline claims, at paper scale (model side).

Simulation-backed versions of these claims run in the benchmark harness
(EXPERIMENTS.md); here we assert everything that is fast enough for CI.
"""

import pytest

from repro.analysis import icn2_bandwidth_study, model_bottlenecks
from repro.core import (
    AnalyticalModel,
    MessageSpec,
    find_saturation_load,
    paper_system_544,
    paper_system_1120,
)
from repro.validation import all_latency_figures


class TestFigureKnees:
    """Saturation points of Figs. 3-6 under both flit sizes."""

    @pytest.mark.parametrize(
        "system_name,m_flits,d_m,expected",
        [
            ("1120", 32, 256.0, 5.18e-4),
            ("1120", 32, 512.0, 2.64e-4),
            ("1120", 64, 256.0, 2.59e-4),
            ("1120", 64, 512.0, 1.32e-4),
            ("544", 32, 256.0, 1.04e-3),
            ("544", 32, 512.0, 5.29e-4),
            ("544", 64, 256.0, 5.19e-4),
            ("544", 64, 512.0, 2.65e-4),
        ],
    )
    def test_saturation_grid(self, system_name, m_flits, d_m, expected):
        system = paper_system_1120() if system_name == "1120" else paper_system_544()
        lam_star = find_saturation_load(AnalyticalModel(system, MessageSpec(m_flits, d_m)))
        assert lam_star == pytest.approx(expected, rel=0.02)

    def test_doubling_message_length_halves_saturation(self):
        for system in (paper_system_1120(), paper_system_544()):
            short = find_saturation_load(AnalyticalModel(system, MessageSpec(32, 256.0)))
            long = find_saturation_load(AnalyticalModel(system, MessageSpec(64, 256.0)))
            assert long == pytest.approx(short / 2, rel=0.02)

    def test_n544_saturates_twice_as_late_as_n1120(self):
        """The N=544 system's largest cluster carries half the external load."""
        big = find_saturation_load(AnalyticalModel(paper_system_1120(), MessageSpec(32, 256.0)))
        small = find_saturation_load(AnalyticalModel(paper_system_544(), MessageSpec(32, 256.0)))
        assert small / big == pytest.approx(2.0, rel=0.05)


class TestLatencyOrdering:
    def test_larger_flits_cost_more_at_equal_load(self):
        for fig in all_latency_figures():
            model_small = AnalyticalModel(fig.system, fig.messages[0])
            model_large = AnalyticalModel(fig.system, fig.messages[1])
            grid = fig.load_grid(fig.messages[1], points=4)
            for lam in grid:
                assert model_large.evaluate(lam).latency > model_small.evaluate(lam).latency

    def test_zero_load_latency_scales_with_message_length(self):
        system = paper_system_1120()
        l32 = AnalyticalModel(system, MessageSpec(32, 256.0)).zero_load_latency()
        l64 = AnalyticalModel(system, MessageSpec(64, 256.0)).zero_load_latency()
        # Dominated by M·t serialisation: close to 2x, slightly below.
        assert 1.7 < l64 / l32 < 2.0


class TestBottleneckClaim:
    def test_concentrator_icn2_path_binds_everywhere(self):
        """Paper §4: 'the inter-cluster networks, especially ICN2, are the
        bottlenecks of the system'."""
        for system in (paper_system_1120(), paper_system_544()):
            for m_flits in (32, 64):
                report = model_bottlenecks(system, MessageSpec(m_flits, 256.0), 1e-4)
                assert report.binding.kind == "concentrator"


class TestFigure7Claims:
    def test_icn2_bandwidth_helps_most_under_high_traffic(self):
        study = icn2_bandwidth_study(
            (paper_system_544(), paper_system_1120()),
            MessageSpec(128, 256.0),
            points=8,
        )
        for base_label in ("N544-m4-C16: N=544, base", "N1120-m8-C32: N=1120, base"):
            variant_label = base_label.replace("base", "icn2 x1.2")
            base = study.curve(base_label)
            fast = study.curve(variant_label)
            gain = (base.latencies - fast.latencies) / base.latencies
            assert gain[-1] > gain[0] > 0

    def test_n544_keeps_composure_deeper_into_the_grid(self):
        """Paper: 'the system with N=544 has better improvements' — on the
        shared axis its curves stay far flatter than N=1120's."""
        study = icn2_bandwidth_study(
            (paper_system_544(), paper_system_1120()),
            MessageSpec(128, 256.0),
            points=8,
        )
        base_544 = study.curve("N544-m4-C16: N=544, base")
        base_1120 = study.curve("N1120-m8-C32: N=1120, base")
        rise_544 = base_544.latencies[-1] / base_544.latencies[0]
        rise_1120 = base_1120.latencies[-1] / base_1120.latencies[0]
        assert rise_1120 > 1.25 * rise_544
        assert base_544.latencies[-1] < base_1120.latencies[-1]
